//! XML Integrity Constraints (XICs) and a chase engine (Section 3.3).
//!
//! The paper relates update constraints to the XICs of Deutsch–Tannen
//! \[15\]: every update constraint is expressible as an XIC over a virtual
//! two-branch document (`I` and `J` under one root, node identity through
//! an `@id` attribute), but the resulting XICs are *unbounded* — the chase,
//! the classical inference tool for XICs, need not terminate. Example 3.3
//! exhibits a two-constraint set on which the chase loops forever; this
//! crate reproduces that phenomenon:
//!
//! * [`Xic`] — tuple-generating dependencies over the relations
//!   `child(x, y)`, `label_ℓ(x)` and `id(x, v)`,
//! * [`FactDb`] — a fact database with homomorphism search,
//! * [`chase`] — the standard chase loop with a round cap,
//! * [`translate`] — update constraints (child-axis linear ranges) into
//!   two-branch XICs exactly as in Example 3.2.

use std::collections::BTreeSet;
use std::fmt;
use xuc_core::{Constraint, ConstraintKind};
use xuc_xpath::{Axis, NodeTest};
use xuc_xtree::Label;

/// A term: a bound variable (by name) or a constant value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Var(String),
    Const(u64),
}

impl Term {
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "#{c}"),
        }
    }
}

/// Relation symbols of the tree encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rel {
    /// `child(x, y)` — y is a child element of x.
    Child,
    /// `label_ℓ(x)` — x is labeled ℓ.
    Label(Label),
    /// `id(x, v)` — x carries the id attribute value v.
    IdAttr,
}

/// An atom `rel(args…)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub rel: Rel,
    pub args: Vec<Term>,
}

impl Atom {
    pub fn child(x: Term, y: Term) -> Atom {
        Atom { rel: Rel::Child, args: vec![x, y] }
    }

    pub fn label(x: Term, l: Label) -> Atom {
        Atom { rel: Rel::Label(l), args: vec![x] }
    }

    pub fn id(x: Term, v: Term) -> Atom {
        Atom { rel: Rel::IdAttr, args: vec![x, v] }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|t| t.to_string()).collect();
        match self.rel {
            Rel::Child => write!(f, "child({})", args.join(", ")),
            Rel::Label(l) => write!(f, "label_{l}({})", args.join(", ")),
            Rel::IdAttr => write!(f, "id({})", args.join(", ")),
        }
    }
}

/// A tuple-generating XIC: `∀x̄ body → ∃ȳ head`.
#[derive(Debug, Clone)]
pub struct Xic {
    pub name: String,
    pub body: Vec<Atom>,
    pub head: Vec<Atom>,
}

impl Xic {
    fn body_vars(&self) -> BTreeSet<&str> {
        vars_of(&self.body)
    }

    /// Head variables not bound by the body — existentially quantified,
    /// instantiated by fresh nulls when the chase fires.
    pub fn existentials(&self) -> BTreeSet<&str> {
        vars_of(&self.head).difference(&self.body_vars()).copied().collect()
    }
}

fn vars_of(atoms: &[Atom]) -> BTreeSet<&str> {
    atoms
        .iter()
        .flat_map(|a| a.args.iter())
        .filter_map(|t| match t {
            Term::Var(v) => Some(v.as_str()),
            Term::Const(_) => None,
        })
        .collect()
}

impl fmt::Display for Xic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        let head: Vec<String> = self.head.iter().map(|a| a.to_string()).collect();
        write!(f, "{}: {} → {}", self.name, body.join(" ∧ "), head.join(" ∧ "))
    }
}

/// A ground fact database.
#[derive(Debug, Clone, Default)]
pub struct FactDb {
    facts: BTreeSet<(Rel, Vec<u64>)>,
    next_null: u64,
}

impl FactDb {
    pub fn new() -> FactDb {
        FactDb { facts: BTreeSet::new(), next_null: 1_000_000 }
    }

    pub fn len(&self) -> usize {
        self.facts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Mints a labeled null (a fresh value).
    pub fn fresh(&mut self) -> u64 {
        self.next_null += 1;
        self.next_null
    }

    pub fn insert(&mut self, rel: Rel, args: Vec<u64>) -> bool {
        self.facts.insert((rel, args))
    }

    pub fn contains(&self, rel: Rel, args: &[u64]) -> bool {
        self.facts.contains(&(rel, args.to_vec()))
    }

    pub fn facts(&self) -> impl Iterator<Item = &(Rel, Vec<u64>)> {
        self.facts.iter()
    }

    /// All homomorphisms of `atoms` into the database extending `base`.
    fn homomorphisms(
        &self,
        atoms: &[Atom],
        base: &std::collections::HashMap<String, u64>,
    ) -> Vec<std::collections::HashMap<String, u64>> {
        let mut results = Vec::new();
        let mut current = base.clone();
        self.extend_hom(atoms, 0, &mut current, &mut results);
        results
    }

    fn extend_hom(
        &self,
        atoms: &[Atom],
        idx: usize,
        current: &mut std::collections::HashMap<String, u64>,
        results: &mut Vec<std::collections::HashMap<String, u64>>,
    ) {
        if idx == atoms.len() {
            results.push(current.clone());
            return;
        }
        let atom = &atoms[idx];
        'fact: for (rel, args) in &self.facts {
            if *rel != atom.rel || args.len() != atom.args.len() {
                continue;
            }
            let mut newly_bound = Vec::new();
            for (t, &v) in atom.args.iter().zip(args) {
                match t {
                    Term::Const(c) => {
                        if *c != v {
                            for k in newly_bound {
                                current.remove(&k);
                            }
                            continue 'fact;
                        }
                    }
                    Term::Var(name) => match current.get(name) {
                        Some(&bound) if bound != v => {
                            for k in newly_bound {
                                current.remove(&k);
                            }
                            continue 'fact;
                        }
                        Some(_) => {}
                        None => {
                            current.insert(name.clone(), v);
                            newly_bound.push(name.clone());
                        }
                    },
                }
            }
            self.extend_hom(atoms, idx + 1, current, results);
            for k in newly_bound {
                current.remove(&k);
            }
        }
    }
}

/// Result of a chase run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseResult {
    /// No dependency was applicable after `rounds` rounds: terminated.
    Terminated { rounds: usize },
    /// The round cap was reached with dependencies still firing — the
    /// observable signature of non-termination (Example 3.3).
    CapReached { rounds: usize, facts: usize },
}

/// Runs the standard chase: repeatedly finds a homomorphism of some
/// dependency's body that has no extension to its head, and adds the head
/// with fresh nulls for the existential variables.
pub fn chase(db: &mut FactDb, deps: &[Xic], max_rounds: usize) -> ChaseResult {
    for round in 0..max_rounds {
        let mut fired = false;
        for dep in deps {
            let existentials = dep.existentials();
            let homs = db.homomorphisms(&dep.body, &Default::default());
            for hom in homs {
                // Is the head already satisfied under some extension?
                if !db.homomorphisms(&dep.head, &hom).is_empty() {
                    continue;
                }
                // Fire: fresh nulls for existentials.
                let mut env = hom.clone();
                for e in &existentials {
                    let null = db.fresh();
                    env.insert((*e).to_string(), null);
                }
                for atom in &dep.head {
                    let args: Vec<u64> = atom
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => *c,
                            Term::Var(v) => env[v],
                        })
                        .collect();
                    db.insert(atom.rel, args);
                }
                fired = true;
            }
        }
        if !fired {
            return ChaseResult::Terminated { rounds: round };
        }
    }
    ChaseResult::CapReached { rounds: max_rounds, facts: db.len() }
}

/// Well-known constants of the two-branch encoding.
pub const ROOT: u64 = 0;
pub const I_BRANCH: u64 = 1;
pub const J_BRANCH: u64 = 2;

/// Seeds the two-branch document skeleton: `root` with `I` and `J`
/// children.
pub fn seed_two_branch(db: &mut FactDb) {
    db.insert(Rel::Child, vec![ROOT, I_BRANCH]);
    db.insert(Rel::Label(Label::new("I")), vec![I_BRANCH]);
    db.insert(Rel::Child, vec![ROOT, J_BRANCH]);
    db.insert(Rel::Label(Label::new("J")), vec![J_BRANCH]);
}

/// Translates an update constraint with a child-axis linear range into the
/// two-branch XIC of Example 3.2: a match with id `v` under the source
/// branch must also exist under the target branch with the same id
/// (`↑`: I → J; `↓`: J → I).
///
/// # Panics
/// Panics on non-linear or non-child-axis ranges (the general translation
/// follows \[15\] and is out of scope; the paper itself demonstrates the
/// phenomenon on child-only ranges).
pub fn translate(constraint: &Constraint, name: impl Into<String>) -> Xic {
    let steps = constraint.range.linear_steps().expect("translate requires a linear range");
    let (src, dst) = match constraint.kind {
        ConstraintKind::NoRemove => (I_BRANCH, J_BRANCH),
        ConstraintKind::NoInsert => (J_BRANCH, I_BRANCH),
    };

    let mut body = Vec::new();
    let mut head = Vec::new();
    let mut b_prev = Term::Const(src);
    let mut h_prev = Term::Const(dst);
    for (k, (axis, test)) in steps.iter().enumerate() {
        assert_eq!(*axis, Axis::Child, "translate requires child-axis steps");
        let b_cur = Term::var(format!("x{k}"));
        let h_cur = Term::var(format!("y{k}"));
        body.push(Atom::child(b_prev.clone(), b_cur.clone()));
        head.push(Atom::child(h_prev.clone(), h_cur.clone()));
        if let NodeTest::Label(l) = test {
            body.push(Atom::label(b_cur.clone(), *l));
            head.push(Atom::label(h_cur.clone(), *l));
        }
        b_prev = b_cur;
        h_prev = h_cur;
    }
    // The output node's id is shared between the two branches.
    body.push(Atom::id(b_prev, Term::var("v")));
    head.push(Atom::id(h_prev, Term::var("v")));
    Xic { name: name.into(), body, head }
}

/// Seeds a concrete subtree (with ids on every node) under a branch; used
/// to set up the chase start for implication tests.
pub fn seed_path(db: &mut FactDb, branch: u64, labels: &[&str]) -> Vec<u64> {
    let mut ids = Vec::new();
    let mut parent = branch;
    for l in labels {
        let node = db.fresh();
        let idv = db.fresh();
        db.insert(Rel::Child, vec![parent, node]);
        db.insert(Rel::Label(Label::new(l)), vec![node]);
        db.insert(Rel::IdAttr, vec![node, idv]);
        parent = node;
    }
    ids.push(parent);
    ids
}

/// The id-existence XICs of Example 3.2: every labeled element node has
/// an id attribute (`∀p,x child(p,x) ∧ label_ℓ(x) → ∃v id(x,v)`). These
/// are the *unbounded* dependencies whose existentially quantified ids
/// drive the non-terminating chase of Example 3.3.
pub fn id_existence_rules(labels: &[&str]) -> Vec<Xic> {
    labels
        .iter()
        .map(|l| Xic {
            name: format!("id-exists-{l}"),
            body: vec![
                Atom::child(Term::var("p"), Term::var("x")),
                Atom::label(Term::var("x"), Label::new(l)),
            ],
            head: vec![Atom::id(Term::var("x"), Term::var("v"))],
        })
        .collect()
}

/// The Example 3.3 set: `(c1) = (/a/b/c, ↑)` (id on the `c` node) and
/// `(c2) = (/a/b[c], ↓)` (id on the `b` node, whose `c` child is only a
/// predicate), plus the id-existence rules for `{a, b, c}`.
pub fn example_3_3() -> Vec<Xic> {
    let c1 = translate(&xuc_core::parse_constraint("(/a/b/c, ↑)").expect("static"), "c1");
    // c2 = (/a/b[c], ↓): hand-built because the id sits on the *b* node.
    let chain = |branch: u64, pfx: &str| {
        vec![
            Atom::child(Term::Const(branch), Term::var(format!("{pfx}0"))),
            Atom::label(Term::var(format!("{pfx}0")), Label::new("a")),
            Atom::child(Term::var(format!("{pfx}0")), Term::var(format!("{pfx}1"))),
            Atom::label(Term::var(format!("{pfx}1")), Label::new("b")),
            Atom::child(Term::var(format!("{pfx}1")), Term::var(format!("{pfx}2"))),
            Atom::label(Term::var(format!("{pfx}2")), Label::new("c")),
            Atom::id(Term::var(format!("{pfx}1")), Term::var("v")),
        ]
    };
    let c2 = Xic { name: "c2".into(), body: chain(J_BRANCH, "x"), head: chain(I_BRANCH, "y") };
    let mut deps = vec![c1, c2];
    deps.extend(id_existence_rules(&["a", "b", "c"]));
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_shape() {
        let c = xuc_core::parse_constraint("(/a/b, ↑)").unwrap();
        let xic = translate(&c, "t");
        assert_eq!(xic.body.len(), 5); // 2 child + 2 label + id
        assert_eq!(xic.head.len(), 5);
        // Existentials: all head node variables; v is shared.
        let ex = xic.existentials();
        assert!(ex.contains("y0") && ex.contains("y1"));
        assert!(!ex.contains("v"));
    }

    #[test]
    fn chase_terminates_on_satisfied_instance() {
        // I-branch a/b mirrored in J with same id: nothing to do.
        let c = xuc_core::parse_constraint("(/a/b, ↑)").unwrap();
        let deps = vec![translate(&c, "t")];
        let mut db = FactDb::new();
        seed_two_branch(&mut db);
        // a/b under I with id 77 and the mirror under J.
        for branch in [I_BRANCH, J_BRANCH] {
            let a = db.fresh();
            let b = db.fresh();
            db.insert(Rel::Child, vec![branch, a]);
            db.insert(Rel::Label(Label::new("a")), vec![a]);
            db.insert(Rel::Child, vec![a, b]);
            db.insert(Rel::Label(Label::new("b")), vec![b]);
            db.insert(Rel::IdAttr, vec![b, 77]);
        }
        let result = chase(&mut db, &deps, 10);
        assert!(matches!(result, ChaseResult::Terminated { rounds: 0 }));
    }

    #[test]
    fn chase_fires_once_and_terminates() {
        let c = xuc_core::parse_constraint("(/a, ↑)").unwrap();
        let deps = vec![translate(&c, "t")];
        let mut db = FactDb::new();
        seed_two_branch(&mut db);
        seed_path(&mut db, I_BRANCH, &["a"]);
        let before = db.len();
        let result = chase(&mut db, &deps, 10);
        assert!(matches!(result, ChaseResult::Terminated { rounds: 1 }));
        assert!(db.len() > before, "the head must have been added");
    }

    #[test]
    fn example_3_3_chase_diverges() {
        // Testing implication of (/a/b/c/d, ↑): seed the I branch with the
        // canonical a/b/c/d and chase with {c1, c2} — the chase enters the
        // c1, c2, c1, … loop and never terminates (Example 3.3).
        let deps = example_3_3();
        let mut db = FactDb::new();
        seed_two_branch(&mut db);
        seed_path(&mut db, I_BRANCH, &["a", "b", "c", "d"]);
        let mut sizes = Vec::new();
        for cap in [2, 4, 6, 8] {
            let mut fresh_db = FactDb::new();
            seed_two_branch(&mut fresh_db);
            seed_path(&mut fresh_db, I_BRANCH, &["a", "b", "c", "d"]);
            match chase(&mut fresh_db, &deps, cap) {
                ChaseResult::Terminated { .. } => {
                    panic!("Example 3.3 chase must not terminate")
                }
                ChaseResult::CapReached { facts, .. } => sizes.push(facts),
            }
        }
        // Fact counts strictly grow with the cap: the loop keeps producing.
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes {sizes:?} must grow");
    }

    #[test]
    fn display_forms() {
        let c = xuc_core::parse_constraint("(/a, ↓)").unwrap();
        let xic = translate(&c, "d");
        let printed = xic.to_string();
        assert!(printed.contains("child"));
        assert!(printed.contains("label_a"));
        assert!(printed.contains("→"));
    }
}
