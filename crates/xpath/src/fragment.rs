//! Fragment classification for `XP{/,[],//,*}` sub-languages.
//!
//! The paper's complexity landscape (Tables 1 and 2) is organized by which
//! navigational primitives appear: predicates `[]`, descendant `//` and
//! wildcard `*`. [`Features`] records which appear in a pattern or a set of
//! patterns; decision procedures dispatch on it.

use crate::pattern::Pattern;
use std::fmt;

/// Which optional primitives occur (`/` is always present).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Features {
    /// `[]` — predicates (branching).
    pub predicates: bool,
    /// `//` — descendant axis.
    pub descendant: bool,
    /// `*` — wildcard node tests.
    pub wildcard: bool,
}

impl Features {
    /// Features of a single pattern.
    pub fn of(q: &Pattern) -> Features {
        Features {
            predicates: !q.is_linear(),
            descendant: q.descendant_edge_count() > 0,
            wildcard: q.wildcard_count() > 0,
        }
    }

    /// Union of the features of many patterns.
    pub fn of_all<'a>(qs: impl IntoIterator<Item = &'a Pattern>) -> Features {
        qs.into_iter().fold(Features::default(), |acc, q| acc.union(Features::of(q)))
    }

    /// Pointwise union.
    pub fn union(self, other: Features) -> Features {
        Features {
            predicates: self.predicates || other.predicates,
            descendant: self.descendant || other.descendant,
            wildcard: self.wildcard || other.wildcard,
        }
    }

    /// `XP{/}`: no predicates, no descendant, no wildcard.
    pub fn is_plain(self) -> bool {
        !self.predicates && !self.descendant && !self.wildcard
    }

    /// `XP{/,[],*}`: no descendant axis.
    pub fn in_pred_star(self) -> bool {
        !self.descendant
    }

    /// `XP{/,[],//}`: no wildcard.
    pub fn in_pred_desc(self) -> bool {
        !self.wildcard
    }

    /// `XP{/,//,*}`: no predicates (linear paths).
    pub fn in_linear(self) -> bool {
        !self.predicates
    }

    /// Containment-by-homomorphism is complete when at most two of the
    /// three primitives occur (Miklau–Suciu): i.e. everywhere except the
    /// full fragment `XP{/,[],//,*}`.
    pub fn homomorphism_complete(self) -> bool {
        !(self.predicates && self.descendant && self.wildcard)
    }
}

impl fmt::Display for Features {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = vec!["/"];
        if self.predicates {
            parts.push("[]");
        }
        if self.descendant {
            parts.push("//");
        }
        if self.wildcard {
            parts.push("*");
        }
        write!(f, "XP{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn classify_queries() {
        let plain = Features::of(&parse("/a/b").unwrap());
        assert!(plain.is_plain());
        assert!(plain.in_pred_star() && plain.in_pred_desc() && plain.in_linear());

        let pred = Features::of(&parse("/a[/b]").unwrap());
        assert!(pred.predicates && !pred.descendant && !pred.wildcard);
        assert!(pred.in_pred_star());
        assert!(!pred.in_linear());

        let full = Features::of(&parse("//a[/b]/*").unwrap());
        assert!(full.predicates && full.descendant && full.wildcard);
        assert!(!full.homomorphism_complete());
    }

    #[test]
    fn union_accumulates() {
        let qs = [parse("/a[/b]").unwrap(), parse("//c").unwrap()];
        let f = Features::of_all(&qs);
        assert!(f.predicates && f.descendant && !f.wildcard);
        assert!(f.homomorphism_complete());
    }

    #[test]
    fn display_names_fragment() {
        let f = Features::of(&parse("//a/*").unwrap());
        assert_eq!(f.to_string(), "XP{/,//,*}");
    }
}
