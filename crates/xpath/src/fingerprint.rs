//! Stable canonical fingerprints for patterns and pattern suites.
//!
//! Two needs drive this module:
//!
//! * **memoization keys** — the service layer caches compiled
//!   set-at-a-time automata per constraint suite, so it needs a cheap,
//!   stable key for "the same suite again" (`xuc-service`'s `SuiteCache`);
//! * **dedup** — workload generators produce pattern families where
//!   accidental duplicates would silently skew sweep parameters
//!   ([`xuc_workloads`'s `dedup_suite`]).
//!
//! The canonical serialization underneath is [`Pattern`]'s `Display`
//! form: predicates print in sorted order and the output position is
//! encoded by which steps render as spine vs brackets, so two `Pattern`
//! values that denote the same query render identically no matter how
//! their arenas were built. Fingerprints hash that rendering (FNV-1a
//! with a final avalanche round), which makes them **content-stable**:
//! independent of label interning order, arena layout, process, and run.
//!
//! [`xuc_workloads`'s `dedup_suite`]: Pattern#method.canonical_fingerprint

use crate::pattern::Pattern;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a fingerprint builder with a [SplitMix64-style]
/// finalizer, for callers that need to mix pattern serializations with
/// extra data (the service layer appends each constraint's update type to
/// its range, for example).
///
/// [SplitMix64-style]: https://prng.di.unimi.it/splitmix64.c
///
/// ```
/// use xuc_xpath::fingerprint::Fingerprinter;
/// use xuc_xpath::parse;
///
/// let mut fp = Fingerprinter::new();
/// fp.write_pattern(&parse("/a[/b]").unwrap());
/// fp.write_str("↑");
/// let tagged = fp.finish();
/// assert_ne!(tagged, parse("/a[/b]").unwrap().canonical_fingerprint());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    h: u64,
}

impl Fingerprinter {
    pub fn new() -> Fingerprinter {
        Fingerprinter { h: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string **with a terminator** outside the UTF-8 value
    /// space, so adjacent writes cannot collide by concatenation
    /// (`"/a" + "/b"` vs `"/a/b"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xFF]);
    }

    /// Absorbs an integer (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a pattern's canonical serialization.
    pub fn write_pattern(&mut self, q: &Pattern) {
        self.write_str(&q.to_string());
    }

    /// The 64-bit fingerprint of everything written so far. FNV's low
    /// bits mix weakly, so a final avalanche round spreads them before
    /// the value is used as a hash-map key.
    pub fn finish(&self) -> u64 {
        let mut z = self.h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Pattern {
    /// A stable content fingerprint of this pattern's canonical
    /// serialization: equal for patterns denoting the same query (however
    /// their arenas were built), stable across label interning order,
    /// processes and runs.
    ///
    /// ```
    /// use xuc_xpath::parse;
    ///
    /// // Predicate order is not part of the query.
    /// let q1 = parse("/a[/b][/c]//d").unwrap();
    /// let q2 = parse("/a[/c][/b]//d").unwrap();
    /// assert_eq!(q1.canonical_fingerprint(), q2.canonical_fingerprint());
    /// assert_ne!(
    ///     q1.canonical_fingerprint(),
    ///     parse("/a[/b]//d").unwrap().canonical_fingerprint()
    /// );
    /// ```
    pub fn canonical_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_pattern(self);
        fp.finish()
    }
}

/// An **order-insensitive** fingerprint of a whole suite: the canonical
/// serializations are sorted before hashing, so `{q1, q2}` and `{q2, q1}`
/// fingerprint equally (a suite is semantically a set). Multiplicity is
/// preserved — a duplicated pattern changes the fingerprint.
///
/// Note: consumers that key *positional* artifacts (like a compiled
/// automaton whose acceptance-row bit `i` means "pattern `i`") must use a
/// sequence-sensitive [`Fingerprinter`] instead; this function is for
/// identity of the suite as a set.
///
/// ```
/// use xuc_xpath::fingerprint::suite_fingerprint;
/// use xuc_xpath::parse;
///
/// let a = parse("/a").unwrap();
/// let b = parse("//b[/c]").unwrap();
/// assert_eq!(suite_fingerprint([&a, &b]), suite_fingerprint([&b, &a]));
/// assert_ne!(suite_fingerprint([&a, &b]), suite_fingerprint([&a]));
/// ```
pub fn suite_fingerprint<'a>(patterns: impl IntoIterator<Item = &'a Pattern>) -> u64 {
    let mut keys: Vec<String> = patterns.into_iter().map(|q| q.to_string()).collect();
    keys.sort();
    let mut fp = Fingerprinter::new();
    fp.write_u64(keys.len() as u64);
    for k in &keys {
        fp.write_str(k);
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pattern::{Axis, PatternBuilder};

    #[test]
    fn equal_queries_fingerprint_equally_across_build_orders() {
        // /a//b[/c] built by the parser vs by the builder with the
        // predicate added first: same query, same fingerprint.
        let parsed = parse("/a//b[/c]").unwrap();
        let mut b = PatternBuilder::new(Axis::Child, "a");
        let nb = b.add(b.root(), Axis::Descendant, "b");
        b.add(nb, Axis::Child, "c");
        let built = b.finish(nb);
        assert_eq!(parsed.canonical_fingerprint(), built.canonical_fingerprint());
    }

    #[test]
    fn distinct_queries_fingerprint_distinctly() {
        let qs = ["/a", "//a", "/a/b", "/a[/b]", "/a[/b]/c", "/a/b/c", "/*", "//*", "/a[/b][/c]"];
        let fps: std::collections::BTreeSet<u64> =
            qs.iter().map(|s| parse(s).unwrap().canonical_fingerprint()).collect();
        assert_eq!(fps.len(), qs.len(), "no collisions among {qs:?}");
    }

    #[test]
    fn output_position_is_part_of_the_fingerprint() {
        // /a/b with output on `a` denotes the same query as /a[/b]; with
        // output on `b` it is a different query.
        let mut b = PatternBuilder::new(Axis::Child, "a");
        let nb = b.add(b.root(), Axis::Child, "b");
        let out_a = b.finish(0);
        let pred_form = parse("/a[/b]").unwrap();
        let chain_form = parse("/a/b").unwrap();
        assert_eq!(out_a.canonical_fingerprint(), pred_form.canonical_fingerprint());
        assert_ne!(out_a.canonical_fingerprint(), chain_form.canonical_fingerprint());
        let _ = nb;
    }

    #[test]
    fn suite_fingerprint_is_order_insensitive_but_multiplicity_sensitive() {
        let a = parse("/a").unwrap();
        let b = parse("/b").unwrap();
        assert_eq!(suite_fingerprint([&a, &b]), suite_fingerprint([&b, &a]));
        assert_ne!(suite_fingerprint([&a, &b]), suite_fingerprint([&a, &b, &b]));
        assert_ne!(suite_fingerprint([]), suite_fingerprint([&a]));
    }

    #[test]
    fn terminator_prevents_concatenation_collisions() {
        let mut one = Fingerprinter::new();
        one.write_str("/a");
        one.write_str("/b");
        let mut joined = Fingerprinter::new();
        joined.write_str("/a/b");
        assert_ne!(one.finish(), joined.finish());
    }
}
