//! Tree-pattern queries in the XPath fragment `XP{/,[],//,*}`.
//!
//! This crate implements the query language of Section 2 of *Cautis,
//! Abiteboul, Milo — "Reasoning about XML update constraints"*:
//!
//! ```text
//! path ::= /step | //step | path path
//! step ::= label pred
//! pred ::= ε | [path] pred
//! label ::= L | *
//! ```
//!
//! Queries are *unary tree patterns*: a spine from the document root to a
//! distinguished output node, with predicate subtrees hanging off spine (and
//! predicate) nodes. The crate provides:
//!
//! * [`Pattern`] — the arena AST with builder API ([`pattern`]),
//! * [`parse`] — a parser for the grammar above ([`parser`]),
//! * [`eval()`](eval()) — PTIME evaluation on [`xuc_xtree::DataTree`]s ([`mod@eval`]),
//!   plus a naive exponential oracle in [`naive`],
//! * [`Evaluator`] — the reusable bitset engine behind [`eval()`](eval()): one dense
//!   snapshot amortized across many pattern evaluations ([`engine`]), with
//!   a set-at-a-time batch path ([`Evaluator::eval_set`]) driven by a
//!   compiled [`PatternSetAutomaton`] (compiler in `xuc_automata`),
//! * containment / equivalence via homomorphisms (sound, PTIME) and
//!   canonical models (complete, coNP) ([`containment`], [`canonical`]),
//! * intersection for `XP{/,[],*}` ([`intersect`]) as used by Theorem 4.4,
//! * fragment classification ([`fragment`]),
//! * stable canonical fingerprints of patterns and suites
//!   ([`fingerprint`]) — memoization keys and dedup.

pub mod canonical;
pub mod containment;
pub mod engine;
pub mod eval;
pub mod fingerprint;
pub mod fragment;
pub mod intersect;
pub mod naive;
pub mod parser;
pub mod pattern;
pub mod stats;

pub use containment::{contains, equivalent, homomorphism_exists};
pub use engine::{Evaluator, PatternSetAutomaton, SpliceJournal};
pub use eval::{eval, eval_at};
pub use fingerprint::{suite_fingerprint, Fingerprinter};
pub use fragment::Features;
pub use intersect::intersect_all;
pub use parser::{parse, ParseError};
pub use pattern::{Axis, NodeTest, PIdx, Pattern, PatternBuilder};
pub use stats::{engine_counters, EngineCounters};
