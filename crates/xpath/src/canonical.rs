//! Canonical models of tree patterns (Miklau–Suciu).
//!
//! A *canonical model* of a pattern `q` is a concrete data tree obtained by
//! instantiating every wildcard with a fresh label `z` and expanding every
//! `//` edge into a chain of `z`-labeled nodes. Containment `q1 ⊆ q2` holds
//! iff `q2` selects the output node in every canonical model of `q1` with
//! chain lengths up to `star_length(q2) + 1`; this is the complete (coNP)
//! containment test used for the full fragment, and the same construction
//! underlies the paper's proofs (the tree `T_q` of Theorem 4.4, the possible
//! embeddings of Theorem 5.5 and the pruning bounds of Theorems 4.7/5.1).

use crate::pattern::{Axis, PIdx, Pattern};
use xuc_xtree::{DataTree, Label, NodeId};

/// A canonical model: the instantiated tree plus the tree node the pattern's
/// output was instantiated to.
#[derive(Debug, Clone)]
pub struct CanonicalModel {
    pub tree: DataTree,
    pub output: NodeId,
}

/// Picks a label that does not occur in any of the given patterns
/// (`z`, then `z1`, `z2`, …).
pub fn fresh_label_for<'a>(patterns: impl IntoIterator<Item = &'a Pattern>) -> Label {
    let used: std::collections::BTreeSet<Label> =
        patterns.into_iter().flat_map(|q| q.labels()).collect();
    if !used.contains(&Label::z()) {
        return Label::z();
    }
    for i in 1.. {
        let cand = Label::new(&format!("z{i}"));
        if !used.contains(&cand) {
            return cand;
        }
    }
    unreachable!("unbounded candidate labels")
}

/// Builds one instantiation of `q` where the `i`-th descendant edge (in DFS
/// order) is expanded into `chain_lens[i]` intermediate `z` nodes (0 means a
/// direct child edge) and every wildcard becomes `z`. The tree gets a fresh
/// root labeled `root_label`.
pub fn instantiate(
    q: &Pattern,
    chain_lens: &[usize],
    z: Label,
    root_label: Label,
) -> CanonicalModel {
    let mut desc_edges = Vec::new();
    for i in q.dfs() {
        if q.axis(i) == Axis::Descendant {
            desc_edges.push(i);
        }
    }
    assert_eq!(desc_edges.len(), chain_lens.len(), "one chain length per descendant edge required");
    let chain_of: std::collections::HashMap<PIdx, usize> =
        desc_edges.iter().copied().zip(chain_lens.iter().copied()).collect();

    let mut tree = DataTree::new(root_label);
    let mut output = None;
    fn rec(
        q: &Pattern,
        i: PIdx,
        tree: &mut DataTree,
        attach: NodeId,
        z: Label,
        chain_of: &std::collections::HashMap<PIdx, usize>,
        output: &mut Option<NodeId>,
    ) {
        let mut parent = attach;
        if let Some(&len) = chain_of.get(&i) {
            for _ in 0..len {
                parent = tree.add(parent, z).expect("fresh id");
            }
        }
        let label = match q.test(i) {
            crate::pattern::NodeTest::Label(l) => l,
            crate::pattern::NodeTest::Wildcard => z,
        };
        let me = tree.add(parent, label).expect("fresh id");
        if i == q.output() {
            *output = Some(me);
        }
        for &c in q.children(i) {
            rec(q, c, tree, me, z, chain_of, output);
        }
    }
    let tree_root = tree.root_id();
    rec(q, q.root(), &mut tree, tree_root, z, &chain_of, &mut output);
    CanonicalModel { tree, output: output.expect("output instantiated") }
}

/// Iterates over all canonical models of `q` with every descendant edge
/// expanded to `0..=max_chain` intermediate `z` nodes. The number of models
/// is `(max_chain + 1)^d` for `d` descendant edges; iteration is lazy so
/// callers can short-circuit.
pub fn canonical_models(
    q: &Pattern,
    max_chain: usize,
    z: Label,
) -> impl Iterator<Item = CanonicalModel> + '_ {
    let d = q.descendant_edge_count();
    let mut counter = vec![0usize; d];
    let mut done = false;
    let root_label = Label::new("root");
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let model = instantiate(q, &counter, z, root_label);
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == counter.len() {
                done = true;
                break;
            }
            counter[i] += 1;
            if counter[i] <= max_chain {
                break;
            }
            counter[i] = 0;
            i += 1;
        }
        Some(model)
    })
}

/// The chain-length bound that makes the canonical-model containment test
/// `q1 ⊆ q2` complete. The tight bound is related to the star length of
/// `q2`; we use `star_length(q2) + 2`, which is safely at least the tight
/// bound (checking *more* canonical models never breaks either direction).
pub fn chain_bound_for(q2: &Pattern) -> usize {
    q2.star_length() + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parser::parse;

    #[test]
    fn instantiate_child_only() {
        let q = parse("/a[/b]/c").unwrap();
        let m = instantiate(&q, &[], Label::z(), Label::new("root"));
        assert_eq!(m.tree.len(), 4);
        assert_eq!(m.tree.label(m.output).unwrap(), Label::new("c"));
        // The pattern must select its own output in the model.
        assert!(eval(&q, &m.tree).iter().any(|n| n.id == m.output));
    }

    #[test]
    fn instantiate_expands_descendant_edges() {
        let q = parse("/a//b").unwrap();
        let m0 = instantiate(&q, &[0], Label::z(), Label::new("root"));
        assert_eq!(m0.tree.len(), 3); // root, a, b
        let m2 = instantiate(&q, &[2], Label::z(), Label::new("root"));
        assert_eq!(m2.tree.len(), 5); // root, a, z, z, b
        assert!(eval(&q, &m2.tree).iter().any(|n| n.id == m2.output));
    }

    #[test]
    fn wildcards_become_z() {
        let q = parse("/*/b").unwrap();
        let m = instantiate(&q, &[], Label::z(), Label::new("root"));
        let labels: Vec<&str> = m.tree.labels().iter().map(|l| l.as_str()).collect();
        assert!(labels.contains(&"z"));
    }

    #[test]
    fn model_count_matches_radix() {
        let q = parse("//a//b").unwrap();
        let models: Vec<_> = canonical_models(&q, 2, Label::z()).collect();
        assert_eq!(models.len(), 9); // 3^2
        for m in &models {
            assert!(eval(&q, &m.tree).iter().any(|n| n.id == m.output), "self-match");
        }
    }

    #[test]
    fn zero_descendant_edges_single_model() {
        let q = parse("/a/b").unwrap();
        let models: Vec<_> = canonical_models(&q, 5, Label::z()).collect();
        assert_eq!(models.len(), 1);
    }

    #[test]
    fn fresh_label_avoids_pattern_labels() {
        let q = parse("/z/z1").unwrap();
        let fresh = fresh_label_for([&q]);
        assert!(fresh != Label::new("z") && fresh != Label::new("z1"));
    }
}
