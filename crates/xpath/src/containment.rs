//! Containment and equivalence of tree patterns.
//!
//! Two complementary procedures, following Miklau–Suciu \[23\]:
//!
//! * [`homomorphism_exists`] — a PTIME *containment mapping* test. Sound in
//!   every fragment; complete whenever the pair of queries does not combine
//!   `//` with `*` (so complete for `XP{/,[],//}` and `XP{/,[],*}`).
//! * canonical-model checking — complete for the full fragment
//!   `XP{/,[],//,*}` (coNP): `q1 ⊆ q2` iff `q2` selects the output in every
//!   canonical model of `q1` with bounded `//`-expansions.
//!
//! [`contains`] dispatches: it tries the homomorphism first and falls back
//! to canonical models only when the homomorphism is absent *and* the
//! fragment makes its absence inconclusive.

use crate::canonical::{canonical_models, chain_bound_for, fresh_label_for};
use crate::eval::eval;
use crate::fragment::Features;
use crate::pattern::{Axis, PIdx, Pattern};

/// Is there a containment mapping from `from` into `to`?
///
/// A containment mapping sends the (virtual) document root to the document
/// root and every node of `from` to a node of `to` such that:
/// * a concrete label maps to the same concrete label (a wildcard in `from`
///   maps to anything),
/// * a `/`-edge maps to a `/`-edge,
/// * a `//`-edge maps to a downward path of length ≥ 1,
/// * the output node of `from` maps to the output node of `to`.
///
/// Existence of such a mapping proves `to ⊆ from`.
pub fn homomorphism_exists(from: &Pattern, to: &Pattern) -> bool {
    let nf = from.len();
    let nt = to.len();

    // strictly_below[v] = nodes of `to` strictly below v (≥ 1 edge).
    let mut strictly_below: Vec<Vec<PIdx>> = vec![Vec::new(); nt];
    for v in to.dfs() {
        fn collect(t: &Pattern, v: PIdx, out: &mut Vec<PIdx>) {
            for &c in t.children(v) {
                out.push(c);
                collect(t, c, out);
            }
        }
        collect(to, v, &mut strictly_below[v]);
    }

    // can[u][v]: subpattern of `from` rooted at u maps with u ↦ v.
    let mut can = vec![vec![false; nt]; nf];
    for u in from.post_order() {
        for v in 0..nt {
            can[u][v] = maps_at(from, to, u, v, &can, &strictly_below);
        }
    }

    // Now align the spine so that from.output ↦ to.output, rebuilding the
    // satisfaction along from's spine with the alignment requirement.
    let spine = from.spine();
    // aligned[k][v]: the spine suffix starting at spine[k] maps with
    // spine[k] ↦ v and from.output ↦ to.output.
    let mut aligned = vec![vec![false; nt]; spine.len()];
    for k in (0..spine.len()).rev() {
        let u = spine[k];
        for v in 0..nt {
            if !node_compatible(from, to, u, v) {
                continue;
            }
            // Non-spine children must map as in `can`.
            let spine_next = spine.get(k + 1).copied();
            let mut ok = true;
            for &c in from.children(u) {
                if Some(c) == spine_next {
                    continue;
                }
                if !child_mapped(from, to, c, v, &can, &strictly_below) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            match spine_next {
                None => {
                    // u is from's output: must map onto to's output.
                    aligned[k][v] = v == to.output();
                }
                Some(c) => {
                    let targets: Box<dyn Iterator<Item = PIdx>> = match from.axis(c) {
                        Axis::Child => Box::new(
                            to.children(v).iter().copied().filter(|&w| to.axis(w) == Axis::Child),
                        ),
                        Axis::Descendant => Box::new(strictly_below[v].iter().copied()),
                    };
                    let kk = k + 1;
                    aligned[k][v] = targets.into_iter().any(|w| aligned[kk][w]);
                }
            }
        }
    }

    // The first spine step must attach to the document root correctly.
    (0..nt).any(|v| aligned[0][v] && root_attachable(from, to, spine[0], v))
}

fn node_compatible(from: &Pattern, to: &Pattern, u: PIdx, v: PIdx) -> bool {
    match from.test(u) {
        crate::pattern::NodeTest::Wildcard => true,
        crate::pattern::NodeTest::Label(l) => to.test(v) == crate::pattern::NodeTest::Label(l),
    }
}

fn root_attachable(from: &Pattern, to: &Pattern, u: PIdx, v: PIdx) -> bool {
    match from.axis(u) {
        // A child-of-root step must map to the child-of-root step of `to`.
        Axis::Child => v == to.root() && to.axis(to.root()) == Axis::Child,
        // A descendant-of-root step maps to any node of `to`.
        Axis::Descendant => true,
    }
}

fn child_mapped(
    from: &Pattern,
    to: &Pattern,
    c: PIdx,
    v: PIdx,
    can: &[Vec<bool>],
    strictly_below: &[Vec<PIdx>],
) -> bool {
    match from.axis(c) {
        Axis::Child => to.children(v).iter().any(|&w| to.axis(w) == Axis::Child && can[c][w]),
        Axis::Descendant => strictly_below[v].iter().any(|&w| can[c][w]),
    }
}

fn maps_at(
    from: &Pattern,
    to: &Pattern,
    u: PIdx,
    v: PIdx,
    can: &[Vec<bool>],
    strictly_below: &[Vec<PIdx>],
) -> bool {
    node_compatible(from, to, u, v)
        && from.children(u).iter().all(|&c| child_mapped(from, to, c, v, can, strictly_below))
}

/// Complete containment test: does `q1 ⊆ q2` hold (every node selected by
/// `q1` in any tree is selected by `q2`)?
pub fn contains(q1: &Pattern, q2: &Pattern) -> bool {
    // Sound fast path: a containment mapping q2 → q1 proves q1 ⊆ q2.
    if homomorphism_exists(q2, q1) {
        return true;
    }
    let f = Features::of(q1).union(Features::of(q2));
    if !(f.descendant && f.wildcard) {
        // Homomorphism is complete when // and * do not co-occur.
        return false;
    }
    contains_canonical(q1, q2)
}

/// The canonical-model containment test (always complete, exponential in the
/// number of `//` edges of `q1`).
pub fn contains_canonical(q1: &Pattern, q2: &Pattern) -> bool {
    let z = fresh_label_for([q1, q2]);
    let bound = chain_bound_for(q2);
    for model in canonical_models(q1, bound, z) {
        let selected = eval(q2, &model.tree);
        if !selected.iter().any(|n| n.id == model.output) {
            return false;
        }
    }
    true
}

/// Query equivalence: mutual containment.
pub fn equivalent(q1: &Pattern, q2: &Pattern) -> bool {
    contains(q1, q2) && contains(q2, q1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn q(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    #[test]
    fn reflexive() {
        for s in ["/a", "//a/b[/c]", "/a//*[/b]/c", "/*"] {
            let p = q(s);
            assert!(contains(&p, &p), "{s} ⊆ {s}");
            assert!(equivalent(&p, &p));
        }
    }

    #[test]
    fn child_into_descendant() {
        assert!(contains(&q("/a/b"), &q("//b")));
        assert!(contains(&q("/a/b"), &q("/a//b")));
        assert!(!contains(&q("/a//b"), &q("/a/b")));
    }

    #[test]
    fn label_into_wildcard() {
        assert!(contains(&q("/a"), &q("/*")));
        assert!(!contains(&q("/*"), &q("/a")));
    }

    #[test]
    fn predicates_weaken() {
        assert!(contains(&q("/a[/b]"), &q("/a")));
        assert!(!contains(&q("/a"), &q("/a[/b]")));
        assert!(contains(&q("/a[/b][/c]"), &q("/a[/c]")));
    }

    #[test]
    fn predicate_descendant_weakening() {
        assert!(contains(&q("/a[/b]"), &q("/a[//b]")));
        assert!(!contains(&q("/a[//b]"), &q("/a[/b]")));
    }

    #[test]
    fn output_must_align() {
        // Same shapes, different outputs: /a/b output b vs output a.
        let qb = q("/a/b");
        // Build /a/b with output a.
        let mut builder = crate::pattern::PatternBuilder::new(Axis::Child, "a");
        builder.add(builder.root(), Axis::Child, "b");
        let qa = builder.finish(0);
        assert!(!contains(&qb, &qa));
        assert!(!contains(&qa, &qb));
        // But /a[/b] with output a is equivalent to qa.
        assert!(equivalent(&qa, &q("/a[/b]")));
    }

    #[test]
    fn star_descendant_equivalences() {
        // /a/*//b and /a//*/b both mean "b at depth ≥ 2 below a": equivalent
        // although no homomorphism exists in either direction.
        let p1 = q("/a/*//b");
        let p2 = q("/a//*/b");
        assert!(!homomorphism_exists(&p1, &p2));
        assert!(!homomorphism_exists(&p2, &p1));
        assert!(equivalent(&p1, &p2));
    }

    #[test]
    fn star_descendant_strictness() {
        assert!(contains(&q("/a/*/b"), &q("/a//b")));
        assert!(!contains(&q("/a//b"), &q("/a/*/b")));
        assert!(contains(&q("/a//*/b"), &q("/a//b")));
    }

    #[test]
    fn root_attachment_matters() {
        assert!(contains(&q("/a"), &q("//a")));
        assert!(!contains(&q("//a"), &q("/a")));
    }

    #[test]
    fn descendant_composition() {
        assert!(contains(&q("//a//b//c"), &q("//b//c")));
        assert!(contains(&q("//a//b//c"), &q("//a//c")));
        assert!(!contains(&q("//a//c"), &q("//a//b//c")));
    }

    #[test]
    fn deep_predicate_counterexample() {
        // /a[/b/c] vs /a[/b]: the former is contained in the latter.
        assert!(contains(&q("/a[/b[/c]]"), &q("/a[/b]")));
        assert!(!contains(&q("/a[/b]"), &q("/a[/b[/c]]")));
    }

    #[test]
    fn canonical_agrees_with_homomorphism_on_easy_fragment() {
        let cases = [
            ("/a/b", "/a/b"),
            ("/a/b", "//b"),
            ("/a[/c]/b", "/a/b"),
            ("/a/b", "/a[/c]/b"),
            ("//a/b", "//b"),
            ("//b", "//a/b"),
            ("/a[/b][/c]", "/a[/b]"),
        ];
        for (s1, s2) in cases {
            let (p1, p2) = (q(s1), q(s2));
            assert_eq!(contains(&p1, &p2), contains_canonical(&p1, &p2), "mismatch on {s1} ⊆ {s2}");
        }
    }

    #[test]
    fn wildcard_output_queries() {
        assert!(contains(&q("/a/*"), &q("/a/*")));
        assert!(contains(&q("/a/b"), &q("/a/*")));
        assert!(!contains(&q("/a/*"), &q("/a/b")));
    }
}
