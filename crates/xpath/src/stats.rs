//! Process-global engine counters: how often admission went through the
//! full `eval_set` sweep vs the in-place splice, and how much dirty
//! document each splice touched.
//!
//! `xuc-xpath` sits below the telemetry crate in the dependency graph,
//! so it cannot hold registry handles; instead it bumps these plain
//! process-wide atomics (the same pattern as `xuc_xtree`'s
//! `preorder_walk_count`, but cross-thread — worker pools must
//! aggregate) and the service layer scrapes [`engine_counters`] into
//! the `MetricsRegistry` at snapshot points. Every counter is a pure
//! function of the evaluated stream — worker interleavings change the
//! order of increments, never the totals — so the scraped metrics are
//! classified deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static EVAL_SET_SWEEPS: AtomicU64 = AtomicU64::new(0);
pub(crate) static FALLBACK_PATTERN_EVALS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SPLICE_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SPLICE_COMMITS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SPLICE_DECLINED: AtomicU64 = AtomicU64::new(0);
pub(crate) static DIRTY_ROOTS_SWEPT: AtomicU64 = AtomicU64::new(0);
pub(crate) static DIRTY_NODES_SWEPT: AtomicU64 = AtomicU64::new(0);

pub(crate) fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of the engine's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCounters {
    /// Full pre-order `eval_set`/`eval_set_at` sweeps (includes the
    /// full-pass fallbacks a declined splice falls back to).
    pub eval_set_sweeps: u64,
    /// Per-pattern fallback evaluations for predicate patterns the set
    /// automaton could not compile.
    pub fallback_pattern_evals: u64,
    /// `eval_set_splice` calls.
    pub splice_attempts: u64,
    /// Splices that produced a journal (the edit-proportional path).
    pub splice_commits: u64,
    /// Splices that declined (predicate fallbacks, poisoned/stale
    /// region, width mismatch, or oversize dirty region) — the caller
    /// then pays a full sweep.
    pub splice_declined: u64,
    /// Dirty subtree roots re-driven by committed splices.
    pub dirty_roots_swept: u64,
    /// Total nodes inside those dirty subtrees (the splice's actual
    /// sweep volume — the thing that stays edit-proportional).
    pub dirty_nodes_swept: u64,
}

/// Reads all engine counters. Totals are process-lifetime; diff two
/// readings to scope a measurement.
pub fn engine_counters() -> EngineCounters {
    EngineCounters {
        eval_set_sweeps: EVAL_SET_SWEEPS.load(Ordering::Relaxed),
        fallback_pattern_evals: FALLBACK_PATTERN_EVALS.load(Ordering::Relaxed),
        splice_attempts: SPLICE_ATTEMPTS.load(Ordering::Relaxed),
        splice_commits: SPLICE_COMMITS.load(Ordering::Relaxed),
        splice_declined: SPLICE_DECLINED.load(Ordering::Relaxed),
        dirty_roots_swept: DIRTY_ROOTS_SWEPT.load(Ordering::Relaxed),
        dirty_nodes_swept: DIRTY_NODES_SWEPT.load(Ordering::Relaxed),
    }
}

impl EngineCounters {
    /// Counter deltas since `base` (taken with an earlier
    /// [`engine_counters`] call).
    pub fn since(&self, base: &EngineCounters) -> EngineCounters {
        EngineCounters {
            eval_set_sweeps: self.eval_set_sweeps - base.eval_set_sweeps,
            fallback_pattern_evals: self.fallback_pattern_evals - base.fallback_pattern_evals,
            splice_attempts: self.splice_attempts - base.splice_attempts,
            splice_commits: self.splice_commits - base.splice_commits,
            splice_declined: self.splice_declined - base.splice_declined,
            dirty_roots_swept: self.dirty_roots_swept - base.dirty_roots_swept,
            dirty_nodes_swept: self.dirty_nodes_swept - base.dirty_nodes_swept,
        }
    }
}
