//! Parser for the XPath fragment `XP{/,[],//,*}`.
//!
//! Accepts the grammar of Section 2 of the paper. Inside predicates we also
//! accept the paper's shorthand `[c]` for `[/c]` (used e.g. in Example 3.3's
//! constraint `(/a/b[c],↓)`).

use crate::pattern::{Axis, NodeTest, PIdx, Pattern, PatternBuilder};
use std::fmt;
use xuc_xtree::Label;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected character (or end of input) at byte offset.
    Unexpected { at: usize, found: Option<char>, expected: &'static str },
    /// Input after the query.
    Trailing { at: usize },
    /// The input was empty.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Unexpected { at, found: Some(c), expected } => {
                write!(f, "unexpected {c:?} at offset {at}, expected {expected}")
            }
            ParseError::Unexpected { at, found: None, expected } => {
                write!(f, "unexpected end of input at offset {at}, expected {expected}")
            }
            ParseError::Trailing { at } => write!(f, "trailing input at offset {at}"),
            ParseError::Empty => write!(f, "empty query"),
        }
    }
}

impl std::error::Error for ParseError {}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.pos).map(|&b| b as char)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses `/` or `//`; returns `None` when the next token is not a slash.
    fn axis(&mut self) -> Option<Axis> {
        self.skip_ws();
        if !self.eat('/') {
            return None;
        }
        if self.eat('/') {
            Some(Axis::Descendant)
        } else {
            Some(Axis::Child)
        }
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        self.skip_ws();
        if self.eat('*') {
            return Ok(NodeTest::Wildcard);
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '+')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseError::Unexpected {
                at: self.pos,
                found: self.peek(),
                expected: "a label or *",
            });
        }
        let name = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        Ok(NodeTest::Label(Label::new(name)))
    }

    /// Parses a chain of steps under `parent` (or the first step when
    /// `parent` is `None`), returning the index of the *last* step.
    fn path(
        &mut self,
        b: &mut Option<PatternBuilder>,
        parent: Option<PIdx>,
        allow_bare_first: bool,
    ) -> Result<PIdx, ParseError> {
        let mut current = parent;
        let mut last = None;
        let mut first = true;
        loop {
            self.skip_ws();
            let axis = match self.axis() {
                Some(a) => a,
                None if first
                    && allow_bare_first
                    && matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '*' || c == '_') =>
                {
                    // Shorthand `[c]` == `[/c]`.
                    Axis::Child
                }
                None if first => {
                    return Err(ParseError::Unexpected {
                        at: self.pos,
                        found: self.peek(),
                        expected: "'/' or '//'",
                    });
                }
                None => break,
            };
            let test = self.node_test()?;
            let idx = match (current, b.as_mut()) {
                (None, _) => {
                    let builder = PatternBuilder::new(axis, test);
                    let idx = builder.root();
                    *b = Some(builder);
                    idx
                }
                (Some(p), Some(builder)) => builder.add(p, axis, test),
                (Some(_), None) => unreachable!("builder created with first step"),
            };
            // Predicates.
            self.skip_ws();
            while self.eat('[') {
                self.path(b, Some(idx), true)?;
                self.skip_ws();
                if !self.eat(']') {
                    return Err(ParseError::Unexpected {
                        at: self.pos,
                        found: self.peek(),
                        expected: "']'",
                    });
                }
                self.skip_ws();
            }
            current = Some(idx);
            last = Some(idx);
            first = false;
        }
        last.ok_or(ParseError::Empty)
    }
}

/// Parses an XPath expression such as `/a//b[/c][//d/e]/f`.
///
/// ```
/// use xuc_xpath::parse;
/// let q = parse("/patient[/clinicalTrial]/visit").unwrap();
/// assert_eq!(q.to_string(), "/patient[/clinicalTrial]/visit");
/// assert_eq!(q.len(), 3);
/// ```
pub fn parse(src: &str) -> Result<Pattern, ParseError> {
    let mut p = P { src: src.as_bytes(), pos: 0 };
    p.skip_ws();
    if p.peek().is_none() {
        return Err(ParseError::Empty);
    }
    let mut builder = None;
    let output = p.path(&mut builder, None, false)?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(ParseError::Trailing { at: p.pos });
    }
    Ok(builder.expect("first step parsed").finish(output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Axis;

    #[test]
    fn linear_paths() {
        let q = parse("/a/b/c").unwrap();
        assert!(q.is_linear());
        assert_eq!(q.len(), 3);
        assert_eq!(q.to_string(), "/a/b/c");
    }

    #[test]
    fn descendant_and_wildcard() {
        let q = parse("//a/*//b").unwrap();
        assert_eq!(q.axis(q.root()), Axis::Descendant);
        assert_eq!(q.to_string(), "//a/*//b");
        assert_eq!(q.wildcard_count(), 1);
        assert_eq!(q.descendant_edge_count(), 2);
    }

    #[test]
    fn nested_predicates() {
        let q = parse("/a//b[/c[//d]]/e").unwrap();
        assert_eq!(q.to_string(), "/a//b[/c//d]/e");
        assert_eq!(q.len(), 5);
        assert_eq!(q.spine().len(), 3);
    }

    #[test]
    fn multiple_predicates_sorted_in_display() {
        let q = parse("/a[/y][/x]").unwrap();
        assert_eq!(q.to_string(), "/a[/x][/y]");
    }

    #[test]
    fn bare_predicate_shorthand() {
        let q = parse("/a/b[c]").unwrap();
        assert_eq!(q.to_string(), "/a/b[/c]");
    }

    #[test]
    fn paper_queries() {
        for (src, expect) in [
            ("/patient[/visit]", "/patient[/visit]"),
            ("/patient/visit", "/patient/visit"),
            ("//a//b//c", "//a//b//c"),
            ("/s[//m//m]//p[//q]", "/s[//m//m]//p[//q]"),
        ] {
            assert_eq!(parse(src).unwrap().to_string(), expect);
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let q = parse("  /a [ /b ] / c ").unwrap();
        assert_eq!(q.to_string(), "/a[/b]/c");
    }

    #[test]
    fn errors() {
        assert!(matches!(parse(""), Err(ParseError::Empty)));
        assert!(matches!(parse("a/b"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("/a["), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("/a[/b"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("/a]b"), Err(ParseError::Trailing { .. })));
        assert!(matches!(parse("/"), Err(ParseError::Unexpected { .. })));
    }

    #[test]
    fn output_is_last_spine_step() {
        let q = parse("/a/b[/c]/d").unwrap();
        let spine = q.spine();
        assert_eq!(q.output(), *spine.last().unwrap());
        assert_eq!(spine.len(), 3);
    }

    #[test]
    fn roundtrip_random_shapes() {
        for src in [
            "/a",
            "//a",
            "/*",
            "//*//*",
            "/a[/b][/c][//d]",
            "/a[/b[/c[/d]]]",
            "//x[/y]//z[/w[/v]]/u",
        ] {
            let q = parse(src).unwrap();
            let reparsed = parse(&q.to_string()).unwrap();
            assert_eq!(q.to_string(), reparsed.to_string(), "roundtrip failed for {src}");
        }
    }
}
