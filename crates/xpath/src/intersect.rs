//! Intersection of queries in `XP{/,[],*}`.
//!
//! The descendant-free fragment is closed under intersection, and the
//! intersection is computable in linear time (used by Theorem 4.4's PTIME
//! implication algorithm): the root-to-output spines must be *compatible* —
//! same length, and at each position either equal concrete labels or at
//! least one wildcard — and the merged query keeps, at each spine position,
//! the concrete label when one exists, with the union of both queries'
//! predicates.
//!
//! An incompatible spine means the intersection is the empty query, reported
//! as `None` (patterns in this crate are always satisfiable, so emptiness
//! needs an explicit representation).

use crate::pattern::{Axis, NodeTest, PIdx, Pattern, PatternBuilder};

/// Copies the predicate subtree rooted at `src_idx` of `src` under `parent`.
fn copy_subtree(src: &Pattern, src_idx: PIdx, b: &mut PatternBuilder, parent: PIdx) {
    let idx = b.add(parent, src.axis(src_idx), src.test(src_idx));
    for &c in src.children(src_idx) {
        copy_subtree(src, c, b, idx);
    }
}

/// Intersects two `XP{/,[],*}` queries. Returns `None` when the
/// intersection is empty (incompatible spines).
///
/// # Panics
/// Panics if either query uses the descendant axis — the fragment
/// `XP{/,[],//}` is *not* closed under intersection (Section 4.3).
pub fn intersect(q1: &Pattern, q2: &Pattern) -> Option<Pattern> {
    assert!(
        q1.descendant_edge_count() == 0 && q2.descendant_edge_count() == 0,
        "intersection is only defined for the descendant-free fragment XP{{/,[],*}}"
    );
    let s1 = q1.spine();
    let s2 = q2.spine();
    if s1.len() != s2.len() {
        return None;
    }
    let mut merged_tests = Vec::with_capacity(s1.len());
    for (&a, &b) in s1.iter().zip(&s2) {
        let t = match (q1.test(a), q2.test(b)) {
            (NodeTest::Label(l1), NodeTest::Label(l2)) if l1 == l2 => NodeTest::Label(l1),
            (NodeTest::Label(_), NodeTest::Label(_)) => return None,
            (NodeTest::Label(l), NodeTest::Wildcard) => NodeTest::Label(l),
            (NodeTest::Wildcard, NodeTest::Label(l)) => NodeTest::Label(l),
            (NodeTest::Wildcard, NodeTest::Wildcard) => NodeTest::Wildcard,
        };
        merged_tests.push(t);
    }

    let mut b = PatternBuilder::new(Axis::Child, merged_tests[0]);
    let mut spine_nodes = vec![b.root()];
    for &t in &merged_tests[1..] {
        let prev = *spine_nodes.last().expect("non-empty spine");
        spine_nodes.push(b.add(prev, Axis::Child, t));
    }
    for (pos, node) in spine_nodes.iter().enumerate() {
        for &p in &q1.predicate_children(s1[pos]) {
            copy_subtree(q1, p, &mut b, *node);
        }
        for &p in &q2.predicate_children(s2[pos]) {
            copy_subtree(q2, p, &mut b, *node);
        }
    }
    let output = *spine_nodes.last().expect("non-empty spine");
    Some(b.finish(output))
}

/// Intersects a non-empty family of `XP{/,[],*}` queries left to right.
pub fn intersect_all<'a>(qs: impl IntoIterator<Item = &'a Pattern>) -> Option<Pattern> {
    let mut iter = qs.into_iter();
    let first = iter.next().expect("at least one query required").normalized();
    iter.try_fold(first, |acc, q| intersect(&acc, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use crate::eval::eval;
    use crate::parser::parse;
    use xuc_xtree::parse_term;

    fn q(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    #[test]
    fn merge_labels_and_wildcards() {
        let r = intersect(&q("/a/*"), &q("/*/b")).unwrap();
        assert_eq!(r.to_string(), "/a/b");
    }

    #[test]
    fn incompatible_labels_empty() {
        assert!(intersect(&q("/a"), &q("/b")).is_none());
        assert!(intersect(&q("/a/b"), &q("/a")).is_none());
    }

    #[test]
    fn predicates_union() {
        let r = intersect(&q("/a[/x]"), &q("/a[/y]")).unwrap();
        assert_eq!(r.to_string(), "/a[/x][/y]");
    }

    #[test]
    fn deep_predicates_copied() {
        let r = intersect(&q("/a[/x[/w]]/b"), &q("/a/b[/y]")).unwrap();
        assert_eq!(r.to_string(), "/a[/x/w]/b[/y]");
    }

    #[test]
    fn intersection_semantics_on_trees() {
        // q1(t) ∩ q2(t) == (q1 ∩ q2)(t) on a concrete tree.
        let t = parse_term("root(a#1(x#2,y#3),a#4(x#5),a#6(y#7))").unwrap();
        let q1 = q("/a[/x]");
        let q2 = q("/a[/y]");
        let qi = intersect(&q1, &q2).unwrap();
        let lhs: Vec<u64> = eval(&qi, &t).iter().map(|n| n.id.raw()).collect();
        let r1 = eval(&q1, &t);
        let r2 = eval(&q2, &t);
        let rhs: Vec<u64> = r1.intersection(&r2).map(|n| n.id.raw()).collect();
        assert_eq!(lhs, rhs);
        assert_eq!(lhs, vec![1]);
    }

    #[test]
    fn intersect_all_family() {
        let qs = [q("/a[/x]"), q("/a[/y]"), q("/*[/w]")];
        let r = intersect_all(&qs).unwrap();
        assert_eq!(r.to_string(), "/a[/w][/x][/y]");
    }

    #[test]
    fn intersection_contained_in_both() {
        let q1 = q("/a[/x]/b");
        let q2 = q("/*[/y]/b[/c]");
        let r = intersect(&q1, &q2).unwrap();
        assert!(crate::containment::contains(&r, &q1));
        assert!(crate::containment::contains(&r, &q2));
    }

    #[test]
    fn idempotent() {
        let p = q("/a[/b]/c");
        let r = intersect(&p, &p).unwrap();
        assert!(equivalent(&r, &p));
    }

    #[test]
    #[should_panic(expected = "descendant-free")]
    fn descendant_rejected() {
        let _ = intersect(&q("/a//b"), &q("/a/b"));
    }
}
