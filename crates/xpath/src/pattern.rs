//! The tree-pattern AST.
//!
//! A [`Pattern`] is an arena of nodes. Every node has an incoming **axis**
//! (`/` child or `//` descendant — the edge connecting it to its parent, or
//! to the *document root* for the pattern's first step) and a **node test**
//! (a concrete label or the wildcard `*`). One node is the distinguished
//! **output**; the path from the pattern root to the output is the *spine*,
//! and all other branches are *predicates*.
//!
//! Following the paper, predicates cannot be attached to the document root
//! itself: the top level of a pattern is a single chain of spine steps, each
//! of which may carry predicate subtrees.

use std::fmt;
use xuc_xtree::Label;

/// Index of a node inside a [`Pattern`] arena.
pub type PIdx = usize;

/// The axis of the edge entering a pattern node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `/` — child.
    Child,
    /// `//` — (proper) descendant.
    Descendant,
}

/// A node test: a concrete label or the wildcard `*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeTest {
    Label(Label),
    Wildcard,
}

impl NodeTest {
    /// Does a concrete tree label satisfy this test?
    pub fn accepts(self, label: Label) -> bool {
        match self {
            NodeTest::Label(l) => l == label,
            NodeTest::Wildcard => true,
        }
    }

    /// Is this the wildcard test?
    pub fn is_wildcard(self) -> bool {
        matches!(self, NodeTest::Wildcard)
    }
}

impl From<Label> for NodeTest {
    fn from(l: Label) -> Self {
        NodeTest::Label(l)
    }
}

impl From<&str> for NodeTest {
    fn from(s: &str) -> Self {
        if s == "*" {
            NodeTest::Wildcard
        } else {
            NodeTest::Label(Label::new(s))
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PNode {
    pub axis: Axis,
    pub test: NodeTest,
    pub parent: Option<PIdx>,
    pub children: Vec<PIdx>,
}

/// A unary tree-pattern query in `XP{/,[],//,*}`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    pub(crate) nodes: Vec<PNode>,
    pub(crate) root: PIdx,
    pub(crate) output: PIdx,
}

/// Incremental builder for [`Pattern`]s, used by generators and tests.
///
/// ```
/// use xuc_xpath::{Axis, NodeTest, PatternBuilder};
/// let mut b = PatternBuilder::new(Axis::Child, "a");
/// let spine_b = b.add(b.root(), Axis::Descendant, "b");
/// b.add(spine_b, Axis::Child, "c"); // predicate [/c] unless chosen as output
/// let q = b.finish(spine_b);
/// assert_eq!(q.to_string(), "/a//b[/c]");
/// ```
pub struct PatternBuilder {
    nodes: Vec<PNode>,
    root: PIdx,
}

impl PatternBuilder {
    /// Starts a pattern with its first step (attached to the document root).
    pub fn new(axis: Axis, test: impl Into<NodeTest>) -> Self {
        PatternBuilder {
            nodes: vec![PNode { axis, test: test.into(), parent: None, children: Vec::new() }],
            root: 0,
        }
    }

    /// The first step's index.
    pub fn root(&self) -> PIdx {
        self.root
    }

    /// Adds a node under `parent` and returns its index.
    pub fn add(&mut self, parent: PIdx, axis: Axis, test: impl Into<NodeTest>) -> PIdx {
        assert!(parent < self.nodes.len(), "parent index out of range");
        let idx = self.nodes.len();
        self.nodes.push(PNode {
            axis,
            test: test.into(),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Finishes the pattern, designating `output` as the distinguished node.
    pub fn finish(self, output: PIdx) -> Pattern {
        assert!(output < self.nodes.len(), "output index out of range");
        Pattern { nodes: self.nodes, root: self.root, output }
    }
}

impl Pattern {
    /// Parses an XPath expression; convenience for [`crate::parser::parse`].
    pub fn parse(src: &str) -> Result<Pattern, crate::parser::ParseError> {
        crate::parser::parse(src)
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Patterns always have at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the first step.
    pub fn root(&self) -> PIdx {
        self.root
    }

    /// Index of the distinguished output node.
    pub fn output(&self) -> PIdx {
        self.output
    }

    /// The incoming axis of node `i`.
    pub fn axis(&self, i: PIdx) -> Axis {
        self.nodes[i].axis
    }

    /// The node test of node `i`.
    pub fn test(&self, i: PIdx) -> NodeTest {
        self.nodes[i].test
    }

    /// The parent of node `i` (`None` for the first step).
    pub fn parent(&self, i: PIdx) -> Option<PIdx> {
        self.nodes[i].parent
    }

    /// All children (spine continuation and predicates alike) of node `i`.
    pub fn children(&self, i: PIdx) -> &[PIdx] {
        &self.nodes[i].children
    }

    /// The spine: indices from the first step to the output, inclusive.
    pub fn spine(&self) -> Vec<PIdx> {
        let mut path = vec![self.output];
        let mut cur = self.output;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Is `i` on the spine?
    pub fn on_spine(&self, i: PIdx) -> bool {
        let mut cur = self.output;
        loop {
            if cur == i {
                return true;
            }
            match self.nodes[cur].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Predicate children of `i`: children that are not the next spine node.
    pub fn predicate_children(&self, i: PIdx) -> Vec<PIdx> {
        let spine = self.spine();
        let next_on_spine =
            spine.iter().position(|&s| s == i).and_then(|pos| spine.get(pos + 1).copied());
        self.nodes[i].children.iter().copied().filter(|&c| Some(c) != next_on_spine).collect()
    }

    /// All node indices in depth-first (pre-order) order from the root.
    pub fn dfs(&self) -> Vec<PIdx> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            out.push(i);
            for &c in self.nodes[i].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Node indices in post-order (children before parents).
    pub fn post_order(&self) -> Vec<PIdx> {
        fn rec(p: &Pattern, i: PIdx, out: &mut Vec<PIdx>) {
            for &c in &p.nodes[i].children {
                rec(p, c, out);
            }
            out.push(i);
        }
        let mut out = Vec::with_capacity(self.nodes.len());
        rec(self, self.root, &mut out);
        out
    }

    /// Is the output node labeled by a concrete label (a *concrete path* in
    /// the paper's terminology)?
    pub fn is_concrete(&self) -> bool {
        !self.nodes[self.output].test.is_wildcard()
    }

    /// The output node's test.
    pub fn output_test(&self) -> NodeTest {
        self.nodes[self.output].test
    }

    /// Number of descendant (`//`) edges in the pattern.
    pub fn descendant_edge_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.axis == Axis::Descendant).count()
    }

    /// Number of wildcard nodes in the pattern.
    pub fn wildcard_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.test.is_wildcard()).count()
    }

    /// The *star length*: the maximal length of a chain of wildcard nodes
    /// connected by child (`/`) edges (Miklau–Suciu). Used to bound
    /// canonical-model `//`-expansions and the pruning steps of
    /// Theorems 4.7 and 5.1.
    pub fn star_length(&self) -> usize {
        let mut best = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.test.is_wildcard() {
                continue;
            }
            // Count the chain of wildcard `/`-ancestors ending at i.
            let mut len = 1;
            let mut cur = i;
            while self.nodes[cur].axis == Axis::Child {
                match self.nodes[cur].parent {
                    Some(p) if self.nodes[p].test.is_wildcard() => {
                        len += 1;
                        cur = p;
                    }
                    _ => break,
                }
            }
            best = best.max(len);
        }
        best
    }

    /// Distinct concrete labels mentioned in the pattern.
    pub fn labels(&self) -> Vec<Label> {
        let mut set = std::collections::BTreeSet::new();
        for n in &self.nodes {
            if let NodeTest::Label(l) = n.test {
                set.insert(l);
            }
        }
        set.into_iter().collect()
    }

    /// True iff the pattern is *linear*: no predicates (every node has at
    /// most one child), i.e. the query lies in `XP{/,//,*}`.
    pub fn is_linear(&self) -> bool {
        self.nodes.iter().all(|n| n.children.len() <= 1) && {
            // A linear pattern's single chain must end at the output.
            let spine = self.spine();
            spine.len() == self.nodes.len()
        }
    }

    /// For linear patterns: the sequence of `(axis, test)` steps from the
    /// root to the output. Returns `None` when the pattern has predicates.
    pub fn linear_steps(&self) -> Option<Vec<(Axis, NodeTest)>> {
        if !self.is_linear() {
            return None;
        }
        Some(self.spine().into_iter().map(|i| (self.axis(i), self.test(i))).collect())
    }

    /// The boolean version of the subpattern rooted at `i` (output
    /// irrelevant; used for annotations and sub-pattern reasoning).
    pub fn subpattern(&self, i: PIdx) -> Pattern {
        fn rec(src: &Pattern, i: PIdx, b: &mut PatternBuilder, parent: Option<PIdx>) -> PIdx {
            let idx = match parent {
                None => b.root(),
                Some(p) => b.add(p, src.axis(i), src.test(i)),
            };
            for &c in src.children(i) {
                rec(src, c, b, Some(idx));
            }
            idx
        }
        let mut b = PatternBuilder::new(self.axis(i), self.test(i));
        let root = rec(self, i, &mut b, None);
        // Keep the deepest copied node as output placeholder — callers of
        // `subpattern` use it as a boolean query, so the choice is benign;
        // we use the copied root for determinism.
        b.finish(root)
    }

    /// A deep structural clone with freshly compacted indices.
    pub fn normalized(&self) -> Pattern {
        fn rec(
            src: &Pattern,
            i: PIdx,
            b: &mut PatternBuilder,
            parent: Option<PIdx>,
            map: &mut Vec<(PIdx, PIdx)>,
        ) {
            let idx = match parent {
                None => b.root(),
                Some(p) => b.add(p, src.axis(i), src.test(i)),
            };
            map.push((i, idx));
            for &c in src.children(i) {
                rec(src, c, b, Some(idx), map);
            }
        }
        let mut b = PatternBuilder::new(self.axis(self.root), self.test(self.root));
        let mut map = Vec::new();
        rec(self, self.root, &mut b, None, &mut map);
        let output = map
            .iter()
            .find(|(old, _)| *old == self.output)
            .map(|(_, new)| *new)
            .expect("output visited");
        b.finish(output)
    }
}

impl fmt::Display for Pattern {
    /// Renders the pattern back into XPath syntax, predicates in canonical
    /// (sorted) order so equal patterns print equally.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn render_node(p: &Pattern, i: PIdx, spine_next: Option<PIdx>, out: &mut String) {
            out.push_str(match p.axis(i) {
                Axis::Child => "/",
                Axis::Descendant => "//",
            });
            match p.test(i) {
                NodeTest::Label(l) => out.push_str(l.as_str()),
                NodeTest::Wildcard => out.push('*'),
            }
            let mut preds: Vec<String> = p
                .children(i)
                .iter()
                .copied()
                .filter(|&c| Some(c) != spine_next)
                .map(|c| {
                    let mut s = String::new();
                    render_subtree(p, c, &mut s);
                    s
                })
                .collect();
            preds.sort();
            for pred in preds {
                out.push('[');
                out.push_str(&pred);
                out.push(']');
            }
        }
        fn render_subtree(p: &Pattern, i: PIdx, out: &mut String) {
            // A predicate node with a single child renders as a path chain
            // (`//m//m`); with several children, all become brackets
            // (`//m[//x][//y]`). Both forms denote the same boolean pattern.
            out.push_str(match p.axis(i) {
                Axis::Child => "/",
                Axis::Descendant => "//",
            });
            match p.test(i) {
                NodeTest::Label(l) => out.push_str(l.as_str()),
                NodeTest::Wildcard => out.push('*'),
            }
            match p.children(i) {
                [only] => render_subtree(p, *only, out),
                kids => {
                    let mut preds: Vec<String> = kids
                        .iter()
                        .map(|&c| {
                            let mut s = String::new();
                            render_subtree(p, c, &mut s);
                            s
                        })
                        .collect();
                    preds.sort();
                    for pred in preds {
                        out.push('[');
                        out.push_str(&pred);
                        out.push(']');
                    }
                }
            }
        }
        let spine = self.spine();
        let mut s = String::new();
        for (pos, &i) in spine.iter().enumerate() {
            render_node(self, i, spine.get(pos + 1).copied(), &mut s);
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Pattern {
        // /a//b[/c]
        let mut b = PatternBuilder::new(Axis::Child, "a");
        let nb = b.add(b.root(), Axis::Descendant, "b");
        b.add(nb, Axis::Child, "c");
        b.finish(nb)
    }

    #[test]
    fn builder_and_accessors() {
        let q = simple();
        assert_eq!(q.len(), 3);
        assert_eq!(q.axis(q.root()), Axis::Child);
        assert_eq!(q.test(q.root()), NodeTest::Label(Label::new("a")));
        assert_eq!(q.spine().len(), 2);
        assert!(q.is_concrete());
        assert!(!q.is_linear());
    }

    #[test]
    fn display_roundtrip() {
        let q = simple();
        assert_eq!(q.to_string(), "/a//b[/c]");
    }

    #[test]
    fn predicate_children_excludes_spine() {
        let q = simple();
        let spine = q.spine();
        assert!(q.predicate_children(spine[0]).is_empty());
        assert_eq!(q.predicate_children(spine[1]).len(), 1);
    }

    #[test]
    fn linear_detection() {
        let mut b = PatternBuilder::new(Axis::Child, "a");
        let n2 = b.add(b.root(), Axis::Descendant, "*");
        let n3 = b.add(n2, Axis::Child, "b");
        let q = b.finish(n3);
        assert!(q.is_linear());
        let steps = q.linear_steps().unwrap();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[1], (Axis::Descendant, NodeTest::Wildcard));
    }

    #[test]
    fn linear_requires_output_at_end() {
        // /a/b with output on a: the chain continues past the output, which
        // makes the "spine == all nodes" condition fail.
        let mut b = PatternBuilder::new(Axis::Child, "a");
        b.add(b.root(), Axis::Child, "b");
        let q = b.finish(0);
        assert!(!q.is_linear());
    }

    #[test]
    fn star_length_chains() {
        // /*/*/a//*: star chain of length 2 at front, 1 at back.
        let mut b = PatternBuilder::new(Axis::Child, "*");
        let n2 = b.add(b.root(), Axis::Child, "*");
        let n3 = b.add(n2, Axis::Child, "a");
        let n4 = b.add(n3, Axis::Descendant, "*");
        let q = b.finish(n4);
        assert_eq!(q.star_length(), 2);
        assert_eq!(q.wildcard_count(), 3);
        assert_eq!(q.descendant_edge_count(), 1);
    }

    #[test]
    fn counts_and_labels() {
        let q = simple();
        assert_eq!(q.descendant_edge_count(), 1);
        assert_eq!(q.wildcard_count(), 0);
        let labels: Vec<&str> = q.labels().iter().map(|l| l.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn normalized_preserves_display() {
        let q = simple();
        let n = q.normalized();
        assert_eq!(q.to_string(), n.to_string());
        assert_eq!(n.output(), n.spine()[n.spine().len() - 1]);
    }

    #[test]
    fn post_order_visits_children_first() {
        let q = simple();
        let order = q.post_order();
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), q.root());
    }
}
