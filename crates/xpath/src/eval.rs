//! PTIME evaluation of tree patterns on data trees.
//!
//! The evaluation of `XP{/,[],//,*}` queries is polynomial (Gottlob, Koch,
//! Pichler, Segoufin \[18\]); we use the standard two-phase algorithm,
//! implemented by the reusable bitset engine in [`crate::engine`] — the
//! free functions here are thin cold-path wrappers that build a throwaway
//! [`Evaluator`] per call:
//!
//! 1. **Bottom-up**: for every pattern node `p` and tree node `v`, decide
//!    whether the subpattern rooted at `p` matches with `p ↦ v`
//!    (label test + recursively matched children through the right axis).
//! 2. **Top-down**: walk the spine from the evaluation start node, keeping
//!    the frontier of tree nodes that match the spine prefix; the frontier
//!    at the output node is the query result.
//!
//! Results are sets of `(id, label)` pairs ([`NodeRef`]), matching the
//! paper's convention that a query returns *nodes*, not labels.

use crate::engine::Evaluator;
use crate::pattern::Pattern;
use std::collections::BTreeSet;
use xuc_xtree::{DataTree, NodeId, NodeRef};

/// Evaluates `q` from the document root: `q(I)` in the paper's notation.
///
/// This is the *cold* entry point: it snapshots `tree` on every call.
/// Callers evaluating several patterns against the same tree should build
/// one [`Evaluator`] and amortize the snapshot across the batch.
pub fn eval(q: &Pattern, tree: &DataTree) -> BTreeSet<NodeRef> {
    Evaluator::new(tree).eval(q)
}

/// Evaluates `q` on the subtree of `tree` rooted at `start`:
/// `q(n, I)` in the paper's notation. Cold path; see [`eval`].
///
/// # Panics
/// Panics if `start` is not a node of `tree`.
pub fn eval_at(q: &Pattern, tree: &DataTree, start: NodeId) -> BTreeSet<NodeRef> {
    Evaluator::new(tree).eval_at(q, start)
}

/// Does `q`, read as a boolean query, hold below `start`
/// (i.e. is `q(start, tree)` non-empty)? Cold path; see [`eval`].
pub fn holds_below(q: &Pattern, tree: &DataTree, start: NodeId) -> bool {
    Evaluator::new(tree).holds_below(q, start)
}

/// The set of node ids in `q(tree)`. Cold-path convenience; callers with
/// a live [`Evaluator`] should use [`Evaluator::eval_ids`] instead.
pub fn eval_ids(q: &Pattern, tree: &DataTree) -> BTreeSet<NodeId> {
    Evaluator::new(tree).eval_ids(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xuc_xtree::parse_term;

    fn ids(set: &BTreeSet<NodeRef>) -> Vec<u64> {
        set.iter().map(|n| n.id.raw()).collect()
    }

    #[test]
    fn child_axis_basic() {
        let t = parse_term("root(a#1(b#2),a#3,c#4(a#5))").unwrap();
        let q = parse("/a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1, 3]);
    }

    #[test]
    fn descendant_axis_basic() {
        let t = parse_term("root(a#1(b#2),a#3,c#4(a#5))").unwrap();
        let q = parse("//a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1, 3, 5]);
    }

    #[test]
    fn predicate_filters() {
        let t = parse_term("root(a#1(b#2),a#3)").unwrap();
        let q = parse("/a[/b]").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1]);
    }

    #[test]
    fn paper_example_query() {
        // /a//b[/c]: b nodes with a c child and an a ancestor that is a
        // child of the document root.
        let t = parse_term("root(a#1(x#2(b#3(c#4)),b#5),b#6(c#7))").unwrap();
        let q = parse("/a//b[/c]").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![3]);
    }

    #[test]
    fn wildcard_steps() {
        let t = parse_term("root(a#1(b#2),c#3(d#4))").unwrap();
        let q = parse("/*/*").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2, 4]);
    }

    #[test]
    fn descendant_is_proper() {
        // //a from the root must not return the root even if labeled a.
        let t = parse_term("a#1(a#2)").unwrap();
        let q = parse("//a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2]);
    }

    #[test]
    fn eval_at_subtree() {
        let t = parse_term("root(a#1(b#2(c#3)),b#4(c#5))").unwrap();
        let q = parse("/b/c").unwrap();
        assert_eq!(ids(&eval_at(&q, &t, xuc_xtree::NodeId::from_raw(1))), vec![3]);
        assert_eq!(ids(&eval(&q, &t)), vec![5]);
    }

    #[test]
    fn nested_predicates() {
        let t = parse_term("root(a#1(b#2(c#3(d#4))),a#5(b#6(c#7)))").unwrap();
        let q = parse("/a[/b[/c[/d]]]").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1]);
    }

    #[test]
    fn spine_with_mid_predicates() {
        let t = parse_term("root(a#1(b#2,v#3),a#4(b#5))").unwrap();
        let q = parse("/a[/v]/b").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2]);
    }

    #[test]
    fn empty_result() {
        let t = parse_term("root(a#1)").unwrap();
        let q = parse("/b").unwrap();
        assert!(eval(&q, &t).is_empty());
        assert!(!holds_below(&q, &t, t.root_id()));
    }

    #[test]
    fn deep_descendant_chain() {
        let t = parse_term("r(a#1(a#2(a#3(a#4))))").unwrap();
        let q = parse("//a//a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2, 3, 4]);
    }

    #[test]
    fn result_includes_labels() {
        let t = parse_term("root(a#1)").unwrap();
        let q = parse("/a").unwrap();
        let result = eval(&q, &t);
        let n = result.iter().next().unwrap();
        assert_eq!(n.label.as_str(), "a");
    }
}
