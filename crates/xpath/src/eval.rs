//! PTIME evaluation of tree patterns on data trees.
//!
//! The evaluation of `XP{/,[],//,*}` queries is polynomial (Gottlob, Koch,
//! Pichler, Segoufin [18]); we use the standard two-phase algorithm:
//!
//! 1. **Bottom-up**: for every pattern node `p` and tree node `v`, decide
//!    whether the subpattern rooted at `p` matches with `p ↦ v`
//!    (label test + recursively matched children through the right axis).
//! 2. **Top-down**: walk the spine from the evaluation start node, keeping
//!    the frontier of tree nodes that match the spine prefix; the frontier
//!    at the output node is the query result.
//!
//! Results are sets of `(id, label)` pairs ([`NodeRef`]), matching the
//! paper's convention that a query returns *nodes*, not labels.

use crate::pattern::{Axis, Pattern};
use std::collections::BTreeSet;
use xuc_xtree::{DataTree, NodeId, NodeRef};

/// A dense snapshot of a tree used for evaluation.
struct Dense {
    ids: Vec<NodeId>,
    labels: Vec<xuc_xtree::Label>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Pre-order (parents before children).
    order: Vec<usize>,
    index_of: std::collections::HashMap<NodeId, usize>,
}

impl Dense {
    fn build(tree: &DataTree) -> Dense {
        let nodes = tree.nodes();
        let mut index_of = std::collections::HashMap::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            index_of.insert(n.id, i);
        }
        let mut parent = vec![None; nodes.len()];
        let mut children = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            if let Some(p) = tree.parent(n.id).expect("live node") {
                let pi = index_of[&p];
                parent[i] = Some(pi);
                children[pi].push(i);
            }
        }
        // `DataTree::nodes` returns depth-first order with parents first.
        let order = (0..nodes.len()).collect();
        Dense {
            ids: nodes.iter().map(|n| n.id).collect(),
            labels: nodes.iter().map(|n| n.label).collect(),
            parent,
            children,
            order,
            index_of,
        }
    }
}

/// Evaluates `q` from the document root: `q(I)` in the paper's notation.
pub fn eval(q: &Pattern, tree: &DataTree) -> BTreeSet<NodeRef> {
    eval_at(q, tree, tree.root_id())
}

/// Evaluates `q` on the subtree of `tree` rooted at `start`:
/// `q(n, I)` in the paper's notation.
///
/// # Panics
/// Panics if `start` is not a node of `tree`.
pub fn eval_at(q: &Pattern, tree: &DataTree, start: NodeId) -> BTreeSet<NodeRef> {
    let dense = Dense::build(tree);
    let start_idx = *dense
        .index_of
        .get(&start)
        .unwrap_or_else(|| panic!("start node {start} not in tree"));
    let n = dense.ids.len();

    // Phase 1: bottom-up subpattern satisfaction.
    // sat[p][v] = subpattern rooted at pattern node p matches with p ↦ v.
    let mut sat: Vec<Vec<bool>> = vec![vec![false; n]; q.len()];
    for p in q.post_order() {
        // For each child c, precompute desc_ok[v] = some proper descendant
        // of v satisfies c (only needed for descendant-axis children).
        let mut child_reqs: Vec<(Axis, &Vec<bool>, Vec<bool>)> = Vec::new();
        for &c in q.children(p) {
            let desc_ok = if q.axis(c) == Axis::Descendant {
                let mut desc = vec![false; n];
                for &v in dense.order.iter().rev() {
                    let mut any = false;
                    for &w in &dense.children[v] {
                        if sat[c][w] || desc[w] {
                            any = true;
                            break;
                        }
                    }
                    desc[v] = any;
                }
                desc
            } else {
                Vec::new()
            };
            child_reqs.push((q.axis(c), &sat[c], desc_ok));
        }
        let mut row = vec![false; n];
        'node: for v in 0..n {
            if !q.test(p).accepts(dense.labels[v]) {
                continue;
            }
            for (axis, child_sat, desc_ok) in &child_reqs {
                let ok = match axis {
                    Axis::Child => dense.children[v].iter().any(|&w| child_sat[w]),
                    Axis::Descendant => desc_ok[v],
                };
                if !ok {
                    continue 'node;
                }
            }
            row[v] = true;
        }
        sat[p] = row;
    }

    // Phase 2: top-down along the spine from `start`.
    let mut frontier = vec![false; n];
    frontier[start_idx] = true;
    for p in q.spine() {
        let mut next = vec![false; n];
        match q.axis(p) {
            Axis::Child => {
                for v in 0..n {
                    if sat[p][v] {
                        if let Some(pv) = dense.parent[v] {
                            if frontier[pv] {
                                next[v] = true;
                            }
                        }
                    }
                }
            }
            Axis::Descendant => {
                // has_frontier_proper_ancestor via pre-order propagation.
                let mut hfa = vec![false; n];
                for &v in &dense.order {
                    if let Some(pv) = dense.parent[v] {
                        hfa[v] = frontier[pv] || hfa[pv];
                    }
                }
                for v in 0..n {
                    if sat[p][v] && hfa[v] {
                        next[v] = true;
                    }
                }
            }
        }
        frontier = next;
    }

    (0..n)
        .filter(|&v| frontier[v])
        .map(|v| NodeRef { id: dense.ids[v], label: dense.labels[v] })
        .collect()
}

/// Does `q`, read as a boolean query, hold below `start`
/// (i.e. is `q(start, tree)` non-empty)?
pub fn holds_below(q: &Pattern, tree: &DataTree, start: NodeId) -> bool {
    !eval_at(q, tree, start).is_empty()
}

/// The set of node ids in `q(tree)`; convenience wrapper used by the
/// constraints layer, which compares ranges by id set.
pub fn eval_ids(q: &Pattern, tree: &DataTree) -> BTreeSet<NodeId> {
    eval(q, tree).into_iter().map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xuc_xtree::parse_term;

    fn ids(set: &BTreeSet<NodeRef>) -> Vec<u64> {
        set.iter().map(|n| n.id.raw()).collect()
    }

    #[test]
    fn child_axis_basic() {
        let t = parse_term("root(a#1(b#2),a#3,c#4(a#5))").unwrap();
        let q = parse("/a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1, 3]);
    }

    #[test]
    fn descendant_axis_basic() {
        let t = parse_term("root(a#1(b#2),a#3,c#4(a#5))").unwrap();
        let q = parse("//a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1, 3, 5]);
    }

    #[test]
    fn predicate_filters() {
        let t = parse_term("root(a#1(b#2),a#3)").unwrap();
        let q = parse("/a[/b]").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1]);
    }

    #[test]
    fn paper_example_query() {
        // /a//b[/c]: b nodes with a c child and an a ancestor that is a
        // child of the document root.
        let t = parse_term("root(a#1(x#2(b#3(c#4)),b#5),b#6(c#7))").unwrap();
        let q = parse("/a//b[/c]").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![3]);
    }

    #[test]
    fn wildcard_steps() {
        let t = parse_term("root(a#1(b#2),c#3(d#4))").unwrap();
        let q = parse("/*/*").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2, 4]);
    }

    #[test]
    fn descendant_is_proper() {
        // //a from the root must not return the root even if labeled a.
        let t = parse_term("a#1(a#2)").unwrap();
        let q = parse("//a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2]);
    }

    #[test]
    fn eval_at_subtree() {
        let t = parse_term("root(a#1(b#2(c#3)),b#4(c#5))").unwrap();
        let q = parse("/b/c").unwrap();
        assert_eq!(ids(&eval_at(&q, &t, xuc_xtree::NodeId::from_raw(1))), vec![3]);
        assert_eq!(ids(&eval(&q, &t)), vec![5]);
    }

    #[test]
    fn nested_predicates() {
        let t = parse_term("root(a#1(b#2(c#3(d#4))),a#5(b#6(c#7)))").unwrap();
        let q = parse("/a[/b[/c[/d]]]").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![1]);
    }

    #[test]
    fn spine_with_mid_predicates() {
        let t = parse_term("root(a#1(b#2,v#3),a#4(b#5))").unwrap();
        let q = parse("/a[/v]/b").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2]);
    }

    #[test]
    fn empty_result() {
        let t = parse_term("root(a#1)").unwrap();
        let q = parse("/b").unwrap();
        assert!(eval(&q, &t).is_empty());
        assert!(!holds_below(&q, &t, t.root_id()));
    }

    #[test]
    fn deep_descendant_chain() {
        let t = parse_term("r(a#1(a#2(a#3(a#4))))").unwrap();
        let q = parse("//a//a").unwrap();
        assert_eq!(ids(&eval(&q, &t)), vec![2, 3, 4]);
    }

    #[test]
    fn result_includes_labels() {
        let t = parse_term("root(a#1)").unwrap();
        let q = parse("/a").unwrap();
        let result = eval(&q, &t);
        let n = result.iter().next().unwrap();
        assert_eq!(n.label.as_str(), "a");
    }
}
