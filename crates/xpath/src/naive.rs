//! A naive, embedding-enumeration evaluator.
//!
//! Exponential in the worst case and kept deliberately simple: it serves as
//! the *test oracle* against which the PTIME evaluator of [`crate::eval`](mod@crate::eval)
//! is property-checked.

use crate::pattern::{Axis, PIdx, Pattern};
use std::collections::BTreeSet;
use xuc_xtree::{DataTree, NodeId, NodeRef};

/// Does the subpattern rooted at `p` match with `p ↦ v`?
fn matches_sub(q: &Pattern, p: PIdx, tree: &DataTree, v: NodeId) -> bool {
    if !q.test(p).accepts(tree.label(v).expect("live node")) {
        return false;
    }
    q.children(p).iter().all(|&c| match q.axis(c) {
        // The child axis walks the sibling chain directly — no per-node
        // candidate Vec on the recursion's hot path.
        Axis::Child => {
            tree.children_iter(v).expect("live node").any(|w| matches_sub(q, c, tree, w))
        }
        Axis::Descendant => descendants(tree, v).iter().any(|&w| matches_sub(q, c, tree, w)),
    })
}

/// Strict descendants of `v` (one allocation for the result; the work
/// stack reuses it implicitly by pushing children as they are emitted).
fn descendants(tree: &DataTree, v: NodeId) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = tree.children_iter(v).expect("live node").collect();
    let mut i = 0;
    while i < out.len() {
        let w = out[i];
        i += 1;
        tree.for_each_child(w, |n| out.push(n.id)).expect("live node");
    }
    out
}

/// Naive evaluation of `q` on the subtree rooted at `start`.
pub fn eval_at(q: &Pattern, tree: &DataTree, start: NodeId) -> BTreeSet<NodeRef> {
    let spine = q.spine();
    let mut frontier: Vec<NodeId> = vec![start];
    for &p in &spine {
        let mut next = Vec::new();
        for &v in &frontier {
            // The spine node must satisfy its own test and predicates
            // *and* (for non-output spine nodes) the rest of the spine,
            // which the next iterations check; here we check the full
            // subpattern so interior failures prune early.
            match q.axis(p) {
                Axis::Child => {
                    for w in tree.children_iter(v).expect("live node") {
                        if matches_sub(q, p, tree, w) {
                            next.push(w);
                        }
                    }
                }
                Axis::Descendant => {
                    for w in descendants(tree, v) {
                        if matches_sub(q, p, tree, w) {
                            next.push(w);
                        }
                    }
                }
            }
        }
        next.sort();
        next.dedup();
        frontier = next;
    }
    frontier
        .into_iter()
        .map(|id| NodeRef { id, label: tree.label(id).expect("live node") })
        .collect()
}

/// Naive evaluation from the document root.
pub fn eval(q: &Pattern, tree: &DataTree) -> BTreeSet<NodeRef> {
    eval_at(q, tree, tree.root_id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xuc_xtree::parse_term;

    #[test]
    fn agrees_on_fixed_cases() {
        let t = parse_term("root(a#1(x#2(b#3(c#4)),b#5),b#6(c#7))").unwrap();
        for src in ["/a//b[/c]", "//b", "/a/*", "//*[/c]", "/a[//c]/b"] {
            let q = parse(src).unwrap();
            assert_eq!(eval(&q, &t), crate::eval::eval(&q, &t), "query {src}");
        }
    }
}
