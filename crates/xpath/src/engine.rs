//! The reusable bitset evaluation engine.
//!
//! [`crate::eval`](mod@crate::eval)'s two-phase algorithm is correct but rebuilds a dense
//! snapshot of the tree on *every* call and keeps its satisfaction matrices
//! as `Vec<Vec<bool>>`. The hot consumers — counterexample search, possible
//! embeddings, certain-facts trees — evaluate *many* patterns against the
//! *same* tree, so this module restructures the data layout around that
//! access pattern:
//!
//! * [`Evaluator::new`] builds the snapshot **once**: ids, labels, parent
//!   indices, children in CSR (compressed sparse row) form, all in pre-order
//!   (parents before children), plus a lazy per-label bitset cache.
//! * Satisfaction rows, descendant closures and spine frontiers are packed
//!   `u64` bitsets; the label test and per-child requirement conjunctions
//!   are word-wide AND sweeps, and sparse propagation steps (child→parent,
//!   frontier→children) skip zero words.
//! * [`Evaluator::eval_all`] amortizes one snapshot across a whole batch of
//!   patterns; [`Evaluator::eval_set`] goes one step further and runs a
//!   **set-at-a-time** pass: a whole batch compiled into one deterministic
//!   automaton (see [`PatternSetAutomaton`] — the compiler lives in
//!   `xuc_automata`) is driven over the snapshot **once**, labelling every
//!   node with its satisfied-pattern bitset row in a single pre-order
//!   sweep; [`Evaluator::refresh_after`] re-syncs after a mutation in
//!   time proportional to the edit (a relabel patches two bitset words, an
//!   id swap patches one index entry; only structural edits re-walk — and
//!   even those reuse every allocation, snapshot buffer and label-row
//!   cache included); [`Evaluator::refresh`] is the blunt full rebuild and
//!   the oracle `refresh_after` is tested against; [`Evaluator::invalidate`]
//!   is the guard rail that makes a forgotten refresh a loud panic instead
//!   of a silent wrong answer.
//!
//! The algorithm is exactly the one documented in [`crate::eval`](mod@crate::eval)
//! (Gottlob–Koch–Pichler–Segoufin two-phase evaluation); only the data
//! layout differs, and the property tests in `tests/prop.rs` pin the two
//! implementations (and the naive oracle) to each other.

use crate::pattern::{Axis, NodeTest, Pattern};
use std::collections::{BTreeSet, HashMap};
use xuc_xtree::{DataTree, DirtyRegion, EditScope, Label, NodeId, NodeRef};

const NO_PARENT: u32 = u32::MAX;

#[inline]
fn word_count(n: usize) -> usize {
    n.div_ceil(64)
}

#[inline]
fn set_bit(row: &mut [u64], i: usize) {
    row[i >> 6] |= 1u64 << (i & 63);
}

#[inline]
fn clear_bit(row: &mut [u64], i: usize) {
    row[i >> 6] &= !(1u64 << (i & 63));
}

#[inline]
fn get_bit(row: &[u64], i: usize) -> bool {
    row[i >> 6] & (1u64 << (i & 63)) != 0
}

#[inline]
fn and_assign(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

#[inline]
fn is_zero(row: &[u64]) -> bool {
    row.iter().all(|&w| w == 0)
}

/// Membership test over sorted, disjoint `(start, end)` pre-order ranges
/// (the dirty-subtree ranges of the delta/splice passes): binary search,
/// so per-member checks stay O(log ranges) however many baseline members
/// are scanned.
fn in_ranges_fn(ranges: &[(usize, usize)]) -> impl Fn(usize) -> bool + '_ {
    move |idx: usize| {
        let p = ranges.partition_point(|&(s, _)| s <= idx);
        p > 0 && idx < ranges[p - 1].1
    }
}

/// Calls `f(i)` for every set bit, skipping zero words.
#[inline]
fn for_each_set_bit(row: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in row.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            f((wi << 6) | b);
            w &= w - 1;
        }
    }
}

/// A pattern batch compiled into one deterministic automaton over
/// root-to-node label paths, consumable by [`Evaluator::eval_set`].
///
/// Implemented by `xuc_automata::CompiledPatternSet` (`xuc_automata`
/// depends on this crate, so the engine consumes the automaton through
/// this trait rather than the concrete type). The contract:
///
/// * states are opaque `u32`s strictly below `u32::MAX` (the engine uses
///   `u32::MAX` as its out-of-subtree sentinel), and the automaton is
///   **complete** — [`step`](Self::step) is total over all labels;
/// * a node's state is reached by stepping from its parent's state on the
///   node's label, starting from [`start_state`](Self::start_state) at
///   the evaluation origin (whose own label is *not* consumed — patterns
///   match the path strictly below the origin, exactly like
///   [`Evaluator::eval_at`]);
/// * bits in [`accept_row`](Self::accept_row) beyond
///   [`pattern_count`](Self::pattern_count) must be zero.
pub trait PatternSetAutomaton {
    /// Number of patterns in the batch (compiled + fallback).
    fn pattern_count(&self) -> usize;

    /// The state assigned to the evaluation origin.
    fn start_state(&self) -> u32;

    /// The successor state when stepping into a child labeled `label`.
    fn step(&self, state: u32, label: Label) -> u32;

    /// The satisfied-pattern row of `state`: `⌈pattern_count / 64⌉`
    /// packed words, bit `i` set iff a node in this state belongs to
    /// pattern `i`'s result set.
    fn accept_row(&self, state: u32) -> &[u64];

    /// Patterns the automaton does not cover (typically patterns with
    /// predicates), as `(batch index, pattern)` pairs;
    /// [`Evaluator::eval_set`] routes these through the per-pattern path.
    fn fallbacks(&self) -> &[(usize, Pattern)];
}

/// The record of one in-place splice
/// ([`Evaluator::eval_set_splice`]): per-pattern add/remove events, in
/// application order. Because the splice removes before it inserts, the
/// journal both *judges* the splice (net changes per pattern are exactly
/// the baseline/now set differences) and *undoes* it
/// ([`revert`](Self::revert)) — no second copy of either set ever exists.
#[derive(Debug, Default)]
pub struct SpliceJournal {
    /// `events[i]`: `(ref, added)` mutations actually performed on set
    /// `i` (a `false` entry was removed, a `true` entry inserted).
    events: Vec<Vec<(NodeRef, bool)>>,
}

impl SpliceJournal {
    /// The net changes of pattern `i` as `(net_removed, net_added)` —
    /// precisely `baseᵢ \ nowᵢ` and `nowᵢ \ baseᵢ`: a ref removed and
    /// later re-inserted (an unchanged member inside a dirty subtree)
    /// cancels out.
    pub fn net_changes(&self, i: usize) -> (Vec<NodeRef>, Vec<NodeRef>) {
        let (mut removed, mut added) = (BTreeSet::new(), BTreeSet::new());
        for &(r, was_added) in &self.events[i] {
            if was_added {
                added.insert(r);
            } else {
                removed.insert(r);
            }
        }
        let net_removed = removed.difference(&added).copied().collect();
        let net_added = added.difference(&removed).copied().collect();
        (net_removed, net_added)
    }

    /// Did the splice change nothing at all?
    pub fn is_empty(&self) -> bool {
        self.events.iter().all(Vec::is_empty)
    }

    /// Undoes the splice exactly: replays every event backwards (reverse
    /// order matters — a removed-then-reinserted ref must end present).
    pub fn revert(&self, sets: &mut [BTreeSet<NodeRef>]) {
        for (row, events) in sets.iter_mut().zip(&self.events) {
            for &(r, added) in events.iter().rev() {
                if added {
                    row.remove(&r);
                } else {
                    row.insert(r);
                }
            }
        }
    }
}

/// A reusable tree-pattern evaluator bound to one snapshot of a tree.
///
/// ```
/// use xuc_xpath::{parse, Evaluator};
/// use xuc_xtree::parse_term;
///
/// let mut tree = parse_term("root(a#1(b#2),a#3)").unwrap();
/// let mut ev = Evaluator::new(&tree);
/// let q = parse("/a[/b]").unwrap();
/// assert_eq!(ev.eval(&q).len(), 1);
///
/// // After mutating the tree, refresh before evaluating again.
/// tree.add(xuc_xtree::NodeId::from_raw(3), "b").unwrap();
/// ev.refresh(&tree);
/// assert_eq!(ev.eval(&q).len(), 2);
/// ```
pub struct Evaluator {
    n: usize,
    words: usize,
    ids: Vec<NodeId>,
    labels: Vec<Label>,
    /// Pre-order parent indices; `NO_PARENT` for the root.
    parent: Vec<u32>,
    /// Children in CSR form: node `v`'s children are
    /// `child_list[child_start[v]..child_start[v + 1]]`.
    child_start: Vec<u32>,
    child_list: Vec<u32>,
    index_of: HashMap<NodeId, u32>,
    /// Lazy per-label node bitsets (re-derived in place on refresh, so the
    /// cache and its allocations survive structural rebuilds).
    label_rows: HashMap<Label, Vec<u64>>,
    /// All-ones row masked to `n` bits (the wildcard test).
    ones: Vec<u64>,
    stale: bool,
    /// Reused snapshot buffer: one heap allocation across all refreshes.
    scratch: Vec<(NodeId, Label, Option<usize>)>,
    /// Reused per-node child-count buffer for the CSR rebuild.
    scratch_counts: Vec<u32>,
    /// Reused per-node automaton-state buffer for the set-at-a-time pass.
    scratch_states: Vec<u32>,
}

impl Evaluator {
    /// Builds the snapshot for `tree`. Cost: one pre-order walk plus the
    /// id index; every subsequent [`eval`](Self::eval) reuses it.
    pub fn new(tree: &DataTree) -> Evaluator {
        let mut ev = Evaluator {
            n: 0,
            words: 0,
            ids: Vec::new(),
            labels: Vec::new(),
            parent: Vec::new(),
            child_start: Vec::new(),
            child_list: Vec::new(),
            index_of: HashMap::new(),
            label_rows: HashMap::new(),
            ones: Vec::new(),
            stale: true,
            scratch: Vec::new(),
            scratch_counts: Vec::new(),
            scratch_states: Vec::new(),
        };
        ev.refresh(tree);
        ev
    }

    /// Rebuilds the snapshot after `tree` was mutated, reusing the
    /// existing allocations (including the snapshot buffer itself, via
    /// [`DataTree::preorder_snapshot_into`]). This is the blunt fallback
    /// of the refresh protocol — and the oracle the edit-proportional
    /// [`refresh_after`](Self::refresh_after) is tested against; see
    /// [`invalidate`](Self::invalidate).
    pub fn refresh(&mut self, tree: &DataTree) {
        // Take the scratch buffer out of `self` so the walk can fill it
        // while the snapshot arrays are rebuilt.
        let mut flat = std::mem::take(&mut self.scratch);
        tree.preorder_snapshot_into(&mut flat);
        let n = flat.len();
        self.n = n;
        self.words = word_count(n);

        self.ids.clear();
        self.labels.clear();
        self.parent.clear();
        self.index_of.clear();
        self.ids.reserve(n);
        self.labels.reserve(n);
        self.parent.reserve(n);
        self.index_of.reserve(n);

        // CSR: count children per node, prefix-sum, then scatter. Pre-order
        // guarantees parent indices precede their children.
        let mut counts = std::mem::take(&mut self.scratch_counts);
        counts.clear();
        counts.resize(n + 1, 0);
        for (i, (id, label, parent)) in flat.iter().enumerate() {
            self.ids.push(*id);
            self.labels.push(*label);
            self.index_of.insert(*id, i as u32);
            match parent {
                Some(p) => {
                    debug_assert!(*p < i, "pre-order parents come first");
                    self.parent.push(*p as u32);
                    counts[*p] += 1;
                }
                None => self.parent.push(NO_PARENT),
            }
        }
        self.child_start.clear();
        self.child_start.resize(n + 1, 0);
        let mut acc = 0u32;
        for (start, count) in self.child_start[..n].iter_mut().zip(&counts) {
            *start = acc;
            acc += count;
        }
        self.child_start[n] = acc;
        self.child_list.clear();
        self.child_list.resize(acc as usize, 0);
        // Reuse `counts` as the scatter cursor.
        counts[..n].copy_from_slice(&self.child_start[..n]);
        for (i, &p) in self.parent.iter().enumerate() {
            if p != NO_PARENT {
                self.child_list[counts[p as usize] as usize] = i as u32;
                counts[p as usize] += 1;
            }
        }
        self.scratch_counts = counts;
        self.scratch = flat;

        self.ones.clear();
        self.ones.resize(self.words, !0u64);
        if !n.is_multiple_of(64) && self.words > 0 {
            self.ones[self.words - 1] = (1u64 << (n % 64)) - 1;
        }

        // Re-derive the cached label rows from the new `labels` array in
        // one pass instead of discarding the cache: rows for labels no
        // longer present simply become zero rows (still correct answers).
        for row in self.label_rows.values_mut() {
            row.clear();
            row.resize(self.words, 0);
        }
        for (v, l) in self.labels.iter().enumerate() {
            if let Some(row) = self.label_rows.get_mut(l) {
                set_bit(row, v);
            }
        }
        self.stale = false;
    }

    /// Refreshes the snapshot **proportionally to one applied edit**,
    /// described by the [`EditScope`] that [`xuc_xtree::apply_undoable`]
    /// (or [`xuc_xtree::undo`]) returned for it.
    ///
    /// * A relabel patches `labels[i]` and the two affected cached label
    ///   rows in place — no walk, no `HashMap` churn.
    /// * An id replacement patches `ids[i]` and its `index_of` entry.
    /// * Structural scopes fall back to the full [`refresh`](Self::refresh)
    ///   (which itself reuses every allocation, including the label-row
    ///   cache).
    ///
    /// The scope must describe the **single** edit separating the
    /// snapshotted state from `tree`'s current state; for a batch of
    /// edits, call this once per edit as it is applied (or undone).
    pub fn refresh_after(&mut self, tree: &DataTree, scope: &EditScope) {
        match scope {
            EditScope::Relabel { node, from, to } => {
                let i = *self
                    .index_of
                    .get(node)
                    .unwrap_or_else(|| panic!("relabeled node {node} not in snapshot"))
                    as usize;
                debug_assert_eq!(self.labels[i], *from, "scope does not match snapshot");
                self.labels[i] = *to;
                if let Some(row) = self.label_rows.get_mut(from) {
                    clear_bit(row, i);
                }
                if let Some(row) = self.label_rows.get_mut(to) {
                    set_bit(row, i);
                }
                self.stale = false;
            }
            EditScope::ReplaceId { from, to } => {
                let i = self
                    .index_of
                    .remove(from)
                    .unwrap_or_else(|| panic!("replaced node {from} not in snapshot"));
                self.index_of.insert(*to, i);
                self.ids[i as usize] = *to;
                self.stale = false;
            }
            EditScope::Structural { .. } => self.refresh(tree),
        }
    }

    /// Marks the snapshot stale. Call this when handing the underlying
    /// tree out for mutation; any evaluation before the matching
    /// [`refresh`](Self::refresh) panics instead of returning answers
    /// computed against a dead snapshot.
    pub fn invalidate(&mut self) {
        self.stale = true;
    }

    /// Is the snapshot marked stale?
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.n
    }

    /// The snapshotted tree's root node.
    pub fn root(&self) -> NodeRef {
        NodeRef { id: self.ids[0], label: self.labels[0] }
    }

    /// Trees always have a root, so a snapshot is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn children(&self, v: usize) -> &[u32] {
        &self.child_list[self.child_start[v] as usize..self.child_start[v + 1] as usize]
    }

    /// The bitset of nodes whose label passes `test` (cached per label).
    fn test_row(&mut self, test: NodeTest) -> &[u64] {
        match test {
            NodeTest::Wildcard => &self.ones,
            NodeTest::Label(l) => {
                if !self.label_rows.contains_key(&l) {
                    let mut row = vec![0u64; self.words];
                    for (v, &vl) in self.labels.iter().enumerate() {
                        if vl == l {
                            set_bit(&mut row, v);
                        }
                    }
                    self.label_rows.insert(l, row);
                }
                &self.label_rows[&l]
            }
        }
    }

    /// `out[v] = 1` iff some child `w` of `v` has `src[w] = 1`.
    fn any_child(&self, src: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.words, 0);
        for_each_set_bit(src, |w| {
            let p = self.parent[w];
            if p != NO_PARENT {
                set_bit(out, p as usize);
            }
        });
    }

    /// `out[v] = 1` iff some *proper descendant* `w` of `v` has
    /// `src[w] = 1`. One reverse pre-order pass: children are visited
    /// before their parents, so `out` accumulates bottom-up.
    fn any_descendant(&self, src: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.words, 0);
        for v in (1..self.n).rev() {
            if get_bit(src, v) || get_bit(out, v) {
                set_bit(out, self.parent[v] as usize);
            }
        }
    }

    /// Phase 1 + phase 2 producing the output-node frontier bitset.
    fn frontier_of(&mut self, q: &Pattern, start_idx: usize) -> Vec<u64> {
        assert!(
            !self.stale,
            "Evaluator used after invalidate(): call refresh(&tree) after mutating the tree"
        );
        let words = self.words;

        // Phase 1: bottom-up subpattern satisfaction, one bitset row per
        // pattern node. Children are processed before parents, so child
        // rows are complete when the parent conjoins its requirements.
        let mut sat: Vec<Vec<u64>> = vec![Vec::new(); q.len()];
        let mut req = vec![0u64; words];
        for p in q.post_order() {
            let mut row = self.test_row(q.test(p)).to_vec();
            for &c in q.children(p) {
                if is_zero(&row) {
                    break;
                }
                match q.axis(c) {
                    Axis::Child => self.any_child(&sat[c], &mut req),
                    Axis::Descendant => self.any_descendant(&sat[c], &mut req),
                }
                and_assign(&mut row, &req);
            }
            sat[p] = row;
        }

        // Phase 2: walk the spine from `start_idx`, keeping the frontier of
        // nodes matching the spine prefix.
        let mut frontier = vec![0u64; words];
        set_bit(&mut frontier, start_idx);
        let mut next = vec![0u64; words];
        for p in q.spine() {
            next.clear();
            next.resize(words, 0);
            match q.axis(p) {
                Axis::Child => {
                    // Children of the frontier, via CSR.
                    for_each_set_bit(&frontier, |v| {
                        for &w in self.children(v) {
                            set_bit(&mut next, w as usize);
                        }
                    });
                }
                Axis::Descendant => {
                    // has-frontier-proper-ancestor by pre-order propagation.
                    for v in 1..self.n {
                        let pv = self.parent[v] as usize;
                        if get_bit(&frontier, pv) || get_bit(&next, pv) {
                            set_bit(&mut next, v);
                        }
                    }
                }
            }
            and_assign(&mut next, &sat[p]);
            std::mem::swap(&mut frontier, &mut next);
            if is_zero(&frontier) {
                break;
            }
        }
        frontier
    }

    /// Evaluates `q` from the document root: `q(I)`.
    pub fn eval(&mut self, q: &Pattern) -> BTreeSet<NodeRef> {
        self.eval_at(q, self.ids[0])
    }

    /// Evaluates `q` on the subtree rooted at `start`: `q(n, I)`.
    ///
    /// # Panics
    /// Panics if `start` is not a node of the snapshotted tree.
    pub fn eval_at(&mut self, q: &Pattern, start: NodeId) -> BTreeSet<NodeRef> {
        let start_idx =
            *self.index_of.get(&start).unwrap_or_else(|| panic!("start node {start} not in tree"))
                as usize;
        let frontier = self.frontier_of(q, start_idx);
        let mut out = BTreeSet::new();
        for_each_set_bit(&frontier, |v| {
            out.insert(NodeRef { id: self.ids[v], label: self.labels[v] });
        });
        out
    }

    /// Evaluates a batch of patterns against the shared snapshot; the
    /// snapshot cost is paid once for the whole batch.
    pub fn eval_all(&mut self, queries: &[Pattern]) -> Vec<BTreeSet<NodeRef>> {
        queries.iter().map(|q| self.eval(q)).collect()
    }

    /// Set-at-a-time batch evaluation: drives a pre-compiled
    /// [`PatternSetAutomaton`] over the snapshot **once**, producing the
    /// same results as [`eval_all`](Self::eval_all) on the batch the
    /// automaton was compiled from. The cost is one automaton step plus
    /// one acceptance-row scan per node — independent of how many
    /// patterns the batch holds — versus one full bitset sweep *per
    /// pattern* on the per-pattern path. Patterns the automaton does not
    /// cover (its [`fallbacks`](PatternSetAutomaton::fallbacks)) are
    /// evaluated per-pattern, so the result is always complete.
    ///
    /// Cooperates with the edit-scope refresh protocol: the pass reads
    /// `labels` straight from the snapshot, so after a relabel patched in
    /// O(1) by [`refresh_after`](Self::refresh_after) the very next
    /// `eval_set` sees the new labels — no automaton recompilation, no
    /// extra re-sync cost on the set path.
    ///
    /// ```
    /// use xuc_automata::PatternSetCompiler;
    /// use xuc_xpath::{parse, Evaluator};
    /// use xuc_xtree::parse_term;
    ///
    /// let tree = parse_term("root(a#1(b#2(c#3)),a#4(b#5))").unwrap();
    /// // Mixed batch: two linear patterns compile, the predicate falls back.
    /// let suite: Vec<_> =
    ///     ["/a/b", "//c", "/a[/b]"].iter().map(|s| parse(s).unwrap()).collect();
    /// let compiled = PatternSetCompiler::compile(&suite);
    ///
    /// let mut ev = Evaluator::new(&tree);
    /// let rows = ev.eval_set(&compiled); // one pass for the whole batch
    /// assert_eq!(rows, ev.eval_all(&suite)); // ≡ one pass per pattern
    /// assert_eq!(rows[0].len(), 2); // b#2 and b#5
    /// ```
    pub fn eval_set<A: PatternSetAutomaton + ?Sized>(&mut self, set: &A) -> Vec<BTreeSet<NodeRef>> {
        self.eval_set_at(set, self.ids[0])
    }

    /// [`eval_set`](Self::eval_set) on the subtree rooted at `start`:
    /// entry `i` equals `eval_at(&batch[i], start)` for every pattern of
    /// the compiled batch.
    ///
    /// ```
    /// use xuc_automata::PatternSetCompiler;
    /// use xuc_xpath::{parse, Evaluator};
    /// use xuc_xtree::{parse_term, NodeId};
    ///
    /// let tree = parse_term("root(a#1(b#2(c#3)),b#4(c#5))").unwrap();
    /// let suite = vec![parse("/b/c").unwrap()];
    /// let compiled = PatternSetCompiler::compile(&suite);
    /// let mut ev = Evaluator::new(&tree);
    /// let below_a = ev.eval_set_at(&compiled, NodeId::from_raw(1));
    /// assert_eq!(below_a[0].iter().map(|n| n.id.raw()).collect::<Vec<_>>(), vec![3]);
    /// ```
    ///
    /// # Panics
    /// Panics if `start` is not a node of the snapshotted tree.
    pub fn eval_set_at<A: PatternSetAutomaton + ?Sized>(
        &mut self,
        set: &A,
        start: NodeId,
    ) -> Vec<BTreeSet<NodeRef>> {
        assert!(
            !self.stale,
            "Evaluator used after invalidate(): call refresh(&tree) after mutating the tree"
        );
        crate::stats::bump(&crate::stats::EVAL_SET_SWEEPS, 1);
        let start_idx =
            *self.index_of.get(&start).unwrap_or_else(|| panic!("start node {start} not in tree"))
                as usize;
        let mut out: Vec<BTreeSet<NodeRef>> = vec![BTreeSet::new(); set.pattern_count()];

        // Sentinel for nodes outside `start`'s subtree (automaton states
        // are required to stay below it; see the trait contract).
        const NO_STATE: u32 = u32::MAX;
        let mut states = std::mem::take(&mut self.scratch_states);
        states.clear();
        states.resize(self.n, NO_STATE);
        states[start_idx] = set.start_state();
        // One pre-order sweep: parents precede children, so every node's
        // state derives from an already-computed parent state. Pre-order
        // also makes `start`'s subtree contiguous, so the first node whose
        // parent carries the sentinel is past the subtree — as is
        // everything after it — and the sweep stops there.
        for v in start_idx + 1..self.n {
            let ps = states[self.parent[v] as usize];
            if ps == NO_STATE {
                break;
            }
            let s = set.step(ps, self.labels[v]);
            states[v] = s;
            for_each_set_bit(set.accept_row(s), |q| {
                out[q].insert(NodeRef { id: self.ids[v], label: self.labels[v] });
            });
        }
        self.scratch_states = states;

        crate::stats::bump(&crate::stats::FALLBACK_PATTERN_EVALS, set.fallbacks().len() as u64);
        for (i, q) in set.fallbacks() {
            out[*i] = self.eval_at(q, start);
        }
        out
    }

    /// The dirty subtree roots of `region` as sorted, deduplicated
    /// snapshot indices — structural roots plus relabeled nodes (a
    /// relabel dirties its whole subtree: every descendant's label path
    /// runs through it). `None` when the region names a node this
    /// snapshot cannot account for (stale region → callers fall back to
    /// the full pass). Relabeled nodes that the region knows were deleted
    /// are skipped: the deletion's structural root covers their former
    /// subtree.
    fn dirty_root_indices(&self, region: &DirtyRegion) -> Option<Vec<usize>> {
        let mut roots: Vec<usize> =
            Vec::with_capacity(region.structural_roots().len() + region.relabels().len());
        for id in region.structural_roots() {
            roots.push(*self.index_of.get(id)? as usize);
        }
        for (id, _) in region.relabels() {
            match self.index_of.get(id) {
                Some(&i) => roots.push(i as usize),
                None if region.removed().iter().any(|r| r.id == *id) => {}
                None => return None,
            }
        }
        roots.sort_unstable();
        roots.dedup();
        Some(roots)
    }

    /// Edit-proportional batch evaluation: produces exactly
    /// [`eval_set`](Self::eval_set)'s answer by **splicing** a previously
    /// computed baseline instead of re-sweeping the whole snapshot. `base`
    /// must be `eval_set(set)`'s result on some earlier state of the tree,
    /// and `region` the [`DirtyRegion`] accumulated over every edit (and
    /// undo) separating that state from the current snapshot.
    ///
    /// Soundness rests on the automaton contract: a compiled (linear)
    /// pattern's membership at a node depends **only on the node's
    /// root-to-node label path**. Every path change is confined to the
    /// region — structural edits to their recorded subtree, relabels to
    /// the relabeled node's subtree (each descendant's path runs through
    /// it), id swaps to nothing (paths are label strings) — so:
    ///
    /// 1. the automaton is re-driven only **below each dirty root**, whose
    ///    own state is replayed along its ancestor path (`O(depth)`), via
    ///    the same sentinel machinery as [`eval_set_at`](Self::eval_set_at);
    /// 2. baseline members that were deleted, sit inside a dirty subtree,
    ///    or received their id from a swap are dropped; everything else
    ///    provably kept its membership and is retained as-is;
    /// 3. pinpoint id swaps patch `(from, label)` entries to `(to, label)`
    ///    — same membership, new identity;
    /// 4. the fresh sub-results are spliced in.
    ///
    /// Total cost: `O(Σ dirty-subtree sizes + Σ |base|)` — independent of
    /// how much *clean* document lies outside the region. Batches whose
    /// automaton carries predicate [`fallbacks`](PatternSetAutomaton::fallbacks)
    /// (whose membership is not path-determined), poisoned regions
    /// ([`DirtyRegion::is_full`]), a stale region (naming nodes not in the
    /// snapshot), or a mismatched baseline fall back to the full
    /// [`eval_set`](Self::eval_set) pass — the answer is always exact.
    ///
    /// ```
    /// use xuc_automata::PatternSetCompiler;
    /// use xuc_xpath::{parse, Evaluator};
    /// use xuc_xtree::{apply_undoable, parse_term, DirtyRegion, NodeId, Update};
    ///
    /// let mut tree = parse_term("root(a#1(b#2(c#3)),a#4(b#5))").unwrap();
    /// let suite: Vec<_> = ["/a/b", "//c"].iter().map(|s| parse(s).unwrap()).collect();
    /// let compiled = PatternSetCompiler::compile(&suite);
    /// let mut ev = Evaluator::new(&tree);
    /// let base = ev.eval_set(&compiled);
    ///
    /// // A batch: relabel b#5 and delete c#3, accumulated into one region.
    /// let mut region = DirtyRegion::new();
    /// for op in [
    ///     Update::Relabel { node: NodeId::from_raw(5), label: "c".into() },
    ///     Update::DeleteSubtree { node: NodeId::from_raw(3) },
    /// ] {
    ///     let (_token, scope) = apply_undoable(&mut tree, &op).unwrap();
    ///     ev.refresh_after(&tree, &scope);
    ///     region.record(&tree, &scope);
    /// }
    /// let spliced = ev.eval_set_delta(&compiled, &region, &base);
    /// assert_eq!(spliced, ev.eval_set(&compiled)); // ≡ the full pass
    /// assert_eq!(spliced[0].len(), 1); // b#5 left /a/b…
    /// assert_eq!(spliced[1].len(), 1); // …and became the only //c
    /// ```
    pub fn eval_set_delta<A: PatternSetAutomaton + ?Sized>(
        &mut self,
        set: &A,
        region: &DirtyRegion,
        base: &[BTreeSet<NodeRef>],
    ) -> Vec<BTreeSet<NodeRef>> {
        assert!(
            !self.stale,
            "Evaluator used after invalidate(): call refresh(&tree) after mutating the tree"
        );
        if region.is_full() || !set.fallbacks().is_empty() || base.len() != set.pattern_count() {
            return self.eval_set(set);
        }
        if region.is_clean() {
            return base.to_vec();
        }
        let k = set.pattern_count();

        // Dirty roots as snapshot indices. Structural roots are live by
        // the region's algebra; a relabeled node may since have been
        // deleted (its subtree is then covered by the deletion's
        // structural root — skip it when the region can vouch for the
        // death, otherwise hand the stale region to the full pass).
        let Some(roots) = self.dirty_root_indices(region) else {
            return self.eval_set(set);
        };

        let mut fresh_idx: Vec<Vec<usize>> = vec![Vec::new(); k];
        let ranges = self.sweep_dirty_roots(set, &roots, |_| {}, |q, v| fresh_idx[q].push(v));

        // Splice. A baseline member keeps its membership iff it still
        // exists, sits outside every dirty subtree, and did not *receive*
        // its id from a swap (ids only enter a tree through inserts —
        // covered by a dirty subtree — or swaps; anything else is the same
        // node on the same label path). The per-member tests are O(log)
        // — ranges are sorted and disjoint — so the scan really is the
        // advertised O(Σ |base|).
        let in_ranges = in_ranges_fn(&ranges);
        let swap_targets: BTreeSet<NodeId> = region.id_swaps().iter().map(|sw| sw.to).collect();
        let mut out: Vec<BTreeSet<NodeRef>> = base.to_vec();
        for row in &mut out {
            row.retain(|nr| match self.index_of.get(&nr.id) {
                None => false,
                Some(&ix) => !in_ranges(ix as usize) && !swap_targets.contains(&nr.id),
            });
        }
        // Pinpoint id swaps outside the dirty subtrees: same membership,
        // new identity. (Swapped nodes that were also relabeled or moved
        // sit inside a dirty subtree — or forced the full-pass fallback
        // above — so `label` here is still the baseline label.)
        for sw in region.id_swaps() {
            let Some(&ix) = self.index_of.get(&sw.to) else { continue };
            if in_ranges(ix as usize) {
                continue;
            }
            debug_assert_eq!(self.labels[ix as usize], sw.label, "swap label drifted");
            let old = NodeRef { id: sw.from, label: sw.label };
            let new = NodeRef { id: sw.to, label: sw.label };
            for (b, row) in base.iter().zip(&mut out) {
                if b.contains(&old) {
                    row.insert(new);
                }
            }
        }
        for (row, idxs) in out.iter_mut().zip(&fresh_idx) {
            row.extend(idxs.iter().map(|&v| NodeRef { id: self.ids[v], label: self.labels[v] }));
        }
        out
    }

    /// Re-drives `set` below each dirty root (`roots`: sorted snapshot
    /// indices), reporting every swept node's index through `on_node`
    /// (dirty roots included, the tree root excluded) and every accepted
    /// `(pattern, node index)` through `on_accept`. Returns the swept
    /// pre-order ranges. Each root's state is replayed along its ancestor
    /// path (`O(depth)`); roots nested inside an earlier range are
    /// skipped. Distinct surviving subtrees are disjoint, so the sentinel
    /// array needs no clearing between sweeps: a parent state written by
    /// an earlier sweep always belongs to the same subtree.
    fn sweep_dirty_roots<A: PatternSetAutomaton + ?Sized>(
        &mut self,
        set: &A,
        roots: &[usize],
        mut on_node: impl FnMut(usize),
        mut on_accept: impl FnMut(usize, usize),
    ) -> Vec<(usize, usize)> {
        const NO_STATE: u32 = u32::MAX;
        let mut states = std::mem::take(&mut self.scratch_states);
        states.clear();
        states.resize(self.n, NO_STATE);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(roots.len());
        for &ri in roots {
            if let Some(&(_, end)) = ranges.last() {
                if ri < end {
                    continue;
                }
            }
            // Replay the root's state along its ancestor path (the root's
            // own label is consumed: states are root-anchored, exactly as
            // in eval_set's sweep from the tree root).
            let mut s = set.start_state();
            let mut path = Vec::new();
            let mut v = ri;
            while v != 0 {
                path.push(v);
                v = self.parent[v] as usize;
            }
            for &w in path.iter().rev() {
                s = set.step(s, self.labels[w]);
            }
            states[ri] = s;
            if ri != 0 {
                // The dirty root's own membership (the tree root is never
                // a member — patterns match strictly below it).
                on_node(ri);
                for_each_set_bit(set.accept_row(s), |q| on_accept(q, ri));
            }
            let mut end = self.n;
            for v in ri + 1..self.n {
                let ps = states[self.parent[v] as usize];
                if ps == NO_STATE {
                    end = v;
                    break;
                }
                let s = set.step(ps, self.labels[v]);
                states[v] = s;
                on_node(v);
                for_each_set_bit(set.accept_row(s), |q| on_accept(q, v));
            }
            ranges.push((ri, end));
        }
        self.scratch_states = states;
        ranges
    }

    /// [`eval_set_delta`](Self::eval_set_delta)'s **in-place** twin: the
    /// commit hot path. Instead of materializing a fresh result vector
    /// (which costs a full baseline clone however small the edit), the
    /// splice mutates `sets` — the cached committed baselines — directly:
    /// targeted removals of the baseline entries inside the dirty
    /// subtrees (located under their **pre-batch** labels through the
    /// region's relabel history), eviction of the region's
    /// [`removed`](DirtyRegion::removed) refs, pinpoint id-swap patches,
    /// and insertion of the freshly re-derived sub-results. Total cost is
    /// proportional to the dirty region — zero work per clean document
    /// node and zero work per untouched baseline member.
    ///
    /// Every individual mutation is recorded in the returned
    /// [`SpliceJournal`], whose net changes per pattern are exactly
    /// `base \ now` and `now \ base` — enough to judge growth/shrink
    /// admission conditions without ever materializing both sets — and
    /// which [`SpliceJournal::revert`] replays backwards to restore the
    /// baselines exactly (the reject path).
    ///
    /// Returns `None` — with `sets` untouched — when the splice argument
    /// does not apply (predicate fallbacks, poisoned or stale region,
    /// width mismatch) or when the dirty region is so large that the full
    /// pass is cheaper; callers then run [`eval_set`](Self::eval_set).
    /// The differential harness in `xuc-service` pins this function
    /// against full-pass admission verdict-for-verdict and
    /// baseline-for-baseline.
    pub fn eval_set_splice<A: PatternSetAutomaton + ?Sized>(
        &mut self,
        set: &A,
        region: &DirtyRegion,
        sets: &mut [BTreeSet<NodeRef>],
    ) -> Option<SpliceJournal> {
        use crate::stats;
        stats::bump(&stats::SPLICE_ATTEMPTS, 1);
        let out = self.eval_set_splice_inner(set, region, sets);
        match &out {
            Some(_) => stats::bump(&stats::SPLICE_COMMITS, 1),
            None => stats::bump(&stats::SPLICE_DECLINED, 1),
        }
        out
    }

    fn eval_set_splice_inner<A: PatternSetAutomaton + ?Sized>(
        &mut self,
        set: &A,
        region: &DirtyRegion,
        sets: &mut [BTreeSet<NodeRef>],
    ) -> Option<SpliceJournal> {
        assert!(
            !self.stale,
            "Evaluator used after invalidate(): call refresh(&tree) after mutating the tree"
        );
        if region.is_full() || !set.fallbacks().is_empty() || sets.len() != set.pattern_count() {
            return None;
        }
        let k = set.pattern_count();
        let mut journal = SpliceJournal { events: vec![Vec::new(); k] };
        if region.is_clean() {
            return Some(journal);
        }
        let roots = self.dirty_root_indices(region)?;
        let mut touched: Vec<usize> = Vec::new();
        let mut fresh_idx: Vec<Vec<usize>> = vec![Vec::new(); k];
        let ranges =
            self.sweep_dirty_roots(set, &roots, |v| touched.push(v), |q, v| fresh_idx[q].push(v));
        // A dirty region covering most of the document (a root-level move
        // in a small tree) makes targeted splicing slower than one clean
        // sweep: hand it back before any mutation.
        if touched.len().saturating_mul(k.max(1)) > 4 * self.n {
            return None;
        }
        crate::stats::bump(&crate::stats::DIRTY_ROOTS_SWEPT, roots.len() as u64);
        crate::stats::bump(&crate::stats::DIRTY_NODES_SWEPT, touched.len() as u64);

        // 1. Targeted removals: every baseline entry inside a dirty
        //    subtree, under its pre-batch label, plus every deleted ref.
        for &v in &touched {
            let id = self.ids[v];
            let old = NodeRef { id, label: region.original_label(id).unwrap_or(self.labels[v]) };
            for (i, row) in sets.iter_mut().enumerate() {
                if row.remove(&old) {
                    journal.events[i].push((old, false));
                }
            }
        }
        for r in region.removed() {
            for (i, row) in sets.iter_mut().enumerate() {
                if row.remove(r) {
                    journal.events[i].push((*r, false));
                }
            }
        }
        // 2. Pinpoint id swaps: a target alive outside the dirty subtrees
        //    carries its membership to the new id; a dead or re-derived
        //    target only evicts the pre-batch entry.
        let in_ranges = in_ranges_fn(&ranges);
        for sw in region.id_swaps() {
            let old = NodeRef { id: sw.from, label: sw.label };
            let alive_outside = match self.index_of.get(&sw.to) {
                Some(&ix) if !in_ranges(ix as usize) => {
                    debug_assert_eq!(self.labels[ix as usize], sw.label, "swap label drifted");
                    true
                }
                _ => false,
            };
            for (i, row) in sets.iter_mut().enumerate() {
                if row.remove(&old) {
                    journal.events[i].push((old, false));
                    if alive_outside {
                        let new = NodeRef { id: sw.to, label: sw.label };
                        if row.insert(new) {
                            journal.events[i].push((new, true));
                        }
                    }
                }
            }
        }
        // 3. Fresh membership below the dirty roots.
        for (i, idxs) in fresh_idx.iter().enumerate() {
            for &v in idxs {
                let r = NodeRef { id: self.ids[v], label: self.labels[v] };
                if sets[i].insert(r) {
                    journal.events[i].push((r, true));
                }
            }
        }
        Some(journal)
    }

    /// The id set of `q(I)` (constraints compare ranges by id).
    pub fn eval_ids(&mut self, q: &Pattern) -> BTreeSet<NodeId> {
        let frontier = self.frontier_of(q, 0);
        let mut out = BTreeSet::new();
        for_each_set_bit(&frontier, |v| {
            out.insert(self.ids[v]);
        });
        out
    }

    /// Does `q`, read as a boolean query, hold below `start`?
    pub fn holds_below(&mut self, q: &Pattern, start: NodeId) -> bool {
        let start_idx =
            *self.index_of.get(&start).unwrap_or_else(|| panic!("start node {start} not in tree"))
                as usize;
        !is_zero(&self.frontier_of(q, start_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xuc_xtree::{apply_undoable, parse_term, undo, Update};

    fn ids(set: &BTreeSet<NodeRef>) -> Vec<u64> {
        set.iter().map(|n| n.id.raw()).collect()
    }

    #[test]
    fn matches_eval_module_on_examples() {
        let cases = [
            ("root(a#1(b#2),a#3,c#4(a#5))", "/a"),
            ("root(a#1(b#2),a#3,c#4(a#5))", "//a"),
            ("root(a#1(b#2),a#3)", "/a[/b]"),
            ("root(a#1(x#2(b#3(c#4)),b#5),b#6(c#7))", "/a//b[/c]"),
            ("root(a#1(b#2),c#3(d#4))", "/*/*"),
            ("a#1(a#2)", "//a"),
            ("root(a#1(b#2(c#3(d#4))),a#5(b#6(c#7)))", "/a[/b[/c[/d]]]"),
            ("root(a#1(b#2,v#3),a#4(b#5))", "/a[/v]/b"),
            ("r(a#1(a#2(a#3(a#4))))", "//a//a"),
        ];
        for (term, query) in cases {
            let t = parse_term(term).unwrap();
            let q = parse(query).unwrap();
            let mut ev = Evaluator::new(&t);
            assert_eq!(ev.eval(&q), crate::eval::eval(&q, &t), "tree {term} query {query}");
        }
    }

    #[test]
    fn batch_reuses_one_snapshot() {
        let t = parse_term("root(a#1(b#2(c#3)),a#4(b#5),c#6)").unwrap();
        let queries: Vec<_> =
            ["/a", "//b", "/a/b[/c]", "//c", "/*"].iter().map(|s| parse(s).unwrap()).collect();
        let mut ev = Evaluator::new(&t);
        let batch = ev.eval_all(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            assert_eq!(*r, crate::eval::eval(q, &t), "query {q}");
        }
    }

    #[test]
    fn eval_at_subtree() {
        let t = parse_term("root(a#1(b#2(c#3)),b#4(c#5))").unwrap();
        let q = parse("/b/c").unwrap();
        let mut ev = Evaluator::new(&t);
        assert_eq!(ids(&ev.eval_at(&q, NodeId::from_raw(1))), vec![3]);
        assert_eq!(ids(&ev.eval(&q)), vec![5]);
        assert!(ev.holds_below(&q, NodeId::from_raw(1)));
        assert!(!ev.holds_below(&q, NodeId::from_raw(2)));
    }

    #[test]
    fn refresh_tracks_mutation() {
        let mut t = parse_term("root(a#1(b#2),a#3)").unwrap();
        let q = parse("/a[/b]").unwrap();
        let mut ev = Evaluator::new(&t);
        assert_eq!(ids(&ev.eval(&q)), vec![1]);
        t.add(NodeId::from_raw(3), "b").unwrap();
        ev.refresh(&t);
        assert_eq!(ids(&ev.eval(&q)), vec![1, 3]);
        t.delete_subtree(NodeId::from_raw(1)).unwrap();
        ev.refresh(&t);
        assert_eq!(ids(&ev.eval(&q)), vec![3]);
    }

    #[test]
    #[should_panic(expected = "invalidate")]
    fn stale_snapshot_panics() {
        let t = parse_term("root(a#1)").unwrap();
        let mut ev = Evaluator::new(&t);
        ev.invalidate();
        let q = parse("/a").unwrap();
        let _ = ev.eval(&q);
    }

    #[test]
    fn wide_trees_cross_word_boundaries() {
        // > 64 children exercises multi-word rows and the tail mask.
        let mut t = xuc_xtree::DataTree::new("root");
        let root = t.root_id();
        let mut b_parent = None;
        for i in 0..150 {
            let id = t.add(root, if i % 3 == 0 { "a" } else { "x" }).unwrap();
            if i == 149 {
                b_parent = Some(id);
            }
        }
        t.add(b_parent.unwrap(), "b").unwrap();
        let mut ev = Evaluator::new(&t);
        let qa = parse("/a").unwrap();
        assert_eq!(ev.eval(&qa).len(), 50);
        let qw = parse("//*").unwrap();
        assert_eq!(ev.eval(&qw).len(), 151);
        let qxb = parse("/x[/b]").unwrap();
        assert_eq!(ev.eval(&qxb).len(), 1);
        for (term_q, expect) in [("//b", 1), ("/x/b", 1), ("/a/b", 0)] {
            let q = parse(term_q).unwrap();
            assert_eq!(ev.eval(&q).len(), expect, "{term_q}");
        }
    }

    #[test]
    fn refresh_after_relabel_patches_without_walking() {
        let mut t = parse_term("root(a#1(b#2),a#3,c#4)").unwrap();
        let qa = parse("/a").unwrap();
        let qc = parse("//c").unwrap();
        let mut ev = Evaluator::new(&t);
        // Prime the label-row cache for both labels involved.
        assert_eq!(ev.eval(&qa).len(), 2);
        assert_eq!(ev.eval(&qc).len(), 1);

        let op = Update::Relabel { node: NodeId::from_raw(3), label: Label::new("c") };
        let walks_before = xuc_xtree::preorder_walk_count();
        let (token, scope) = apply_undoable(&mut t, &op).unwrap();
        ev.refresh_after(&t, &scope);
        assert_eq!(ids(&ev.eval(&qa)), vec![1]);
        assert_eq!(ids(&ev.eval(&qc)), vec![3, 4]);
        let scope = undo(&mut t, token).unwrap();
        ev.refresh_after(&t, &scope);
        assert_eq!(ids(&ev.eval(&qa)), vec![1, 3]);
        assert_eq!(ids(&ev.eval(&qc)), vec![4]);
        assert_eq!(
            xuc_xtree::preorder_walk_count(),
            walks_before,
            "relabel apply/undo must not re-walk the tree"
        );
    }

    #[test]
    fn refresh_after_replace_id_patches_index() {
        let mut t = parse_term("root(a#1(b#2),a#3)").unwrap();
        let q = parse("/a").unwrap();
        let mut ev = Evaluator::new(&t);
        assert_eq!(ids(&ev.eval(&q)), vec![1, 3]);

        let fresh = NodeId::fresh();
        let op = Update::ReplaceId { node: NodeId::from_raw(1), new_id: fresh };
        let walks_before = xuc_xtree::preorder_walk_count();
        let (token, scope) = apply_undoable(&mut t, &op).unwrap();
        ev.refresh_after(&t, &scope);
        assert_eq!(ids(&ev.eval(&q)), vec![3, fresh.raw()]);
        // eval_at by the new id works (index patched, not rebuilt).
        assert_eq!(ev.eval_at(&parse("/b").unwrap(), fresh).len(), 1);
        let scope = undo(&mut t, token).unwrap();
        ev.refresh_after(&t, &scope);
        assert_eq!(ids(&ev.eval(&q)), vec![1, 3]);
        assert_eq!(xuc_xtree::preorder_walk_count(), walks_before);
    }

    #[test]
    fn refresh_after_structural_rebuilds_and_keeps_label_cache_correct() {
        let mut t = parse_term("root(a#1(b#2),a#3)").unwrap();
        let q = parse("/a[/b]").unwrap();
        let mut ev = Evaluator::new(&t);
        assert_eq!(ids(&ev.eval(&q)), vec![1]);

        let op = Update::InsertLeaf {
            parent: NodeId::from_raw(3),
            id: NodeId::from_raw(9),
            label: Label::new("b"),
        };
        let (token, scope) = apply_undoable(&mut t, &op).unwrap();
        assert!(scope.is_structural());
        ev.refresh_after(&t, &scope);
        assert_eq!(ids(&ev.eval(&q)), vec![1, 3]);
        let scope = undo(&mut t, token).unwrap();
        ev.refresh_after(&t, &scope);
        assert_eq!(ids(&ev.eval(&q)), vec![1]);

        // Shrinking the tree across a structural refresh must mask the
        // cached rows down to the new size.
        let (_token, scope) =
            apply_undoable(&mut t, &Update::DeleteSubtree { node: NodeId::from_raw(1) }).unwrap();
        ev.refresh_after(&t, &scope);
        assert_eq!(ids(&ev.eval(&parse("/a").unwrap())), vec![3]);
        assert!(ev.eval(&q).is_empty());
    }

    #[test]
    fn interleaved_scoped_refreshes_match_full_refresh() {
        // A mixed apply/undo sequence where every step goes through
        // refresh_after, checked against a from-scratch evaluator.
        let mut t = parse_term("root(a#1(b#2(c#3),d#4),e#5)").unwrap();
        let queries: Vec<_> =
            ["/a", "//b", "/a/b[/c]", "//*", "/a[/d]//c"].map(|s| parse(s).unwrap()).into();
        let mut ev = Evaluator::new(&t);
        for q in &queries {
            ev.eval(q); // prime caches
        }
        let ops = [
            Update::Relabel { node: NodeId::from_raw(4), label: Label::new("b") },
            Update::DeleteNode { node: NodeId::from_raw(2) },
            Update::Relabel { node: NodeId::from_raw(3), label: Label::new("a") },
            Update::Move { node: NodeId::from_raw(3), new_parent: NodeId::from_raw(5) },
            Update::ReplaceId { node: NodeId::from_raw(5), new_id: NodeId::from_raw(50) },
        ];
        let mut stack = Vec::new();
        for op in &ops {
            let (token, scope) = apply_undoable(&mut t, op).unwrap();
            stack.push(token);
            ev.refresh_after(&t, &scope);
            let mut oracle = Evaluator::new(&t);
            for q in &queries {
                assert_eq!(ev.eval(q), oracle.eval(q), "{op} / {q}");
            }
        }
        while let Some(token) = stack.pop() {
            let scope = undo(&mut t, token).unwrap();
            ev.refresh_after(&t, &scope);
        }
        let mut oracle = Evaluator::new(&t);
        for q in &queries {
            assert_eq!(ev.eval(q), oracle.eval(q), "after full unwind / {q}");
        }
    }

    /// A hand-rolled two-state automaton for the batch `["/a", "/x[/b]"]`:
    /// pattern 0 (`/a`) is compiled — state 1 = "depth-1 node labeled a" —
    /// and pattern 1 rides along as a fallback. Exercises the engine pass
    /// without depending on `xuc_automata` (whose `CompiledPatternSet`
    /// implements the same trait; unit tests cannot link it because of the
    /// dev-dependency cycle — integration tests and doctests can).
    struct DepthOneA {
        fallback: Vec<(usize, Pattern)>,
    }

    impl PatternSetAutomaton for DepthOneA {
        fn pattern_count(&self) -> usize {
            2
        }

        fn start_state(&self) -> u32 {
            0
        }

        fn step(&self, state: u32, label: Label) -> u32 {
            if state == 0 && label == Label::new("a") {
                1
            } else {
                2 // dead
            }
        }

        fn accept_row(&self, state: u32) -> &[u64] {
            const ROWS: [[u64; 1]; 3] = [[0], [0b01], [0]];
            &ROWS[state as usize]
        }

        fn fallbacks(&self) -> &[(usize, Pattern)] {
            &self.fallback
        }
    }

    #[test]
    fn eval_set_runs_automaton_and_fallbacks() {
        let t = parse_term("root(a#1(a#2),x#3(b#4),a#5)").unwrap();
        let batch = vec![parse("/a").unwrap(), parse("/x[/b]").unwrap()];
        let set = DepthOneA { fallback: vec![(1, batch[1].clone())] };
        let mut ev = Evaluator::new(&t);
        let rows = ev.eval_set(&set);
        assert_eq!(rows, ev.eval_all(&batch));
        assert_eq!(ids(&rows[0]), vec![1, 5], "depth-1 a nodes only (a#2 is depth 2)");
        assert_eq!(ids(&rows[1]), vec![3], "fallback pattern answered per-pattern");

        // Subtree evaluation re-anchors the automaton at `start`.
        let below = ev.eval_set_at(&set, NodeId::from_raw(1));
        assert_eq!(below, vec![ev.eval_at(&batch[0], NodeId::from_raw(1)), BTreeSet::new()]);
        assert_eq!(ids(&below[0]), vec![2]);
    }

    #[test]
    fn eval_set_delta_splices_relabels_structural_and_swaps() {
        use xuc_xtree::DirtyRegion;
        let mut t = parse_term("root(a#1(a#2,b#3),x#4(b#5),a#6)").unwrap();
        let set = DepthOneA { fallback: Vec::new() };
        let mut ev = Evaluator::new(&t);
        let base = ev.eval_set(&set);
        assert_eq!(ids(&base[0]), vec![1, 6]);

        // A batch mixing every scope class: a structural delete inside
        // a#1, a pinpoint relabel turning x#4 into a depth-1 `a`, and an
        // id swap of a#6 outside every dirty subtree.
        let fresh = NodeId::fresh();
        let mut region = DirtyRegion::new();
        let mut stack = Vec::new();
        for op in [
            Update::DeleteSubtree { node: NodeId::from_raw(2) },
            Update::Relabel { node: NodeId::from_raw(4), label: Label::new("a") },
            Update::ReplaceId { node: NodeId::from_raw(6), new_id: fresh },
        ] {
            let (token, scope) = apply_undoable(&mut t, &op).unwrap();
            ev.refresh_after(&t, &scope);
            region.record(&t, &scope);
            stack.push(token);
        }
        assert_eq!(region.structural_roots(), [NodeId::from_raw(1)]);
        assert_eq!(region.relabels(), [(NodeId::from_raw(4), Label::new("x"))]);
        assert_eq!(region.id_swaps().len(), 1);

        let spliced = ev.eval_set_delta(&set, &region, &base);
        assert_eq!(spliced, ev.eval_set(&set), "delta must equal the full pass");
        assert_eq!(ids(&spliced[0]), vec![1, 4, fresh.raw()]);

        // Unwinding through the same region (undo scopes recorded too)
        // splices straight back to the baseline.
        while let Some(token) = stack.pop() {
            let scope = undo(&mut t, token).unwrap();
            ev.refresh_after(&t, &scope);
            region.record(&t, &scope);
        }
        assert!(region.id_swaps().is_empty(), "swap-back cancels the patch");
        assert_eq!(ev.eval_set_delta(&set, &region, &base), base);
    }

    #[test]
    fn eval_set_splice_patches_in_place_and_reverts() {
        use xuc_xtree::DirtyRegion;
        let mut t = parse_term("root(a#1(a#2,b#3),x#4(b#5),a#6)").unwrap();
        let set = DepthOneA { fallback: Vec::new() };
        let mut ev = Evaluator::new(&t);
        let base = ev.eval_set(&set);

        let mut region = DirtyRegion::new();
        let mut live = base.clone();
        // Deletion bookkeeping mirrors the session: doomed refs first.
        region.record_removals(&t.subtree_nodes(NodeId::from_raw(1)).unwrap());
        let (_tok, scope) =
            apply_undoable(&mut t, &Update::DeleteSubtree { node: NodeId::from_raw(1) }).unwrap();
        ev.refresh_after(&t, &scope);
        region.record(&t, &scope);
        let (_tok, scope) = apply_undoable(
            &mut t,
            &Update::Relabel { node: NodeId::from_raw(4), label: Label::new("a") },
        )
        .unwrap();
        ev.refresh_after(&t, &scope);
        region.record(&t, &scope);

        let journal = ev.eval_set_splice(&set, &region, &mut live).expect("splice applies");
        assert_eq!(live, ev.eval_set(&set), "in-place splice must equal the full pass");
        assert_eq!(ids(&live[0]), vec![4, 6]);
        // Net changes are exactly base \ now and now \ base: a#1 left the
        // depth-1 `a` set, x#4 (now `a`) joined it; a#6 is untouched.
        let (net_removed, net_added) = journal.net_changes(0);
        assert_eq!(net_removed, vec![NodeRef { id: NodeId::from_raw(1), label: Label::new("a") }]);
        assert_eq!(net_added, vec![NodeRef { id: NodeId::from_raw(4), label: Label::new("a") }]);
        assert!(!journal.is_empty());
        // Revert restores the pre-splice baselines exactly.
        journal.revert(&mut live);
        assert_eq!(live, base);
        // A clean region splices to an empty journal.
        assert!(ev
            .eval_set_splice(&set, &DirtyRegion::new(), &mut live)
            .expect("clean region")
            .is_empty());
        assert_eq!(live, base);
    }

    #[test]
    fn eval_set_delta_degenerate_regions() {
        use xuc_xtree::{DirtyRegion, EditScope};
        let t = parse_term("root(a#1(a#2),x#3)").unwrap();
        let set = DepthOneA { fallback: Vec::new() };
        let mut ev = Evaluator::new(&t);
        let base = ev.eval_set(&set);
        // Clean region: the baseline is the answer.
        assert_eq!(ev.eval_set_delta(&set, &DirtyRegion::new(), &base), base);
        // Poisoned region: falls back to (and equals) the full pass.
        let mut full = DirtyRegion::new();
        full.record(&t, &EditScope::Structural { root: None });
        assert_eq!(ev.eval_set_delta(&set, &full, &base), base);
        // Whole-tree dirty root: recompute-everything still equals it.
        let mut rooted = DirtyRegion::new();
        rooted.record(&t, &EditScope::Structural { root: Some(t.root_id()) });
        assert_eq!(ev.eval_set_delta(&set, &rooted, &base), base);
        // Mismatched baseline width: full-pass fallback, exact answer.
        assert_eq!(ev.eval_set_delta(&set, &rooted, &[]), base);
    }

    #[test]
    #[should_panic(expected = "invalidate")]
    fn eval_set_checks_staleness() {
        let t = parse_term("root(a#1)").unwrap();
        let mut ev = Evaluator::new(&t);
        ev.invalidate();
        let set = DepthOneA { fallback: Vec::new() };
        let _ = ev.eval_set(&set);
    }

    #[test]
    fn eval_ids_projection() {
        let t = parse_term("root(a#1(b#2),a#3)").unwrap();
        let mut ev = Evaluator::new(&t);
        let q = parse("/a").unwrap();
        let want: BTreeSet<NodeId> = [NodeId::from_raw(1), NodeId::from_raw(3)].into();
        assert_eq!(ev.eval_ids(&q), want);
    }
}
