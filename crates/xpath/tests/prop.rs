//! Property tests: the PTIME evaluator against the naive oracle, and
//! containment against direct model checking. The reusable bitset
//! [`Evaluator`] is pinned against both the naive oracle and the cold
//! per-call `eval_at`, including re-evaluation after in-place edits and
//! their undos. The set-at-a-time path (`eval_set` over a
//! [`xuc_automata::PatternSetCompiler`] batch) is pinned against the
//! per-pattern path and the naive oracle over random trees, random mixed
//! pattern batches, and post-edit/undo refresh sequences. The
//! edit-proportional splice (`eval_set_delta` over an accumulated
//! [`xuc_xtree::DirtyRegion`]) is pinned against all three on the same
//! sequences, including regions that merge into ancestor scopes and the
//! predicate-pattern fallback path.

use proptest::prelude::*;
use xuc_automata::PatternSetCompiler;
use xuc_xpath::{canonical, containment, eval, naive, Axis, Evaluator, Pattern, PatternBuilder};
use xuc_xtree::{apply_undoable, undo, DataTree, DirtyRegion, Label, NodeId, Update};

const LABELS: &[&str] = &["a", "b", "c", "d"];

/// Strategy: a random tree over a small alphabet, encoded as a parent-pointer
/// vector (node i ≥ 1 hangs under a random earlier node).
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = DataTree> {
    (1..max_nodes).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let labels = proptest::collection::vec(0..LABELS.len(), n);
        (parents, labels).prop_map(|(parents, labels)| {
            let mut tree = DataTree::new("root");
            let mut ids = vec![tree.root_id()];
            for (i, p) in parents.iter().enumerate() {
                let id = tree.add(ids[*p], LABELS[labels[i + 1]]).unwrap();
                ids.push(id);
            }
            tree
        })
    })
}

/// Strategy: a random pattern with up to `max_nodes` nodes. Each node gets a
/// random parent among the earlier nodes (node 0 is the first step); the
/// output is the deepest node of the chain containing node 0 — for
/// simplicity we pick the last node on the path built from node 0 downward.
fn pattern_strategy(max_nodes: usize) -> impl Strategy<Value = Pattern> {
    pattern_strategy_with(max_nodes, true)
}

fn pattern_strategy_with(max_nodes: usize, allow_desc: bool) -> impl Strategy<Value = Pattern> {
    (1..max_nodes).prop_flat_map(move |n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let tests = proptest::collection::vec(0..=LABELS.len(), n); // == len => wildcard
        let axes = if allow_desc {
            proptest::collection::vec(any::<bool>().boxed(), n)
        } else {
            proptest::collection::vec(Just(false).boxed(), n)
        };
        (parents, tests, axes).prop_map(|(parents, tests, axes)| {
            let axis_of = |b: bool| if b { Axis::Descendant } else { Axis::Child };
            let test_of = |t: usize| {
                if t == LABELS.len() {
                    "*"
                } else {
                    LABELS[t]
                }
            };
            let mut b = PatternBuilder::new(axis_of(axes[0]), test_of(tests[0]));
            let mut idxs = vec![b.root()];
            for (i, p) in parents.iter().enumerate() {
                let idx = b.add(idxs[*p], axis_of(axes[i + 1]), test_of(tests[i + 1]));
                idxs.push(idx);
            }
            // Output: walk from the root taking the first child each time.
            let probe = b.finish(0);
            let mut cur = probe.root();
            while let Some(&c) = probe.children(cur).first() {
                cur = c;
            }
            let mut b2 = PatternBuilder::new(axis_of(axes[0]), test_of(tests[0]));
            let mut idxs2 = vec![b2.root()];
            for (i, p) in parents.iter().enumerate() {
                let idx = b2.add(idxs2[*p], axis_of(axes[i + 1]), test_of(tests[i + 1]));
                idxs2.push(idx);
            }
            b2.finish(cur)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eval_matches_naive(tree in tree_strategy(12), q in pattern_strategy(6)) {
        prop_assert_eq!(eval::eval(&q, &tree), naive::eval(&q, &tree));
    }

    #[test]
    fn eval_at_matches_naive(tree in tree_strategy(12), q in pattern_strategy(5)) {
        for id in tree.node_ids() {
            prop_assert_eq!(eval::eval_at(&q, &tree, id), naive::eval_at(&q, &tree, id));
        }
    }

    #[test]
    fn containment_respected_by_eval(
        tree in tree_strategy(10),
        q1 in pattern_strategy(4),
        q2 in pattern_strategy(4),
    ) {
        // If q1 ⊆ q2 is claimed, every evaluation must respect it.
        if containment::contains(&q1, &q2) {
            let r1 = eval::eval(&q1, &tree);
            let r2 = eval::eval(&q2, &tree);
            prop_assert!(r1.is_subset(&r2), "q1={} q2={} tree={:?}", q1, q2, tree);
        }
    }

    #[test]
    fn non_containment_has_canonical_witness(
        q1 in pattern_strategy(4),
        q2 in pattern_strategy(4),
    ) {
        // contains() and the raw canonical-model procedure must agree.
        prop_assert_eq!(
            containment::contains(&q1, &q2),
            containment::contains_canonical(&q1, &q2),
            "q1={} q2={}", &q1, &q2
        );
    }

    #[test]
    fn canonical_models_self_select(q in pattern_strategy(5)) {
        let z = canonical::fresh_label_for([&q]);
        for m in canonical::canonical_models(&q, 2, z) {
            let r = eval::eval(&q, &m.tree);
            prop_assert!(r.iter().any(|n| n.id == m.output));
        }
    }

    #[test]
    fn display_parse_roundtrip(q in pattern_strategy(6)) {
        let printed = q.to_string();
        let reparsed = xuc_xpath::parse(&printed).unwrap();
        prop_assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn bitset_evaluator_matches_naive_and_cold_eval(
        tree in tree_strategy(12),
        q in pattern_strategy(6),
    ) {
        let mut ev = Evaluator::new(&tree);
        let batch = ev.eval(&q);
        prop_assert_eq!(&batch, &naive::eval(&q, &tree));
        prop_assert_eq!(&batch, &eval::eval(&q, &tree));
        for id in tree.node_ids() {
            prop_assert_eq!(ev.eval_at(&q, id), eval::eval_at(&q, &tree, id));
        }
    }

    #[test]
    fn evaluator_batch_is_pointwise_eval(
        tree in tree_strategy(10),
        q1 in pattern_strategy(4),
        q2 in pattern_strategy(4),
        q3 in pattern_strategy(4),
    ) {
        let queries = vec![q1, q2, q3];
        let batch = Evaluator::new(&tree).eval_all(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            prop_assert_eq!(r, &eval::eval(q, &tree));
        }
    }

    #[test]
    fn evaluator_tracks_edits_and_undo(
        tree in tree_strategy(12),
        q in pattern_strategy(5),
        op_choice in 0..4usize,
        node_pick in 0..64usize,
    ) {
        let mut work = tree.clone();
        let mut ev = Evaluator::new(&work);
        let before_result = ev.eval(&q);

        // Pick a deterministic edit target among the non-root nodes (the
        // insert case may target the root too).
        let ids = work.node_ids();
        let target = if ids.len() > 1 {
            ids[1 + node_pick % (ids.len() - 1)]
        } else {
            ids[0]
        };
        let op = match op_choice {
            0 => Update::Relabel { node: target, label: Label::new("d") },
            1 => Update::DeleteSubtree { node: target },
            2 => Update::DeleteNode { node: target },
            _ => Update::InsertLeaf {
                parent: target,
                id: NodeId::fresh(),
                label: Label::new("b"),
            },
        };
        ev.invalidate();
        if let Ok((token, _scope)) = apply_undoable(&mut work, &op) {
            // After the edit: the refreshed snapshot matches the oracle on
            // the edited tree.
            ev.refresh(&work);
            prop_assert_eq!(ev.eval(&q), naive::eval(&q, &work));
            // After the undo: results are bit-identical to pre-edit.
            undo(&mut work, token).unwrap();
            prop_assert!(work.identified_eq(&tree), "undo must restore the tree");
            ev.refresh(&work);
            let after_undo = ev.eval(&q);
            prop_assert_eq!(&after_undo, &before_result);
            prop_assert_eq!(&after_undo, &naive::eval(&q, &tree));
        } else {
            // Root-targeting delete ops fail without mutating: refreshing
            // must be a no-op for results.
            ev.refresh(&work);
            prop_assert_eq!(ev.eval(&q), before_result);
        }
    }

    #[test]
    fn scoped_refresh_equals_full_refresh_and_naive(
        tree in tree_strategy(12),
        q in pattern_strategy(5),
        ops in proptest::collection::vec((0..5usize, 0..64usize, 0..64usize), 1..8),
    ) {
        // Random edit sequences (relabel, detach, splice, move, replace-id)
        // applied through the edit-scope protocol: after every apply and
        // every undo, the incrementally refreshed evaluator must agree with
        // a from-scratch evaluator and with the naive oracle.
        let mut work = tree.clone();
        let mut inc = Evaluator::new(&work);
        inc.eval(&q); // prime the label-row cache so in-place patching is exercised
        let mut stack = Vec::new();
        for (op_choice, pick_a, pick_b) in ops {
            let ids = work.node_ids();
            let target = if ids.len() > 1 {
                ids[1 + pick_a % (ids.len() - 1)]
            } else {
                ids[0]
            };
            let other = ids[pick_b % ids.len()];
            let op = match op_choice {
                0 => Update::Relabel {
                    node: target,
                    label: Label::new(LABELS[pick_b % LABELS.len()]),
                },
                1 => Update::DeleteSubtree { node: target },
                2 => Update::DeleteNode { node: target },
                3 => Update::Move { node: target, new_parent: other },
                _ => Update::ReplaceId { node: target, new_id: NodeId::fresh() },
            };
            let Ok((token, scope)) = apply_undoable(&mut work, &op) else { continue };
            stack.push(token);
            inc.refresh_after(&work, &scope);
            let incremental = inc.eval(&q);
            prop_assert_eq!(&incremental, &Evaluator::new(&work).eval(&q), "apply {}", &op);
            prop_assert_eq!(&incremental, &naive::eval(&q, &work), "apply {}", &op);
        }
        while let Some(token) = stack.pop() {
            let scope = undo(&mut work, token).unwrap();
            inc.refresh_after(&work, &scope);
            let incremental = inc.eval(&q);
            prop_assert_eq!(&incremental, &Evaluator::new(&work).eval(&q));
            prop_assert_eq!(&incremental, &naive::eval(&q, &work));
        }
        prop_assert!(work.identified_eq(&tree), "full unwind must restore the seed");
    }

    #[test]
    fn eval_set_matches_eval_all_and_naive(
        tree in tree_strategy(12),
        q1 in pattern_strategy(5),
        q2 in pattern_strategy(5),
        q3 in pattern_strategy(4),
        q4 in pattern_strategy(4),
    ) {
        // Random mixed batches: linear patterns compile, predicate
        // patterns ride the fallback path — the batch answer must be the
        // per-pattern answer must be the naive oracle's, entry by entry.
        let batch = vec![q1, q2, q3, q4];
        let compiled = PatternSetCompiler::compile(&batch);
        let mut ev = Evaluator::new(&tree);
        let rows = ev.eval_set(&compiled);
        prop_assert_eq!(&rows, &ev.eval_all(&batch));
        for (q, r) in batch.iter().zip(&rows) {
            prop_assert_eq!(r, &naive::eval(q, &tree), "pattern {}", q);
        }
        // Subtree anchoring agrees with per-pattern eval_at on every node.
        for id in tree.node_ids() {
            let at = ev.eval_set_at(&compiled, id);
            for (q, r) in batch.iter().zip(&at) {
                prop_assert_eq!(r, &ev.eval_at(q, id), "pattern {} at {}", q, id);
            }
        }
    }

    #[test]
    fn eval_set_tracks_scoped_refreshes(
        tree in tree_strategy(12),
        q1 in pattern_strategy(5),
        q2 in pattern_strategy(5),
        q3 in pattern_strategy(4),
        ops in proptest::collection::vec((0..5usize, 0..64usize, 0..64usize), 1..6),
    ) {
        // The compiled automaton is built ONCE; the evaluator is patched
        // via refresh_after across a random apply/undo sequence. After
        // every step the single-pass answer must match a from-scratch
        // evaluator's per-pattern answer — i.e. the set path needs no
        // recompilation and no extra re-sync to stay exact.
        let batch = vec![q1, q2, q3];
        let compiled = PatternSetCompiler::compile(&batch);
        let mut work = tree.clone();
        let mut inc = Evaluator::new(&work);
        inc.eval_set(&compiled); // prime caches (fallback label rows)
        let mut stack = Vec::new();
        for (op_choice, pick_a, pick_b) in ops {
            let ids = work.node_ids();
            let target = if ids.len() > 1 { ids[1 + pick_a % (ids.len() - 1)] } else { ids[0] };
            let other = ids[pick_b % ids.len()];
            let op = match op_choice {
                0 => Update::Relabel {
                    node: target,
                    label: Label::new(LABELS[pick_b % LABELS.len()]),
                },
                1 => Update::DeleteSubtree { node: target },
                2 => Update::DeleteNode { node: target },
                3 => Update::Move { node: target, new_parent: other },
                _ => Update::ReplaceId { node: target, new_id: NodeId::fresh() },
            };
            let Ok((token, scope)) = apply_undoable(&mut work, &op) else { continue };
            stack.push(token);
            inc.refresh_after(&work, &scope);
            let rows = inc.eval_set(&compiled);
            prop_assert_eq!(&rows, &Evaluator::new(&work).eval_all(&batch), "apply {}", &op);
        }
        while let Some(token) = stack.pop() {
            let scope = undo(&mut work, token).unwrap();
            inc.refresh_after(&work, &scope);
            let rows = inc.eval_set(&compiled);
            prop_assert_eq!(&rows, &Evaluator::new(&work).eval_all(&batch));
        }
        prop_assert!(work.identified_eq(&tree), "full unwind must restore the seed");
    }

    #[test]
    fn eval_set_delta_matches_eval_set_eval_all_and_naive(
        tree in tree_strategy(12),
        q1 in pattern_strategy(5),
        q2 in pattern_strategy(5),
        q3 in pattern_strategy(4),
        q4 in pattern_strategy(4),
        ops in proptest::collection::vec((0..6usize, 0..64usize, 0..64usize), 1..9),
    ) {
        // The delta-admission contract: one baseline eval_set, then an
        // arbitrary edit/undo sequence accumulated into ONE DirtyRegion —
        // after every step the spliced answer must equal the full set
        // pass, the per-pattern pass, and the naive oracle. Random mixed
        // batches exercise both the genuine splice path (all-linear) and
        // the predicate-fallback full pass; deep edit sequences produce
        // regions whose scopes merge into ancestor scopes (moves/deletes
        // above earlier dirty roots).
        let batch = vec![q1, q2, q3, q4];
        let compiled = PatternSetCompiler::compile(&batch);
        let mut work = tree.clone();
        let mut inc = Evaluator::new(&work);
        let base = inc.eval_set(&compiled);
        let mut region = DirtyRegion::new();
        let mut stack = Vec::new();
        for (op_choice, pick_a, pick_b) in ops {
            let ids = work.node_ids();
            let target = if ids.len() > 1 { ids[1 + pick_a % (ids.len() - 1)] } else { ids[0] };
            let other = ids[pick_b % ids.len()];
            let op = match op_choice {
                0 => Update::Relabel {
                    node: target,
                    label: Label::new(LABELS[pick_b % LABELS.len()]),
                },
                1 => Update::DeleteSubtree { node: target },
                2 => Update::DeleteNode { node: target },
                3 => Update::Move { node: target, new_parent: other },
                4 => Update::InsertLeaf {
                    parent: other,
                    id: NodeId::fresh(),
                    label: Label::new(LABELS[pick_a % LABELS.len()]),
                },
                _ => Update::ReplaceId { node: target, new_id: NodeId::fresh() },
            };
            // Mirror the session's bookkeeping: a deletion's doomed refs
            // are captured before it applies, for the in-place splice.
            let doomed = match &op {
                Update::DeleteSubtree { node } => work.subtree_nodes(*node).ok(),
                Update::DeleteNode { node } => work.node(*node).ok().map(|r| vec![r]),
                _ => None,
            };
            let Ok((token, scope)) = apply_undoable(&mut work, &op) else { continue };
            stack.push(token);
            if let Some(refs) = doomed {
                region.record_removals(&refs);
            }
            inc.refresh_after(&work, &scope);
            region.record(&work, &scope);
            let full_rows = inc.eval_set(&compiled);
            let delta = inc.eval_set_delta(&compiled, &region, &base);
            prop_assert_eq!(&delta, &full_rows, "apply {}", &op);
            prop_assert_eq!(&delta, &Evaluator::new(&work).eval_all(&batch), "apply {}", &op);
            for (q, r) in batch.iter().zip(&delta) {
                prop_assert_eq!(r, &naive::eval(q, &work), "apply {} / {}", &op, q);
            }
            // The in-place splice must agree wherever it applies — and its
            // journal must revert the baselines exactly.
            let mut spliced = base.clone();
            if let Some(journal) = inc.eval_set_splice(&compiled, &region, &mut spliced) {
                prop_assert_eq!(&spliced, &full_rows, "splice after {}", &op);
                journal.revert(&mut spliced);
                prop_assert_eq!(&spliced, &base, "revert after {}", &op);
            }
        }
        // Undos feed the SAME region: the splice must track back down.
        while let Some(token) = stack.pop() {
            let scope = undo(&mut work, token).unwrap();
            inc.refresh_after(&work, &scope);
            region.record(&work, &scope);
            let delta = inc.eval_set_delta(&compiled, &region, &base);
            prop_assert_eq!(&delta, &inc.eval_set(&compiled));
        }
        prop_assert!(work.identified_eq(&tree), "full unwind must restore the seed");
        prop_assert_eq!(inc.eval_set_delta(&compiled, &region, &base), base);
    }

    #[test]
    fn intersection_is_semantic_intersection(
        tree in tree_strategy(10),
        q1 in pattern_strategy_with(4, false),
        q2 in pattern_strategy_with(4, false),
    ) {
        let r1 = eval::eval(&q1, &tree);
        let r2 = eval::eval(&q2, &tree);
        let expected: std::collections::BTreeSet<_> =
            r1.intersection(&r2).copied().collect();
        match xuc_xpath::intersect::intersect(&q1, &q2) {
            Some(qi) => prop_assert_eq!(eval::eval(&qi, &tree), expected),
            None => prop_assert!(expected.is_empty()),
        }
    }
}
