//! Simulated cryptographic enforcement of update constraints (Section 1,
//! Figure 1).
//!
//! The paper motivates update constraints by exchange scenarios where a
//! *Source* publishes a document, a *Broker* edits it within agreed limits,
//! and a *User* must check validity **without seeing the original**. The
//! paper points to signature schemes for modifiable collections
//! ([1, 8, 21, 22]) as the enforcement mechanism; this crate simulates
//! that layer with the same *functional* contract:
//!
//! * [`Signer::certify`] — the Source evaluates every constraint range on
//!   its instance `I` and signs the selected `(id, label)` sets,
//! * [`Certificate::verify`] — the User re-evaluates the ranges on the
//!   received instance `J` and checks the signed inclusions
//!   (`⊇` for ↑ ranges, `⊆` for ↓), after authenticating each signed set.
//!
//! `verify(J, cert) == Ok` holds exactly when `(I, J)` is valid for the
//! certified constraints — the certificate is a faithful stand-in for `I`.
//!
//! **This is a simulation**: the MAC is a keyed FNV-style hash, not a
//! cryptographic primitive. The reasoning machinery of `xuc-core` never
//! depends on the hash strength; it only consumes the validity verdicts.

use std::collections::BTreeSet;
use std::fmt;
use xuc_core::{Constraint, ConstraintKind};
use xuc_xpath::Evaluator;
use xuc_xtree::{DataTree, NodeRef};

/// A 64-bit FNV-1a style keyed digest (simulation of a MAC).
fn mac(key: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ key;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // One extra mixing round keyed again, so extension attacks on the toy
    // hash are at least inconvenient.
    h ^= key.rotate_left(17);
    h = h.wrapping_mul(0x100_0000_01b3);
    h
}

fn serialize_set(set: &BTreeSet<NodeRef>) -> Vec<u8> {
    let mut out = Vec::with_capacity(set.len() * 12);
    for n in set {
        out.extend_from_slice(&n.id.raw().to_le_bytes());
        out.extend_from_slice(n.label.as_str().as_bytes());
        out.push(0);
    }
    out
}

/// One certified range: the constraint, the signed node set and its MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertEntry {
    pub constraint: Constraint,
    pub snapshot: BTreeSet<NodeRef>,
    pub tag: u64,
}

/// A certificate over a document: what the Source vouches for. Successive
/// certificates of one document are **hash-linked**: each carries the
/// [`digest`](Certificate::digest) of its predecessor, and a keyed
/// [`chain_tag`](Certificate::chain_tag) binds that link into the signed
/// payload — so a full update history can be audited offline
/// ([`verify_chained`](Certificate::verify_chained)), and no certificate
/// can be spliced out of or re-ordered within its chain without breaking
/// a MAC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Certificate {
    pub entries: Vec<CertEntry>,
    /// [`digest`](Certificate::digest) of this document's previous
    /// certificate; `0` marks the origin of a chain (the publish-time
    /// certificate).
    pub prev_digest: u64,
    /// MAC over `prev_digest` and every entry's tag — the hash-link,
    /// signed so the chain structure itself is tamper-evident.
    pub chain_tag: u64,
}

/// Verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A signed set's MAC does not check out (tampered certificate).
    BadSignature { index: usize },
    /// The certificate's chain link MAC does not check out (the link to
    /// the predecessor was tampered with).
    BadChainTag,
    /// The certificate's predecessor link names a different certificate
    /// than expected (chain re-ordered, spliced, or forked).
    ChainBroken { expected: u64, found: u64 },
    /// The document violates a certified constraint.
    Violated { constraint: String, offenders: usize },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadSignature { index } => {
                write!(f, "certificate entry {index} failed authentication")
            }
            VerifyError::BadChainTag => write!(f, "certificate chain link failed authentication"),
            VerifyError::ChainBroken { expected, found } => {
                write!(
                    f,
                    "certificate chain broken: expected predecessor {expected:#018x}, \
                     found {found:#018x}"
                )
            }
            VerifyError::Violated { constraint, offenders } => {
                write!(f, "document violates {constraint} ({offenders} offending nodes)")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The Source's signing identity (shared-key simulation).
#[derive(Debug, Clone, Copy)]
pub struct Signer {
    key: u64,
}

impl Signer {
    pub fn new(key: u64) -> Signer {
        Signer { key }
    }

    /// Certifies `document` under `constraints`: evaluates each range
    /// (against one shared snapshot of the document) and signs the
    /// selected set.
    pub fn certify(&self, document: &DataTree, constraints: &[Constraint]) -> Certificate {
        let mut ev = Evaluator::new(document);
        let snapshots: Vec<BTreeSet<NodeRef>> =
            constraints.iter().map(|c| ev.eval(&c.range)).collect();
        self.certify_precomputed(constraints, &snapshots)
    }

    /// [`certify`](Self::certify) over range results the caller already
    /// holds: `snapshots[i]` must be `constraints[i].range`'s evaluation
    /// on the document being certified. The service layer's commit path
    /// uses this to sign the exact sets its admission check just computed
    /// (one `eval_set` pass), instead of re-evaluating the whole suite.
    /// The result is a chain **origin** (`prev_digest = 0`); commits use
    /// [`certify_chained`](Self::certify_chained) to link onto the
    /// document's previous certificate.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn certify_precomputed(
        &self,
        constraints: &[Constraint],
        snapshots: &[BTreeSet<NodeRef>],
    ) -> Certificate {
        self.certify_chained(constraints, snapshots, 0)
    }

    /// [`certify_precomputed`](Self::certify_precomputed) linked onto a
    /// predecessor: `prev_digest` must be the previous certificate's
    /// [`digest`](Certificate::digest) (`0` for the first certificate of
    /// a document). The link is folded into the signed payload via the
    /// keyed [`chain_tag`](Certificate::chain_tag), so an auditor holding
    /// the chain can prove each certificate is the authentic successor of
    /// the one before it.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn certify_chained(
        &self,
        constraints: &[Constraint],
        snapshots: &[BTreeSet<NodeRef>],
        prev_digest: u64,
    ) -> Certificate {
        assert_eq!(constraints.len(), snapshots.len(), "one snapshot per constraint");
        let entries: Vec<CertEntry> = constraints
            .iter()
            .zip(snapshots)
            .map(|(c, snapshot)| {
                let tag = mac(self.key, &serialize_set(snapshot));
                CertEntry { constraint: c.clone(), snapshot: snapshot.clone(), tag }
            })
            .collect();
        let chain_tag = mac(self.key, &chain_payload(prev_digest, &entries));
        Certificate { entries, prev_digest, chain_tag }
    }
}

/// The bytes the chain MAC covers: the predecessor link plus every
/// entry's constraint text and tag (the tags already authenticate the
/// signed sets, so covering them covers the whole certificate content).
fn chain_payload(prev_digest: u64, entries: &[CertEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * 24);
    out.extend_from_slice(&prev_digest.to_le_bytes());
    for e in entries {
        let c = e.constraint.to_string();
        out.extend_from_slice(&(c.len() as u64).to_le_bytes());
        out.extend_from_slice(c.as_bytes());
        out.extend_from_slice(&e.tag.to_le_bytes());
    }
    out
}

impl Certificate {
    /// An **unkeyed** content digest of this certificate — what the
    /// successor certificate stores as its `prev_digest`. Covers the
    /// predecessor link, every constraint, every signed set and every
    /// MAC, so two certificates digest equal iff their entire content
    /// (including chain position) is equal.
    pub fn digest(&self) -> u64 {
        let mut data = Vec::new();
        data.extend_from_slice(&self.prev_digest.to_le_bytes());
        data.extend_from_slice(&self.chain_tag.to_le_bytes());
        for e in &self.entries {
            let c = e.constraint.to_string();
            data.extend_from_slice(&(c.len() as u64).to_le_bytes());
            data.extend_from_slice(c.as_bytes());
            data.extend_from_slice(&serialize_set(&e.snapshot));
            data.extend_from_slice(&e.tag.to_le_bytes());
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    /// The User-side check: authenticate every entry and the chain link,
    /// then compare the signed snapshot against the received document's
    /// evaluation (one shared snapshot of the received document for all
    /// entries).
    pub fn verify(&self, key: u64, received: &DataTree) -> Result<(), VerifyError> {
        if mac(key, &chain_payload(self.prev_digest, &self.entries)) != self.chain_tag {
            return Err(VerifyError::BadChainTag);
        }
        let mut ev = Evaluator::new(received);
        for (index, e) in self.entries.iter().enumerate() {
            if mac(key, &serialize_set(&e.snapshot)) != e.tag {
                return Err(VerifyError::BadSignature { index });
            }
            let now = ev.eval(&e.constraint.range);
            let offenders = match e.constraint.kind {
                // no-remove: everything signed must still be selected.
                ConstraintKind::NoRemove => e.snapshot.difference(&now).count(),
                // no-insert: nothing beyond the signed set may be selected.
                ConstraintKind::NoInsert => now.difference(&e.snapshot).count(),
            };
            if offenders > 0 {
                return Err(VerifyError::Violated {
                    constraint: e.constraint.to_string(),
                    offenders,
                });
            }
        }
        Ok(())
    }

    /// [`verify`](Self::verify) plus the chain-position check: the
    /// certificate must name `expected_prev` as its predecessor. Walking
    /// a document's certificates oldest-first and threading each
    /// [`digest`](Self::digest) into the next call proves the whole
    /// history is one unbroken, authentic chain.
    pub fn verify_chained(
        &self,
        key: u64,
        received: &DataTree,
        expected_prev: u64,
    ) -> Result<(), VerifyError> {
        if self.prev_digest != expected_prev {
            return Err(VerifyError::ChainBroken {
                expected: expected_prev,
                found: self.prev_digest,
            });
        }
        self.verify(key, received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn verify_equals_pair_validity() {
        let i = parse_term("h(patient#2(visit#6,visit#7),patient#3(clinicalTrial#8))").unwrap();
        let constraints = vec![
            c("(/patient[/visit], ↓)"),
            c("(/patient[/clinicalTrial], ↓)"),
            c("(/patient[/clinicalTrial], ↑)"),
            c("(/patient/visit, ↑)"),
        ];
        let signer = Signer::new(0xfeed);
        let cert = signer.certify(&i, &constraints);

        // The Fig. 2 J violates c3 (visit n7 removed).
        let j = parse_term("h(patient#2(visit#6),patient#3(clinicalTrial#8),patient#4)").unwrap();
        let err = cert.verify(0xfeed, &j).unwrap_err();
        assert!(matches!(err, VerifyError::Violated { .. }));
        assert_eq!(
            xuc_core::constraint::all_satisfied(&constraints, &i, &j),
            cert.verify(0xfeed, &j).is_ok()
        );

        // A compliant edit (add a visit) verifies.
        let mut j_ok = i.clone();
        j_ok.add(xuc_xtree::NodeId::from_raw(2), "visit").unwrap();
        assert!(cert.verify(0xfeed, &j_ok).is_ok());
        assert!(xuc_core::constraint::all_satisfied(&constraints, &i, &j_ok));
    }

    #[test]
    fn identity_always_verifies() {
        let i = parse_term("r(a#1(b#2),c#3)").unwrap();
        let constraints = vec![c("(//a, ↑)"), c("(//b, ↓)"), c("(/c, ↑)"), c("(/c, ↓)")];
        let cert = Signer::new(7).certify(&i, &constraints);
        assert!(cert.verify(7, &i).is_ok());
    }

    #[test]
    fn tampered_certificate_rejected() {
        let i = parse_term("r(a#1)").unwrap();
        let constraints = vec![c("(//a, ↓)")];
        let mut cert = Signer::new(42).certify(&i, &constraints);
        // Broker sneaks an extra node into the signed ↓ snapshot so its own
        // insertion would pass: authentication must catch it.
        let forged = xuc_xtree::NodeRef {
            id: xuc_xtree::NodeId::from_raw(99),
            label: xuc_xtree::Label::new("a"),
        };
        cert.entries[0].snapshot.insert(forged);
        let mut j = i.clone();
        j.add_with_id(j.root_id(), xuc_xtree::NodeId::from_raw(99), "a").unwrap();
        assert_eq!(cert.verify(42, &j), Err(VerifyError::BadSignature { index: 0 }));
    }

    #[test]
    fn precomputed_certification_matches_evaluated() {
        // certify_precomputed over the document's own range results must
        // produce a certificate indistinguishable from certify's.
        let i = parse_term("r(a#1(b#2),c#3(b#4))").unwrap();
        let constraints = vec![c("(//b, ↑)"), c("(/a, ↓)"), c("(/c[/b], ↑)")];
        let signer = Signer::new(0xd1d);
        let via_eval = signer.certify(&i, &constraints);
        let mut ev = Evaluator::new(&i);
        let sets: Vec<_> = constraints.iter().map(|x| ev.eval(&x.range)).collect();
        let via_sets = signer.certify_precomputed(&constraints, &sets);
        for (a, b) in via_eval.entries.iter().zip(&via_sets.entries) {
            assert_eq!(a.snapshot, b.snapshot);
            assert_eq!(a.tag, b.tag);
        }
        assert!(via_sets.verify(0xd1d, &i).is_ok());
    }

    #[test]
    fn chained_certificates_link_and_audit() {
        let key = 0xC4A1;
        let signer = Signer::new(key);
        let i0 = parse_term("h(patient#2(visit#6))").unwrap();
        let constraints = vec![c("(/patient/visit, ↑)"), c("(/patient, ↓)")];
        let cert0 = signer.certify(&i0, &constraints);
        assert_eq!(cert0.prev_digest, 0, "certify produces a chain origin");
        assert!(cert0.verify_chained(key, &i0, 0).is_ok());

        // The document evolves; the new certificate links onto the old.
        let mut i1 = i0.clone();
        i1.add(xuc_xtree::NodeId::from_raw(2), "visit").unwrap();
        let mut ev = Evaluator::new(&i1);
        let sets: Vec<_> = constraints.iter().map(|x| ev.eval(&x.range)).collect();
        let cert1 = signer.certify_chained(&constraints, &sets, cert0.digest());
        assert!(cert1.verify_chained(key, &i1, cert0.digest()).is_ok());
        assert_ne!(cert0.digest(), cert1.digest());

        // Naming the wrong predecessor is a broken chain…
        assert!(matches!(
            cert1.verify_chained(key, &i1, 0xdead),
            Err(VerifyError::ChainBroken { .. })
        ));
        // …and rewriting the link breaks the signed chain tag.
        let mut forged = cert1.clone();
        forged.prev_digest = 0;
        assert_eq!(forged.verify(key, &i1), Err(VerifyError::BadChainTag));
    }

    #[test]
    fn wrong_key_rejected() {
        let i = parse_term("r(a#1)").unwrap();
        let cert = Signer::new(1).certify(&i, &[c("(//a, ↑)")]);
        // The chain link is the first MAC checked, so a wrong key fails
        // there before any entry is examined.
        assert!(matches!(cert.verify(2, &i), Err(VerifyError::BadChainTag)));
        // A wrong key with a forged-but-self-consistent chain tag still
        // fails on the entry MACs.
        let mut reforged = cert.clone();
        reforged.chain_tag = mac(2, &chain_payload(reforged.prev_digest, &reforged.entries));
        assert!(matches!(reforged.verify(2, &i), Err(VerifyError::BadSignature { .. })));
    }

    #[test]
    fn agreement_with_validity_on_random_edits() {
        // The certificate verdict must coincide with pair validity for
        // arbitrary update sequences.
        let i = parse_term("r(a#1(b#2,b#3),c#4(b#5))").unwrap();
        let constraints = vec![c("(/a/b, ↑)"), c("(/a/b, ↓)"), c("(//b, ↑)"), c("(/c[/b], ↓)")];
        let cert = Signer::new(0xabc).certify(&i, &constraints);
        let edits: Vec<DataTree> = vec![
            parse_term("r(a#1(b#2,b#3),c#4(b#5))").unwrap(),
            parse_term("r(a#1(b#2),c#4(b#5,b#3))").unwrap(),
            parse_term("r(a#1(b#2,b#3,b#9),c#4(b#5))").unwrap(),
            parse_term("r(a#1(b#2,b#3),c#4)").unwrap(),
            parse_term("r(c#4(b#5),a#1(b#2,b#3(x#7)))").unwrap(),
        ];
        for j in edits {
            assert_eq!(
                cert.verify(0xabc, &j).is_ok(),
                xuc_core::constraint::all_satisfied(&constraints, &i, &j),
                "certificate and validity disagree on {j:?}"
            );
        }
    }
}
