//! The write-ahead log: length-prefixed, checksummed frames with group
//! commit and a torn-tail recovery policy.
//!
//! # Frame format
//!
//! The file opens with the 8-byte magic `XUCWAL01`; every frame after it is
//!
//! ```text
//! [u32 payload length, LE][u64 FNV-1a-64 checksum of payload, LE][payload]
//! ```
//!
//! where the payload is one [`WalRecord`] in the [`crate::codec`] encoding.
//!
//! # Torn-tail policy
//!
//! A crash can leave the file ending in a half-written frame (torn write)
//! or a frame whose bytes never reached the platter (checksum mismatch).
//! [`read_wal`] scans frames in order and **stops at the first bad one**:
//! everything before it is the durable prefix, everything after is
//! discarded — recovery truncates the file there and starts serving
//! ([`WalWriter::open`] does the truncation). Refusing to start would turn
//! every unclean shutdown into an outage; trailing garbage after a bad
//! frame is unreachable anyway because frames are only ever appended.
//!
//! # Group commit
//!
//! [`WalWriter::append`] buffers encoded frames in memory and writes +
//! syncs once every `group_commit` frames (and on [`WalWriter::sync`] /
//! drop). A crash between syncs loses at most the buffered suffix — which
//! is exactly the [`WriteFault::LoseBuffered`] fault the kill/restart
//! differential harness injects.

use crate::codec::{checksum64, Decoder, Encoder};
use crate::{
    decode_certificate, decode_suite, decode_tree, decode_updates, encode_certificate,
    encode_suite, encode_tree, encode_updates, DecodeError,
};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use xuc_core::Constraint;
use xuc_sigstore::Certificate;
use xuc_xtree::{DataTree, Update};

const WAL_MAGIC: &[u8; 8] = b"XUCWAL01";
const FRAME_HEADER: u64 = 4 + 8;

/// One logged event. The WAL records *accepted* state transitions only —
/// rejected batches leave no trace (they changed nothing).
// Publish carries a whole document tree by design; records are built
// once and consumed at the codec boundary, so boxing buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A document entered the store under `doc` with its initial tree and
    /// constraint suite. The initial certificate is recomputed on replay
    /// (publish is deterministic), so it is not logged.
    Publish { doc: String, tree: DataTree, suite: Vec<Constraint> },
    /// Commit number `commit` of `doc`: the accepted update batch and the
    /// certificate the gateway signed for the post-batch state. Replay
    /// re-admits the batch through the live admission path and checks it
    /// reproduces exactly this certificate.
    Commit { doc: String, commit: u64, updates: Vec<Update>, cert: Certificate },
}

/// Record equality is *exact*: trees compare by preorder snapshot (ids,
/// labels **and** sibling order), certificates field-for-field.
impl PartialEq for WalRecord {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                WalRecord::Publish { doc: a, tree: ta, suite: sa },
                WalRecord::Publish { doc: b, tree: tb, suite: sb },
            ) => a == b && ta.preorder_snapshot() == tb.preorder_snapshot() && sa == sb,
            (
                WalRecord::Commit { doc: a, commit: ca, updates: ua, cert: xa },
                WalRecord::Commit { doc: b, commit: cb, updates: ub, cert: xb },
            ) => a == b && ca == cb && ua == ub && xa == xb,
            _ => false,
        }
    }
}

impl WalRecord {
    /// The document this record concerns.
    pub fn doc(&self) -> &str {
        match self {
            WalRecord::Publish { doc, .. } | WalRecord::Commit { doc, .. } => doc,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::Publish { doc, tree, suite } => {
                e.u8(1);
                e.str(doc);
                encode_tree(&mut e, tree);
                encode_suite(&mut e, suite);
            }
            WalRecord::Commit { doc, commit, updates, cert } => {
                e.u8(2);
                e.str(doc);
                e.u64(*commit);
                encode_updates(&mut e, updates);
                encode_certificate(&mut e, cert);
            }
        }
        e.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut d = Decoder::new(payload);
        let rec = match d.u8()? {
            1 => {
                let doc = d.str()?.to_owned();
                let tree = decode_tree(&mut d)?;
                let suite = decode_suite(&mut d)?;
                WalRecord::Publish { doc, tree, suite }
            }
            2 => {
                let doc = d.str()?.to_owned();
                let commit = d.u64()?;
                let updates = decode_updates(&mut d)?;
                let cert = decode_certificate(&mut d)?;
                WalRecord::Commit { doc, commit, updates, cert }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        d.finish()?;
        Ok(rec)
    }
}

/// The result of scanning a WAL file: the durable records, how many bytes
/// of the file they cover, and whether a bad tail was found after them.
#[derive(Debug)]
pub struct WalScan {
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix (magic + whole good frames). Recovery
    /// truncates the file to this length before appending.
    pub valid_len: u64,
    /// True when bytes existed past `valid_len` — a torn or corrupted
    /// tail that the torn-tail policy discards.
    pub torn: bool,
}

/// Scans `path` frame by frame, stopping at the first torn or corrupted
/// frame (see the module docs). A missing file is an empty log.
pub fn read_wal(path: &Path) -> io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(WalScan { records: Vec::new(), valid_len: 0, torn: false })
        }
        Err(e) => return Err(e),
    };
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // No intact header: treat the whole file as a torn tail.
        return Ok(WalScan { records: Vec::new(), valid_len: 0, torn: !bytes.is_empty() });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return Ok(WalScan { records, valid_len: pos as u64, torn: false });
        }
        let torn = |records: Vec<WalRecord>| WalScan { records, valid_len: pos as u64, torn: true };
        if rest.len() < FRAME_HEADER as usize {
            return Ok(torn(records));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let Some(payload) = rest.get(FRAME_HEADER as usize..FRAME_HEADER as usize + len) else {
            return Ok(torn(records));
        };
        if checksum64(payload) != sum {
            return Ok(torn(records));
        }
        let Ok(rec) = WalRecord::decode(payload) else {
            return Ok(torn(records));
        };
        records.push(rec);
        pos += FRAME_HEADER as usize + len;
    }
}

/// A simulated storage fault. The first three are **crash-time** faults,
/// applied while tearing a writer down ([`WalWriter::simulate_crash`]):
/// they model what a real power loss can do to the tail of an
/// append-only file. The rest are **write-time** faults, armed on a live
/// writer (`WalWriter::inject_fault`, behind the `test-hooks` feature):
/// they surface as IO errors or latency out of [`WalWriter::sync`], which
/// is how the chaos harness exercises the retry/degrade machinery above
/// the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The in-memory group-commit buffer never reached the file: every
    /// frame since the last sync is gone.
    LoseBuffered,
    /// The last durable frame vanishes whole (its sectors never hit the
    /// platter despite the write returning).
    DropLastFrame,
    /// The last durable frame is cut mid-bytes — a torn write the
    /// checksum scan must detect and discard.
    TearLastFrame,
    /// The next `n` syncs fail with an `EINTR`-class transient error
    /// (nothing reaches the file); the sync after that succeeds. The
    /// retry loop above the log must absorb these invisibly.
    TransientOnce { n: u32 },
    /// Every sync from now on fails with `StorageFull` — the canonical
    /// fatal, non-retryable fault. Escalation (seal + degrade) is the
    /// only correct response.
    DiskFull,
    /// Every sync is charged `micros` of virtual latency (accumulated in
    /// `WalWriter::injected_latency_micros`, never actually slept)
    /// before succeeding — for modeling slow disks without slow tests.
    Latency { micros: u64 },
}

/// Live-writer fault state (`test-hooks` builds only; release builds
/// carry no injection fields).
#[cfg(any(test, feature = "test-hooks"))]
#[derive(Debug, Default)]
struct Injection {
    armed: Option<WriteFault>,
    latency_micros: u64,
}

/// Append handle on a WAL file. See the module docs for the frame format
/// and the group-commit discipline.
pub struct WalWriter {
    file: File,
    /// Durable file length (bytes actually written through).
    len: u64,
    /// Offset of the most recently written frame — where the fault
    /// injector cuts.
    last_frame_start: u64,
    pending: Vec<u8>,
    pending_frames: usize,
    group_commit: usize,
    /// Set by [`simulate_crash`](Self::simulate_crash) and [`seal`](Self::seal):
    /// suppresses the drop-time sync so crashed/sealed state stays put.
    dead: bool,
    #[cfg(any(test, feature = "test-hooks"))]
    injection: Injection,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `path`, scans it, truncates
    /// any torn tail, and positions for appending. Returns the writer and
    /// the durable records for replay.
    pub fn open(path: &Path, group_commit: usize) -> io::Result<(WalWriter, WalScan)> {
        let scan = read_wal(path)?;
        // truncate(false): the valid prefix must survive reopening — only
        // a torn tail is cut, via the explicit set_len below.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut len = scan.valid_len;
        if len == 0 {
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            len = WAL_MAGIC.len() as u64;
        } else if scan.torn {
            file.set_len(len)?;
        }
        file.seek(SeekFrom::Start(len))?;
        file.sync_all()?;
        let writer = WalWriter {
            file,
            len,
            last_frame_start: len,
            pending: Vec::new(),
            pending_frames: 0,
            group_commit: group_commit.max(1),
            dead: false,
            #[cfg(any(test, feature = "test-hooks"))]
            injection: Injection::default(),
        };
        Ok((writer, scan))
    }

    /// Frames `record` into the group-commit buffer; writes and syncs the
    /// buffer once it holds `group_commit` frames.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let payload = record.encode();
        crate::stats::bump(&crate::stats::WAL_FRAMES, 1);
        crate::stats::bump(&crate::stats::WAL_BYTES, 12 + payload.len() as u64);
        self.last_frame_start = self.len + self.pending.len() as u64;
        self.pending.extend_from_slice(
            &u32::try_from(payload.len()).expect("payload fits u32").to_le_bytes(),
        );
        self.pending.extend_from_slice(&checksum64(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.pending_frames += 1;
        if self.pending_frames >= self.group_commit {
            self.sync()?;
        }
        Ok(())
    }

    /// Writes and syncs any buffered frames.
    ///
    /// Failure leaves the buffer **intact** and the call **idempotent**:
    /// every attempt re-seeks to the durable length first, so a retry
    /// overwrites whatever partial tail an earlier failed attempt may
    /// have left instead of appending after it. That is what lets the
    /// journal's bounded-retry loop simply call `sync` again on a
    /// transient fault.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if let Some(e) = self.injected_sync_error() {
            return Err(e);
        }
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&self.pending)?;
        self.file.sync_all()?;
        crate::stats::bump(&crate::stats::WAL_FLUSHES, 1);
        crate::stats::bump(&crate::stats::WAL_FSYNCS, 1);
        self.len += self.pending.len() as u64;
        self.pending.clear();
        self.pending_frames = 0;
        Ok(())
    }

    /// Surfaces (and steps) any armed write-time fault. Compiled to a
    /// no-op without `test-hooks`.
    #[allow(unused_mut, clippy::needless_return)]
    fn injected_sync_error(&mut self) -> Option<io::Error> {
        #[cfg(any(test, feature = "test-hooks"))]
        {
            match self.injection.armed {
                Some(WriteFault::TransientOnce { n }) if n > 0 => {
                    self.injection.armed =
                        (n > 1).then_some(WriteFault::TransientOnce { n: n - 1 });
                    return Some(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected transient IO fault",
                    ));
                }
                Some(WriteFault::TransientOnce { .. }) => self.injection.armed = None,
                Some(WriteFault::DiskFull) => {
                    return Some(io::Error::new(
                        io::ErrorKind::StorageFull,
                        "injected disk-full fault",
                    ));
                }
                Some(WriteFault::Latency { micros }) => {
                    self.injection.latency_micros += micros;
                }
                Some(_) | None => {}
            }
        }
        None
    }

    /// Arms a write-time fault on this writer; the next syncs observe it
    /// (see the [`WriteFault`] variants). Re-arming replaces the previous
    /// fault; crash-time variants armed here are inert until
    /// [`simulate_crash`](Self::simulate_crash).
    #[cfg(any(test, feature = "test-hooks"))]
    pub fn inject_fault(&mut self, fault: WriteFault) {
        self.injection.armed = Some(fault);
    }

    /// Virtual latency accumulated by [`WriteFault::Latency`] syncs.
    #[cfg(any(test, feature = "test-hooks"))]
    pub fn injected_latency_micros(&self) -> u64 {
        self.injection.latency_micros
    }

    /// Seals the writer: discards buffered frames and suppresses all
    /// further IO including the drop-time sync. The on-disk log stays
    /// exactly as the last successful sync left it — this is how a
    /// degraded gateway stops journaling without risking further damage.
    pub fn seal(&mut self) {
        self.pending.clear();
        self.pending_frames = 0;
        self.dead = true;
    }

    /// Whether [`seal`](Self::seal) (or a simulated crash) has shut this
    /// writer down.
    pub fn is_sealed(&self) -> bool {
        self.dead
    }

    /// Durable bytes (what a crash without faults preserves).
    pub fn durable_len(&self) -> u64 {
        self.len
    }

    /// Number of frames waiting in the group-commit buffer.
    pub fn pending_frames(&self) -> usize {
        self.pending_frames
    }

    /// Empties the log back to just its magic header (all records are
    /// covered by snapshots). The caller's bookkeeping of what was logged
    /// must be reset alongside.
    pub fn truncate_all(&mut self) -> io::Result<()> {
        self.pending.clear();
        self.pending_frames = 0;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC)?;
        self.file.sync_all()?;
        crate::stats::bump(&crate::stats::WAL_TRUNCATIONS, 1);
        crate::stats::bump(&crate::stats::WAL_FSYNCS, 1);
        self.len = WAL_MAGIC.len() as u64;
        self.last_frame_start = self.len;
        Ok(())
    }

    /// Kills the writer as a crash would, optionally mangling the tail of
    /// the file first. After this the writer performs no further IO (the
    /// drop-time sync is suppressed).
    pub fn simulate_crash(mut self, fault: WriteFault) -> io::Result<()> {
        match fault {
            WriteFault::LoseBuffered => {
                // The buffered frames simply never existed.
                self.pending.clear();
                self.pending_frames = 0;
            }
            WriteFault::DropLastFrame => {
                // Make everything durable first, then drop the final
                // frame whole — models a write acknowledged but lost.
                self.sync()?;
                if self.last_frame_start < self.len {
                    self.file.set_len(self.last_frame_start)?;
                    self.file.sync_all()?;
                }
            }
            WriteFault::TearLastFrame => {
                // Make everything durable, then cut the final frame
                // mid-bytes — the torn tail read_wal must discard.
                self.sync()?;
                if self.last_frame_start < self.len {
                    let frame = self.len - self.last_frame_start;
                    let keep = self.last_frame_start + 1 + (frame - 1) / 2;
                    self.file.set_len(keep)?;
                    self.file.sync_all()?;
                }
            }
            WriteFault::TransientOnce { .. }
            | WriteFault::DiskFull
            | WriteFault::Latency { .. } => {
                // Write-time faults (armed via `inject_fault`): at crash
                // time they reduce to losing whatever the failing sync
                // never wrote — the buffered suffix.
                self.pending.clear();
                self.pending_frames = 0;
            }
        }
        self.dead = true;
        Ok(())
    }
}

impl Drop for WalWriter {
    /// A clean shutdown flushes the group-commit buffer; a simulated
    /// crash does not.
    fn drop(&mut self) {
        if !self.dead {
            let _ = self.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;
    use xuc_sigstore::Signer;
    use xuc_xtree::{parse_term, Label, NodeId};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xuc-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        let tree = parse_term("h(patient#2(visit#3))").unwrap();
        let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
        let cert = Signer::new(7).certify(&tree, &suite);
        vec![
            WalRecord::Publish { doc: "h".into(), tree, suite },
            WalRecord::Commit {
                doc: "h".into(),
                commit: 1,
                updates: vec![Update::Relabel {
                    node: NodeId::from_raw(3),
                    label: Label::new("note"),
                }],
                cert,
            },
        ]
    }

    #[test]
    fn append_sync_read_round_trip() {
        let path = tmp("roundtrip");
        let records = sample_records();
        {
            let (mut w, scan) = WalWriter::open(&path, 1).unwrap();
            assert!(scan.records.is_empty() && !scan.torn);
            for r in &records {
                w.append(r).unwrap();
            }
        }
        let scan = read_wal(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records, records);
        // Reopening appends after the existing tail.
        {
            let (mut w, scan) = WalWriter::open(&path, 1).unwrap();
            assert_eq!(scan.records.len(), 2);
            w.append(&records[1]).unwrap();
        }
        assert_eq!(read_wal(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn group_commit_buffers_until_threshold() {
        let path = tmp("group");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 3).unwrap();
        w.append(&records[0]).unwrap();
        w.append(&records[1]).unwrap();
        assert_eq!(w.pending_frames(), 2);
        // Nothing durable yet beyond the magic.
        assert_eq!(w.durable_len(), WAL_MAGIC.len() as u64);
        w.append(&records[1]).unwrap();
        assert_eq!(w.pending_frames(), 0, "third frame triggers the group sync");
        assert!(w.durable_len() > WAL_MAGIC.len() as u64);
    }

    #[test]
    fn lose_buffered_drops_exactly_the_unsynced_suffix() {
        let path = tmp("lose");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 10).unwrap();
        w.append(&records[0]).unwrap();
        w.sync().unwrap();
        w.append(&records[1]).unwrap();
        w.simulate_crash(WriteFault::LoseBuffered).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(!scan.torn, "lost buffer leaves a clean file");
        assert_eq!(scan.records, records[..1]);
    }

    #[test]
    fn drop_last_frame_is_clean_truncation() {
        let path = tmp("drop");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.simulate_crash(WriteFault::DropLastFrame).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records, records[..1]);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_reopen() {
        let path = tmp("tear");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        w.simulate_crash(WriteFault::TearLastFrame).unwrap();
        let cut = std::fs::metadata(&path).unwrap().len();
        assert!(cut < full, "the tear must remove bytes");
        let scan = read_wal(&path).unwrap();
        assert!(scan.torn, "half a frame is a torn tail");
        assert_eq!(scan.records, records[..1]);
        // Reopening truncates the tail and serves appends again.
        let (mut w, scan) = WalWriter::open(&path, 1).unwrap();
        assert_eq!(scan.records.len(), 1);
        w.append(&records[1]).unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records, records);
    }

    #[test]
    fn bit_flip_invalidates_the_frame() {
        let path = tmp("flip");
        let records = sample_records();
        {
            let (mut w, _) = WalWriter::open(&path, 1).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.torn, "checksum must catch the flip");
        assert_eq!(scan.records, records[..1]);
    }

    #[test]
    fn missing_and_headerless_files_are_empty_logs() {
        let path = tmp("empty");
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.is_empty() && !scan.torn && scan.valid_len == 0);
        std::fs::write(&path, b"garbage").unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.is_empty() && scan.torn);
        let (w, scan) = WalWriter::open(&path, 1).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(w.durable_len(), WAL_MAGIC.len() as u64);
    }

    #[test]
    fn transient_injection_fails_then_succeeds_idempotently() {
        let path = tmp("transient");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 10).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.inject_fault(WriteFault::TransientOnce { n: 2 });
        for _ in 0..2 {
            let e = w.sync().unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::Interrupted);
            assert_eq!(w.pending_frames(), 2, "failure must leave the buffer intact");
        }
        // Third attempt goes through; nothing duplicated, nothing lost.
        w.sync().unwrap();
        assert_eq!(w.pending_frames(), 0);
        drop(w);
        assert_eq!(read_wal(&path).unwrap().records, records);
    }

    #[test]
    fn disk_full_injection_is_persistent_and_fatal_kind() {
        let path = tmp("full");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 10).unwrap();
        w.append(&records[0]).unwrap();
        w.inject_fault(WriteFault::DiskFull);
        for _ in 0..3 {
            assert_eq!(w.sync().unwrap_err().kind(), io::ErrorKind::StorageFull);
        }
        // Sealing abandons the buffered frame; the file keeps only what
        // was durable before the fault (just the magic here).
        w.seal();
        assert!(w.is_sealed());
        drop(w);
        assert!(read_wal(&path).unwrap().records.is_empty());
    }

    #[test]
    fn latency_injection_accumulates_without_failing() {
        let path = tmp("latency");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        w.inject_fault(WriteFault::Latency { micros: 250 });
        for r in &records {
            w.append(r).unwrap();
        }
        assert_eq!(w.injected_latency_micros(), 500, "one charge per sync");
        drop(w);
        assert_eq!(read_wal(&path).unwrap().records, records);
    }

    #[test]
    fn write_time_faults_at_crash_time_lose_the_buffer() {
        let path = tmp("crashwrite");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 10).unwrap();
        w.append(&records[0]).unwrap();
        w.sync().unwrap();
        w.append(&records[1]).unwrap();
        w.simulate_crash(WriteFault::DiskFull).unwrap();
        assert_eq!(read_wal(&path).unwrap().records, records[..1]);
    }

    #[test]
    fn truncate_all_resets_to_empty() {
        let path = tmp("trunc");
        let records = sample_records();
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.truncate_all().unwrap();
        w.append(&records[0]).unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, records[..1]);
    }
}
