//! The hand-rolled binary codec behind WAL frames and snapshots.
//!
//! Everything is fixed-width little-endian integers and u32-length-prefixed
//! UTF-8 strings — no external serialization crate (the workspace's `serde`
//! feature has always been a gated no-op; this codec is the real thing).
//! Trees are encoded as their preorder snapshot: `(id, parent-index + 1,
//! label)` per node, with `0` marking the root. Re-inserting in preorder via
//! [`DataTree::with_root_id`] / [`DataTree::add_with_id`] appends children
//! in the original sibling order, so decode reproduces the tree **exactly**
//! (render-identical, same child positions), not just up to isomorphism.
//! Constraints ride their canonical [`Display`](std::fmt::Display) form,
//! which [`xuc_core::parse_constraint`] round-trips.
//!
//! Checksums are FNV-1a-64 over the payload ([`checksum64`]); the framing
//! layer ([`crate::wal`], [`crate::snapshot`]) stores them next to a length
//! prefix so a torn or bit-flipped tail is detected, never decoded.

use std::collections::BTreeSet;
use std::fmt;
use xuc_core::{parse_constraint, Constraint};
use xuc_sigstore::{CertEntry, Certificate};
use xuc_xtree::{DataTree, Label, NodeId, NodeRef, Update};

/// FNV-1a-64 over `data` — the integrity checksum on every frame and
/// snapshot. Unkeyed: this detects corruption (torn writes, bit rot), not
/// tampering; tamper-evidence is the certificate chain's keyed MACs.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a byte string failed to decode. Framing layers map all of these to
/// "bad frame" and apply their torn-tail policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the layout requires.
    Truncated,
    /// An enum tag byte outside the known range.
    BadTag(u8),
    /// A length-prefixed string is not UTF-8.
    BadString,
    /// A constraint's canonical form failed to parse back.
    BadConstraint(String),
    /// A tree encoding violates the preorder invariants (non-root first
    /// node, forward parent reference, duplicate id).
    BadTree(String),
    /// The stored checksum does not match the payload.
    Checksum,
    /// Payload bytes left over after a complete decode.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated payload"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            DecodeError::BadString => write!(f, "length-prefixed string is not UTF-8"),
            DecodeError::BadConstraint(e) => write!(f, "constraint failed to re-parse: {e}"),
            DecodeError::BadTree(e) => write!(f, "tree encoding invalid: {e}"),
            DecodeError::Checksum => write!(f, "checksum mismatch"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte sink with the codec's primitive writers.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Encoder {
        Encoder { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string length fits u32"));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a byte slice with the codec's primitive readers. Every
/// reader fails with [`DecodeError::Truncated`] instead of panicking, so
/// arbitrary (corrupted) input is safe to feed in.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(data: &'a [u8]) -> Decoder<'a> {
        Decoder { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.data.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| DecodeError::BadString)
    }

    /// Fails unless the whole input has been consumed — encodings are
    /// exact, trailing garbage means corruption.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

/// Encodes `tree` as its preorder snapshot (see the module docs).
pub fn encode_tree(e: &mut Encoder, tree: &DataTree) {
    let snap = tree.preorder_snapshot();
    e.u32(u32::try_from(snap.len()).expect("tree size fits u32"));
    for (id, label, parent) in &snap {
        e.u64(id.raw());
        e.u32(parent.map_or(0, |p| u32::try_from(p + 1).expect("parent index fits u32")));
        e.str(label.as_str());
    }
}

/// Decodes a tree encoded by [`encode_tree`], reproducing exact node ids,
/// labels and sibling order.
pub fn decode_tree(d: &mut Decoder) -> Result<DataTree, DecodeError> {
    let n = d.u32()? as usize;
    if n == 0 {
        return Err(DecodeError::BadTree("empty tree".into()));
    }
    let mut tree: Option<DataTree> = None;
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let id = NodeId::from_raw(d.u64()?);
        let parent = d.u32()? as usize;
        let label = Label::new(d.str()?);
        match (&mut tree, parent) {
            (None, 0) => {
                tree = Some(DataTree::with_root_id(id, label));
                ids.push(id);
            }
            (None, _) => return Err(DecodeError::BadTree("first node is not the root".into())),
            (Some(_), 0) => return Err(DecodeError::BadTree(format!("second root at {i}"))),
            (Some(t), p) => {
                if p > i {
                    return Err(DecodeError::BadTree(format!("forward parent at {i}")));
                }
                t.add_with_id(ids[p - 1], id, label)
                    .map_err(|e| DecodeError::BadTree(e.to_string()))?;
                ids.push(id);
            }
        }
    }
    Ok(tree.expect("n > 0"))
}

pub fn encode_update(e: &mut Encoder, u: &Update) {
    match u {
        Update::InsertLeaf { parent, id, label } => {
            e.u8(0);
            e.u64(parent.raw());
            e.u64(id.raw());
            e.str(label.as_str());
        }
        Update::DeleteSubtree { node } => {
            e.u8(1);
            e.u64(node.raw());
        }
        Update::DeleteNode { node } => {
            e.u8(2);
            e.u64(node.raw());
        }
        Update::Move { node, new_parent } => {
            e.u8(3);
            e.u64(node.raw());
            e.u64(new_parent.raw());
        }
        Update::Relabel { node, label } => {
            e.u8(4);
            e.u64(node.raw());
            e.str(label.as_str());
        }
        Update::ReplaceId { node, new_id } => {
            e.u8(5);
            e.u64(node.raw());
            e.u64(new_id.raw());
        }
    }
}

pub fn decode_update(d: &mut Decoder) -> Result<Update, DecodeError> {
    Ok(match d.u8()? {
        0 => Update::InsertLeaf {
            parent: NodeId::from_raw(d.u64()?),
            id: NodeId::from_raw(d.u64()?),
            label: Label::new(d.str()?),
        },
        1 => Update::DeleteSubtree { node: NodeId::from_raw(d.u64()?) },
        2 => Update::DeleteNode { node: NodeId::from_raw(d.u64()?) },
        3 => Update::Move {
            node: NodeId::from_raw(d.u64()?),
            new_parent: NodeId::from_raw(d.u64()?),
        },
        4 => Update::Relabel { node: NodeId::from_raw(d.u64()?), label: Label::new(d.str()?) },
        5 => Update::ReplaceId {
            node: NodeId::from_raw(d.u64()?),
            new_id: NodeId::from_raw(d.u64()?),
        },
        t => return Err(DecodeError::BadTag(t)),
    })
}

pub fn encode_updates(e: &mut Encoder, updates: &[Update]) {
    e.u32(u32::try_from(updates.len()).expect("batch size fits u32"));
    for u in updates {
        encode_update(e, u);
    }
}

pub fn decode_updates(d: &mut Decoder) -> Result<Vec<Update>, DecodeError> {
    let n = d.u32()? as usize;
    (0..n).map(|_| decode_update(d)).collect()
}

pub fn encode_node_set(e: &mut Encoder, set: &BTreeSet<NodeRef>) {
    e.u32(u32::try_from(set.len()).expect("set size fits u32"));
    for r in set {
        e.u64(r.id.raw());
        e.str(r.label.as_str());
    }
}

pub fn decode_node_set(d: &mut Decoder) -> Result<BTreeSet<NodeRef>, DecodeError> {
    let n = d.u32()? as usize;
    let mut set = BTreeSet::new();
    for _ in 0..n {
        let id = NodeId::from_raw(d.u64()?);
        let label = Label::new(d.str()?);
        set.insert(NodeRef { id, label });
    }
    Ok(set)
}

/// Constraints travel as their canonical `Display` form (e.g.
/// `(/patient/visit, ↑)`), which [`parse_constraint`] round-trips exactly.
pub fn encode_constraint(e: &mut Encoder, c: &Constraint) {
    e.str(&c.to_string());
}

pub fn decode_constraint(d: &mut Decoder) -> Result<Constraint, DecodeError> {
    let src = d.str()?;
    parse_constraint(src).map_err(DecodeError::BadConstraint)
}

pub fn encode_suite(e: &mut Encoder, suite: &[Constraint]) {
    e.u32(u32::try_from(suite.len()).expect("suite size fits u32"));
    for c in suite {
        encode_constraint(e, c);
    }
}

pub fn decode_suite(d: &mut Decoder) -> Result<Vec<Constraint>, DecodeError> {
    let n = d.u32()? as usize;
    (0..n).map(|_| decode_constraint(d)).collect()
}

pub fn encode_certificate(e: &mut Encoder, cert: &Certificate) {
    e.u64(cert.prev_digest);
    e.u64(cert.chain_tag);
    e.u32(u32::try_from(cert.entries.len()).expect("entry count fits u32"));
    for entry in &cert.entries {
        encode_constraint(e, &entry.constraint);
        encode_node_set(e, &entry.snapshot);
        e.u64(entry.tag);
    }
}

pub fn decode_certificate(d: &mut Decoder) -> Result<Certificate, DecodeError> {
    let prev_digest = d.u64()?;
    let chain_tag = d.u64()?;
    let n = d.u32()? as usize;
    let entries = (0..n)
        .map(|_| {
            let constraint = decode_constraint(d)?;
            let snapshot = decode_node_set(d)?;
            let tag = d.u64()?;
            Ok(CertEntry { constraint, snapshot, tag })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(Certificate { entries, prev_digest, chain_tag })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_xtree::parse_term;

    #[test]
    fn tree_round_trip_is_exact() {
        let tree = parse_term("hospital#1(patient#2(visit#3,visit#4),patient#5(clinicalTrial#6))")
            .unwrap();
        let mut e = Encoder::new();
        encode_tree(&mut e, &tree);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = decode_tree(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.render(), tree.render());
        assert_eq!(back.preorder_snapshot(), tree.preorder_snapshot());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let tree = parse_term("r(a#1,b#2)").unwrap();
        let mut e = Encoder::new();
        encode_tree(&mut e, &tree);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(decode_tree(&mut d).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn update_tags_round_trip() {
        let n = |r| NodeId::from_raw(r);
        let updates = vec![
            Update::InsertLeaf { parent: n(1), id: n(9), label: Label::new("visit") },
            Update::DeleteSubtree { node: n(2) },
            Update::DeleteNode { node: n(3) },
            Update::Move { node: n(4), new_parent: n(1) },
            Update::Relabel { node: n(5), label: Label::new("note") },
            Update::ReplaceId { node: n(6), new_id: n(16) },
        ];
        let mut e = Encoder::new();
        encode_updates(&mut e, &updates);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(decode_updates(&mut d).unwrap(), updates);
        d.finish().unwrap();
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut e = Encoder::new();
        e.u8(9);
        let bytes = e.into_bytes();
        assert_eq!(decode_update(&mut Decoder::new(&bytes)), Err(DecodeError::BadTag(9)));
    }

    #[test]
    fn constraint_rides_its_display_form() {
        let c = parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap();
        let mut e = Encoder::new();
        encode_constraint(&mut e, &c);
        let bytes = e.into_bytes();
        let back = decode_constraint(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.to_string(), c.to_string());
        assert_eq!(back.kind, c.kind);
    }
}
