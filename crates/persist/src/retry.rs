//! Transient-vs-fatal classification of storage IO errors and a bounded
//! retry loop with deterministic exponential backoff.
//!
//! Not every IO error means the disk is gone: an `EINTR`/`EAGAIN`-class
//! failure is worth a bounded number of retries before anyone escalates,
//! while corruption or `ENOSPC` must escalate *immediately* — retrying a
//! full disk only delays the inevitable and widens the window in which
//! acknowledged state is not durable. This module owns that policy line:
//!
//! * [`classify`] sorts an [`io::Error`] into [`FaultClass::Transient`]
//!   or [`FaultClass::Fatal`];
//! * [`RetryPolicy`] bounds the retries and shapes the exponential
//!   backoff — all integer arithmetic, so the schedule is deterministic;
//! * [`retry_io`] drives an operation through the policy against an
//!   injectable [`Clock`], so tests run the exact production retry loop
//!   without sleeping ([`VirtualClock`] records what *would* have been
//!   slept).

use std::io;

/// Re-exported from `xuc-core` (the clock abstraction was hoisted there
/// once telemetry and bench became customers too); existing
/// `xuc_persist::{Clock, SystemClock, VirtualClock}` imports keep
/// working.
pub use xuc_core::clock::{Clock, SystemClock, VirtualClock};

/// How severe an IO error is for the caller's retry decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Interrupted/backpressure-class failure; retrying after a short
    /// backoff is reasonable.
    Transient,
    /// Corruption, exhausted storage, permission loss — retrying cannot
    /// help; the caller must escalate (seal, degrade, or halt).
    Fatal,
}

/// Classifies an IO error. Only interruption-class kinds are transient;
/// everything unknown is fatal — misclassifying a real fault as
/// retryable would stall escalation, the opposite error is just one
/// wasted backoff.
pub fn classify(e: &io::Error) -> FaultClass {
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            FaultClass::Transient
        }
        _ => FaultClass::Fatal,
    }
}

/// Bounds and shape of the transient-retry loop. `Copy` so it can ride
/// inside other option structs (e.g. the gateway's `DurableOptions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds; doubles per
    /// retry.
    pub base_backoff_micros: u64,
    /// Backoff ceiling, in microseconds.
    pub max_backoff_micros: u64,
}

impl RetryPolicy {
    /// No retries at all: the first error, transient or not, escalates.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_backoff_micros: 0, max_backoff_micros: 0 }
    }

    /// The backoff before retry number `retry` (0-based): exponential,
    /// saturating at the ceiling.
    pub fn backoff_micros(&self, retry: u32) -> u64 {
        let factor = 1u64.checked_shl(retry).unwrap_or(u64::MAX);
        self.base_backoff_micros.saturating_mul(factor).min(self.max_backoff_micros)
    }
}

impl Default for RetryPolicy {
    /// Four attempts, 100µs → 800µs backoff: enough to ride out an
    /// interrupted syscall, short enough that a commit never stalls
    /// perceptibly before escalating.
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, base_backoff_micros: 100, max_backoff_micros: 10_000 }
    }
}

/// A successful (possibly retried) operation: the value plus how many
/// transient failures were absorbed on the way.
#[derive(Debug)]
pub struct RetryOutcome<T> {
    pub value: T,
    pub retries: u32,
}

/// A retried operation that still failed: the last error, its class, and
/// how many retries were burned before giving up. Fatal errors carry
/// `retries` from *earlier transient* failures in the same call.
#[derive(Debug)]
pub struct IoFailure {
    pub error: io::Error,
    pub class: FaultClass,
    pub retries: u32,
}

impl std::fmt::Display for IoFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            FaultClass::Transient => {
                write!(
                    f,
                    "transient IO fault persisted after {} retries: {}",
                    self.retries, self.error
                )
            }
            FaultClass::Fatal => write!(f, "fatal IO fault: {}", self.error),
        }
    }
}

impl std::error::Error for IoFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Runs `op` under `policy`: transient failures back off (through
/// `clock`) and retry up to the attempt bound; the first fatal failure —
/// or a transient one that outlives the bound — is returned unretried.
pub fn retry_io<T>(
    policy: RetryPolicy,
    clock: &dyn Clock,
    mut op: impl FnMut() -> io::Result<T>,
) -> Result<RetryOutcome<T>, IoFailure> {
    let attempts = policy.max_attempts.max(1);
    let mut retries = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(RetryOutcome { value, retries }),
            Err(error) => {
                let class = classify(&error);
                if class == FaultClass::Fatal || retries + 1 >= attempts {
                    if class == FaultClass::Fatal {
                        crate::stats::bump(&crate::stats::FAULTS_FATAL, 1);
                    }
                    return Err(IoFailure { error, class, retries });
                }
                clock.sleep_micros(policy.backoff_micros(retries));
                retries += 1;
                crate::stats::bump(&crate::stats::RETRIES_TRANSIENT, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "interrupted")
    }

    fn fatal() -> io::Error {
        io::Error::new(io::ErrorKind::StorageFull, "no space")
    }

    #[test]
    fn classification_splits_interruption_from_the_rest() {
        assert_eq!(classify(&transient()), FaultClass::Transient);
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::WouldBlock, "x")),
            FaultClass::Transient
        );
        assert_eq!(classify(&io::Error::new(io::ErrorKind::TimedOut, "x")), FaultClass::Transient);
        assert_eq!(classify(&fatal()), FaultClass::Fatal);
        assert_eq!(classify(&io::Error::other("?")), FaultClass::Fatal, "unknown means fatal");
    }

    #[test]
    fn transient_failures_retry_and_back_off_exponentially() {
        let clock = VirtualClock::new();
        let mut left = 3u32;
        let out = retry_io(RetryPolicy::default(), &clock, || {
            if left > 0 {
                left -= 1;
                Err(transient())
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!((out.value, out.retries), (42, 3));
        // 100 + 200 + 400 — the deterministic schedule.
        assert_eq!(clock.slept_micros(), 700);
    }

    #[test]
    fn fatal_failures_never_retry() {
        let clock = VirtualClock::new();
        let mut calls = 0u32;
        let err = retry_io(RetryPolicy::default(), &clock, || -> io::Result<()> {
            calls += 1;
            Err(fatal())
        })
        .unwrap_err();
        assert_eq!((calls, err.retries), (1, 0));
        assert_eq!(err.class, FaultClass::Fatal);
        assert_eq!(clock.slept_micros(), 0);
    }

    #[test]
    fn attempt_bound_caps_transient_retries() {
        let clock = VirtualClock::new();
        let mut calls = 0u32;
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let err = retry_io(policy, &clock, || -> io::Result<()> {
            calls += 1;
            Err(transient())
        })
        .unwrap_err();
        assert_eq!((calls, err.retries), (3, 2));
        assert_eq!(err.class, FaultClass::Transient);
        assert!(err.to_string().contains("after 2 retries"));
    }

    #[test]
    fn policy_none_escalates_immediately() {
        let clock = VirtualClock::new();
        let err = retry_io(RetryPolicy::none(), &clock, || -> io::Result<()> { Err(transient()) })
            .unwrap_err();
        assert_eq!(err.retries, 0);
        assert_eq!(clock.slept_micros(), 0);
    }

    #[test]
    fn backoff_saturates_at_the_ceiling() {
        let p =
            RetryPolicy { max_attempts: 64, base_backoff_micros: 100, max_backoff_micros: 1000 };
        assert_eq!(p.backoff_micros(0), 100);
        assert_eq!(p.backoff_micros(1), 200);
        assert_eq!(p.backoff_micros(4), 1000, "capped");
        assert_eq!(p.backoff_micros(63), 1000);
        assert_eq!(p.backoff_micros(64), 1000, "shift overflow saturates too");
    }
}
