//! Process-global durability counters: WAL traffic, fsync/flush
//! volume, retry absorption, snapshot installs and truncations.
//!
//! Same pattern as `xuc_xpath::stats`: this crate sits below telemetry
//! in the dependency graph, so it bumps plain process-wide atomics and
//! the service layer scrapes [`persist_counters`] into the
//! `MetricsRegistry` at snapshot points. Frame and byte totals are pure
//! functions of the committed stream (deterministic at any worker
//! count); flush/fsync counts and retry totals depend on how appends
//! from different documents interleave into group-commit buffers and
//! on live-disk behaviour, so their scraped metrics are classified
//! scheduling-dependent.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static WAL_FRAMES: AtomicU64 = AtomicU64::new(0);
pub(crate) static WAL_BYTES: AtomicU64 = AtomicU64::new(0);
pub(crate) static WAL_FLUSHES: AtomicU64 = AtomicU64::new(0);
pub(crate) static WAL_FSYNCS: AtomicU64 = AtomicU64::new(0);
pub(crate) static WAL_TRUNCATIONS: AtomicU64 = AtomicU64::new(0);
pub(crate) static SNAPSHOT_INSTALLS: AtomicU64 = AtomicU64::new(0);
pub(crate) static RETRIES_TRANSIENT: AtomicU64 = AtomicU64::new(0);
pub(crate) static FAULTS_FATAL: AtomicU64 = AtomicU64::new(0);

pub(crate) fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of the durability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistCounters {
    /// Frames appended to any WAL (publish + commit records).
    pub wal_frames: u64,
    /// Bytes appended (frame headers included).
    pub wal_bytes: u64,
    /// Group-commit buffer flushes that wrote at least one frame.
    pub wal_flushes: u64,
    /// Durability fsyncs (`sync_all` on the log: flushes + truncations).
    pub wal_fsyncs: u64,
    /// Whole-log truncations (every logged document snapshot-covered).
    pub wal_truncations: u64,
    /// Atomically installed document snapshots.
    pub snapshot_installs: u64,
    /// Transient IO failures absorbed by the retry loop.
    pub retries_transient: u64,
    /// Fatal IO faults surfaced to escalation.
    pub faults_fatal: u64,
}

/// Reads all durability counters. Totals are process-lifetime; diff two
/// readings to scope a measurement.
pub fn persist_counters() -> PersistCounters {
    PersistCounters {
        wal_frames: WAL_FRAMES.load(Ordering::Relaxed),
        wal_bytes: WAL_BYTES.load(Ordering::Relaxed),
        wal_flushes: WAL_FLUSHES.load(Ordering::Relaxed),
        wal_fsyncs: WAL_FSYNCS.load(Ordering::Relaxed),
        wal_truncations: WAL_TRUNCATIONS.load(Ordering::Relaxed),
        snapshot_installs: SNAPSHOT_INSTALLS.load(Ordering::Relaxed),
        retries_transient: RETRIES_TRANSIENT.load(Ordering::Relaxed),
        faults_fatal: FAULTS_FATAL.load(Ordering::Relaxed),
    }
}
