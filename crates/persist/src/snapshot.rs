//! Per-document snapshots: the full admission state of one document in a
//! single checksummed file, installed atomically.
//!
//! A snapshot file is `XUCSNP01` followed by one frame in the WAL's
//! `[u32 len][u64 checksum][payload]` shape, where the payload is a
//! [`DocSnapshot`] in the [`crate::codec`] encoding. Writing goes through
//! a `*.tmp` sibling and an atomic `rename`, so a crash mid-snapshot
//! leaves either the old snapshot or the new one — never a half-written
//! file (a stray `.tmp` is ignored by [`read_snapshots`]). File names are
//! the hex-encoded document name plus `.snap`, so arbitrary document
//! names never fight the filesystem.

use crate::codec::{checksum64, Decoder, Encoder};
use crate::{
    decode_certificate, decode_suite, decode_tree, encode_certificate, encode_suite, encode_tree,
    DecodeError, PersistError,
};
use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use xuc_core::Constraint;
use xuc_sigstore::Certificate;
use xuc_xtree::NodeRef;

const SNAP_MAGIC: &[u8; 8] = b"XUCSNP01";

/// Everything needed to re-open a document without replaying its history:
/// the committed tree, suite, admission baselines, certificate and commit
/// counter as of `commits`.
#[derive(Debug, Clone)]
pub struct DocSnapshot {
    pub doc: String,
    pub commits: u64,
    pub tree: xuc_xtree::DataTree,
    pub suite: Vec<Constraint>,
    /// `suite[i].range`'s evaluation on `tree` — the admission baseline,
    /// persisted so recovery does not re-evaluate the whole document.
    pub base_sets: Vec<BTreeSet<NodeRef>>,
    pub cert: Certificate,
}

impl DocSnapshot {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.doc);
        e.u64(self.commits);
        encode_tree(&mut e, &self.tree);
        encode_suite(&mut e, &self.suite);
        e.u32(u32::try_from(self.base_sets.len()).expect("baseline count fits u32"));
        for set in &self.base_sets {
            crate::encode_node_set(&mut e, set);
        }
        encode_certificate(&mut e, &self.cert);
        e.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<DocSnapshot, DecodeError> {
        let mut d = Decoder::new(payload);
        let doc = d.str()?.to_owned();
        let commits = d.u64()?;
        let tree = decode_tree(&mut d)?;
        let suite = decode_suite(&mut d)?;
        let n = d.u32()? as usize;
        let base_sets =
            (0..n).map(|_| crate::decode_node_set(&mut d)).collect::<Result<Vec<_>, _>>()?;
        let cert = decode_certificate(&mut d)?;
        d.finish()?;
        Ok(DocSnapshot { doc, commits, tree, suite, base_sets, cert })
    }
}

/// The snapshot file for document `doc` under `dir` (hex-encoded name).
pub fn snapshot_path(dir: &Path, doc: &str) -> PathBuf {
    let mut name = String::with_capacity(doc.len() * 2 + 5);
    for b in doc.as_bytes() {
        name.push_str(&format!("{b:02x}"));
    }
    name.push_str(".snap");
    dir.join(name)
}

/// Writes `snap` atomically: encode + checksum into `<path>.tmp`, fsync,
/// rename over the final path. Replaces any previous snapshot of the
/// document.
pub fn write_snapshot(dir: &Path, snap: &DocSnapshot) -> io::Result<()> {
    let payload = snap.encode();
    let mut bytes = Vec::with_capacity(SNAP_MAGIC.len() + 12 + payload.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&u32::try_from(payload.len()).expect("payload fits u32").to_le_bytes());
    bytes.extend_from_slice(&checksum64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let path = snapshot_path(dir, &snap.doc);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    crate::stats::bump(&crate::stats::SNAPSHOT_INSTALLS, 1);
    Ok(())
}

/// Reads one snapshot file, validating magic, length and checksum.
pub fn read_snapshot(path: &Path) -> Result<DocSnapshot, PersistError> {
    let bytes = std::fs::read(path)?;
    let header = SNAP_MAGIC.len() + 12;
    if bytes.len() < header || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(PersistError::Decode(DecodeError::Truncated));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload =
        bytes.get(header..header + len).ok_or(PersistError::Decode(DecodeError::Truncated))?;
    if bytes.len() != header + len {
        return Err(PersistError::Decode(DecodeError::TrailingBytes));
    }
    if checksum64(payload) != sum {
        return Err(PersistError::Decode(DecodeError::Checksum));
    }
    Ok(DocSnapshot::decode(payload)?)
}

/// All `*.snap` files under `dir`, sorted by document name (deterministic
/// recovery order). A missing directory holds no snapshots; stray `.tmp`
/// files (a crash mid-snapshot) are ignored.
pub fn read_snapshots(dir: &Path) -> Result<Vec<DocSnapshot>, PersistError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(PersistError::Io(e)),
    };
    let mut snaps = Vec::new();
    for entry in entries {
        let path = entry.map_err(PersistError::Io)?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("snap") {
            snaps.push(read_snapshot(&path)?);
        }
    }
    snaps.sort_by(|a, b| a.doc.cmp(&b.doc));
    Ok(snaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;
    use xuc_sigstore::Signer;
    use xuc_xtree::parse_term;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xuc-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(doc: &str) -> DocSnapshot {
        let tree = parse_term("h(patient#2(visit#3,visit#4))").unwrap();
        let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
        let mut ev = xuc_xpath::Evaluator::new(&tree);
        let base_sets: Vec<_> = suite.iter().map(|c| ev.eval(&c.range)).collect();
        let cert = Signer::new(3).certify_precomputed(&suite, &base_sets);
        DocSnapshot { doc: doc.into(), commits: 4, tree, suite, base_sets, cert }
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("rt");
        let snap = sample("mercy-west");
        write_snapshot(&dir, &snap).unwrap();
        let back = read_snapshots(&dir).unwrap();
        assert_eq!(back.len(), 1);
        let b = &back[0];
        assert_eq!(b.doc, snap.doc);
        assert_eq!(b.commits, snap.commits);
        assert_eq!(b.tree.preorder_snapshot(), snap.tree.preorder_snapshot());
        assert_eq!(b.suite, snap.suite);
        assert_eq!(b.base_sets, snap.base_sets);
        assert_eq!(b.cert, snap.cert);
    }

    #[test]
    fn rewrite_replaces_and_tmp_ignored() {
        let dir = tmp_dir("replace");
        let mut snap = sample("doc");
        write_snapshot(&dir, &snap).unwrap();
        snap.commits = 9;
        write_snapshot(&dir, &snap).unwrap();
        // A crash can abandon a .tmp file; it must not confuse recovery.
        std::fs::write(dir.join("deadbeef.tmp"), b"half-written").unwrap();
        let back = read_snapshots(&dir).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].commits, 9);
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let dir = tmp_dir("corrupt");
        let snap = sample("doc");
        write_snapshot(&dir, &snap).unwrap();
        let path = snapshot_path(&dir, "doc");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshots(&dir),
            Err(PersistError::Decode(DecodeError::Checksum)) | Err(PersistError::Decode(_))
        ));
    }

    #[test]
    fn missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("xuc-snap-definitely-missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(read_snapshots(&dir).unwrap().is_empty());
    }

    #[test]
    fn names_are_hex_encoded() {
        let p = snapshot_path(Path::new("/d"), "a/b");
        assert_eq!(p, PathBuf::from("/d/612f62.snap"));
    }
}
