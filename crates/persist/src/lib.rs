//! Durability for the update-validation gateway (ROADMAP item 4): a
//! write-ahead log of accepted commits, per-document snapshots, and the
//! binary codec underneath both.
//!
//! The crate is deliberately mechanism-only — it knows how to frame,
//! checksum, persist and reload trees, update batches, baselines and
//! certificates, but holds no admission logic. `xuc-service` composes
//! these pieces into `Gateway::recover`: load [`snapshot`]s, replay the
//! [`wal`] tail through the live admission path, and arrive at a store
//! byte-identical to the pre-crash one (the kill/restart differential
//! harness in `crates/service/tests/differential.rs` is the proof).
//!
//! * [`codec`] — fixed-width little-endian primitives; exact-order tree
//!   encoding; constraints as their canonical parseable text.
//! * [`wal`] — `[len][checksum][payload]` frames behind a magic header,
//!   group-commit buffering, torn-tail truncation on reopen, and a
//!   [`WriteFault`] hook for crash-injection tests.
//! * [`snapshot`] — one checksummed file per document, written to a
//!   `.tmp` sibling and installed by atomic rename.
//! * [`retry`] — transient-vs-fatal IO error classification and a
//!   bounded, deterministically backed-off retry loop with an injectable
//!   clock; the policy half of the gateway's survive-the-fault story.
//!
//! The `test-hooks` cargo feature additionally compiles write-time fault
//! injection into [`WalWriter`] (`wal::WalWriter::inject_fault`) for
//! the chaos harness; release builds carry no injection state.

pub mod codec;
pub mod retry;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use codec::{
    checksum64, decode_certificate, decode_constraint, decode_node_set, decode_suite, decode_tree,
    decode_update, decode_updates, encode_certificate, encode_constraint, encode_node_set,
    encode_suite, encode_tree, encode_update, encode_updates, DecodeError, Decoder, Encoder,
};
pub use retry::{
    classify, retry_io, Clock, FaultClass, IoFailure, RetryOutcome, RetryPolicy, SystemClock,
    VirtualClock,
};
pub use snapshot::{read_snapshot, read_snapshots, snapshot_path, write_snapshot, DocSnapshot};
pub use stats::{persist_counters, PersistCounters};
pub use wal::{read_wal, WalRecord, WalScan, WalWriter, WriteFault};

use std::fmt;
use std::io;

/// Anything that can go wrong loading persisted state.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem failed underneath us.
    Io(io::Error),
    /// A file was intact enough to read but its content did not decode
    /// (checksum mismatch, bad framing, unparseable constraint…).
    Decode(DecodeError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence IO error: {e}"),
            PersistError::Decode(e) => write!(f, "persisted data corrupt: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Decode(e) => Some(e),
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        PersistError::Decode(e)
    }
}
