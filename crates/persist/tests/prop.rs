//! Property tests for the persistence codec: `encode ∘ decode = id` over
//! random trees, update batches, certificates, WAL records and document
//! snapshots — and decode-rejects-corruption (a flipped bit anywhere in a
//! WAL file's frame region never produces a wrong record: the scan yields
//! an exact prefix of what was written).

use proptest::prelude::*;
use std::collections::BTreeSet;
use xuc_core::{parse_constraint, Constraint};
use xuc_persist::{
    decode_tree, encode_tree, read_wal, Decoder, DocSnapshot, Encoder, WalRecord, WalWriter,
};
use xuc_sigstore::{Certificate, Signer};
use xuc_xtree::{DataTree, Label, NodeId, NodeRef, Update};

const LABELS: &[&str] = &["a", "b", "visit", "patient", "note"];

const CONSTRAINTS: &[&str] = &[
    "(/patient/visit, ↑)",
    "(//visit, ↑)",
    "(/patient, ↓)",
    "(/patient[/visit], ↓)",
    "(//note, ↓)",
];

/// A random tree over a small alphabet: node `i ≥ 1` hangs under a random
/// earlier node, ids are explicit (`100 + i`) so round-trips are exact.
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = DataTree> {
    (1..max_nodes).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let labels = proptest::collection::vec(0..LABELS.len(), n);
        (parents, labels).prop_map(|(parents, labels)| {
            let mut tree = DataTree::with_root_id(NodeId::from_raw(100), LABELS[labels[0]]);
            let mut ids = vec![tree.root_id()];
            for (i, p) in parents.iter().enumerate() {
                let id = NodeId::from_raw(101 + i as u64);
                tree.add_with_id(ids[*p], id, LABELS[labels[i + 1]]).unwrap();
                ids.push(id);
            }
            tree
        })
    })
}

fn update_strategy() -> impl Strategy<Value = Update> {
    (0..6usize, 0..40usize, 0..40usize, 0..LABELS.len()).prop_map(|(tag, a, b, l)| {
        let n = NodeId::from_raw(200 + a as u64);
        let m = NodeId::from_raw(200 + b as u64);
        let label = Label::new(LABELS[l]);
        match tag {
            0 => Update::InsertLeaf { parent: n, id: m, label },
            1 => Update::DeleteSubtree { node: n },
            2 => Update::DeleteNode { node: n },
            3 => Update::Move { node: n, new_parent: m },
            4 => Update::Relabel { node: n, label },
            _ => Update::ReplaceId { node: n, new_id: m },
        }
    })
}

fn node_set_strategy() -> impl Strategy<Value = BTreeSet<NodeRef>> {
    proptest::collection::vec((0..60usize, 0..LABELS.len()), 0..12).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(id, l)| NodeRef {
                id: NodeId::from_raw(id as u64),
                label: Label::new(LABELS[l]),
            })
            .collect()
    })
}

/// A random but *authentic* chained certificate: real MACs under a random
/// key, random predecessor digest.
fn certificate_strategy() -> impl Strategy<Value = Certificate> {
    (
        proptest::collection::vec((0..CONSTRAINTS.len(), node_set_strategy()), 0..4),
        0..usize::MAX,
        0..usize::MAX,
    )
        .prop_map(|(ranges, key, prev)| {
            let (suite, sets): (Vec<Constraint>, Vec<BTreeSet<NodeRef>>) = ranges
                .into_iter()
                .map(|(c, set)| (parse_constraint(CONSTRAINTS[c]).unwrap(), set))
                .unzip();
            Signer::new(key as u64).certify_chained(&suite, &sets, prev as u64)
        })
}

fn record_strategy() -> BoxedStrategy<WalRecord> {
    let publish = (tree_strategy(12), proptest::collection::vec(0..CONSTRAINTS.len(), 0..4))
        .prop_map(|(tree, cs)| WalRecord::Publish {
            doc: "prop-doc".into(),
            tree,
            suite: cs.iter().map(|&c| parse_constraint(CONSTRAINTS[c]).unwrap()).collect(),
        })
        .boxed();
    let commit =
        (0..1000usize, proptest::collection::vec(update_strategy(), 0..6), certificate_strategy())
            .prop_map(|(commit, updates, cert)| WalRecord::Commit {
                doc: "prop-doc".into(),
                commit: commit as u64,
                updates,
                cert,
            })
            .boxed();
    Union::new(vec![publish, commit]).boxed()
}

fn assert_snap_eq(a: &DocSnapshot, b: &DocSnapshot) {
    assert_eq!(a.doc, b.doc);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.tree.preorder_snapshot(), b.tree.preorder_snapshot());
    assert_eq!(a.suite, b.suite);
    assert_eq!(a.base_sets, b.base_sets);
    assert_eq!(a.cert, b.cert);
}

proptest! {
    /// encode ∘ decode = id on WAL records (trees exact to sibling order,
    /// certificates field-for-field).
    #[test]
    fn wal_record_round_trip(rec in record_strategy()) {
        let payload = rec.encode();
        let back = WalRecord::decode(&payload).unwrap();
        prop_assert!(back == rec, "decode(encode(r)) != r");
    }

    /// encode ∘ decode = id on document snapshots.
    #[test]
    fn snapshot_round_trip(
        tree in tree_strategy(12),
        sets in proptest::collection::vec(node_set_strategy(), 0..3),
        commits_seed in 0..10_000usize,
    ) {
        let commits = commits_seed as u64;
        let suite: Vec<Constraint> = CONSTRAINTS
            .iter()
            .take(sets.len())
            .map(|s| parse_constraint(s).unwrap())
            .collect();
        let sets = sets[..suite.len()].to_vec();
        let cert = Signer::new(0x5eed).certify_chained(&suite, &sets, commits);
        let snap = DocSnapshot {
            doc: "prop-doc".into(),
            commits,
            tree,
            suite,
            base_sets: sets,
            cert,
        };
        let back = DocSnapshot::decode(&snap.encode()).unwrap();
        assert_snap_eq(&snap, &back);
    }

    /// encode ∘ decode = id on trees whose arena carries free-listed
    /// holes: random subtree deletions punch slots onto the free list and
    /// interleaved re-insertions recycle some of them, so the encoded
    /// pre-order walk skips parked/free slots. The decoded tree must
    /// reproduce ids, labels and sibling order exactly (and comes back
    /// compacted: capacity == live).
    #[test]
    fn tree_with_free_listed_holes_round_trips(
        tree in tree_strategy(24),
        edits in proptest::collection::vec((0..24usize, 0..24usize, any::<bool>()), 1..10),
    ) {
        let mut churned = tree;
        for (i, (pick, parent_pick, delete)) in edits.iter().enumerate() {
            let ids = churned.node_ids();
            if *delete && ids.len() > 1 {
                let target = ids[1 + pick % (ids.len() - 1)];
                churned.delete_subtree(target).unwrap();
            } else {
                let parent = ids[parent_pick % ids.len()];
                let fresh = NodeId::from_raw(5_000 + i as u64);
                churned.add_with_id(parent, fresh, Label::new(LABELS[i % LABELS.len()])).unwrap();
            }
        }
        let mut e = Encoder::new();
        encode_tree(&mut e, &churned);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = decode_tree(&mut d).unwrap();
        prop_assert_eq!(back.preorder_snapshot(), churned.preorder_snapshot());
        prop_assert_eq!(back.render(), churned.render());
        prop_assert_eq!(back.len(), churned.len());
        // The decode rebuilds in pre-order over live nodes only, so the
        // round-tripped arena is dense again.
        prop_assert_eq!(back.slot_capacity(), back.len());
    }

    /// Any single-bit flip in a record's payload is rejected — either the
    /// decode fails structurally, or (for the framing layer) the checksum
    /// changes, so a framed reader can never accept the mangled payload as
    /// the original.
    #[test]
    fn bit_flip_never_round_trips(rec in record_strategy(), pos_seed in 0..usize::MAX, bit in 0..8usize) {
        let payload = rec.encode();
        let mut mangled = payload.clone();
        let pos = pos_seed % payload.len();
        mangled[pos] ^= 1 << bit;
        prop_assert!(
            xuc_persist::checksum64(&mangled) != xuc_persist::checksum64(&payload),
            "checksum must distinguish a flipped bit"
        );
        if let Ok(back) = WalRecord::decode(&mangled) {
            // Structurally decodable mangles exist (e.g. a flipped id
            // bit); they must decode to a *different* record — the frame
            // checksum is what rejects them on disk.
            prop_assert!(back != rec, "mangled payload decoded to the original record");
        }
    }
}

/// Flipping any byte of a WAL file's frame region yields an exact prefix
/// of the written records — never a wrong record, never a crash.
#[test]
fn wal_file_corruption_yields_only_prefixes() {
    let dir = std::env::temp_dir().join(format!("xuc-prop-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");

    let mut rng = proptest::test_runner::TestRng::deterministic("wal-corruption");
    let strategy = record_strategy();
    let records: Vec<WalRecord> = (0..4).map(|_| strategy.generate(&mut rng)).collect();
    {
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
    }
    let clean = std::fs::read(&path).unwrap();
    let reference = read_wal(&path).unwrap();
    assert_eq!(reference.records, records);

    // Flip one byte at a spread of positions after the magic header.
    for step in 0..64 {
        let pos = 8 + (clean.len() - 9) * step / 63;
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.len() <= records.len(), "corruption at byte {pos} grew the log");
        for (a, b) in scan.records.iter().zip(&records) {
            assert!(a == b, "corruption at byte {pos} produced a wrong record");
        }
        assert!(scan.torn || scan.records.len() == records.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The codec's primitive layer refuses trailing garbage.
#[test]
fn trailing_bytes_rejected() {
    let mut e = Encoder::new();
    e.u64(7);
    let mut bytes = e.into_bytes();
    bytes.push(0);
    let mut d = Decoder::new(&bytes);
    assert_eq!(d.u64().unwrap(), 7);
    assert!(d.finish().is_err());
}
