//! A deterministic virtual-time model of the throughput gateway's
//! per-shard work queues and commit coalescing, for the E-LOAD
//! latency-vs-offered-load experiment.
//!
//! The benchmark container pins everything to one core, so wall-clock
//! worker scaling is not measurable there (the E-PAR precedent). This
//! model reproduces the *queueing structure* of
//! [`Gateway::process_throughput`](xuc_service::Gateway::process_throughput)
//! in virtual time instead: open-loop arrivals at a configured offered
//! rate, Zipfian document skew, a document held by at most one worker at
//! a time (a hot document serializes), and commit coalescing that admits
//! a queued run of `k` batches in `base + (k-1)·marginal` ticks instead
//! of `k·base`. Same config ⇒ bit-identical histogram, so the reported
//! saturation-throughput ratios are structural properties of the queue
//! topology, not timer noise — the real-execution differential suite
//! (`crates/service/tests/load.rs`) pins the gateway itself to the same
//! contract.

use crate::latency::LatencyHistogram;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use xuc_service::workload::SplitMix;

/// One E-LOAD simulation arm.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Virtual workers draining the queues.
    pub workers: usize,
    /// Longest coalesced run per claim (1 = no coalescing).
    pub max_coalesce: usize,
    /// Ticks to admit a run's first batch…
    pub base_cost: u64,
    /// …and each additional coalesced batch.
    pub marginal_cost: u64,
    /// Documents in the deployment.
    pub docs: usize,
    /// Zipf exponent in hundredths (0 = uniform, 99 = hot-document).
    pub skew_centi: u32,
    /// Offered load: arrivals per 1000 virtual ticks.
    pub offered_per_kilotick: u64,
    /// Requests in the arrival stream.
    pub count: usize,
    pub seed: u64,
}

/// What one simulated run measured.
pub struct SimResult {
    /// Per-request sojourn time (arrival → run completion), in ticks.
    pub hist: LatencyHistogram,
    /// Tick at which the last run completed.
    pub makespan: u64,
    /// Served requests per 1000 ticks of makespan — at offered loads far
    /// above capacity this *is* the saturation throughput.
    pub throughput_per_kilotick: f64,
}

/// Zipfian document draw — the same cumulative-weight walk the request
/// generator uses ([`xuc_service::workload::seeded_zipf_requests`]),
/// reduced to the index.
fn zipf_indices(docs: usize, skew_centi: u32, seed: u64, count: usize) -> Vec<usize> {
    let s = skew_centi as f64 / 100.0;
    let weights: Vec<f64> = (0..docs).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = SplitMix::new(seed);
    (0..count)
        .map(|_| {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut acc = 0.0;
            for (i, w) in weights.iter().enumerate() {
                acc += w;
                if u < acc {
                    return i;
                }
            }
            docs - 1
        })
        .collect()
}

/// Runs the open-loop model to completion and returns the latency
/// histogram, makespan and throughput. Fully deterministic: worker free
/// times are a min-heap keyed `(tick, worker)`, ready documents a
/// `BTreeSet` keyed `(head arrival, doc)`, so every tie breaks the same
/// way on every run.
pub fn simulate(cfg: &SimConfig) -> SimResult {
    assert!(cfg.workers >= 1 && cfg.docs >= 1 && cfg.count >= 1);
    assert!(cfg.offered_per_kilotick >= 1);
    let max_run = cfg.max_coalesce.max(1);
    // Open-loop arrivals: request i arrives at ⌊i·1000/rate⌋ regardless
    // of queue state — the defining property (a closed loop would slow
    // its own arrivals under saturation and hide the latency cliff).
    let arrivals: Vec<u64> = (0..cfg.count)
        .map(|i| (i as u64).saturating_mul(1000) / cfg.offered_per_kilotick)
        .collect();
    let doc_of = zipf_indices(cfg.docs, cfg.skew_centi, cfg.seed, cfg.count);

    let mut queues: Vec<VecDeque<(usize, u64)>> = vec![VecDeque::new(); cfg.docs];
    // Documents with arrived, unclaimed work, ordered by head-of-queue
    // arrival (then doc index) — the shard-affine scan's deterministic
    // analogue. A held document is in neither set: it re-readies only
    // through its release event, which is what makes a hot document
    // serialize (at most one worker holds it at any virtual instant).
    let mut ready: BTreeSet<(u64, usize)> = BTreeSet::new();
    let mut held = vec![false; cfg.docs];
    let mut releases: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut workers: BinaryHeap<Reverse<(u64, usize)>> =
        (0..cfg.workers).map(|w| Reverse((0u64, w))).collect();
    let mut next = 0usize; // arrival ingestion cursor
    let mut served = 0usize;
    let mut hist = LatencyHistogram::new();
    let mut makespan = 0u64;

    while served < cfg.count {
        let Reverse((mut now, w)) = workers.pop().expect("worker pool is never empty");
        // Ingest every arrival and document release up to `now`; if the
        // floor is dry, idle this worker forward to the next event.
        loop {
            while next < cfg.count && arrivals[next] <= now {
                let d = doc_of[next];
                if queues[d].is_empty() && !held[d] {
                    ready.insert((arrivals[next], d));
                }
                queues[d].push_back((next, arrivals[next]));
                next += 1;
            }
            while releases.peek().is_some_and(|&Reverse((t, _))| t <= now) {
                let Reverse((_, d)) = releases.pop().expect("peeked");
                held[d] = false;
                if let Some(&(_, at)) = queues[d].front() {
                    ready.insert((at, d));
                }
            }
            if !ready.is_empty() {
                break;
            }
            let next_arrival = (next < cfg.count).then(|| arrivals[next]);
            let next_release = releases.peek().map(|&Reverse((t, _))| t);
            now = match (next_arrival, next_release) {
                (Some(a), Some(r)) => a.min(r),
                (Some(a), None) => a,
                (None, Some(r)) => r,
                (None, None) => unreachable!("unserved requests but no pending events"),
            };
        }
        // Claim the longest-waiting document and hold it until the run
        // completes. Another worker's ingestion may have readied work
        // that arrives after this worker's free time — it starts no
        // earlier than the head arrival, and coalesces only batches
        // already queued by then (causality: a run cannot admit an edit
        // that has not arrived when it begins).
        let &(head, d) = ready.iter().next().expect("checked non-empty");
        ready.remove(&(head, d));
        held[d] = true;
        let start = now.max(head);
        let k = queues[d].iter().take(max_run).take_while(|&&(_, at)| at <= start).count().max(1);
        let run_cost = cfg.base_cost + (k as u64 - 1) * cfg.marginal_cost;
        let finish = start + run_cost;
        for _ in 0..k {
            let (_, at) = queues[d].pop_front().expect("k ≤ queue length");
            hist.record(finish - at);
        }
        served += k;
        makespan = makespan.max(finish);
        releases.push(Reverse((finish, d)));
        workers.push(Reverse((finish, w)));
    }

    let throughput_per_kilotick = cfg.count as f64 * 1000.0 / makespan.max(1) as f64;
    SimResult { hist, makespan, throughput_per_kilotick }
}

/// The saturation throughput of a topology: drive it far above any
/// plausible capacity and read the drain rate off the makespan.
pub fn saturation_throughput(cfg: &SimConfig) -> f64 {
    let mut flooded = *cfg;
    // Everything arrives almost at once — pure service-capacity probe.
    flooded.offered_per_kilotick = 1_000_000;
    simulate(&flooded).throughput_per_kilotick
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> SimConfig {
        SimConfig {
            workers: 1,
            max_coalesce: 8,
            base_cost: 8,
            marginal_cost: 1,
            docs: 64,
            skew_centi: 99,
            offered_per_kilotick: 200,
            count: 4_000,
            seed: 0xE10AD,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = SimConfig { workers: 8, ..base_cfg() };
        let (a, b) = (simulate(&cfg), simulate(&cfg));
        assert_eq!(a.makespan, b.makespan);
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.hist.quantile(q), b.hist.quantile(q));
        }
        assert_eq!(a.hist.count(), cfg.count as u64);
    }

    #[test]
    fn workers_scale_saturation_until_the_hot_document_binds() {
        let sat = |workers, skew_centi| {
            saturation_throughput(&SimConfig { workers, skew_centi, ..base_cfg() })
        };
        // Uniform skew: 8 virtual workers drain well over 2× one worker.
        assert!(sat(8, 0) >= 2.0 * sat(1, 0), "{} vs {}", sat(8, 0), sat(1, 0));
        // Hot-document skew: still ≥ 2× — coalescing keeps the serialized
        // hot document's per-batch cost near `marginal`, so the cold
        // shards' parallelism is not wasted behind it.
        assert!(sat(8, 99) >= 2.0 * sat(1, 99), "{} vs {}", sat(8, 99), sat(1, 99));
        // One document, every worker: serialization caps scaling — the
        // pool cannot beat the single-document service rate.
        let one_doc = SimConfig { docs: 1, ..base_cfg() };
        let (w1, w8) = (
            saturation_throughput(&SimConfig { workers: 1, ..one_doc }),
            saturation_throughput(&SimConfig { workers: 8, ..one_doc }),
        );
        assert!(w8 <= w1 * 1.05, "a single hot document must serialize: {w8} vs {w1}");
    }

    #[test]
    fn coalescing_raises_single_worker_capacity() {
        let sat = |max_coalesce| saturation_throughput(&SimConfig { max_coalesce, ..base_cfg() });
        // Runs of 8 cost 8+7 ticks instead of 64: ≥ 3× capacity.
        assert!(sat(8) >= 3.0 * sat(1), "{} vs {}", sat(8), sat(1));
    }

    #[test]
    fn latency_rises_with_offered_load() {
        let p99 = |offered_per_kilotick| {
            simulate(&SimConfig { workers: 8, offered_per_kilotick, count: 2_000, ..base_cfg() })
                .hist
                .quantile(0.99)
        };
        let (light, heavy) = (p99(50), p99(5_000));
        assert!(
            heavy > 4 * light.max(1),
            "overload must show up in the tail: p99 {light} → {heavy}"
        );
    }
}
