//! The histogram moved: [`LatencyHistogram`] was born here for the
//! open-loop load harness and is now `xuc-telemetry`'s shared histogram
//! type (the metrics registry is its second customer). This module
//! re-exports it so `xuc_bench::latency::LatencyHistogram` keeps
//! working; the implementation — and its oracle-backed quantile and
//! merge-associativity tests — live in `xuc_telemetry::histogram`.

pub use xuc_telemetry::histogram::LatencyHistogram;
