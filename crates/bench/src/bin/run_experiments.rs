//! Prints the paper-style experiment tables used by EXPERIMENTS.md:
//! one section per experiment id of DESIGN.md §3, each a parameter sweep
//! with median wall times and the decision outcomes.
//!
//! Run with `cargo run --release -p xuc-bench --bin run_experiments`.

use xuc_bench as wl;
use xuc_core::{implication, instance};

fn header(id: &str, title: &str, claim: &str) {
    println!();
    println!("== {id}: {title}");
    println!("   paper claim: {claim}");
}

fn row(param: &str, value: usize, micros: f64, note: &str) {
    println!("   {param:>10} = {value:<6} {micros:>12.1} µs   {note}");
}

fn main() {
    println!("Reasoning about XML update constraints — experiment harness");
    println!("(shape reproduction of Tables 1 and 2; see EXPERIMENTS.md)");
    let mut perf_regression = false;

    // ---------------- Table 1 ----------------
    header("T1-a", "XP{/,[],*} implication (Thms 4.1/4.4/4.5)", "PTIME");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let (set, goal) = wl::t1a_workload(n);
        let implied = implication::ptime::implies_pred_star(&set, &goal);
        let t = wl::median_micros(9, || implication::ptime::implies_pred_star(&set, &goal));
        row("constraints", n, t, if implied { "implied" } else { "not implied" });
    }

    header("T1-b", "XP{/,[],//} one-type: conjunctive containment ([13])", "coNP-complete");
    for k in [1usize, 2, 3] {
        let (set, goal) = wl::t1b_workload(k);
        let ranges: Vec<&xuc_xpath::Pattern> = set.iter().map(|c| &c.range).collect();
        let result = implication::conjunctive::conjunctive_contained_in_budgeted(
            &ranges,
            &goal.range,
            5_000_000,
        );
        let t = wl::median_micros(3, || {
            implication::conjunctive::conjunctive_contained_in_budgeted(
                &ranges,
                &goal.range,
                5_000_000,
            )
        });
        row("chain k", k, t, &format!("contained: {result:?}"));
    }

    header("T1-c", "XP{/,//,*} linear, fixed constraint count (Thm 4.8)", "PTIME");
    for k in [2usize, 4, 6, 8, 10] {
        let (set, goal) = wl::t1_linear_workload(2, k);
        let out = implication::linear::implies_linear(&set, &goal);
        let t = wl::median_micros(5, || implication::linear::implies_linear(&set, &goal));
        row("query size", k, t, &out.to_string());
    }

    header(
        "T1-f",
        "XP{/,//,*} linear, growing constraint count (Thm 4.3)",
        "NP (exponential only in #constraints)",
    );
    for n in [1usize, 2, 3, 4, 5, 6] {
        let (set, goal) = wl::t1_linear_workload(n, 3);
        let out = implication::linear::implies_linear(&set, &goal);
        let t = wl::median_micros(3, || implication::linear::implies_linear(&set, &goal));
        row("constraints", n, t, &out.to_string());
    }

    header("T1-d", "full fragment, bounded search (Thms 4.2/4.7)", "coNP / NEXPTIME");
    for n in [1usize, 2, 3] {
        let (set, goal) = wl::t1d_workload(n);
        let found = implication::search::find_counterexample(&set, &goal, 500).is_some();
        let t = wl::median_micros(3, || implication::search::find_counterexample(&set, &goal, 500));
        row("constraints", n, t, if found { "refuted" } else { "no witness in budget" });
    }

    header("T1-h", "Theorem 4.6 gadget: implication ⇔ UNSAT", "coNP-hard (2^v sweep)");
    for v in [2usize, 4, 6, 8, 10] {
        let gadget = wl::t1h_gadget(v);
        let implied = gadget.implied_by_assignment_sweep();
        let sat = gadget.formula.satisfiable();
        let t = wl::median_micros(3, || gadget.implied_by_assignment_sweep());
        row("variables", v, t, &format!("implied={implied} sat={sat} (must be opposite)"));
        assert_eq!(implied, !sat, "reduction must track the SAT oracle");
    }

    // ---------------- Table 2 ----------------
    header("T2-a", "XP{/} instance-based (any types)", "PTIME");
    for p in [25usize, 50, 100, 200, 400] {
        let (set, j, goal) = wl::t2a_workload(p);
        let out = instance::plain::implies_plain(&set, &j, &goal);
        let t = wl::median_micros(5, || instance::plain::implies_plain(&set, &j, &goal));
        row("patients", p, t, &out.to_string());
    }

    header("T2-b", "↓-only XP{/,[],*}: certain-facts tree (Thm 5.3)", "PTIME");
    for p in [25usize, 50, 100, 200, 400] {
        let (set, j, goal) = wl::t2b_workload(p);
        let ok = instance::certain::implies_no_insert_pred_star(&set, &j, &goal).is_ok();
        let t = wl::median_micros(5, || {
            instance::certain::implies_no_insert_pred_star(&set, &j, &goal).is_ok()
        });
        row("patients", p, t, if ok { "implied" } else { "not implied" });
    }

    header("T2-c", "↓-only linear instance (Thm 5.4)", "PTIME (bounded constraints)");
    for p in [25usize, 50, 100, 200, 400] {
        let (set, j, goal) = wl::t2c_workload(p);
        let out = instance::linear::implies_no_insert_linear(&set, &j, &goal);
        let t =
            wl::median_micros(5, || instance::linear::implies_no_insert_linear(&set, &j, &goal));
        row("patients", p, t, &out.to_string());
    }

    header("T2-e", "↑-only possible embeddings (Thm 5.5), |J| sweep", "polynomial in |J|");
    for p in [10usize, 20, 40, 80] {
        let (set, j, goal) = wl::t2e_workload(p, 1);
        let out = instance::embeddings::implies_no_remove(&set, &j, &goal, 10_000_000);
        let t = wl::median_micros(3, || {
            instance::embeddings::implies_no_remove(&set, &j, &goal, 10_000_000)
        });
        row("patients", p, t, &out.to_string());
    }

    header("T2-e'", "↑-only possible embeddings (Thm 5.5), |q| sweep", "exponential in |q|");
    for qsize in [1usize, 2, 3] {
        let (set, j, goal) = wl::t2e_workload(8, qsize);
        let out = instance::embeddings::implies_no_remove(&set, &j, &goal, 50_000_000);
        let t = wl::median_micros(3, || {
            instance::embeddings::implies_no_remove(&set, &j, &goal, 50_000_000)
        });
        row("goal preds", qsize, t, &out.to_string());
    }

    header("T2-f", "Theorem 5.2 / Fig. 6 gadget: implication ⇔ UNSAT", "coNP-hard (2^v)");
    for v in [2usize, 4, 6, 8, 10] {
        let gadget = wl::t2f_gadget(v);
        let implied = gadget.implied_by_assignment_sweep();
        let sat = gadget.formula.satisfiable();
        let t = wl::median_micros(3, || gadget.implied_by_assignment_sweep());
        row("variables", v, t, &format!("implied={implied} sat={sat}"));
        assert_eq!(implied, !sat, "reduction must track the SAT oracle");
    }

    // ---------------- Figures / examples ----------------
    header("F2", "Figure 2 / Example 2.1 validity", "c1 ✓  c2 ✓  c3 ✗");
    {
        let (i, j) = xuc_workloads::trees::fig2_pair();
        let cs = xuc_workloads::trees::example_2_1_constraints();
        let v = xuc_core::constraint::violations(&cs, &i, &j);
        println!("   violations: {}", v.len());
        for viol in &v {
            println!("     {viol}");
        }
        assert_eq!(v.len(), 1);
    }

    header("E41", "Example 4.1: interacting update types (exact)", "full set ⊨ c; ↑-only ⊭ c");
    {
        let (set, goal) = xuc_workloads::trees::example_4_1();
        let full = implication::linear::implies_linear(&set, &goal);
        let up_only: Vec<_> =
            set.iter().filter(|x| x.kind == xuc_core::ConstraintKind::NoRemove).cloned().collect();
        let up = implication::linear::implies_linear(&up_only, &goal);
        println!("   full set: {full}");
        println!("   ↑ only:   {up}");
        assert!(full.is_implied() && up.is_not_implied());
    }

    header("E33", "Example 3.3: diverging chase", "fact count grows with the round cap");
    for cap in [2usize, 4, 6, 8] {
        let deps = xuc_xic::example_3_3();
        let mut db = xuc_xic::FactDb::new();
        xuc_xic::seed_two_branch(&mut db);
        xuc_xic::seed_path(&mut db, xuc_xic::I_BRANCH, &["a", "b", "c", "d"]);
        match xuc_xic::chase(&mut db, &deps, cap) {
            xuc_xic::ChaseResult::Terminated { .. } => println!("   cap {cap}: TERMINATED (!)"),
            xuc_xic::ChaseResult::CapReached { facts, .. } => {
                println!("   cap {cap}: still firing, {facts} facts");
            }
        }
    }

    header(
        "E-EV",
        "evaluation engine: cold per-call vs amortized bitset batch",
        "amortized ≥ 3× cold on 1k nodes / 32 patterns",
    );
    for nodes in [100usize, 1_000, 4_000] {
        let (tree, patterns) = wl::eval_engine_workload(nodes, 32);
        let cold = wl::median_micros(9, || {
            patterns.iter().map(|q| xuc_xpath::eval::eval(q, &tree).len()).sum::<usize>()
        });
        let amortized = wl::median_micros(9, || {
            let mut ev = xuc_xpath::Evaluator::new(&tree);
            patterns.iter().map(|q| ev.eval(q).len()).sum::<usize>()
        });
        row("nodes", nodes, cold, "cold per-call eval");
        row("nodes", nodes, amortized, &format!("amortized ({:.1}x)", cold / amortized));
        if nodes == 1_000 && cold / amortized < 3.0 {
            // Wall-clock ratios are noisy on loaded machines: keep the
            // already-printed results, flag the regression, and fail the
            // exit code at the end instead of aborting mid-run.
            println!(
                "   WARNING: amortized/cold ratio below the 3x bar — rerun on a quiet machine"
            );
            perf_regression = true;
        }
    }

    println!();
    if perf_regression {
        println!("experiment assertions passed; PERF WARNING above (exit 1)");
        std::process::exit(1);
    }
    println!("all experiment assertions passed");
}
