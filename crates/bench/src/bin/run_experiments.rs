//! Prints the paper-style experiment tables used by EXPERIMENTS.md:
//! one section per experiment id of DESIGN.md §3, each a parameter sweep
//! with median wall times and the decision outcomes.
//!
//! Run with `cargo run --release -p xuc-bench --bin run_experiments`.
//!
//! Two environment knobs:
//!
//! * `XUC_SMOKE=1` — reduced-size sweeps for CI smoke runs: every decision
//!   assertion still fires, but the long parameter tails are dropped and
//!   wall-clock perf floors are reported without failing the exit code
//!   (timings on shared CI runners are not trustworthy).
//! * `XUC_BENCH_JSON=<path>` — where to write the machine-readable results
//!   (default `BENCH_results.json` in the working directory).

use std::sync::Arc;
use xuc_automata::PatternSetCompiler;
use xuc_bench as wl;
use xuc_bench::load::{saturation_throughput, simulate, SimConfig};
use xuc_core::implication::search::find_counterexample_sharded;
use xuc_core::{implication, instance};
use xuc_service::workload::{seeded_arrivals, seeded_zipf_requests};
use xuc_service::{
    admit, admit_delta, admit_delta_in_place, render_arrival_log, render_log, AdmissionMode, DocId,
    DurableOptions, Gateway, LoadOptions, Request, SuiteCache, Telemetry, ThroughputOptions,
    Verdict,
};
use xuc_sigstore::Signer;
use xuc_xpath::Evaluator;
use xuc_xtree::{apply_undoable, undo, DataTree, DirtyRegion, Update};

/// Collects every printed measurement so the run also emits
/// `BENCH_results.json` (experiment id → measured µs / ratios), letting the
/// perf trajectory be tracked across PRs.
struct Report {
    smoke: bool,
    perf_regression: bool,
    /// `"<id>.<param>.<value>"` → median µs, in print order.
    rows_us: Vec<(String, f64)>,
    /// `"<id>.<metric>"` → dimensionless value (ratios, speedups).
    metrics: Vec<(String, f64)>,
}

impl Report {
    fn new() -> Report {
        Report {
            smoke: std::env::var("XUC_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"),
            perf_regression: false,
            rows_us: Vec::new(),
            metrics: Vec::new(),
        }
    }

    fn header(&self, id: &str, title: &str, claim: &str) {
        println!();
        println!("== {id}: {title}");
        println!("   paper claim: {claim}");
    }

    fn row(&mut self, id: &str, param: &str, value: usize, micros: f64, note: &str) {
        println!("   {param:>10} = {value:<6} {micros:>12.1} µs   {note}");
        self.rows_us.push((format!("{id}.{param}.{value}"), micros));
    }

    fn metric(&mut self, id: &str, name: &str, value: f64) {
        self.metrics.push((format!("{id}.{name}"), value));
    }

    /// A wall-clock floor: `value >= floor` is expected (record the value
    /// itself with [`metric`](Self::metric)). In smoke mode (or when
    /// `assessable` is false, e.g. too few cores for a parallel speedup)
    /// the floor is reported but does not fail the run.
    fn floor(&mut self, id: &str, name: &str, value: f64, floor: f64, assessable: bool) {
        if !assessable {
            println!("   note: {id} {name} = {value:.2} (floor {floor:.1}x not assessable here)");
            return;
        }
        if value < floor {
            if self.smoke {
                println!(
                    "   note: {id} {name} = {value:.2} below {floor:.1}x (smoke run, ignored)"
                );
            } else {
                // Wall-clock ratios are noisy on loaded machines: keep the
                // already-printed results, flag the regression, and fail
                // the exit code at the end instead of aborting mid-run.
                println!(
                    "   WARNING: {id} {name} = {value:.2} below the {floor:.1}x bar — rerun on a \
                     quiet machine"
                );
                self.perf_regression = true;
            }
        }
    }

    /// Truncates a sweep in smoke mode: keep the first `keep` points.
    fn sweep<'a, T>(&self, full: &'a [T], keep: usize) -> &'a [T] {
        if self.smoke {
            &full[..keep.min(full.len())]
        } else {
            full
        }
    }

    fn write_json(&self) {
        let path = std::env::var("XUC_BENCH_JSON").unwrap_or_else(|_| "BENCH_results.json".into());
        let mut s = String::from("{\n  \"schema\": 1,\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str("  \"rows_us\": {\n");
        for (i, (k, v)) in self.rows_us.iter().enumerate() {
            let comma = if i + 1 < self.rows_us.len() { "," } else { "" };
            s.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
        }
        s.push_str("  },\n  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            s.push_str(&format!("    \"{k}\": {v:.4}{comma}\n"));
        }
        s.push_str("  }\n}\n");
        match std::fs::write(&path, s) {
            Ok(()) => println!("machine-readable results written to {path}"),
            Err(e) => println!("WARNING: could not write {path}: {e}"),
        }
    }
}

/// The three E-IR edit mixes.
#[derive(Clone, Copy)]
enum Mix {
    Relabel,
    Detach,
    Splice,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Relabel => "relabel",
            Mix::Detach => "detach",
            Mix::Splice => "splice",
        }
    }
}

/// Median per-edit cost (µs) of keeping an evaluator in sync across an
/// apply/undo edit mix: `incremental` uses the edit-scope protocol
/// (`refresh_after`), the baseline calls the full `refresh` after every
/// apply and every undo — the shape of the code before this PR.
fn refresh_cost_micros(
    tree: &DataTree,
    patterns: &[xuc_xpath::Pattern],
    mix: Mix,
    incremental: bool,
    runs: usize,
) -> f64 {
    const EDITS: usize = 64;
    let mut work = tree.clone();
    let mut ev = Evaluator::new(&work);
    for q in patterns {
        ev.eval(q); // prime the label-row cache
    }
    let ids = work.node_ids();
    let labels = work.labels();
    let total = wl::median_micros(runs, || {
        for i in 0..EDITS {
            let target = ids[1 + (i * 37) % (ids.len() - 1)];
            let op = match mix {
                Mix::Relabel => Update::Relabel { node: target, label: labels[i % labels.len()] },
                Mix::Detach => Update::DeleteSubtree { node: target },
                Mix::Splice => Update::DeleteNode { node: target },
            };
            let (token, scope) = apply_undoable(&mut work, &op).expect("valid edit target");
            if incremental {
                ev.refresh_after(&work, &scope);
            } else {
                ev.refresh(&work);
            }
            let undo_scope = undo(&mut work, token).expect("undo own token");
            if incremental {
                ev.refresh_after(&work, &undo_scope);
            } else {
                ev.refresh(&work);
            }
        }
    });
    total / EDITS as f64
}

fn main() {
    println!("Reasoning about XML update constraints — experiment harness");
    println!("(shape reproduction of Tables 1 and 2; see EXPERIMENTS.md)");
    let mut rep = Report::new();
    if rep.smoke {
        println!("(XUC_SMOKE set: reduced sweeps, perf floors reported but not enforced)");
    }

    // ---------------- Table 1 ----------------
    rep.header("T1-a", "XP{/,[],*} implication (Thms 4.1/4.4/4.5)", "PTIME");
    for &n in rep.sweep(&[2usize, 4, 8, 16, 32, 64], 3) {
        let (set, goal) = wl::t1a_workload(n);
        let implied = implication::ptime::implies_pred_star(&set, &goal);
        let t = wl::median_micros(9, || implication::ptime::implies_pred_star(&set, &goal));
        rep.row("T1-a", "constraints", n, t, if implied { "implied" } else { "not implied" });
    }

    rep.header("T1-b", "XP{/,[],//} one-type: conjunctive containment ([13])", "coNP-complete");
    for &k in rep.sweep(&[1usize, 2, 3], 2) {
        let (set, goal) = wl::t1b_workload(k);
        let ranges: Vec<&xuc_xpath::Pattern> = set.iter().map(|c| &c.range).collect();
        let result = implication::conjunctive::conjunctive_contained_in_budgeted(
            &ranges,
            &goal.range,
            5_000_000,
        );
        let t = wl::median_micros(3, || {
            implication::conjunctive::conjunctive_contained_in_budgeted(
                &ranges,
                &goal.range,
                5_000_000,
            )
        });
        rep.row("T1-b", "chain k", k, t, &format!("contained: {result:?}"));
    }

    rep.header("T1-c", "XP{/,//,*} linear, fixed constraint count (Thm 4.8)", "PTIME");
    for &k in rep.sweep(&[2usize, 4, 6, 8, 10], 3) {
        let (set, goal) = wl::t1_linear_workload(2, k);
        let out = implication::linear::implies_linear(&set, &goal);
        let t = wl::median_micros(5, || implication::linear::implies_linear(&set, &goal));
        rep.row("T1-c", "query size", k, t, &out.to_string());
    }

    rep.header(
        "T1-f",
        "XP{/,//,*} linear, growing constraint count (Thm 4.3)",
        "NP (exponential only in #constraints)",
    );
    for &n in rep.sweep(&[1usize, 2, 3, 4, 5, 6], 3) {
        let (set, goal) = wl::t1_linear_workload(n, 3);
        let out = implication::linear::implies_linear(&set, &goal);
        let t = wl::median_micros(3, || implication::linear::implies_linear(&set, &goal));
        rep.row("T1-f", "constraints", n, t, &out.to_string());
    }

    rep.header("T1-d", "full fragment, bounded search (Thms 4.2/4.7)", "coNP / NEXPTIME");
    for &n in rep.sweep(&[1usize, 2, 3], 2) {
        let (set, goal) = wl::t1d_workload(n);
        let found = implication::search::find_counterexample(&set, &goal, 500).is_some();
        let t = wl::median_micros(3, || implication::search::find_counterexample(&set, &goal, 500));
        rep.row(
            "T1-d",
            "constraints",
            n,
            t,
            if found { "refuted" } else { "no witness in budget" },
        );
    }

    rep.header("T1-h", "Theorem 4.6 gadget: implication ⇔ UNSAT", "coNP-hard (2^v sweep)");
    for &v in rep.sweep(&[2usize, 4, 6, 8, 10], 3) {
        let gadget = wl::t1h_gadget(v);
        let implied = gadget.implied_by_assignment_sweep();
        let sat = gadget.formula.satisfiable();
        let t = wl::median_micros(3, || gadget.implied_by_assignment_sweep());
        rep.row(
            "T1-h",
            "variables",
            v,
            t,
            &format!("implied={implied} sat={sat} (must be opposite)"),
        );
        assert_eq!(implied, !sat, "reduction must track the SAT oracle");
    }

    // ---------------- Table 2 ----------------
    rep.header("T2-a", "XP{/} instance-based (any types)", "PTIME");
    for &p in rep.sweep(&[25usize, 50, 100, 200, 400], 2) {
        let (set, j, goal) = wl::t2a_workload(p);
        let out = instance::plain::implies_plain(&set, &j, &goal);
        let t = wl::median_micros(5, || instance::plain::implies_plain(&set, &j, &goal));
        rep.row("T2-a", "patients", p, t, &out.to_string());
    }

    rep.header("T2-b", "↓-only XP{/,[],*}: certain-facts tree (Thm 5.3)", "PTIME");
    for &p in rep.sweep(&[25usize, 50, 100, 200, 400], 2) {
        let (set, j, goal) = wl::t2b_workload(p);
        let ok = instance::certain::implies_no_insert_pred_star(&set, &j, &goal).is_ok();
        let t = wl::median_micros(5, || {
            instance::certain::implies_no_insert_pred_star(&set, &j, &goal).is_ok()
        });
        rep.row("T2-b", "patients", p, t, if ok { "implied" } else { "not implied" });
    }

    rep.header("T2-c", "↓-only linear instance (Thm 5.4)", "PTIME (bounded constraints)");
    for &p in rep.sweep(&[25usize, 50, 100, 200, 400], 2) {
        let (set, j, goal) = wl::t2c_workload(p);
        let out = instance::linear::implies_no_insert_linear(&set, &j, &goal);
        let t =
            wl::median_micros(5, || instance::linear::implies_no_insert_linear(&set, &j, &goal));
        rep.row("T2-c", "patients", p, t, &out.to_string());
    }

    rep.header("T2-e", "↑-only possible embeddings (Thm 5.5), |J| sweep", "polynomial in |J|");
    for &p in rep.sweep(&[10usize, 20, 40, 80], 2) {
        let (set, j, goal) = wl::t2e_workload(p, 1);
        let out = instance::embeddings::implies_no_remove(&set, &j, &goal, 10_000_000);
        let t = wl::median_micros(3, || {
            instance::embeddings::implies_no_remove(&set, &j, &goal, 10_000_000)
        });
        rep.row("T2-e", "patients", p, t, &out.to_string());
    }

    rep.header("T2-e'", "↑-only possible embeddings (Thm 5.5), |q| sweep", "exponential in |q|");
    for &qsize in rep.sweep(&[1usize, 2, 3], 2) {
        let (set, j, goal) = wl::t2e_workload(8, qsize);
        let out = instance::embeddings::implies_no_remove(&set, &j, &goal, 50_000_000);
        let t = wl::median_micros(3, || {
            instance::embeddings::implies_no_remove(&set, &j, &goal, 50_000_000)
        });
        rep.row("T2-e'", "goal preds", qsize, t, &out.to_string());
    }

    rep.header("T2-f", "Theorem 5.2 / Fig. 6 gadget: implication ⇔ UNSAT", "coNP-hard (2^v)");
    for &v in rep.sweep(&[2usize, 4, 6, 8, 10], 3) {
        let gadget = wl::t2f_gadget(v);
        let implied = gadget.implied_by_assignment_sweep();
        let sat = gadget.formula.satisfiable();
        let t = wl::median_micros(3, || gadget.implied_by_assignment_sweep());
        rep.row("T2-f", "variables", v, t, &format!("implied={implied} sat={sat}"));
        assert_eq!(implied, !sat, "reduction must track the SAT oracle");
    }

    // ---------------- Figures / examples ----------------
    rep.header("F2", "Figure 2 / Example 2.1 validity", "c1 ✓  c2 ✓  c3 ✗");
    {
        let (i, j) = xuc_workloads::trees::fig2_pair();
        let cs = xuc_workloads::trees::example_2_1_constraints();
        let v = xuc_core::constraint::violations(&cs, &i, &j);
        println!("   violations: {}", v.len());
        for viol in &v {
            println!("     {viol}");
        }
        assert_eq!(v.len(), 1);
    }

    rep.header("E41", "Example 4.1: interacting update types (exact)", "full set ⊨ c; ↑-only ⊭ c");
    {
        let (set, goal) = xuc_workloads::trees::example_4_1();
        let full = implication::linear::implies_linear(&set, &goal);
        let up_only: Vec<_> =
            set.iter().filter(|x| x.kind == xuc_core::ConstraintKind::NoRemove).cloned().collect();
        let up = implication::linear::implies_linear(&up_only, &goal);
        println!("   full set: {full}");
        println!("   ↑ only:   {up}");
        assert!(full.is_implied() && up.is_not_implied());
    }

    rep.header("E33", "Example 3.3: diverging chase", "fact count grows with the round cap");
    for &cap in rep.sweep(&[2usize, 4, 6, 8], 2) {
        let deps = xuc_xic::example_3_3();
        let mut db = xuc_xic::FactDb::new();
        xuc_xic::seed_two_branch(&mut db);
        xuc_xic::seed_path(&mut db, xuc_xic::I_BRANCH, &["a", "b", "c", "d"]);
        match xuc_xic::chase(&mut db, &deps, cap) {
            xuc_xic::ChaseResult::Terminated { .. } => println!("   cap {cap}: TERMINATED (!)"),
            xuc_xic::ChaseResult::CapReached { facts, .. } => {
                println!("   cap {cap}: still firing, {facts} facts");
            }
        }
    }

    rep.header(
        "E-EV",
        "evaluation engine: cold per-call vs amortized bitset batch",
        "amortized ≥ 3× cold on 1k nodes / 32 patterns",
    );
    for &nodes in rep.sweep(&[100usize, 1_000, 4_000], 2) {
        let (tree, patterns) = wl::eval_engine_workload(nodes, 32);
        let cold = wl::median_micros(9, || {
            patterns.iter().map(|q| xuc_xpath::eval::eval(q, &tree).len()).sum::<usize>()
        });
        let amortized = wl::median_micros(9, || {
            let mut ev = xuc_xpath::Evaluator::new(&tree);
            patterns.iter().map(|q| ev.eval(q).len()).sum::<usize>()
        });
        rep.row("E-EV", "cold_nodes", nodes, cold, "cold per-call eval");
        rep.row(
            "E-EV",
            "amort_nodes",
            nodes,
            amortized,
            &format!("amortized ({:.1}x)", cold / amortized),
        );
        rep.metric("E-EV", &format!("amortized_speedup_{nodes}"), cold / amortized);
        if nodes == 1_000 {
            rep.floor("E-EV", "amortized_speedup_1000", cold / amortized, 3.0, true);
        }
    }

    rep.header(
        "E-IR",
        "incremental (edit-scope) vs full snapshot refresh per edit",
        "incremental relabel refresh ≥ 10× full refresh at 10k nodes",
    );
    for &nodes in rep.sweep(&[1_000usize, 4_000, 10_000], 1) {
        let (tree, patterns) = wl::eir_workload(nodes);
        let runs = if rep.smoke { 3 } else { 7 };
        for mix in [Mix::Relabel, Mix::Detach, Mix::Splice] {
            let full = refresh_cost_micros(&tree, &patterns, mix, false, runs);
            let incr = refresh_cost_micros(&tree, &patterns, mix, true, runs);
            let ratio = full / incr;
            rep.row("E-IR", &format!("{}_full", mix.name()), nodes, full, "full refresh per edit");
            rep.row(
                "E-IR",
                &format!("{}_incr", mix.name()),
                nodes,
                incr,
                &format!("incremental ({ratio:.1}x)"),
            );
            rep.metric("E-IR", &format!("{}_ratio_{nodes}", mix.name()), ratio);
            if matches!(mix, Mix::Relabel) && (nodes == 10_000 || (rep.smoke && nodes == 1_000)) {
                rep.floor("E-IR", &format!("relabel_ratio_{nodes}"), ratio, 10.0, true);
            }
        }
    }

    rep.header(
        "E-SET",
        "set-at-a-time automaton vs per-pattern batch evaluation",
        "eval_set ≥ 3× eval_all at ≥ 64 patterns on 1k nodes",
    );
    {
        let mut crossover: Option<usize> = None;
        for &k in rep.sweep(&[8usize, 16, 32, 64, 128, 256], 3) {
            let (tree, suite) = wl::eset_workload(1_000, k);
            let compiled = PatternSetCompiler::compile(&suite);
            let compile_us = wl::median_micros(5, || PatternSetCompiler::compile(&suite));
            let mut ev = xuc_xpath::Evaluator::new(&tree);
            assert_eq!(
                ev.eval_set(&compiled),
                ev.eval_all(&suite),
                "set-at-a-time must agree with the per-pattern path"
            );
            let per_pattern = wl::median_micros(7, || ev.eval_all(&suite));
            let set_pass = wl::median_micros(7, || ev.eval_set(&compiled));
            let ratio = per_pattern / set_pass;
            rep.row("E-SET", "all_patterns", k, per_pattern, "per-pattern eval_all");
            rep.row(
                "E-SET",
                "set_patterns",
                k,
                set_pass,
                &format!(
                    "compiled pass ({ratio:.1}x; {} states, compiled once in {compile_us:.0} µs)",
                    compiled.state_count()
                ),
            );
            rep.metric("E-SET", &format!("speedup_{k}"), ratio);
            rep.metric("E-SET", &format!("states_{k}"), compiled.state_count() as f64);
            if crossover.is_none() && ratio >= 1.0 {
                crossover = Some(k);
            }
            if k == 64 || (rep.smoke && k == 32) {
                rep.floor("E-SET", &format!("speedup_{k}"), ratio, 3.0, true);
            }
        }
        if let Some(k) = crossover {
            // The search's SET_PATH_CROSSOVER (16) must sit at or above
            // the measured break-even point of the sweep. Like every
            // wall-clock claim this soft-fails: flagged on quiet-machine
            // runs (exit code at the end, not a mid-run abort), ignored
            // in smoke runs.
            rep.metric("E-SET", "crossover_patterns", k as f64);
            println!("   break-even: set path ≥ per-pattern from ≤ {k} patterns on");
            if k > 16 {
                if rep.smoke {
                    println!("   note: break-even {k} above the crossover 16 (smoke run, ignored)");
                } else {
                    println!(
                        "   WARNING: break-even {k} above the search crossover of 16 — rerun on \
                         a quiet machine"
                    );
                    rep.perf_regression = true;
                }
            }
        }

        // Search integration: a constraint batch above the crossover stays
        // shard-count deterministic on the set path.
        let (set, goal) = wl::eset_search_workload();
        let one = find_counterexample_sharded(&set, &goal, 4_000, 1).expect("refutable goal");
        let four = find_counterexample_sharded(&set, &goal, 4_000, 4).expect("refutable goal");
        assert!(one.verify(&set, &goal), "set-path counterexample must verify");
        assert_eq!(
            one.canonical_pair_form(),
            four.canonical_pair_form(),
            "set path must stay shard-count independent"
        );
        println!("   determinism: 24-constraint set-path search identical at 1/4 shards ✓");
    }

    rep.header(
        "E-SVC",
        "service admission: cached suite automaton vs per-request recompilation",
        "cached ≥ 3× recompile at 64-constraint suites",
    );
    {
        let runs = if rep.smoke { 5 } else { 9 };
        for &k in rep.sweep(&[16usize, 64, 128], 2) {
            let (tree, suite) = wl::esvc_workload(1_000, k);
            let cache = SuiteCache::new();
            let resident = cache.get_or_compile(&suite);
            let mut ev = Evaluator::new(&tree);
            let base = ev.eval_set(&*resident);
            // Identity admission always passes; both paths must agree on
            // the recomputed range results.
            assert_eq!(
                admit(&mut ev, &resident, &suite, &base).expect("identity pair admits"),
                base,
                "cached admission must reproduce the baseline"
            );
            // Cached path: what Gateway::submit runs per request — the
            // document-resident compiled automaton, zero compilation.
            let cached = wl::median_micros(runs, || {
                admit(&mut ev, &resident, &suite, &base).expect("identity pair admits")
            });
            // Baseline: the same admission check, recompiling the suite
            // for every request (the shape without a SuiteCache).
            let recompile = wl::median_micros(runs, || {
                let compiled = PatternSetCompiler::compile(suite.iter().map(|c| &c.range));
                admit(&mut ev, &compiled, &suite, &base).expect("identity pair admits")
            });
            let ratio = recompile / cached;
            rep.row("E-SVC", "recompile", k, recompile, "compile + admit per request");
            rep.row("E-SVC", "cached", k, cached, &format!("resident automaton ({ratio:.1}x)"));
            rep.metric("E-SVC", &format!("speedup_{k}"), ratio);
            if k == 64 || (rep.smoke && k == 16) {
                rep.floor("E-SVC", &format!("speedup_{k}"), ratio, 3.0, true);
            }
        }

        // End-to-end worker loop: the accept/reject log of a seeded
        // request stream must be byte-identical at every worker count,
        // and every accepted commit re-certifies its document.
        let n_requests = if rep.smoke { 60 } else { 200 };
        let (docs, requests) = wl::esvc_gateway_workload(n_requests);
        let run_at = |workers: usize| {
            // A fresh gateway per run: identical initial state, so the
            // logs are comparable across worker counts.
            let gw = Gateway::new(Signer::new(0x516));
            for (id, tree, suite) in &docs {
                gw.publish(*id, tree.clone(), suite.clone()).expect("fresh gateway");
            }
            let t0 = std::time::Instant::now();
            let verdicts = gw.process(&requests, workers);
            let micros = t0.elapsed().as_secs_f64() * 1e6;
            for (id, ..) in &docs {
                let cert = gw.certificate(*id).expect("published");
                assert!(
                    cert.verify(0x516, &gw.snapshot(*id).expect("published")).is_ok(),
                    "commit must re-certify {id}"
                );
            }
            (render_log(&requests, &verdicts), micros)
        };
        let (log1, t1) = run_at(1);
        let (log4, t4) = run_at(4);
        assert_eq!(log1, log4, "gateway log must be worker-count independent");
        assert!(log1.contains("ACCEPT") && log1.contains("REJECT"), "stream must exercise both");
        let throughput = n_requests as f64 / (t1 / 1e6);
        rep.row("E-SVC", "stream_workers", 1, t1, &format!("{throughput:.0} req/s"));
        rep.row("E-SVC", "stream_workers", 4, t4, "log byte-identical to 1 worker ✓");
        rep.metric("E-SVC", "stream_requests_per_s_1worker", throughput);
        println!("   determinism: {n_requests}-request gateway log identical at 1/4 workers ✓");
    }

    rep.header(
        "E-DLT",
        "delta vs full-pass commit admission (edit-proportional splice)",
        "delta admission ≥ 5× full pass at 100k and 1M nodes, ≤ 8-update batches",
    );
    {
        let mut batch_rng = wl::rng();
        for &nodes in rep.sweep(&[10_000usize, 100_000, 1_000_000], 1) {
            // The 1M-node full pass is ~100× the 10k one; its median
            // settles with fewer samples.
            let runs = if rep.smoke || nodes >= 1_000_000 { 5 } else { 9 };
            let (tree, suite) = wl::edlt_workload(nodes, 12);
            let mut work = tree;
            let cache = SuiteCache::new();
            let compiled = cache.get_or_compile(&suite);
            assert_eq!(compiled.fallback_count(), 0, "E-DLT suite must compile fully");
            let mut ev = Evaluator::new(&work);
            let mut base = ev.eval_set(&*compiled);
            for (mix_name, mixed) in [("relabel", false), ("mixed", true)] {
                for &bsize in &[1usize, 8] {
                    let batch =
                        xuc_workloads::trees::delta_batches(&mut batch_rng, &work, 1, bsize, mixed)
                            .remove(0);
                    // Apply the batch exactly as a session would: refresh
                    // per edit, scopes folded into one dirty region.
                    let mut region = DirtyRegion::new();
                    let mut stack = Vec::new();
                    for u in &batch {
                        let (tok, scope) = apply_undoable(&mut work, u).expect("batch valid");
                        ev.refresh_after(&work, &scope);
                        region.record(&work, &scope);
                        stack.push(tok);
                    }
                    // Exactness, point by point, at both layers: the
                    // splice must equal the full set pass, and the delta
                    // admission must reproduce the full admission's range
                    // results — before either is timed.
                    assert_eq!(
                        ev.eval_set_delta(&*compiled, &region, &base),
                        ev.eval_set(&*compiled),
                        "eval_set_delta must equal eval_set"
                    );
                    assert_eq!(
                        admit_delta(&mut ev, &compiled, &suite, &base, &region)
                            .expect("batch admits"),
                        admit(&mut ev, &compiled, &suite, &base).expect("batch admits"),
                        "admit_delta must equal admit"
                    );
                    let full = wl::median_micros(runs, || {
                        admit(&mut ev, &compiled, &suite, &base).expect("batch admits")
                    });
                    // The production commit path: in-place splice, judged
                    // off the journal. Reverting inside the measured
                    // closure keeps iterations identical (and makes the
                    // reported delta cost an overestimate).
                    let delta = wl::median_micros(runs, || {
                        let journal =
                            admit_delta_in_place(&mut ev, &compiled, &suite, &mut base, &region)
                                .expect("batch admits")
                                .expect("all-linear suite rides the splice");
                        journal.revert(&mut base);
                    });
                    let ratio = full / delta;
                    rep.row(
                        "E-DLT",
                        &format!("{mix_name}{bsize}_full"),
                        nodes,
                        full,
                        "full-pass admission",
                    );
                    rep.row(
                        "E-DLT",
                        &format!("{mix_name}{bsize}_delta"),
                        nodes,
                        delta,
                        &format!("delta splice ({ratio:.1}x)"),
                    );
                    rep.metric("E-DLT", &format!("speedup_{mix_name}{bsize}_{nodes}"), ratio);
                    if bsize == 8 && (nodes >= 100_000 || (rep.smoke && nodes == 10_000)) {
                        rep.floor(
                            "E-DLT",
                            &format!("speedup_{mix_name}{bsize}_{nodes}"),
                            ratio,
                            5.0,
                            true,
                        );
                    }
                    while let Some(tok) = stack.pop() {
                        let scope = undo(&mut work, tok).expect("undo own token");
                        ev.refresh_after(&work, &scope);
                    }
                }
            }
        }

        // Worker-pool determinism re-pinned on the delta admission path:
        // byte-identical log at 1/2/8 workers, and identical to the
        // full-pass reference arm.
        let (tree, suite) = wl::edlt_workload(10_000, 12);
        let doc = DocId::new("edlt");
        let stream = xuc_service::workload::seeded_requests(
            &[(doc, &tree)],
            &["note", "visit"],
            0x0E17_D317,
            60,
        );
        let run_at = |mode: AdmissionMode, workers: usize| {
            let gw = Gateway::with_admission(Signer::new(0xD317), mode);
            gw.publish(doc, tree.clone(), suite.clone()).expect("fresh gateway");
            let verdicts = gw.process(&stream, workers);
            render_log(&stream, &verdicts)
        };
        let reference = run_at(AdmissionMode::Delta, 1);
        for workers in [2usize, 8] {
            assert_eq!(
                run_at(AdmissionMode::Delta, workers),
                reference,
                "delta log diverged at {workers} workers"
            );
        }
        assert_eq!(
            run_at(AdmissionMode::FullPass, 2),
            reference,
            "delta and full-pass gateway logs must agree"
        );
        println!("   determinism: 60-request delta-path gateway log identical at 1/2/8 workers ✓");
    }

    rep.header(
        "E-M1",
        "million-node arena: snapshot walk, amortized eval, refresh, churn",
        "slot capacity bounded under churn; snapshot-amortized eval ≥ 2×; relabel refresh ≥ 10×",
    );
    {
        // The arena rebuild's headline scale: one hospital document at
        // 10^6 nodes (120k under XUC_SMOKE — every assertion still fires,
        // including the hard churn-boundedness check).
        let nodes = if rep.smoke { 120_000 } else { 1_000_000 };
        let runs = if rep.smoke { 3 } else { 5 };
        let mut work = xuc_workloads::trees::hospital_sized(&mut wl::rng(), nodes);
        assert_eq!(work.slot_capacity(), work.len(), "a freshly built arena must be dense");

        // Snapshot fast path: the sibling-chain walk over the dense
        // parallel arrays into a reused buffer.
        let mut buf = Vec::new();
        work.preorder_snapshot_into(&mut buf);
        assert_eq!(buf.len(), work.len());
        let snap = wl::median_micros(runs, || work.preorder_snapshot_into(&mut buf));
        let mnodes_s = work.len() as f64 / snap;
        rep.row("E-M1", "snapshot", nodes, snap, &format!("{mnodes_s:.0} Mnodes/s"));
        rep.metric("E-M1", "snapshot_mnodes_per_s", mnodes_s);

        // Amortized evaluation: one evaluator (one snapshot walk) across
        // a policy-sized pattern batch, against a cold evaluator per
        // pattern — the cold arm pays the million-node walk per pattern.
        let patterns: Vec<xuc_xpath::Pattern> = [
            "/patient",
            "/patient/visit",
            "/patient/visit/report",
            "/patient/clinicalTrial",
            "/patient/phone",
            "//report",
            "//phone",
            "//visit",
        ]
        .iter()
        .map(|s| xuc_xpath::parse(s).expect("static"))
        .collect();
        let cold = wl::median_micros(runs, || {
            patterns
                .iter()
                .map(|q| {
                    let mut ev = Evaluator::new(&work);
                    ev.eval(q).len()
                })
                .sum::<usize>()
        });
        let amortized = wl::median_micros(runs, || {
            let mut ev = Evaluator::new(&work);
            patterns.iter().map(|q| ev.eval(q).len()).sum::<usize>()
        });
        let eval_ratio = cold / amortized;
        rep.row("E-M1", "eval_cold", nodes, cold, "snapshot per pattern");
        rep.row(
            "E-M1",
            "eval_amort",
            nodes,
            amortized,
            &format!("one snapshot ({eval_ratio:.1}x)"),
        );
        rep.metric("E-M1", "amortized_speedup", eval_ratio);
        rep.floor("E-M1", "amortized_speedup", eval_ratio, 2.0, true);

        // Incremental refresh at scale: a 4-edit relabel batch kept in
        // sync via edit scopes vs the full-rebuild baseline that
        // re-walks the whole document per refresh.
        let mut ev = Evaluator::new(&work);
        for q in &patterns {
            ev.eval(q); // prime the label-row cache
        }
        let batch =
            xuc_workloads::trees::delta_batches(&mut wl::rng(), &work, 1, 4, false).remove(0);
        let incr = wl::median_micros(runs, || {
            for u in &batch {
                let (tok, scope) = apply_undoable(&mut work, u).expect("valid batch");
                ev.refresh_after(&work, &scope);
                let undo_scope = undo(&mut work, tok).expect("undo own token");
                ev.refresh_after(&work, &undo_scope);
            }
        }) / batch.len() as f64;
        let full = wl::median_micros(runs, || {
            for u in &batch {
                let (tok, _scope) = apply_undoable(&mut work, u).expect("valid batch");
                ev.refresh(&work);
                undo(&mut work, tok).expect("undo own token");
                ev.refresh(&work);
            }
        }) / batch.len() as f64;
        let refresh_ratio = full / incr;
        rep.row("E-M1", "refresh_full", nodes, full, "full refresh per edit");
        rep.row(
            "E-M1",
            "refresh_incr",
            nodes,
            incr,
            &format!("edit-scope refresh ({refresh_ratio:.1}x)"),
        );
        rep.metric("E-M1", "relabel_refresh_ratio", refresh_ratio);
        rep.floor("E-M1", "relabel_refresh_ratio", refresh_ratio, 10.0, true);

        // Churn boundedness — the leak this PR fixes, asserted hard even
        // in smoke mode: a thousand insert+delete cycles of patient-sized
        // subtrees must recycle slots, not push the arena's capacity.
        let base_capacity = work.slot_capacity();
        let root = work.root_id();
        let cycles = 1_000usize;
        let churn_us = wl::median_micros(1, || {
            for _ in 0..cycles {
                let p = work.add(root, "patient").expect("fresh id");
                let v = work.add(p, "visit").expect("fresh id");
                work.add(v, "report").expect("fresh id");
                work.add(p, "phone").expect("fresh id");
                work.delete_subtree(p).expect("own subtree");
            }
        });
        assert!(
            work.slot_capacity() <= base_capacity + 4,
            "arena leaked slots under churn: capacity {} grew past {} + one 4-node subtree",
            work.slot_capacity(),
            base_capacity
        );
        rep.row(
            "E-M1",
            "churn_cycles",
            cycles,
            churn_us,
            &format!("capacity {} → {} ✓", base_capacity, work.slot_capacity()),
        );
        rep.metric("E-M1", "churn_capacity_growth", (work.slot_capacity() - base_capacity) as f64);
        println!("   churn: slot capacity bounded by peak live at {} nodes ✓", work.len());
    }

    rep.header(
        "E-PAR",
        "sharded counterexample search throughput (T1-d style, budget exhausted)",
        "4-shard ≥ 2× single-shard (needs ≥ 4 cores)",
    );
    {
        let (set, goal) = wl::epar_workload();
        let budget = if rep.smoke { 2_000 } else { 30_000 };
        let runs = if rep.smoke { 1 } else { 3 };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut single = 0.0f64;
        for shards in [1usize, 2, 4, 8] {
            let t = wl::median_micros(runs, || {
                assert!(
                    find_counterexample_sharded(&set, &goal, budget, shards).is_none(),
                    "E-PAR workload must exhaust its budget"
                );
            });
            if shards == 1 {
                single = t;
            }
            let speedup = single / t;
            rep.row("E-PAR", "shards", shards, t, &format!("{speedup:.2}x vs 1 shard"));
            rep.metric("E-PAR", &format!("speedup_{shards}shard"), speedup);
            if shards == 4 {
                // The ≥ 2× floor is only physical with ≥ 4 cores; on
                // smaller machines the sweep still checks determinism and
                // records the series.
                rep.floor("E-PAR", "speedup_4shard", speedup, 2.0, cores >= 4);
            }
        }
        // Shard-count independence spot check on a refutable workload.
        let (rset, rgoal) = (
            vec![xuc_core::parse_constraint("(/a[/b], ↑)").expect("static")],
            xuc_core::parse_constraint("(/a, ↑)").expect("static"),
        );
        let one = find_counterexample_sharded(&rset, &rgoal, 5_000, 1).expect("witness");
        let four = find_counterexample_sharded(&rset, &rgoal, 5_000, 4).expect("witness");
        assert_eq!(
            one.canonical_pair_form(),
            four.canonical_pair_form(),
            "sharded search must be shard-count independent"
        );
        println!("   determinism: 1-shard and 4-shard counterexamples identical ✓");
        println!("   cores available: {cores}");
    }

    rep.header(
        "E-REC",
        "gateway crash-recovery time vs journal length (snapshot cadence sweep)",
        "snapshot + tail replay ≥ 2× faster than cold full-log replay",
    );
    {
        let commits = if rep.smoke { 130usize } else { 950 };
        let nodes = if rep.smoke { 2_000usize } else { 10_000 };
        let key = 0xEEC0;
        let mut rng = wl::rng();
        let (tree, suite) = wl::edlt_workload(nodes, 12);
        let doc = DocId::new("erec");
        // Relabel-only batches: cumulative commits stay admissible under
        // the all-linear E-DLT suite (`note` is unprotected), so the
        // journal holds exactly `commits` accepted batches.
        let requests: Vec<Request> =
            xuc_workloads::trees::delta_batches(&mut rng, &tree, commits, 4, false)
                .into_iter()
                .map(|updates| Request { doc, updates })
                .collect();

        // Cadence sweep: never snapshot (cold recovery replays the whole
        // log), every 100 commits (recovery = snapshot + short tail), and
        // every 1000 (cadence longer than history — behaves like cold).
        let cadences: &[(&str, Option<u64>)] =
            &[("cold", None), ("snap100", Some(100)), ("snap1000", Some(1000))];
        let mut times = Vec::new();
        let mut reference: Option<(String, xuc_sigstore::Certificate)> = None;
        for &(name, cadence) in cadences {
            let dir = std::env::temp_dir().join(format!("xuc-erec-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let opts =
                DurableOptions { group_commit: 8, snapshot_every: cadence, ..Default::default() };
            let gw = Gateway::recover_with(Signer::new(key), AdmissionMode::Delta, &dir, opts)
                .expect("fresh durability dir");
            gw.publish(doc, tree.clone(), suite.clone()).expect("fresh gateway");
            for (i, r) in requests.iter().enumerate() {
                assert!(gw.submit(r).is_accepted(), "E-REC request #{i} must be accepted");
            }
            drop(gw); // orderly shutdown: pending group-commit frames sync

            // Discarded warm-up: the first recovery in a process pays
            // page-cache/heap-growth costs (the cold WAL here is ~260 MB)
            // that would otherwise inflate whichever arm runs first.
            drop(
                Gateway::recover_with(Signer::new(key), AdmissionMode::Delta, &dir, opts)
                    .expect("recovery"),
            );
            let t = wl::median_micros(3, || {
                let rec = Gateway::recover_with(Signer::new(key), AdmissionMode::Delta, &dir, opts)
                    .expect("recovery");
                assert_eq!(
                    rec.store().document(doc).expect("recovered").lock().commits(),
                    commits as u64,
                    "recovery must land on the pre-crash commit counter"
                );
            });
            // Recovery must land on identical state whatever the cadence.
            let rec = Gateway::recover_with(Signer::new(key), AdmissionMode::Delta, &dir, opts)
                .expect("recovery");
            let render = rec.snapshot(doc).expect("recovered").render();
            let cert = rec.certificate(doc).expect("recovered");
            match &reference {
                None => reference = Some((render, cert)),
                Some((r0, c0)) => {
                    assert_eq!(&render, r0, "{name}: recovered tree diverged");
                    assert_eq!(&cert, c0, "{name}: recovered certificate diverged");
                }
            }
            let note = match cadence {
                None => "cold: full-log replay",
                Some(100) => "snapshot + tail replay",
                _ => "cadence > history: behaves cold",
            };
            rep.row(
                "E-REC",
                "cadence",
                cadence.unwrap_or(0) as usize,
                t,
                &format!("{note} ({commits} commits)"),
            );
            rep.metric("E-REC", &format!("recover_us_{name}"), t);
            times.push(t);
            let _ = std::fs::remove_dir_all(&dir);
        }
        let speedup = times[0] / times[1];
        rep.metric("E-REC", "cold_over_snap100", speedup);
        rep.floor("E-REC", "cold_over_snap100", speedup, 2.0, true);
        println!("   snapshot cadence 100 recovers {speedup:.1}x faster than cold replay");
    }

    rep.header(
        "E-CHAOS",
        "overload availability under bounded admission queues (capacity sweep)",
        "load shedding is deterministic, prefers commits over reads, and vanishes off overload",
    );
    {
        // Six small documents under one ↑-guarded suite, driven by a timed
        // open-loop arrival stream far above the per-shard service rate —
        // overload by construction, no fault injection (the injected-fault
        // arms live in the release-mode chaos suite, tests/chaos.rs).
        let key = 0xCA05;
        let count = if rep.smoke { 600usize } else { 6_000 };
        let docs: Vec<(DocId, DataTree)> = (0..6)
            .map(|k| {
                let mut tree = DataTree::new("hospital");
                let patient = tree.add(tree.root_id(), "patient").expect("fresh tree");
                tree.add(patient, "visit").expect("fresh tree");
                (DocId::new(&format!("chaos-{k}")), tree)
            })
            .collect();
        let suite = vec![xuc_core::parse_constraint("(/patient/visit, ↑)").expect("suite")];
        let fresh = || {
            let gw = Gateway::new(Signer::new(key));
            for (id, tree) in &docs {
                gw.publish(*id, tree.clone(), suite.clone()).expect("fresh gateway");
            }
            gw
        };
        let doc_refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(id, t)| (*id, t)).collect();
        let arrivals = seeded_arrivals(&doc_refs, &["visit"], 0xC4A0_5EED, count, 8, 40, None);

        // Capacity sweep: availability must rise with the waiting room and
        // commits must out-survive reads wherever shedding fires.
        let mut last_avail = -1.0f64;
        for &capacity in rep.sweep(&[1usize, 4, 16, usize::MAX], 3) {
            let opts = LoadOptions { queue_capacity: capacity, service_ticks: 2 };
            let gw = fresh();
            let start = std::time::Instant::now();
            let (_, load) = gw.process_open_loop(&arrivals, 4, &opts);
            let micros = start.elapsed().as_micros() as f64;
            let label = if capacity == usize::MAX { 0 } else { capacity };
            let name =
                if capacity == usize::MAX { "unbounded".into() } else { capacity.to_string() };
            rep.row(
                "E-CHAOS",
                "capacity",
                label,
                micros,
                &format!(
                    "availability {:.3} (reads {:.3}, commits {:.3})",
                    load.availability(),
                    load.read_availability(),
                    load.commit_availability()
                ),
            );
            rep.metric("E-CHAOS", &format!("availability_cap{name}"), load.availability());
            rep.metric(
                "E-CHAOS",
                &format!("read_availability_cap{name}"),
                load.read_availability(),
            );
            rep.metric(
                "E-CHAOS",
                &format!("commit_availability_cap{name}"),
                load.commit_availability(),
            );
            assert!(
                load.availability() + 1e-9 >= last_avail,
                "availability must not fall as capacity grows"
            );
            last_avail = load.availability();
            if capacity == usize::MAX {
                assert_eq!(load.availability(), 1.0, "nothing sheds without bounds or deadlines");
            } else {
                assert!(load.shed_queue_full + load.shed_for_commit > 0, "sweep must overload");
                assert!(
                    load.commit_availability() >= load.read_availability(),
                    "the shed policy must prefer dropping reads over commits"
                );
            }
        }

        // Deadline arm: a tight start-by deadline sheds the backlog before
        // evaluation even with unbounded queues.
        let with_deadlines =
            seeded_arrivals(&doc_refs, &["visit"], 0xC4A0_5EED, count, 8, 40, Some(4));
        let (_, load) = fresh().process_open_loop(
            &with_deadlines,
            4,
            &LoadOptions { queue_capacity: usize::MAX, service_ticks: 2 },
        );
        assert!(load.shed_deadline > 0, "the deadline arm must expire requests");
        rep.metric("E-CHAOS", "availability_deadline4", load.availability());
        println!(
            "   deadline slack 4: availability {:.3} ({} expired before evaluation)",
            load.availability(),
            load.shed_deadline
        );

        // Shedding decisions are a deterministic pre-pass: the full verdict
        // log is byte-identical at 1, 2 and 8 workers even while shedding.
        let opts = LoadOptions { queue_capacity: 2, service_ticks: 2 };
        let reference = {
            let (v, load) = fresh().process_open_loop(&arrivals, 1, &opts);
            assert!(load.served < load.offered, "determinism arm must shed");
            render_arrival_log(&arrivals, &v)
        };
        for workers in [2usize, 8] {
            let (v, _) = fresh().process_open_loop(&arrivals, workers, &opts);
            assert_eq!(
                render_arrival_log(&arrivals, &v),
                reference,
                "open-loop log diverged at {workers} workers"
            );
        }
        println!("   determinism: shedding log byte-identical at 1/2/8 workers ✓");

        // Off overload the queue layer is invisible: unbounded open-loop
        // verdicts on a commit-only stream equal the plain closed-loop run.
        let commits: Vec<Request> =
            arrivals.iter().filter(|a| !a.read).map(|a| a.request.clone()).collect();
        let open: Vec<Verdict> = {
            let gw = fresh();
            let timed: Vec<xuc_service::Arrival> = commits
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, r)| xuc_service::Arrival::commit(r, i as u64))
                .collect();
            gw.process_open_loop(&timed, 4, &LoadOptions::default()).0
        };
        let closed = fresh().process(&commits, 4);
        assert_eq!(open, closed, "unbounded open loop must equal the closed loop");
        println!(
            "   equivalence: unbounded open loop ≡ closed loop on {} commits ✓",
            commits.len()
        );
    }

    rep.header(
        "E-LOAD",
        "open-loop latency vs offered load (per-shard work queues + commit coalescing)",
        "saturation at 8 workers ≥ 2× 1 worker under hot-document skew (virtual-time model)",
    );
    {
        // The container pins this harness to one core, so worker scaling
        // is measured on the deterministic virtual-time queue model
        // (`xuc_bench::load`, the E-PAR precedent): same config ⇒
        // bit-identical histograms, so the ratios below are structural
        // properties of the queue topology. The real gateway is pinned to
        // the model's contract by the load-differential suite
        // (crates/service/tests/load.rs) and the determinism arm below.
        let count = if rep.smoke { 2_000usize } else { 12_000 };
        let base = SimConfig {
            workers: 1,
            max_coalesce: 8,
            base_cost: 8,
            marginal_cost: 1,
            docs: 64,
            skew_centi: 99,
            offered_per_kilotick: 200,
            count,
            seed: 0xE10AD,
        };

        // Saturation sweep: skew × worker count. The hot document at
        // skew 0.99 serializes on one worker, but coalescing keeps its
        // amortized per-batch cost near `marginal`, so the cold shards'
        // parallelism still pays.
        let mut sat = std::collections::HashMap::new();
        for &skew in &[0u32, 90, 99] {
            for &workers in &[1usize, 2, 8] {
                let s = saturation_throughput(&SimConfig { workers, skew_centi: skew, ..base });
                sat.insert((skew, workers), s);
                rep.metric("E-LOAD", &format!("sat_s{skew}_w{workers}"), s);
                println!(
                    "   saturation  skew 0.{skew:02} workers {workers}: {s:>7.1} req/kilotick"
                );
            }
        }
        let scaling = sat[&(99, 8)] / sat[&(99, 1)];
        rep.metric("E-LOAD", "sat_scaling_s99_w8_over_w1", scaling);
        rep.floor("E-LOAD", "sat_scaling_s99_w8_over_w1", scaling, 2.0, true);
        println!("   8-worker saturation is {scaling:.2}x the 1-worker figure at skew 0.99");

        // Latency vs offered load at 8 workers: p50/p99/p999 as the
        // offered rate climbs through 30/60/90/120% of saturation — the
        // open-loop latency cliff past 100%.
        for &skew in &[0u32, 99] {
            let cap = sat[&(skew, 8)];
            let mut tail_at_30 = 0u64;
            for &pct in &[30u64, 60, 90, 120] {
                let offered = ((cap * pct as f64 / 100.0) as u64).max(1);
                let result = simulate(&SimConfig {
                    workers: 8,
                    skew_centi: skew,
                    offered_per_kilotick: offered,
                    ..base
                });
                let (p50, p99, p999) = (
                    result.hist.quantile(0.50),
                    result.hist.quantile(0.99),
                    result.hist.quantile(0.999),
                );
                for (name, v) in [("p50", p50), ("p99", p99), ("p999", p999)] {
                    rep.metric("E-LOAD", &format!("{name}_s{skew}_load{pct}"), v as f64);
                }
                println!(
                    "   latency     skew 0.{skew:02} offered {pct:>3}%: p50 {p50:>6} p99 \
                     {p99:>6} p999 {p999:>6} ticks"
                );
                if pct == 30 {
                    tail_at_30 = p99;
                }
                if pct == 120 {
                    assert!(
                        p99 > tail_at_30,
                        "overload must show in the tail: p99 {tail_at_30} → {p99}"
                    );
                }
            }
        }

        // Real-execution arm: the throughput gateway's verdict log must
        // be byte-identical to the reference arm on a hot-document
        // Zipfian stream at every worker count — and the coalescer must
        // genuinely fire on an engineered disjoint-subtree stream, where
        // its merged passes beat batch-at-a-time admission even on one
        // core.
        // 64 children: a coalesced run of 8 dirties ⅛ of the document,
        // safely under the splice's targeted-vs-full-sweep size guard
        // even with the 17-pattern suite below.
        let mut term = String::from("h(");
        for i in 0..64u64 {
            term.push_str(&format!("p#{}(v#{}),", 1 + 2 * i, 2 + 2 * i));
        }
        term.pop();
        term.push(')');
        let tree = xuc_xtree::parse_term(&term).expect("static");
        // A wide all-linear ↑-suite: additions are always admissible, so
        // the engineered insert stream below is all-accept, while every
        // batch pays the realistic per-pattern splice bookkeeping that
        // coalescing amortizes.
        let mut suite = vec![xuc_core::parse_constraint("(/p/v, ↑)").expect("static")];
        suite.extend(
            xuc_workloads::queries::overlapping_prefix_suite(&["p", "v"], 16, 4)
                .into_iter()
                .map(xuc_core::Constraint::no_remove),
        );
        assert!(suite.iter().all(|c| c.range.is_linear()), "E-LOAD suite must be all-linear");
        let docs: Vec<(DocId, DataTree)> =
            (0..8).map(|i| (DocId::new(&format!("load-{i}")), tree.clone())).collect();
        let fresh = || {
            let gw = Gateway::new(Signer::new(0xE10A));
            for (id, t) in &docs {
                gw.publish(*id, t.clone(), suite.clone()).expect("fresh gateway");
            }
            gw
        };
        let doc_refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(id, t)| (*id, t)).collect();
        let stream_len = if rep.smoke { 120usize } else { 360 };
        let stream = seeded_zipf_requests(&doc_refs, &["v", "w"], 0xE10A_5EED, stream_len, 99);
        let reference = render_log(&stream, &fresh().process(&stream, 1));
        for workers in [1usize, 2, 8] {
            let gw = fresh();
            let verdicts = gw.process_throughput(&stream, workers, &ThroughputOptions::default());
            assert_eq!(
                render_log(&stream, &verdicts),
                reference,
                "throughput-mode log diverged at {workers} workers"
            );
        }
        println!("   determinism: throughput-mode log byte-identical at 1/2/8 workers ✓");

        // Engineered hot-document runs (each request edits its own child
        // subtree of one document): the merged fast path must fire, and
        // its wall-clock against max_coalesce = 1 is recorded — as a
        // trajectory metric, not a floor (single-core timer noise).
        let hot = DocId::new("load-0");
        let hot_stream: Vec<Request> = (0..stream_len as u64)
            .map(|i| Request {
                doc: hot,
                updates: vec![xuc_xtree::Update::InsertLeaf {
                    parent: xuc_xtree::NodeId::from_raw(1 + 2 * (i % 64)),
                    id: xuc_xtree::NodeId::fresh(),
                    label: "v".into(),
                }],
            })
            .collect();
        let timed = |max_coalesce: usize| {
            // Publish outside the timed region: only the drain is the
            // subject (each sample gets its own fresh gateway so every
            // iteration processes an identical document).
            let runs = if rep.smoke { 3 } else { 7 };
            let mut samples: Vec<f64> = (0..runs)
                .map(|_| {
                    let gw = fresh();
                    let t = std::time::Instant::now();
                    let verdicts =
                        gw.process_throughput(&hot_stream, 1, &ThroughputOptions { max_coalesce });
                    let micros = t.elapsed().as_secs_f64() * 1e6;
                    assert!(verdicts.iter().all(Verdict::is_accepted));
                    micros
                })
                .collect();
            samples.sort_by(|a, b| a.total_cmp(b));
            samples[samples.len() / 2]
        };
        let sequential = timed(1);
        let gw = fresh();
        let verdicts = gw.process_throughput(&hot_stream, 1, &ThroughputOptions::default());
        assert!(verdicts.iter().all(Verdict::is_accepted));
        let stats = gw.coalesce_stats();
        assert!(stats.commits > 0, "the engineered stream must take the merged path: {stats:?}");
        let coalesced = timed(8);
        // Trajectory metric, no floor: per-batch certification (required
        // in both arms — every batch keeps its own chained certificate)
        // dominates this document scale, so the merged pass's saved
        // admission sweeps land near wall-clock parity here; the queue
        // model above is where the structural effect is measured.
        rep.row("E-LOAD", "max_coalesce", 1, sequential, "batch-at-a-time admission");
        rep.row(
            "E-LOAD",
            "max_coalesce",
            8,
            coalesced,
            &format!(
                "merged runs ({:.2}x, {} batches coalesced; certification-bound)",
                sequential / coalesced,
                stats.batches
            ),
        );
        rep.metric("E-LOAD", "coalesce_wallclock_ratio", sequential / coalesced);
    }

    rep.header(
        "E-OBS",
        "telemetry: commit stage attribution and instrumentation overhead",
        "observationally inert; instrumented throughput ≥ 0.95× uninstrumented",
    );
    {
        // Stage-attribution arm: the E-LOAD deployment (64-child wide
        // documents, 17-pattern all-linear suite) and its skew-0.99
        // Zipfian stream, drained through *instrumented* gateways at
        // coalescing windows 1 and 8. The attached telemetry must be
        // inert (log byte-identical to the uninstrumented reference) and
        // the per-stage breakdown shows where admission time goes and
        // how the merged fast path moves it.
        let mut term = String::from("h(");
        for i in 0..64u64 {
            term.push_str(&format!("p#{}(v#{}),", 1 + 2 * i, 2 + 2 * i));
        }
        term.pop();
        term.push(')');
        let tree = xuc_xtree::parse_term(&term).expect("static");
        let mut suite = vec![xuc_core::parse_constraint("(/p/v, ↑)").expect("static")];
        suite.extend(
            xuc_workloads::queries::overlapping_prefix_suite(&["p", "v"], 16, 4)
                .into_iter()
                .map(xuc_core::Constraint::no_remove),
        );
        let docs: Vec<(DocId, DataTree)> =
            (0..8).map(|i| (DocId::new(&format!("obs-{i}")), tree.clone())).collect();
        let fresh = || {
            let gw = Gateway::new(Signer::new(0x0B5E));
            for (id, t) in &docs {
                gw.publish(*id, t.clone(), suite.clone()).expect("fresh gateway");
            }
            gw
        };
        let doc_refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(id, t)| (*id, t)).collect();
        let stream_len = if rep.smoke { 120usize } else { 360 };
        let stream = seeded_zipf_requests(&doc_refs, &["v", "w"], 0xE10A_5EED, stream_len, 99);
        let reference = render_log(&stream, &fresh().process(&stream, 1));
        for &max_coalesce in &[1usize, 8] {
            let gw = fresh();
            let tel = Arc::new(Telemetry::new());
            gw.attach_telemetry(Arc::clone(&tel));
            let verdicts = gw.process_throughput(&stream, 2, &ThroughputOptions { max_coalesce });
            assert_eq!(
                render_log(&stream, &verdicts),
                reference,
                "telemetry must be inert at window {max_coalesce}"
            );
            if max_coalesce > 1 {
                assert!(
                    gw.coalesce_stats().attempts > 0,
                    "the hot-document stream must offer the coalescer runs"
                );
            }
            gw.record_metrics();
            let rows = tel.stages().rows();
            let total_us = tel.stages().total_micros().max(1) as f64;
            let spans: u64 = rows.iter().map(|r| r.count).sum();
            assert!(spans > 0, "instrumented drain must record stage spans");
            for r in &rows {
                rep.row(
                    "E-OBS",
                    &format!("{}_us", r.stage.name()),
                    max_coalesce,
                    r.total_micros as f64,
                    &format!(
                        "{} spans ({:.1}%)",
                        r.count,
                        100.0 * r.total_micros as f64 / total_us
                    ),
                );
                rep.metric(
                    "E-OBS",
                    &format!("stage_share_{}_mc{max_coalesce}", r.stage.name()),
                    r.total_micros as f64 / total_us,
                );
            }
            rep.metric("E-OBS", &format!("spans_total_mc{max_coalesce}"), spans as f64);
            println!(
                "   window {max_coalesce}: {spans} spans attributed, ring dropped {}",
                tel.ring().dropped()
            );
        }

        // Overhead arm: the E-SVC gateway stream drained with and
        // without an attached telemetry bundle, samples interleaved so
        // machine drift hits both arms equally. This floor is a HARD
        // assertion even in smoke mode — telemetry cheap enough to leave
        // on is the whole point, so a regression here fails the run
        // everywhere.
        let n_requests = if rep.smoke { 720usize } else { 1200 };
        let (svc_docs, svc_requests) = wl::esvc_gateway_workload(n_requests);
        let drain = |instrument: bool| -> f64 {
            let gw = Gateway::new(Signer::new(0x0B5E));
            if instrument {
                gw.attach_telemetry(Arc::new(Telemetry::new()));
            }
            for (id, tree, suite) in &svc_docs {
                gw.publish(*id, tree.clone(), suite.clone()).expect("fresh gateway");
            }
            let t0 = std::time::Instant::now();
            let verdicts = gw.process_throughput(&svc_requests, 2, &ThroughputOptions::default());
            let micros = t0.elapsed().as_secs_f64() * 1e6;
            assert_eq!(verdicts.len(), svc_requests.len());
            micros
        };
        let runs = if rep.smoke { 9 } else { 15 };
        // Warm-up pair (discarded): faults in both arms' code paths and
        // allocator arenas before anything is measured.
        drain(false);
        drain(true);
        // One sampling round: `runs` paired measurements — both arms
        // back-to-back per iteration, order alternating so cache and
        // allocator warm-up cannot systematically favor one. The
        // asserted statistic is **min over min**: each arm's fastest
        // achievable drain. Sustained-throughput noise is one-sided
        // (preemption, frequency dips, ring cold misses only ever ADD
        // time), so the minimum estimates each arm's intrinsic cost and
        // the ratio of minimums the intrinsic overhead — medians and
        // means keep the scheduler's fat tail in the comparison.
        let mut plain_samples = Vec::new();
        let mut instr_samples = Vec::new();
        let fastest = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let round = |plain: &mut Vec<f64>, instr: &mut Vec<f64>| {
            for i in 0..runs {
                let first_instrumented = i % 2 == 0;
                let a = drain(first_instrumented);
                let b = drain(!first_instrumented);
                let (p, q) = if first_instrumented { (b, a) } else { (a, b) };
                plain.push(p);
                instr.push(q);
            }
        };
        // Up to three rounds; adding samples can only sharpen both
        // minimums, so the loop stops at the first ratio clearing the
        // floor. A genuine overhead regression fails *every* round,
        // which is exactly the condition the floor exists to catch.
        let mut ratio = 0.0f64;
        for _ in 0..3 {
            if ratio >= 0.95 {
                break;
            }
            round(&mut plain_samples, &mut instr_samples);
            ratio = fastest(&plain_samples) / fastest(&instr_samples);
        }
        let (plain_us, instr_us) = (fastest(&plain_samples), fastest(&instr_samples));
        rep.row("E-OBS", "overhead_plain", n_requests, plain_us, "uninstrumented drain");
        rep.row(
            "E-OBS",
            "overhead_instrumented",
            n_requests,
            instr_us,
            &format!("telemetry attached ({ratio:.2}x throughput)"),
        );
        rep.metric("E-OBS", "overhead_throughput_ratio", ratio);
        assert!(
            ratio >= 0.95,
            "instrumented throughput fell below the 0.95x floor: {ratio:.3} \
             ({instr_us:.0} µs vs {plain_us:.0} µs)"
        );
        println!("   overhead: instrumented throughput {ratio:.2}x uninstrumented (floor 0.95) ✓");
    }

    println!();
    rep.write_json();
    if rep.perf_regression {
        println!("experiment assertions passed; PERF WARNING above (exit 1)");
        std::process::exit(1);
    }
    println!("all experiment assertions passed");
}
