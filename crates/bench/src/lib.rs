//! Shared workload builders and measurement helpers for the benchmark
//! harness (Criterion benches + the `run_experiments` binary).
//!
//! Every experiment id (T1-a … T2-g, F2, E33, E41) maps to one function
//! here; DESIGN.md §3 is the index.

pub mod latency;
pub mod load;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use xuc_core::{Constraint, ConstraintKind};
use xuc_workloads::{gadgets, queries, trees, Formula};

/// A deterministic RNG so benches and experiments are reproducible.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(0x5eed_0001)
}

/// Median wall-time of `runs` executions of `f` (micro-measurement for the
/// printable experiment tables; Criterion does the rigorous version).
pub fn median_micros<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// T1-a: an implied `XP{/,[],*}` family with `n` constraints.
pub fn t1a_workload(n: usize) -> (Vec<Constraint>, Constraint) {
    let labels = ["doc", "a", "b", "c", "d"];
    queries::implied_pred_star_family(&mut rng(), &labels, n, 2, ConstraintKind::NoRemove)
}

/// T1-b: conjunctive-containment inputs of growing spine length for the
/// one-type `XP{/,[],//}` cell.
pub fn t1b_workload(k: usize) -> (Vec<Constraint>, Constraint) {
    // Interleaving family: //a1//…//ak//c ∩-queries; the goal asks for one
    // fixed interleaving, which is not implied for k ≥ 2.
    let left: String = (0..k).map(|i| format!("//a{i}")).collect();
    let right: String = (0..k).map(|i| format!("//b{i}")).collect();
    let set = vec![
        Constraint::no_remove(xuc_xpath::parse(&format!("{left}//c")).expect("generated")),
        Constraint::no_remove(xuc_xpath::parse(&format!("{right}//c")).expect("generated")),
    ];
    let goal =
        Constraint::no_remove(xuc_xpath::parse(&format!("{left}{right}//c")).expect("generated"));
    (set, goal)
}

/// T1-c/T1-f: linear families; `n` constraints over chains of length `k`.
pub fn t1_linear_workload(n: usize, k: usize) -> (Vec<Constraint>, Constraint) {
    let labels = ["a", "b", "c"];
    let mut set = Vec::new();
    for i in 0..n {
        let chain: String =
            (0..k).map(|j| format!("//{}", labels[(i + j) % labels.len()])).collect();
        let kind = if i % 2 == 0 { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
        set.push(Constraint::new(xuc_xpath::parse(&chain).expect("generated"), kind));
    }
    let goal_chain: String = (0..k).map(|j| format!("//{}", labels[j % labels.len()])).collect();
    let goal = Constraint::no_remove(xuc_xpath::parse(&goal_chain).expect("generated"));
    (set, goal)
}

/// T1-d: full-fragment one-type workload for the bounded search.
pub fn t1d_workload(n: usize) -> (Vec<Constraint>, Constraint) {
    let labels = ["a", "b", "c"];
    let gen = queries::QueryGen::full(&labels);
    let mut r = rng();
    let set = gen.set(&mut r, n, 1.0);
    let goal = Constraint::no_remove(gen.query(&mut r));
    (set, goal)
}

/// T1-h / T2-f: hardness gadget instances from a satisfiable random
/// formula with `v` variables (sweep exposes the 2^v assignment space).
pub fn formula(v: usize) -> Formula {
    Formula::random(&mut rng(), v, v + 1)
}

pub fn t1h_gadget(v: usize) -> gadgets::Thm46Gadget {
    gadgets::Thm46Gadget::new(formula(v))
}

pub fn t2f_gadget(v: usize) -> gadgets::Thm52Gadget {
    gadgets::Thm52Gadget::new(formula(v))
}

/// E-EV: the evaluation-engine workload — one random document and a batch
/// of random full-fragment patterns, both deterministic.
pub fn eval_engine_workload(
    nodes: usize,
    patterns: usize,
) -> (xuc_xtree::DataTree, Vec<xuc_xpath::Pattern>) {
    let labels = ["a", "b", "c", "d", "e"];
    let mut r = rng();
    let tree = trees::random_tree(&mut r, &labels, nodes);
    let gen = queries::QueryGen::full(&labels);
    let qs = (0..patterns).map(|_| gen.query(&mut r)).collect();
    (tree, qs)
}

/// E-IR: the incremental-refresh workload — the E-EV document plus a small
/// pattern batch used to prime the evaluator's label-row cache before the
/// edit mixes run.
pub fn eir_workload(nodes: usize) -> (xuc_xtree::DataTree, Vec<xuc_xpath::Pattern>) {
    eval_engine_workload(nodes, 8)
}

/// E-SET: the set-at-a-time workload — the E-EV document generator plus a
/// deterministic overlapping-prefix suite of `patterns` linear patterns
/// over the same label pool, so the suite actually selects nodes.
pub fn eset_workload(
    nodes: usize,
    patterns: usize,
) -> (xuc_xtree::DataTree, Vec<xuc_xpath::Pattern>) {
    let labels = ["a", "b", "c", "d", "e"];
    let tree = trees::random_tree(&mut rng(), &labels, nodes);
    let suite = queries::overlapping_prefix_suite(&labels, patterns, 6);
    (tree, suite)
}

/// E-SET search integration: an overlapping-prefix constraint batch above
/// the set-at-a-time crossover, with a refutable goal — the search
/// verifies candidates through one compiled automaton.
pub fn eset_search_workload() -> (Vec<Constraint>, Constraint) {
    let labels = ["a", "b", "c", "d", "e"];
    queries::overlapping_prefix_constraints(&labels, 24, 4, ConstraintKind::NoRemove)
}

/// E-SVC admission workload: the E-SET document plus a `k`-constraint
/// suite (overlapping-prefix ranges, alternating ↑/↓) — the shape a
/// gateway document's admission check runs per request.
pub fn esvc_workload(nodes: usize, k: usize) -> (xuc_xtree::DataTree, Vec<Constraint>) {
    let labels = ["a", "b", "c", "d", "e"];
    let tree = trees::random_tree(&mut rng(), &labels, nodes);
    let suite = queries::overlapping_prefix_suite(&labels, k, 6)
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let kind = if i % 2 == 0 { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
            Constraint::new(q, kind)
        })
        .collect();
    (tree, suite)
}

/// E-SVC gateway workload: a small two-document deployment plus a seeded
/// request stream, for the end-to-end throughput and worker-determinism
/// checks. Returns `(docs, requests)`; publish clones of the doc trees
/// into each gateway under test.
pub fn esvc_gateway_workload(
    requests: usize,
) -> (xuc_service::workload::Deployment, Vec<xuc_service::Request>) {
    let mut r = rng();
    let hospital = trees::hospital(&mut r, 12, 3);
    let hospital_suite = vec![
        xuc_core::parse_constraint("(/patient/visit, ↑)").expect("static"),
        xuc_core::parse_constraint("(/patient[/clinicalTrial], ↓)").expect("static"),
        xuc_core::parse_constraint("(//report, ↑)").expect("static"),
    ];
    let (wide_tree, wide_suite) = esvc_workload(120, 24);
    let docs = vec![
        (xuc_service::DocId::new("hospital"), hospital, hospital_suite),
        (xuc_service::DocId::new("wide"), wide_tree, wide_suite),
    ];
    let refs: Vec<(xuc_service::DocId, &xuc_xtree::DataTree)> =
        docs.iter().map(|(id, t, _)| (*id, t)).collect();
    let stream =
        xuc_service::workload::seeded_requests(&refs, &["visit", "x"], 0x5eed_05c0, requests);
    (docs, stream)
}

/// E-DLT: the delta-admission workload — a [`trees::hospital_sized`]
/// document of ≈`nodes` nodes and an **all-linear** admission suite of
/// `k` constraints shaped like a real hospital policy: ↑-protection on
/// the visit/report spine, ↓-protection on clinicalTrial/phone/patient,
/// padded with overlapping-prefix ranges. All ranges compile (zero
/// fallbacks), so delta admission takes the genuine splice path; the
/// [`trees::delta_batches`] edit mixes (phone→note relabels, note leaf
/// inserts, phone deletions) are accepted under this suite, so the
/// measured admission is the production commit shape.
pub fn edlt_workload(nodes: usize, k: usize) -> (xuc_xtree::DataTree, Vec<Constraint>) {
    let tree = trees::hospital_sized(&mut rng(), nodes);
    let core = [
        "(/patient/visit, ↑)",
        "(//report, ↑)",
        "(/patient/visit/report, ↑)",
        "(//visit, ↑)",
        "(/patient/clinicalTrial, ↓)",
        "(//phone, ↓)",
        "(/patient/phone, ↓)",
        "(/patient, ↓)",
    ];
    let mut suite: Vec<Constraint> =
        core.iter().map(|s| xuc_core::parse_constraint(s).expect("static")).collect();
    let seen: std::collections::HashSet<String> =
        suite.iter().map(|c| c.range.to_string()).collect();
    let padding = queries::overlapping_prefix_suite(&["visit", "report", "phone"], k, 3);
    for q in padding {
        if suite.len() >= k {
            break;
        }
        if !seen.contains(&q.to_string()) {
            suite.push(Constraint::new(q, ConstraintKind::NoInsert));
        }
    }
    assert!(suite.iter().all(|c| c.range.is_linear()), "E-DLT suite must be all-linear");
    (tree, suite)
}

/// E-PAR: a full-fragment (T1-d style) workload whose implication *holds*,
/// so the counterexample search exhausts its entire budget — a pure
/// candidate-throughput measurement for the shard sweep.
pub fn epar_workload() -> (Vec<Constraint>, Constraint) {
    let goal = Constraint::no_remove(xuc_xpath::parse("//a[/b]/c").expect("static"));
    (vec![goal.clone()], goal)
}

/// T2-a: plain instance workload over a hospital document of `p` patients.
pub fn t2a_workload(p: usize) -> (Vec<Constraint>, xuc_xtree::DataTree, Constraint) {
    let j = trees::hospital(&mut rng(), p, 3);
    let set = vec![
        xuc_core::parse_constraint("(/patient, ↓)").expect("static"),
        xuc_core::parse_constraint("(/patient/visit, ↑)").expect("static"),
    ];
    let goal = xuc_core::parse_constraint("(/patient, ↓)").expect("static");
    (set, j, goal)
}

/// T2-b: certain-facts workload (↓-only, XP{/,[],*}) over `p` patients.
pub fn t2b_workload(p: usize) -> (Vec<Constraint>, xuc_xtree::DataTree, Constraint) {
    let j = trees::hospital(&mut rng(), p, 3);
    let set = vec![
        xuc_core::parse_constraint("(/patient[/visit], ↓)").expect("static"),
        xuc_core::parse_constraint("(/patient[/clinicalTrial], ↓)").expect("static"),
    ];
    let goal = xuc_core::parse_constraint("(/patient[/visit][/clinicalTrial], ↓)").expect("static");
    (set, j, goal)
}

/// T2-c: linear ↓-only instance workload over `p` patients.
pub fn t2c_workload(p: usize) -> (Vec<Constraint>, xuc_xtree::DataTree, Constraint) {
    let j = trees::hospital(&mut rng(), p, 3);
    let set = vec![
        xuc_core::parse_constraint("(//visit, ↓)").expect("static"),
        xuc_core::parse_constraint("(/patient/visit//report, ↓)").expect("static"),
    ];
    let goal = xuc_core::parse_constraint("(//visit//report, ↓)").expect("static");
    (set, j, goal)
}

/// T2-e: possible-embeddings workload; `p` controls |J| (polynomial
/// dimension), `qsize` the goal query size (exponential dimension).
pub fn t2e_workload(p: usize, qsize: usize) -> (Vec<Constraint>, xuc_xtree::DataTree, Constraint) {
    let j = trees::hospital(&mut rng(), p, 2);
    let set = vec![xuc_core::parse_constraint("(/patient/visit, ↑)").expect("static")];
    let preds = ["visit", "clinicalTrial", "phone"];
    let mut goal_src = String::from("/patient");
    for i in 0..qsize {
        goal_src.push_str(&format!("[/{}]", preds[i % preds.len()]));
    }
    goal_src.push_str("/visit");
    let goal = Constraint::no_remove(xuc_xpath::parse(&goal_src).expect("generated"));
    (set, j, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::implication;

    #[test]
    fn workloads_have_expected_status() {
        let (set, goal) = t1a_workload(4);
        assert!(implication::ptime::implies_pred_star(&set, &goal));
        let (set, goal) = t1_linear_workload(3, 3);
        assert!(implication::linear::implies_linear(&set, &goal).decided().is_some());
        let (set, j, goal) = t2b_workload(20);
        assert!(xuc_core::implies_on(&set, &j, &goal).is_implied());
    }

    #[test]
    fn median_measures_positive() {
        let t = median_micros(5, || (0..1000).sum::<u64>());
        assert!(t >= 0.0);
    }
}
