//! Figures and examples: Fig. 2 validity, Example 4.1's interacting types,
//! Example 3.3's diverging chase, and the Fig. 1 exchange round-trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xuc_workloads::trees;

/// F2: validity checking of the Fig. 2 pair under Example 2.1.
fn f2_validity(c: &mut Criterion) {
    let (i, j) = trees::fig2_pair();
    let cs = trees::example_2_1_constraints();
    c.bench_function("f2_validity", |b| {
        b.iter(|| xuc_core::constraint::violations(black_box(&cs), black_box(&i), black_box(&j)))
    });
}

/// E41: the exact linear decision of Example 4.1 (mixed types, // only).
fn e41_interacting_types(c: &mut Criterion) {
    let (set, goal) = trees::example_4_1();
    c.bench_function("e41_full_set", |b| {
        b.iter(|| xuc_core::implication::linear::implies_linear(black_box(&set), black_box(&goal)))
    });
    let up_only: Vec<_> =
        set.iter().filter(|x| x.kind == xuc_core::ConstraintKind::NoRemove).cloned().collect();
    c.bench_function("e41_up_only", |b| {
        b.iter(|| {
            xuc_core::implication::linear::implies_linear(black_box(&up_only), black_box(&goal))
        })
    });
}

/// E33: chase fact growth per round cap (the non-termination signature).
fn e33_chase_divergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("e33_chase_rounds");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for cap in [2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let deps = xuc_xic::example_3_3();
                let mut db = xuc_xic::FactDb::new();
                xuc_xic::seed_two_branch(&mut db);
                xuc_xic::seed_path(&mut db, xuc_xic::I_BRANCH, &["a", "b", "c", "d"]);
                xuc_xic::chase(&mut db, &deps, cap)
            })
        });
    }
    g.finish();
}

/// F1: the Source→Broker→User exchange: certify + verify at scale.
fn f1_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_exchange");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for p in [50usize, 100, 200] {
        let doc = trees::hospital(&mut xuc_bench::rng(), p, 3);
        let constraints = trees::example_2_1_constraints();
        let signer = xuc_sigstore::Signer::new(0xfeed);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                let cert = signer.certify(black_box(&doc), black_box(&constraints));
                cert.verify(0xfeed, black_box(&doc)).is_ok()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = f2_validity, e41_interacting_types, e33_chase_divergence, f1_exchange
}
criterion_main!(figures);
