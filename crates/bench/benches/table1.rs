//! Table 1 — general implication: one Criterion group per cell.
//!
//! The paper gives complexity bounds, not wall-clock numbers; what these
//! benches reproduce is the *shape*: the PTIME cells scale polynomially in
//! the marked parameter, the automata cells are exponential only in the
//! number of constraints, and the hardness cells inherit 2^v from the
//! 3CNF reduction. See EXPERIMENTS.md for the measured series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xuc_bench as wl;
use xuc_core::implication;

/// T1-a: XP{/,[],*}, one/mixed types — PTIME in the number of constraints.
fn t1a_pred_star_ptime(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1a_pred_star_ptime");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for n in [2usize, 4, 8, 16, 32] {
        let (set, goal) = wl::t1a_workload(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| implication::ptime::implies_pred_star(black_box(&set), black_box(&goal)))
        });
    }
    g.finish();
}

/// T1-b: XP{/,[],//}, one type — coNP; conjunctive containment blows up in
/// the spine length.
fn t1b_pred_desc_conp(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1b_pred_desc_conp");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for k in [1usize, 2, 3] {
        let (set, goal) = wl::t1b_workload(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let ranges: Vec<&xuc_xpath::Pattern> = set.iter().map(|c| &c.range).collect();
                implication::conjunctive::conjunctive_contained_in_budgeted(
                    black_box(&ranges),
                    black_box(&goal.range),
                    5_000_000,
                )
            })
        });
    }
    g.finish();
}

/// T1-c: XP{/,//,*}, one type, bounded constraints — PTIME in query size.
fn t1c_linear_query_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1c_linear_query_size");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for k in [2usize, 4, 6, 8] {
        let (set, goal) = wl::t1_linear_workload(2, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| implication::linear::implies_linear(black_box(&set), black_box(&goal)))
        });
    }
    g.finish();
}

/// T1-f: XP{/,//,*}, arbitrary types — exponential in the number of
/// constraints (the product-automaton dimension).
fn t1f_linear_constraint_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1f_linear_constraint_count");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for n in [1usize, 2, 3, 4, 5] {
        let (set, goal) = wl::t1_linear_workload(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| implication::linear::implies_linear(black_box(&set), black_box(&goal)))
        });
    }
    g.finish();
}

/// T1-d/T1-g: full fragment — bounded counterexample search.
fn t1d_full_fragment_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1d_full_fragment_search");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for n in [1usize, 2, 3] {
        let (set, goal) = wl::t1d_workload(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                implication::search::find_counterexample(black_box(&set), black_box(&goal), 500)
            })
        });
    }
    g.finish();
}

/// T1-h: the Theorem 4.6 gadget — implication ⇔ UNSAT, cost 2^v.
fn t1h_gadget_46(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1h_gadget_46");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for v in [2usize, 4, 6, 8] {
        let gadget = wl::t1h_gadget(v);
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| black_box(&gadget).implied_by_assignment_sweep())
        });
    }
    g.finish();
}

criterion_group! {
    name = table1;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets =
    t1a_pred_star_ptime,
    t1b_pred_desc_conp,
    t1c_linear_query_size,
    t1f_linear_constraint_count,
    t1d_full_fragment_search,
    t1h_gadget_46
}
criterion_main!(table1);
