//! bench_eval_engine — the evaluation-engine speedup that motivates the
//! bitset `Evaluator` (EXPERIMENTS.md §E-EV).
//!
//! Workload: one random 1 000-node document, 32 random `XP{/,[],//,*}`
//! patterns (both deterministic). Three ways to evaluate the batch:
//!
//! * `cold_per_call` — the old shape: `eval::eval` per pattern, which
//!   rebuilds the dense snapshot for every single call;
//! * `amortized` — one [`Evaluator`] built per batch, then 32 `eval`s
//!   against the shared snapshot;
//! * `batch_eval_all` — the same through the `eval_all` entry point.
//!
//! The acceptance bar for the engine is `amortized ≥ 3× cold_per_call` on
//! this workload; measured numbers are recorded in EXPERIMENTS.md.
//!
//! A second group (`bench_refresh`, EXPERIMENTS.md §E-IR) measures the
//! edit-scope refresh protocol: keeping an evaluator in sync across an
//! apply/undo relabel via `refresh_after` (two bitset-word patches) versus
//! the full `refresh` re-walk, plus the structural-edit path that re-walks
//! but reuses every allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xuc_xpath::{eval, Evaluator, Pattern};
use xuc_xtree::{apply_undoable, undo, DataTree, Update};

const PATTERNS: usize = 32;

/// The same deterministic workload `run_experiments` §E-EV measures, so
/// the two series in EXPERIMENTS.md describe one document/pattern batch.
fn workload(nodes: usize) -> (DataTree, Vec<Pattern>) {
    xuc_bench::eval_engine_workload(nodes, PATTERNS)
}

fn bench_eval_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("bench_eval_engine");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1000));
    for nodes in [100usize, 1_000, 4_000] {
        let (tree, patterns) = workload(nodes);

        g.bench_with_input(BenchmarkId::new("cold_per_call", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &patterns {
                    total += eval::eval(black_box(q), black_box(&tree)).len();
                }
                total
            })
        });

        g.bench_with_input(BenchmarkId::new("amortized", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut ev = Evaluator::new(black_box(&tree));
                let mut total = 0usize;
                for q in &patterns {
                    total += ev.eval(black_box(q)).len();
                }
                total
            })
        });

        g.bench_with_input(BenchmarkId::new("batch_eval_all", nodes), &nodes, |b, _| {
            b.iter(|| {
                Evaluator::new(black_box(&tree))
                    .eval_all(black_box(&patterns))
                    .iter()
                    .map(|s| s.len())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

/// E-IR: per-edit evaluator re-sync cost — the edit-scope protocol against
/// the full re-walk, for a relabel (patchable) and a detach (structural).
fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("bench_refresh");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1000));
    for nodes in [1_000usize, 10_000] {
        let (tree, patterns) = xuc_bench::eir_workload(nodes);
        let mut work = tree.clone();
        let mut ev = Evaluator::new(&work);
        for q in &patterns {
            ev.eval(q); // prime the label-row cache
        }
        let ids = work.node_ids();
        let labels = work.labels();
        let target = ids[ids.len() / 2];
        let relabel = Update::Relabel { node: target, label: labels[0] };
        let detach = Update::DeleteSubtree { node: target };

        g.bench_with_input(BenchmarkId::new("relabel_full_refresh", nodes), &nodes, |b, _| {
            b.iter(|| {
                let (token, _scope) = apply_undoable(&mut work, black_box(&relabel)).unwrap();
                ev.refresh(&work);
                undo(&mut work, token).unwrap();
                ev.refresh(&work);
                ev.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("relabel_scoped_refresh", nodes), &nodes, |b, _| {
            b.iter(|| {
                let (token, scope) = apply_undoable(&mut work, black_box(&relabel)).unwrap();
                ev.refresh_after(&work, &scope);
                let scope = undo(&mut work, token).unwrap();
                ev.refresh_after(&work, &scope);
                ev.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("detach_scoped_refresh", nodes), &nodes, |b, _| {
            b.iter(|| {
                let (token, scope) = apply_undoable(&mut work, black_box(&detach)).unwrap();
                ev.refresh_after(&work, &scope);
                let scope = undo(&mut work, token).unwrap();
                ev.refresh_after(&work, &scope);
                ev.len()
            })
        });
    }
    g.finish();
}

/// Sanity: the cold and batch paths agree on the workload.
fn bench_agreement_check(c: &mut Criterion) {
    let (tree, patterns) = workload(1_000);
    c.bench_function("bench_eval_engine/agreement_check", |b| {
        b.iter(|| {
            let cold: Vec<_> = patterns.iter().map(|q| eval::eval(q, &tree)).collect();
            let batch = Evaluator::new(&tree).eval_all(&patterns);
            assert_eq!(cold, batch);
            batch.len()
        })
    });
}

criterion_group! {
    name = eval_engine;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000));
    targets = bench_eval_engine, bench_refresh, bench_agreement_check
}
criterion_main!(eval_engine);
