//! Table 2 — instance-based implication: one Criterion group per cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xuc_bench as wl;
use xuc_core::instance;

/// T2-a: XP{/}, arbitrary types — PTIME in |J|.
fn t2a_plain(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2a_plain");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for p in [25usize, 50, 100, 200] {
        let (set, j, goal) = wl::t2a_workload(p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                instance::plain::implies_plain(black_box(&set), black_box(&j), black_box(&goal))
            })
        });
    }
    g.finish();
}

/// T2-b: ↓-only XP{/,[],*} — the certain-facts tree, PTIME in |J|.
fn t2b_certain_facts(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2b_certain_facts");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for p in [25usize, 50, 100, 200] {
        let (set, j, goal) = wl::t2b_workload(p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                instance::certain::implies_no_insert_pred_star(
                    black_box(&set),
                    black_box(&j),
                    black_box(&goal),
                )
                .is_ok()
            })
        });
    }
    g.finish();
}

/// T2-c: ↓-only linear — automata over J, PTIME in |J|.
fn t2c_linear_instance(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2c_linear_instance");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for p in [25usize, 50, 100, 200] {
        let (set, j, goal) = wl::t2c_workload(p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                instance::linear::implies_no_insert_linear(
                    black_box(&set),
                    black_box(&j),
                    black_box(&goal),
                )
            })
        });
    }
    g.finish();
}

/// T2-e (polynomial dimension): ↑-only possible embeddings, |J| sweep.
fn t2e_embeddings_in_j(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2e_embeddings_in_j");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for p in [10usize, 20, 40, 80] {
        let (set, j, goal) = wl::t2e_workload(p, 1);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                instance::embeddings::implies_no_remove(
                    black_box(&set),
                    black_box(&j),
                    black_box(&goal),
                    10_000_000,
                )
            })
        });
    }
    g.finish();
}

/// T2-e (exponential dimension): goal size sweep at fixed |J|.
fn t2e_embeddings_in_q(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2e_embeddings_in_q");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for qsize in [1usize, 2, 3] {
        let (set, j, goal) = wl::t2e_workload(8, qsize);
        g.bench_with_input(BenchmarkId::from_parameter(qsize), &qsize, |b, _| {
            b.iter(|| {
                instance::embeddings::implies_no_remove(
                    black_box(&set),
                    black_box(&j),
                    black_box(&goal),
                    50_000_000,
                )
            })
        });
    }
    g.finish();
}

/// T2-f: the Theorem 5.2 / Fig. 6 gadget — 2^v assignment sweep.
fn t2f_gadget_52(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2f_gadget_52");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(600));
    for v in [2usize, 4, 6, 8] {
        let gadget = wl::t2f_gadget(v);
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| black_box(&gadget).implied_by_assignment_sweep())
        });
    }
    g.finish();
}

criterion_group! {
    name = table2;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets =
    t2a_plain,
    t2b_certain_facts,
    t2c_linear_instance,
    t2e_embeddings_in_j,
    t2e_embeddings_in_q,
    t2f_gadget_52
}
criterion_main!(table2);
