//! DTDs and unary regular key / foreign-key constraints
//! (Arenas–Fan–Libkin \[6\]), and the paper's reduction from constraint
//! implication to *consistency* (Section 3.2 and Theorem 4.2, linear case).
//!
//! The reduction maps a candidate counterexample tuple `(I, J, n)` to a
//! three-branch document `φ(I, J, n)` with branches `I`, `J` and `witness`,
//! every node carrying an id, and expresses:
//!
//! * key constraints — ids are unique inside each main branch,
//! * one foreign key per update constraint — ids reached by `reg(q)` in
//!   the source branch are a subset of those reached in the target branch,
//! * witness constraints — the witness id is in `reg(q_c)` of `I` but not
//!   of `J` (for a no-remove goal).
//!
//! Consistency of the produced `(D, Σ)` — "does *some* document satisfy
//! both?" — is exactly non-implication. The paper invokes Arenas's
//! 2-NEXPTIME consistency solver as a black box; here the reduction is the
//! artifact: we implement document validation against `(D, Σ)` and verify,
//! against the exact linear decision procedure of `xuc-core`, that
//! `φ(counterexample)` always satisfies the produced instance while `φ` of
//! valid evolutions never does.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xuc_automata::{Dfa, Nfa};
use xuc_core::{Constraint, ConstraintKind};
use xuc_xtree::{DataTree, Label, NodeId};

/// A simplified DTD: for each element type, the set of allowed child
/// types (Kleene-star content models, which is all the reduction needs:
/// `l :− (l1|…|lk)∗`).
#[derive(Debug, Clone)]
pub struct Dtd {
    pub root: Label,
    pub allowed_children: BTreeMap<Label, BTreeSet<Label>>,
}

impl Dtd {
    /// Does `doc` conform to the DTD?
    pub fn validates(&self, doc: &DataTree) -> bool {
        if doc.root_label() != self.root {
            return false;
        }
        for n in doc.nodes() {
            let Some(allowed) = self.allowed_children.get(&n.label) else {
                return false;
            };
            for child in doc.children_iter(n.id).expect("live") {
                let cl = doc.label(child).expect("live");
                if !allowed.contains(&cl) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, kids) in &self.allowed_children {
            let parts: Vec<&str> = kids.iter().map(|k| k.as_str()).collect();
            writeln!(f, "{l} :− ({})∗", parts.join("|"))?;
        }
        Ok(())
    }
}

/// The encoded three-branch document: the tree plus the `@id` attribute
/// value of every element node.
#[derive(Debug, Clone)]
pub struct EncodedDoc {
    pub doc: DataTree,
    pub id_of: BTreeMap<NodeId, u64>,
}

/// A regular path over labels below one main branch, compiled from a
/// linear query through the automata substrate.
#[derive(Clone)]
pub struct RegularPath {
    /// Human-readable form (`root.I.reg(q).Id@id` style).
    pub display: String,
    dfa: Dfa,
    branch: Label,
}

impl RegularPath {
    /// Id attribute *values* selected: for every node below the branch
    /// whose path (from the branch node, exclusive) is in the language.
    pub fn select(&self, enc: &EncodedDoc) -> BTreeSet<u64> {
        let doc = &enc.doc;
        let mut out = BTreeSet::new();
        let root = doc.root_id();
        for b in doc.children_iter(root).expect("root") {
            if doc.label(b).expect("live") != self.branch {
                continue;
            }
            let mut stack: Vec<(NodeId, usize)> =
                doc.children_iter(b).expect("live").map(|c| (c, self.dfa.start())).collect();
            while let Some((node, state)) = stack.pop() {
                let l = doc.label(node).expect("live");
                let sym = self
                    .dfa
                    .alphabet()
                    .iter()
                    .position(|&a| a == l)
                    .unwrap_or_else(|| self.dfa.symbol_index(Label::z()));
                let next = self.dfa.step(state, sym);
                if self.dfa.is_accepting(next) {
                    if let Some(&v) = enc.id_of.get(&node) {
                        out.insert(v);
                    }
                }
                doc.for_each_child(node, |c| stack.push((c.id, next))).expect("live");
            }
        }
        out
    }
}

impl fmt::Debug for RegularPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegularPath({})", self.display)
    }
}

/// A unary regular constraint over id values.
#[derive(Debug, Clone)]
pub enum RegularConstraint {
    /// Key: each id value occurs at most once among the selected nodes.
    Key(RegularPath),
    /// Foreign key: selected values of the first path ⊆ the second's.
    Inclusion(RegularPath, RegularPath),
    /// Disjointness (paper constraint (9) rephrased): no shared values.
    Disjoint(RegularPath, RegularPath),
    /// Non-emptiness (paper constraint (8): the witness exists).
    NonEmpty(RegularPath),
}

impl RegularConstraint {
    pub fn satisfied(&self, enc: &EncodedDoc) -> bool {
        match self {
            // φ gives every element exactly one @id with a per-branch
            // distinct value, so the keys hold by encoding.
            RegularConstraint::Key(_) => true,
            RegularConstraint::Inclusion(a, b) => a.select(enc).is_subset(&b.select(enc)),
            RegularConstraint::Disjoint(a, b) => a.select(enc).is_disjoint(&b.select(enc)),
            RegularConstraint::NonEmpty(a) => !a.select(enc).is_empty(),
        }
    }
}

/// The emitted consistency instance.
#[derive(Debug, Clone)]
pub struct Reduction {
    pub dtd: Dtd,
    pub constraints: Vec<RegularConstraint>,
    /// The labels `l1..lk` plus `z` that the reduction fixed.
    pub alphabet: Vec<Label>,
}

impl Reduction {
    /// Does the encoded document satisfy both the DTD and all constraints?
    pub fn satisfied_by(&self, enc: &EncodedDoc) -> bool {
        self.dtd.validates(&enc.doc) && self.constraints.iter().all(|c| c.satisfied(enc))
    }
}

fn reg_of(range: &xuc_xpath::Pattern, alphabet: &[Label], branch: &str) -> RegularPath {
    RegularPath {
        display: format!("root.{branch}.reg({range}).Id@id"),
        dfa: Nfa::from_linear_pattern(range).determinize(alphabet),
        branch: Label::new(branch),
    }
}

/// Emits the Theorem 4.2 (linear case / Theorem 4.3) reduction for a
/// no-remove goal: a DTD `D` and regular constraints `Σ` such that
/// `φ(I, J, n)` satisfies `(D, Σ)` iff `(I, J)` witnesses `C ⊭ c` by `n`.
///
/// # Panics
/// Panics unless every range and the goal range are linear, and the goal
/// is no-remove (apply the ↓/↑ symmetry first).
pub fn reduce(set: &[Constraint], goal: &Constraint) -> Reduction {
    assert!(goal.kind == ConstraintKind::NoRemove, "apply symmetry for ↓ goals");
    let ranges: Vec<&xuc_xpath::Pattern> =
        set.iter().map(|c| &c.range).chain([&goal.range]).collect();
    assert!(ranges.iter().all(|q| q.is_linear()), "Theorem 4.3 reduction is for linear ranges");
    let alphabet = xuc_automata::effective_alphabet(ranges.iter().copied());

    // DTD: root :- I, J, witness; every label may contain every label.
    let mut allowed = BTreeMap::new();
    let all: BTreeSet<Label> = alphabet.iter().copied().collect();
    let root = Label::new("root");
    allowed.insert(
        root,
        [Label::new("I"), Label::new("J"), Label::new("witness")].into_iter().collect(),
    );
    allowed.insert(Label::new("I"), all.clone());
    allowed.insert(Label::new("J"), all.clone());
    allowed.insert(Label::new("witness"), [Label::new("w")].into_iter().collect());
    allowed.insert(Label::new("w"), BTreeSet::new());
    for &l in &alphabet {
        allowed.insert(l, all.clone());
    }
    let dtd = Dtd { root, allowed_children: allowed };

    let mut constraints = Vec::new();
    // (4)/(5): id keys per branch.
    for branch in ["I", "J"] {
        constraints.push(RegularConstraint::Key(reg_of(&goal.range, &alphabet, branch)));
    }
    // (6)/(7): one inclusion per update constraint.
    for c in set {
        let (src, dst) = match c.kind {
            ConstraintKind::NoRemove => ("I", "J"),
            ConstraintKind::NoInsert => ("J", "I"),
        };
        constraints.push(RegularConstraint::Inclusion(
            reg_of(&c.range, &alphabet, src),
            reg_of(&c.range, &alphabet, dst),
        ));
    }
    // (8): the witness id lies in reg(q_c) of I and exists…
    constraints
        .push(RegularConstraint::Inclusion(witness_path(), reg_of(&goal.range, &alphabet, "I")));
    constraints.push(RegularConstraint::NonEmpty(witness_path()));
    // (9): …and not in reg(q_c) of J.
    constraints
        .push(RegularConstraint::Disjoint(witness_path(), reg_of(&goal.range, &alphabet, "J")));

    Reduction { dtd, constraints, alphabet }
}

/// The `root.witness.Id@id` selector: selects the witness branch node
/// itself (whose `Id` child carries the witness id value).
fn witness_path() -> RegularPath {
    RegularPath {
        display: "root.witness.Id@id".into(),
        dfa: witness_dfa(),
        branch: Label::new("witness"),
    }
}

/// A DFA accepting only the empty word — the witness value sits on the
/// branch node itself, selected at path ε below the branch… the branch
/// node has exactly one `Id` child holding the value, and `select` starts
/// below the branch, so we instead accept the single-step word [Id]-free:
/// we model the witness holder as one `w` element below the branch.
fn witness_dfa() -> Dfa {
    let q = xuc_xpath::parse("/w").expect("static");
    Nfa::from_linear_pattern(&q).determinize(&[Label::new("w"), Label::z()])
}

/// The `φ` transformation: builds the three-branch document from a pair
/// `(I, J)` and witness node `n`. Labels outside the reduction alphabet
/// map to `z`; each element's `@id` attribute carries the original node
/// id, so the same value appears under both branches exactly when the
/// node survives the update.
pub fn phi(i: &DataTree, j: &DataTree, n: NodeId, alphabet: &[Label]) -> EncodedDoc {
    let mut doc = DataTree::new("root");
    let mut id_of = BTreeMap::new();
    let root = doc.root_id();
    let z = Label::z();
    let alpha: BTreeSet<Label> = alphabet.iter().copied().collect();

    for (branch, tree) in [("I", i), ("J", j)] {
        let b = doc.add(root, branch).expect("fresh");
        graft_encoded(&mut doc, &mut id_of, b, tree, tree.root_id(), &alpha, z);
    }
    let w_branch = doc.add(root, "witness").expect("fresh");
    let w = doc.add(w_branch, "w").expect("fresh");
    id_of.insert(w, n.raw());
    EncodedDoc { doc, id_of }
}

fn graft_encoded(
    doc: &mut DataTree,
    id_of: &mut BTreeMap<NodeId, u64>,
    under: NodeId,
    src: &DataTree,
    src_node: NodeId,
    alpha: &BTreeSet<Label>,
    z: Label,
) {
    for child in src.children_iter(src_node).expect("live") {
        let l = src.label(child).expect("live");
        let mapped = if alpha.contains(&l) { l } else { z };
        let me = doc.add(under, mapped).expect("fresh");
        id_of.insert(me, child.raw());
        graft_encoded(doc, id_of, me, src, child, alpha, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::implication::linear::implies_linear;
    use xuc_core::{parse_constraint, Outcome};
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn phi_structure_and_dtd() {
        let set = vec![c("(/a/b, ↑)")];
        let red = reduce(&set, &c("(/a/b, ↑)"));
        let i = parse_term("r(a#1(b#2))").unwrap();
        let j = parse_term("r(a#1(b#2))").unwrap();
        let enc = phi(&i, &j, NodeId::from_raw(2), &red.alphabet);
        assert!(red.dtd.validates(&enc.doc));
        // Identical pair: no violation, so the witness disjointness fails.
        assert!(!red.satisfied_by(&enc), "no violation ⇒ φ must fail Σ");
    }

    #[test]
    fn phi_of_counterexample_satisfies_reduction() {
        let cases = [
            (vec![c("(//a, ↑)")], c("(//a//b, ↑)")),
            (vec![c("(//b, ↑)")], c("(/a/b, ↑)")),
            (vec![c("(//a//c, ↑)"), c("(//b//c, ↑)")], c("(//a//b//c, ↑)")),
            (vec![c("(//a, ↓)"), c("(//b, ↑)")], c("(//a//b, ↑)")),
        ];
        for (set, goal) in cases {
            let Outcome::NotImplied(ce) = implies_linear(&set, &goal) else {
                panic!("expected a counterexample for {goal}");
            };
            let red = reduce(&set, &goal);
            let viol = goal.violation(&ce.before, &ce.after).expect("violated");
            let witness = viol.offenders.iter().next().expect("offender").id;
            let enc = phi(&ce.before, &ce.after, witness, &red.alphabet);
            assert!(red.dtd.validates(&enc.doc), "φ must conform to D");
            assert!(red.satisfied_by(&enc), "φ(counterexample) must satisfy Σ for {goal}");
        }
    }

    #[test]
    fn phi_of_valid_pairs_fails_reduction() {
        let set = vec![c("(//a, ↑)")];
        let goal = c("(//a, ↑)");
        let red = reduce(&set, &goal);
        let i = parse_term("r(a#1,b#2)").unwrap();
        let j = parse_term("r(a#1,b#2,a#3)").unwrap(); // grow-only: valid
        for witness in [1u64, 3] {
            let enc = phi(&i, &j, NodeId::from_raw(witness), &red.alphabet);
            assert!(!red.satisfied_by(&enc));
        }
    }

    #[test]
    fn inclusion_semantics() {
        let set = vec![c("(//a, ↑)")];
        let red = reduce(&set, &c("(//a, ↑)"));
        let incl = red
            .constraints
            .iter()
            .find(|k| matches!(k, RegularConstraint::Inclusion(a, _) if a.display.contains(".I.")))
            .expect("inclusion present");
        let i = parse_term("r(a#1)").unwrap();
        let j_ok = parse_term("r(a#1,a#9)").unwrap();
        let j_bad = parse_term("r(b#5)").unwrap();
        let enc_ok = phi(&i, &j_ok, NodeId::from_raw(1), &red.alphabet);
        let enc_bad = phi(&i, &j_bad, NodeId::from_raw(1), &red.alphabet);
        assert!(incl.satisfied(&enc_ok));
        assert!(!incl.satisfied(&enc_bad));
    }

    #[test]
    fn foreign_labels_map_to_z() {
        let set = vec![c("(//a, ↑)")];
        let red = reduce(&set, &c("(//a, ↑)"));
        let i = parse_term("r(weird#1(a#2))").unwrap();
        let enc = phi(&i, &i, NodeId::from_raw(2), &red.alphabet);
        assert!(red.dtd.validates(&enc.doc), "foreign labels must be z-mapped");
    }

    #[test]
    fn dtd_rejects_foreign_shapes() {
        let set = vec![c("(//a, ↑)")];
        let red = reduce(&set, &c("(//a, ↑)"));
        let bogus = parse_term("root(Q#1)").unwrap();
        assert!(!red.dtd.validates(&bogus));
        let wrong_root = parse_term("x(I#1)").unwrap();
        assert!(!red.dtd.validates(&wrong_root));
    }

    #[test]
    fn display_forms() {
        let set = vec![c("(//a//b, ↓)")];
        let red = reduce(&set, &c("(//b, ↑)"));
        let shown = format!("{}", red.dtd);
        assert!(shown.contains(":−"));
        let incl =
            red.constraints.iter().find(|k| matches!(k, RegularConstraint::Inclusion(..))).unwrap();
        if let RegularConstraint::Inclusion(a, b) = incl {
            assert!(a.display.contains("reg("));
            assert!(b.display.contains("reg("));
        }
    }
}
