//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The workspace builds without network access, so the real `rand` crate is
//! replaced by this shim exposing exactly the surface the sources use:
//!
//! * [`Rng`] with `random_range` (over `usize` ranges) and `random_bool`,
//! * [`rng()`] returning a process-unique [`rngs::ThreadRng`],
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] for reproducible
//!   workloads and benches.
//!
//! The generator core is SplitMix64 — not cryptographic, statistically fine
//! for workload generation and property tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range usable with [`Rng::random_range`]. Implemented for the `usize`
/// range shapes the workspace uses (`a..b` and `a..=b`).
pub trait SampleRange {
    /// Inclusive `(low, high)` bounds. Panics if the range is empty.
    fn bounds(&self) -> (usize, usize);
}

impl SampleRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "cannot sample empty range {self:?}");
        (self.start, self.end - 1)
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "cannot sample empty range {self:?}");
        (*self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (modulo method; bias is negligible for
    /// the small ranges used in workload generation).
    fn random_range<R: SampleRange>(&mut self, range: R) -> usize {
        let (lo, hi) = range.bounds();
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, the standard float-in-[0,1) trick.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The deterministic standard generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so similar seeds diverge immediately.
            let mut state = seed ^ 0x1bad_5eed_0ddc_0ffe;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    /// The generator handed out by [`crate::rng`]: per-call unique stream.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

static STREAM: AtomicU64 = AtomicU64::new(0x5eed);

/// Returns a process-unique generator (the `rand 0.9` spelling of
/// `thread_rng`). Each call starts a distinct deterministic stream; seed a
/// [`rngs::StdRng`] explicitly when reproducibility matters.
pub fn rng() -> rngs::ThreadRng {
    let stream = STREAM.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(2..9);
            assert!((2..9).contains(&v));
            let w = r.random_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let heads = (0..2000).filter(|_| r.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious coin: {heads}/2000");
    }

    #[test]
    fn seeding_is_reproducible() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        let s1: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(s1, s2);
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(s1[0], c.next_u64());
    }

    #[test]
    fn rng_streams_differ() {
        let mut a = rng();
        let mut b = rng();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
