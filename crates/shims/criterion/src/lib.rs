//! Offline drop-in subset of the `criterion` API.
//!
//! The workspace builds without network access, so the real `criterion`
//! crate is replaced by this shim. It keeps the macro and builder surface
//! the benches use (`criterion_group!` / `criterion_main!`, benchmark
//! groups, `bench_with_input`, `Bencher::iter`, `BenchmarkId`) and performs
//! honest wall-clock measurement: warm-up for `warm_up_time`, then
//! `sample_size` samples spread over `measurement_time`, reporting the
//! median, minimum and maximum per-iteration time.
//!
//! Mode selection mirrors criterion: `cargo bench` passes `--bench` to the
//! harness, which triggers full measurement; any other invocation (for
//! example `cargo test`, which builds and runs bench targets too) runs each
//! benchmark once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: Some(name.to_string()), parameter: None }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Measurement settings plus the `--bench` / smoke mode flag.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    full_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            full_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            full_mode: self.full_mode,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let settings = Settings {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            full_mode: self.full_mode,
        };
        run_one(&id.to_string(), settings, |b| f(b));
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    full_mode: bool,
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    full_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{id}", self.name);
        run_one(&name, self.settings(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{id}", self.name);
        run_one(&name, self.settings(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn settings(&self) -> Settings {
        Settings {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            full_mode: self.full_mode,
        }
    }
}

/// Passed to the benchmark closure; `iter` performs the measurement.
pub struct Bencher {
    settings: Settings,
    report: Option<Report>,
}

#[derive(Debug, Clone, Copy)]
struct Report {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`: warm-up (which also calibrates the per-sample
    /// iteration count), then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.settings.full_mode {
            std::hint::black_box(routine());
            self.report =
                Some(Report { median_ns: f64::NAN, min_ns: f64::NAN, max_ns: f64::NAN, iters: 1 });
            return;
        }

        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to estimate the routine's cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Aim for sample_size samples filling measurement_time.
        let sample_budget =
            self.settings.measurement_time.as_secs_f64() / self.settings.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples_ns.push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.report = Some(Report {
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("samples"),
            iters: iters_per_sample * self.settings.sample_size as u64,
        });
    }
}

fn format_time(ns: f64) -> String {
    if ns.is_nan() {
        "-".to_string()
    } else if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(name: &str, settings: Settings, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { settings, report: None };
    f(&mut bencher);
    match bencher.report {
        Some(r) if settings.full_mode => println!(
            "{name:<48} time: [{} {} {}]  ({} iters)",
            format_time(r.min_ns),
            format_time(r.median_ns),
            format_time(r.max_ns),
            r.iters,
        ),
        Some(_) => println!("{name:<48} ok (smoke)"),
        None => println!("{name:<48} skipped (closure never called iter)"),
    }
}

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the harness `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        // Unit tests never pass --bench, so this exercises the smoke path.
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0usize;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("cold", 1024).to_string(), "cold/1024");
    }
}
