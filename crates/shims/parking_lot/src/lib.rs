//! Offline drop-in subset of the `parking_lot` API.
//!
//! The build environment for this workspace has no network access, so the
//! handful of external crates the sources assume are provided as local
//! shims under `crates/shims/`. This one backs `parking_lot::RwLock` and
//! `parking_lot::Mutex` with their `std::sync` counterparts: same method
//! shapes (no poisoning `Result`s), std performance characteristics.

use std::sync;

/// A reader-writer lock whose guards do not carry poison `Result`s.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// A mutual-exclusion lock whose guard does not carry a poison `Result`.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
