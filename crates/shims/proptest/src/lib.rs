//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds without network access, so the real `proptest`
//! crate is replaced by this shim. It keeps the *shape* of the API the test
//! suites use — [`Strategy`], `prop_map` / `prop_flat_map` / `boxed`,
//! tuple and `Vec` composition, [`collection::vec`], [`any`], [`Just`],
//! `prop_oneof!`, the [`proptest!`] macro and the `prop_assert*` macros —
//! but implements only random generation, **no shrinking**: a failing case
//! panics with the generated inputs in the assertion message instead of a
//! minimized counterexample.
//!
//! Generation is deterministic per test: the RNG is seeded from the test
//! function's name, so failures reproduce across runs.

use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic test RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test name.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `0..n` (n > 0).
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        pub fn random_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

use test_runner::TestRng;

/// A generator of random values. Unlike real proptest there is no value
/// tree: `generate` directly yields a value and nothing shrinks.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy (`.boxed()`).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// The strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty range strategy {self:?}");
        self.start() + rng.below(self.end() - self.start() + 1)
    }
}

/// A `Vec` of strategies generates element-wise (proptest's `Vec<S>` impl).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random_bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec()`](vec()): an exact `usize`, `a..b`,
    /// or `a..=b`.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range {self:?}");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range {self:?}");
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Boolean property assertion (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality property assertion (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Inequality property assertion (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strategy), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// The test-harness macro: each contained `#[test] fn name(arg in strategy,
/// ...) { body }` runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        let s = crate::collection::vec(0..5usize, 1..4usize);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let s = (1..4usize).prop_flat_map(|n| {
            crate::collection::vec(prop_oneof![Just("a"), Just("b")], n)
                .prop_map(|parts| parts.concat())
        });
        for _ in 0..50 {
            let word = s.generate(&mut rng);
            assert!((1..4).contains(&word.len()));
            assert!(word.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_all_args(x in 0..10usize, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }
}
