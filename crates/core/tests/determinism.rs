//! Shard-count independence of the counterexample search.
//!
//! `find_counterexample_sharded` promises that the returned counterexample
//! is the lowest-global-index verifying candidate of a fixed enumeration —
//! a property of the *input*, not of thread scheduling. This test runs a
//! workload sweep at 1, 2 and 8 shards and requires byte-identical results
//! (modulo the values of freshly minted node ids, which differ between any
//! two runs in one process; `CounterExample::canonical_pair_form` is the
//! id-renaming-invariant serialization used for the comparison).

use xuc_core::implication::search::{find_counterexample_with_stats, SearchStats};
use xuc_core::parse_constraint;
use xuc_core::Constraint;

fn c(s: &str) -> Constraint {
    parse_constraint(s).unwrap()
}

/// The sweep: refutable cases from every phase of the search (canonical
/// edits, proof constructions, random pairs), plus implied cases where the
/// budget is exhausted without a witness, plus batches above the
/// set-at-a-time crossover (≥ 16 linear ranges verify through one
/// compiled automaton — `eval_set` must not perturb determinism).
fn workloads() -> Vec<(Vec<Constraint>, Constraint, usize)> {
    let big_linear: Vec<Constraint> = (0..20).map(|i| c(&format!("(//k{i}, ↑)"))).collect();
    let mut mixed_kinds: Vec<Constraint> =
        (0..9).flat_map(|i| [c(&format!("(//m{i}, ↑)")), c(&format!("(/h/m{i}, ↓)"))]).collect();
    mixed_kinds.push(c("(//g[/q], ↑)")); // one fallback pattern in the batch
    vec![
        // Phase-1 witnesses (canonical-model edits).
        (vec![c("(/a[/b], ↑)")], c("(/a, ↑)"), 5_000),
        (vec![c("(/a[/b], ↓)")], c("(/a, ↓)"), 5_000),
        (vec![c("(//a[/b]/c, ↑)")], c("(//a/c, ↑)"), 20_000),
        (vec![c("(//c, ↑)"), c("(/a, ↓)")], c("(/a[/b]//c, ↑)"), 8_000),
        // Implied: no witness at any shard count; budget fully consumed.
        (vec![c("(/a, ↑)")], c("(/a, ↑)"), 2_000),
        (vec![c("(//a, ↑)"), c("(//b, ↑)")], c("(//a, ↑)"), 2_000),
        // Tiny budgets: the budget prefix itself must be deterministic.
        (vec![c("(/a[/b], ↑)")], c("(/a, ↑)"), 7),
        (vec![c("(/a[/b], ↑)")], c("(/a, ↑)"), 64),
        // Set-at-a-time path: refutable and implied above the crossover.
        (big_linear.clone(), c("(//g, ↑)"), 5_000),
        (big_linear.clone(), big_linear[7].clone(), 2_000),
        (mixed_kinds, c("(//g, ↑)"), 6_000),
    ]
}

#[test]
fn counterexamples_are_shard_count_independent() {
    for (i, (set, goal, budget)) in workloads().into_iter().enumerate() {
        let runs: Vec<(Option<String>, SearchStats)> = [1usize, 2, 8]
            .into_iter()
            .map(|shards| {
                let (ce, stats) = find_counterexample_with_stats(&set, &goal, budget, shards);
                // Soundness at every shard count.
                if let Some(ce) = &ce {
                    assert!(ce.verify(&set, &goal), "workload {i} shards {shards}");
                }
                (ce.map(|ce| ce.canonical_pair_form()), stats)
            })
            .collect();
        let (form1, stats1) = &runs[0];
        for (shards, (form, stats)) in [2usize, 8].into_iter().zip(&runs[1..]) {
            assert_eq!(
                stats1.winner_index, stats.winner_index,
                "workload {i}: winner index diverged between 1 and {shards} shards"
            );
            assert_eq!(
                form1, form,
                "workload {i}: counterexample diverged between 1 and {shards} shards"
            );
        }
        // Re-running at the same shard count is reproducible too.
        let (again, stats_again) = find_counterexample_with_stats(&set, &goal, budget, 2);
        assert_eq!(stats_again.winner_index, stats1.winner_index, "workload {i} rerun");
        assert_eq!(again.map(|ce| ce.canonical_pair_form()), *form1, "workload {i} rerun");
    }
}

#[test]
fn budget_prefix_is_monotone() {
    // A witness found under a small budget must also be the winner under
    // any larger budget (the admitted candidate set only grows, and the
    // winner is the minimum index).
    let set = vec![c("(/a[/b], ↑)")];
    let goal = c("(/a, ↑)");
    let (_, small) = find_counterexample_with_stats(&set, &goal, 2_000, 2);
    let (_, large) = find_counterexample_with_stats(&set, &goal, 20_000, 2);
    let idx = small.winner_index.expect("witness exists at 2k budget");
    assert_eq!(large.winner_index, Some(idx));
}
