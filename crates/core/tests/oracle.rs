//! Cross-validation of the exact decision procedures against the
//! counterexample search and against each other on randomized workloads.
//!
//! The search is sound (every hit is a verified counterexample), so:
//! * if an exact procedure says `Implied`, the search must find nothing;
//! * if it says `NotImplied`, its witness must verify.

use proptest::prelude::*;
use xuc_core::constraint::parse_constraint;
use xuc_core::{implication, instance, Constraint, Outcome};
use xuc_xtree::parse_term;

fn c(s: &str) -> Constraint {
    parse_constraint(s).unwrap()
}

/// Strategy: a random linear concrete query over {a, b} with ≤ 3 steps.
fn linear_query() -> impl Strategy<Value = String> {
    let step = (any::<bool>(), prop_oneof![Just("a"), Just("b")]);
    proptest::collection::vec(step, 1..4).prop_map(|steps| {
        steps
            .into_iter()
            .map(|(desc, l)| format!("{}{}", if desc { "//" } else { "/" }, l))
            .collect::<String>()
    })
}

fn linear_constraint() -> impl Strategy<Value = String> {
    (linear_query(), any::<bool>())
        .prop_map(|(q, up)| format!("({q}, {})", if up { "↑" } else { "↓" }))
}

/// Strategy: a random XP{/,[]} query as a term over {a,b,x,y}.
fn pred_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("/a".to_string()),
        Just("/a[/x]".to_string()),
        Just("/a[/y]".to_string()),
        Just("/a[/x][/y]".to_string()),
        Just("/a[/x[/w]]".to_string()),
        Just("/a/b".to_string()),
        Just("/a[/x]/b".to_string()),
        Just("/b".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linear_exact_vs_search(
        set_src in proptest::collection::vec(linear_constraint(), 1..4),
        goal_src in linear_constraint(),
    ) {
        let set: Vec<Constraint> = set_src.iter().map(|s| c(s)).collect();
        let goal = c(&goal_src);
        match implication::linear::implies_linear(&set, &goal) {
            Outcome::Implied => {
                prop_assert!(
                    implication::search::find_counterexample(&set, &goal, 3_000).is_none(),
                    "search refuted an Implied answer for C={set_src:?} c={goal_src}"
                );
            }
            Outcome::NotImplied(ce) => {
                prop_assert!(ce.verify(&set, &goal));
            }
            _ => {}
        }
    }

    #[test]
    fn pred_star_exact_vs_search(
        set_src in proptest::collection::vec((pred_query(), any::<bool>()), 1..4),
        goal_q in pred_query(),
        goal_up in any::<bool>(),
    ) {
        let set: Vec<Constraint> = set_src
            .iter()
            .map(|(q, up)| c(&format!("({q}, {})", if *up { "↑" } else { "↓" })))
            .collect();
        let goal = c(&format!("({goal_q}, {})", if goal_up { "↑" } else { "↓" }));
        if implication::ptime::implies_pred_star(&set, &goal) {
            prop_assert!(
                implication::search::find_counterexample(&set, &goal, 2_000).is_none(),
                "search refuted Thm 4.4 answer for C={set_src:?} c={goal_q}"
            );
        }
    }

    #[test]
    fn instance_plain_vs_search(
        down in proptest::collection::vec(prop_oneof![Just("/a"), Just("/a/b"), Just("/b")], 0..3),
        up in proptest::collection::vec(prop_oneof![Just("/a"), Just("/a/b"), Just("/b")], 0..3),
        goal_q in prop_oneof![Just("/a"), Just("/a/b"), Just("/b")],
        goal_up in any::<bool>(),
        j_src in prop_oneof![
            Just("r(a#1(b#2))"),
            Just("r(a#1(b#2),a#3)"),
            Just("r(a#1,b#4)"),
            Just("r(a#1(b#2(a#5)),a#3(b#6))"),
        ],
    ) {
        let mut set: Vec<Constraint> = down.iter().map(|q| c(&format!("({q}, ↓)"))).collect();
        set.extend(up.iter().map(|q| c(&format!("({q}, ↑)"))));
        let goal = c(&format!("({goal_q}, {})", if goal_up { "↑" } else { "↓" }));
        let j = parse_term(j_src).unwrap();
        match instance::plain::implies_plain(&set, &j, &goal) {
            Outcome::Implied => {
                prop_assert!(
                    instance::search::find_instance_counterexample(&set, &j, &goal, 3_000)
                        .is_none(),
                    "search refuted plain Implied: C={set:?} c={goal} J={j_src}"
                );
            }
            Outcome::NotImplied(ce) => prop_assert!(ce.verify(&set, &j, &goal)),
            _ => {}
        }
    }

    #[test]
    fn instance_linear_down_vs_search(
        down in proptest::collection::vec(linear_query(), 1..4),
        goal_q in linear_query(),
        j_src in prop_oneof![
            Just("r(a#1(b#2))"),
            Just("r(a#1(b#2(a#3)),b#4)"),
            Just("r(b#1(a#2(b#3)))"),
        ],
    ) {
        let set: Vec<Constraint> = down.iter().map(|q| c(&format!("({q}, ↓)"))).collect();
        let goal = c(&format!("({goal_q}, ↓)"));
        let j = parse_term(j_src).unwrap();
        match instance::linear::implies_no_insert_linear(&set, &j, &goal) {
            Outcome::Implied => {
                prop_assert!(
                    instance::search::find_instance_counterexample(&set, &j, &goal, 2_000)
                        .is_none(),
                    "search refuted linear-instance Implied: C={down:?} c={goal_q} J={j_src}"
                );
            }
            Outcome::NotImplied(ce) => prop_assert!(ce.verify(&set, &j, &goal)),
            _ => {}
        }
    }

    #[test]
    fn instance_embeddings_vs_search(
        up in proptest::collection::vec(pred_query(), 1..3),
        goal_q in pred_query(),
        j_src in prop_oneof![
            Just("r(a#1(x#2,y#3))"),
            Just("r(a#1(x#2),a#4(y#5),b#6)"),
            Just("r(a#1(x#2(w#7),y#3),b#8)"),
        ],
    ) {
        let set: Vec<Constraint> = up.iter().map(|q| c(&format!("({q}, ↑)"))).collect();
        let goal = c(&format!("({goal_q}, ↑)"));
        let j = parse_term(j_src).unwrap();
        match instance::embeddings::implies_no_remove(&set, &j, &goal, 300_000) {
            Outcome::Implied => {
                prop_assert!(
                    instance::search::find_instance_counterexample(&set, &j, &goal, 2_000)
                        .is_none(),
                    "search refuted embeddings Implied: C={up:?} c={goal_q} J={j_src}"
                );
            }
            Outcome::NotImplied(ce) => prop_assert!(ce.verify(&set, &j, &goal)),
            _ => {}
        }
    }

    #[test]
    fn dispatchers_only_return_verified_or_exact(
        set_src in proptest::collection::vec(linear_constraint(), 1..3),
        goal_src in linear_constraint(),
    ) {
        let set: Vec<Constraint> = set_src.iter().map(|s| c(s)).collect();
        let goal = c(&goal_src);
        if let Outcome::NotImplied(ce) = xuc_core::implies(&set, &goal) {
            prop_assert!(ce.verify(&set, &goal));
        }
        let j = parse_term("r(a#1(b#2),b#3)").unwrap();
        if let Outcome::NotImplied(ce) = xuc_core::implies_on(&set, &j, &goal) {
            prop_assert!(ce.verify(&set, &j, &goal));
        }
    }
}
