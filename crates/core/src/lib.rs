//! XML update constraints and their implication problems.
//!
//! This crate is the primary contribution of *Cautis, Abiteboul, Milo —
//! "Reasoning about XML update constraints"* (PODS 2007 / JCSS 2009):
//!
//! * [`Constraint`] — an update constraint `(q, σ)` with `σ ∈ {↓, ↑}`
//!   (Definitions 2.2/2.3), validity of instance pairs and of sequences,
//!   and *relative* constraints with a scope query (Section 6);
//! * [`implication`] — the general implication problem `C ⊨ c`
//!   (Definition 2.4), with every decision procedure of Section 4:
//!   the PTIME intersection algorithm for `XP{/,[],*}` (Theorems 4.1,
//!   4.4, 4.5), the conjunctive-containment procedure for one-type
//!   `XP{/,[],//}` (Theorem 4.4 + \[13\]), the exact product-DFA
//!   greatest-fixpoint decision for the linear fragment with *arbitrary*
//!   update types (Theorems 4.3/4.8), and a verified counterexample search
//!   for the remaining coNP/NEXPTIME territory (Theorems 4.2/4.7);
//! * [`instance`] — the instance-based implication problem `C ⊨_J c`
//!   (Definition 2.5) with the procedures of Section 5: the certain-facts
//!   tree `F_J` (Theorem 5.3), possible embeddings (Theorem 5.5), the
//!   direct `XP{/}` algorithm, the linear-fragment automata algorithm
//!   (Theorem 5.4) and the small-model search (Theorem 5.1);
//! * [`construct`] — the counterexample constructions used in the proofs
//!   (Figures 3–5), exposed as reusable building blocks.
//!
//! Every procedure that is not provably exact for its input returns
//! [`Outcome::Unknown`] rather than guessing; every `NotImplied` outcome
//! carries a machine-checked counterexample.

pub mod clock;
pub mod constraint;
pub mod construct;
pub mod implication;
pub mod instance;
pub mod outcome;
pub mod relative;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use constraint::{parse_constraint, Constraint, ConstraintKind, Violation};
pub use implication::{implies, implies_with, ImplicationConfig};
pub use instance::{implies_on, implies_on_with};
pub use outcome::{CounterExample, InstanceCounterExample, Outcome};
pub use relative::RelativeConstraint;
