//! The counterexample constructions used in the paper's proofs
//! (Figures 3, 4 and 5), exposed as reusable building blocks.
//!
//! These are the "proofs as code" of Theorems 3.1 and 4.1: each function
//! mechanically performs one of the figure transformations. They are used
//! by the counterexample search as candidate generators and are themselves
//! integration-tested against the validity checker.

use crate::outcome::CounterExample;
use xuc_xtree::{DataTree, NodeId};

/// `I[n → n']`: the instance obtained by replacing node `n` by a *new* node
/// with the same label (fresh id), keeping structure and children
/// (Theorem 3.1). Returns the new tree and the fresh id.
pub fn replace_with_fresh(tree: &DataTree, n: NodeId) -> (DataTree, NodeId) {
    let mut out = tree.clone();
    let fresh = NodeId::fresh();
    out.replace_id(n, fresh).expect("node present");
    (out, fresh)
}

/// The Figure 3 transformation: merge `t` and `t_prime` under one root and
/// swap the identities of `n` (in `t`) and `n_prime` (in `t_prime`).
///
/// `t` and `t_prime` must have disjoint node ids; the merged `I` has the
/// root of `t` with `t_prime`'s children grafted in, and `J` is `I` with
/// the two node ids interchanged. The two nodes must carry the same label
/// for the swap to be meaningful (the proof's requirement).
pub fn merge_and_swap(
    t: &DataTree,
    n: NodeId,
    t_prime: &DataTree,
    n_prime: NodeId,
) -> CounterExample {
    assert_eq!(
        t.label(n).expect("n in t"),
        t_prime.label(n_prime).expect("n' in t'"),
        "Figure 3 swap requires equal labels"
    );
    let mut before = t.clone();
    for child in t_prime.children_iter(t_prime.root_id()).expect("root") {
        before.graft_subtree(before.root_id(), t_prime, child).expect("disjoint ids");
    }
    // Swap ids via a temporary placeholder.
    let mut after = before.clone();
    let tmp = NodeId::fresh();
    after.replace_id(n, tmp).expect("n present");
    after.replace_id(n_prime, n).expect("n' present");
    after.replace_id(tmp, n_prime).expect("tmp present");
    CounterExample { before, after }
}

/// The Figure 4 transformation (Theorem 4.1, easy case): duplicate the
/// subtree rooted at `n` as a sibling copy `n'`, then delete `n` and move
/// its children under `n'`.
///
/// The net effect from `before` to `after`: node `n` disappears, everything
/// else (including a structural stand-in for `n`) remains.
pub fn duplicate_and_drop(tree: &DataTree, n: NodeId) -> CounterExample {
    let parent =
        tree.parent(n).expect("node present").expect("Figure 4 does not apply to the root");
    let mut before = tree.clone();
    let n_copy = before.graft_copy(parent, tree, n).expect("graft copy");
    let mut after = before.clone();
    // Move n's children under the copy, then remove n.
    for child in after.children(n).expect("n present") {
        after.move_node(child, n_copy).expect("move child");
    }
    after.delete_subtree(n).expect("n removable");
    CounterExample { before, after }
}

/// The Figure 5 transformation (Theorem 4.1, main case): from a witnessing
/// pair `(i, j)` and the removed node `n` (present in both trees), build
/// `(I', J')` where
///
/// * the modified `i` gains a sibling copy `n'` of the subtree rooted at
///   `n` (including `n` itself, as a fresh node),
/// * the modified `j` duplicates the subtree rooted at `n` *without* `n`
///   (its children are copied under `n`'s parent in `j`),
/// * `I'` puts fresh copies of both modified trees under one root (the copy
///   of `n` coming from the `j` side is `n''`),
/// * `J'` is `I'` with the *single node* `n'` moved from the `i` branch to
///   the `j` branch (its children are promoted to its old parent), taking
///   the structural place that `n` occupies in `j` — so `n'` acquires
///   exactly `n`'s range memberships w.r.t. `J`.
pub fn two_branch_move(i: &DataTree, j: &DataTree, n: NodeId) -> CounterExample {
    let i_parent = i.parent(n).expect("n in i").expect("n not root of i");
    let j_parent = j.parent(n).expect("n in j").expect("n not root of j");

    // Modified I: add a sibling copy (n' included) of n's subtree.
    let mut i_mod = i.clone();
    let n_prime = i_mod.graft_copy(i_parent, i, n).expect("copy n in i");

    // Modified J: duplicate n's subtree without n (children under parent).
    let mut j_mod = j.clone();
    for child in j.children_iter(n).expect("n in j") {
        j_mod.graft_copy(j_parent, j, child).expect("copy child in j");
    }

    // I' = root(I-branch, J-branch-copy). The I branch keeps its ids so n
    // and n' stay tracked; the J branch is copied fresh except that we must
    // remember where n's structural place is (its parent in the copy).
    let mut before = DataTree::new("root");
    let root = before.root_id();
    // Graft I branch (ids preserved). Collide only if i and j share ids:
    // the J branch is grafted with *fresh* ids below, so first move J's
    // content in fresh form, tracking the copy of n's parent.
    for child in i_mod.children_iter(i_mod.root_id()).expect("root") {
        before.graft_subtree(root, &i_mod, child).expect("disjoint graft");
    }
    // Fresh-id copy of j_mod, tracking the image of j_parent.
    let j_parent_copy = graft_fresh_tracking(&mut before, root, &j_mod, j_parent);

    // J' = I' with the single node n' moved under the tracked copy of n's
    // J-parent; n''s children stay behind (promoted to its old parent).
    let mut after = before.clone();
    let n_prime_parent = after.parent(n_prime).expect("live").expect("not root");
    for child in after.children(n_prime).expect("live") {
        after.move_node(child, n_prime_parent).expect("promote child");
    }
    after.move_node(n_prime, j_parent_copy).expect("move n'");
    CounterExample { before, after }
}

/// Grafts `src`'s children under `dst_parent` with fresh ids and returns
/// the fresh id corresponding to `track` (a node of `src`).
fn graft_fresh_tracking(
    dst: &mut DataTree,
    dst_parent: NodeId,
    src: &DataTree,
    track: NodeId,
) -> NodeId {
    fn rec(
        dst: &mut DataTree,
        parent: NodeId,
        src: &DataTree,
        node: NodeId,
        track: NodeId,
        found: &mut Option<NodeId>,
    ) {
        let fresh = dst.add(parent, src.label(node).expect("live")).expect("fresh");
        if node == track {
            *found = Some(fresh);
        }
        for child in src.children_iter(node).expect("live") {
            rec(dst, fresh, src, child, track, found);
        }
    }
    let mut found = None;
    // The root of src maps to a fresh node under dst_parent as well, so the
    // branch keeps its shape (root label becomes an inner node label).
    rec(dst, dst_parent, src, src.root_id(), track, &mut found);
    found.expect("tracked node inside src")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use xuc_xtree::parse_term;

    fn q(s: &str) -> xuc_xpath::Pattern {
        xuc_xpath::parse(s).unwrap()
    }

    #[test]
    fn replace_with_fresh_removes_only_identity() {
        let t = parse_term("r(a#1(b#2))").unwrap();
        let (t2, fresh) = replace_with_fresh(&t, NodeId::from_raw(1));
        assert!(!t2.contains(NodeId::from_raw(1)));
        assert!(t2.contains(fresh));
        assert!(t.structurally_eq(&t2));
        // This is exactly how Theorem 3.1 violates a no-remove constraint.
        let c = Constraint::no_remove(q("/a"));
        assert!(!c.satisfied_by(&t, &t2));
        assert!(Constraint::no_remove(q("/a/b")).satisfied_by(&t, &t2));
    }

    #[test]
    fn merge_and_swap_removes_n_from_tight_range() {
        // q2 = /a[/b] ⊊ q1 = /a. T has n ∈ q2; T' has n' ∈ q1 \ q2.
        let t = parse_term("r#100(a#1(b#2))").unwrap();
        let t_prime = parse_term("r#200(a#3)").unwrap();
        let ce = merge_and_swap(&t, NodeId::from_raw(1), &t_prime, NodeId::from_raw(3));
        let c1 = Constraint::no_remove(q("/a"));
        let c2 = Constraint::no_remove(q("/a[/b]"));
        assert!(ce.verify(&[c1], &c2), "swap refutes (q1,↑) ⊨ (q2,↑)");
    }

    #[test]
    fn duplicate_and_drop_removes_one_node() {
        let t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let ce = duplicate_and_drop(&t, NodeId::from_raw(1));
        // n=1 disappears between before and after.
        assert!(ce.before.contains(NodeId::from_raw(1)));
        assert!(!ce.after.contains(NodeId::from_raw(1)));
        // The b child survives (moved under the copy).
        assert!(ce.after.contains(NodeId::from_raw(2)));
        // Structure is preserved: after ~ before minus one a-subtree copy.
        let c = Constraint::no_remove(q("/a/b"));
        assert!(c.satisfied_by(&ce.before, &ce.after));
    }

    #[test]
    fn two_branch_move_preserves_up_ranges() {
        // A removal of n from q=/a[/v] where n remains in the ↑ range /a.
        // i: a#1(v#2); j: a#1 (v removed — violates nothing in C = {(/a,↑)}).
        let i = parse_term("r#50(a#1(v#2))").unwrap();
        let j = parse_term("r#50(a#1)").unwrap();
        let ce = two_branch_move(&i, &j, NodeId::from_raw(1));
        let c_up = Constraint::no_remove(q("//a"));
        let goal = Constraint::no_remove(q("//a[/v]"));
        assert!(
            ce.verify(&[c_up], &goal),
            "Figure 5 construction must refute ⊨ while preserving (//a,↑)"
        );
    }
}
