//! Instance-based implication for **no-insert** constraint sets over the
//! linear fragment `XP{/,//,*}` (Theorem 5.4).
//!
//! With only ↓ constraints, nothing restricts what `I` may *add*, so the
//! only obligations are `qᵢ(J) ⊆ qᵢ(I)`. A goal `(q, ↓)` fails iff some
//! witness `n ∈ q(J)` can sit in `I` on a root-to-node path belonging to
//! every range that selects `n` in `J` but not to `L(q)` — a pure automata
//! emptiness question:
//!
//! `C ⊭_J (q,↓)`  iff  `∃ n ∈ q(J): ⋂{L(qᵢ) : n ∈ qᵢ(J)} ∖ L(q) ≠ ∅`.
//!
//! The witness `I` is `J` with `n` swapped for a fresh stand-in and
//! re-grown on a fresh chain spelling the found word. As in Theorem 4.8,
//! the cost is exponential only in the number of constraints.

use crate::constraint::{Constraint, ConstraintKind};
use crate::outcome::{InstanceCounterExample, Outcome};
use xuc_automata::{effective_alphabet, Dfa, Nfa};
use xuc_xpath::Evaluator;
use xuc_xtree::{DataTree, Label};

/// Exact decision of `C ⊨_J (q, ↓)` for ↓-only linear constraint sets.
///
/// # Panics
/// Panics if any constraint is not ↓, the goal is not ↓, or any range has
/// predicates.
pub fn implies_no_insert_linear(
    set: &[Constraint],
    j: &DataTree,
    goal: &Constraint,
) -> Outcome<InstanceCounterExample> {
    assert!(goal.kind == ConstraintKind::NoInsert);
    assert!(set.iter().all(|c| c.kind == ConstraintKind::NoInsert));
    if set.iter().chain([goal]).any(|c| !c.range.is_concrete()) {
        return Outcome::Unknown {
            effort: "exact linear instance decision requires concrete outputs".into(),
        };
    }
    let ranges: Vec<&xuc_xpath::Pattern> =
        set.iter().map(|c| &c.range).chain([&goal.range]).collect();
    let alphabet = effective_alphabet(ranges.iter().copied());
    let dfas: Vec<Dfa> =
        ranges.iter().map(|q| Nfa::from_linear_pattern(q).determinize(&alphabet)).collect();
    let (constraint_dfas, goal_dfa) = dfas.split_at(set.len());
    let goal_dfa = &goal_dfa[0];

    // Membership of each witness candidate in every constraint range on J,
    // all against one shared snapshot of J.
    let mut j_ev = Evaluator::new(j);
    let range_results: Vec<std::collections::BTreeSet<xuc_xtree::NodeId>> =
        set.iter().map(|c| j_ev.eval_ids(&c.range)).collect();

    for n in j_ev.eval(&goal.range) {
        // Ranges that select n in J; with none, n has no obligations and
        // can simply be absent from I.
        let selecting: Vec<usize> = range_results
            .iter()
            .enumerate()
            .filter(|(_, ids)| ids.contains(&n.id))
            .map(|(i, _)| i)
            .collect();
        if selecting.is_empty() {
            let mut before = j.clone();
            before.replace_id(n.id, xuc_xtree::NodeId::fresh()).expect("live");
            let ce = InstanceCounterExample { before };
            debug_assert!(ce.verify(set, j, goal), "linear ↓ deletion witness must verify");
            return Outcome::NotImplied(ce);
        }
        // Product of the selecting ranges, intersected with ¬L(q). All
        // ranges are concrete, so any accepted word ends with n's label.
        let mut acc = goal_dfa.complement();
        for i in selecting {
            acc = acc.intersect(&constraint_dfas[i]);
        }
        if let Some(word) = acc.find_accepted_word() {
            debug_assert!(!word.is_empty(), "concrete ranges accept no empty word");
            let ce = build_witness(j, n.id, n.label, &word);
            debug_assert!(ce.verify(set, j, goal), "linear ↓ witness must verify");
            return Outcome::NotImplied(ce);
        }
    }
    Outcome::Implied
}

/// `I` = `J` with the witness replaced by a fresh same-label stand-in (so
/// every other node keeps its path) and re-attached at the end of a fresh
/// chain spelling `word`.
fn build_witness(
    j: &DataTree,
    n: xuc_xtree::NodeId,
    n_label: Label,
    word: &[Label],
) -> InstanceCounterExample {
    let mut before = j.clone();
    // Stand-in preserves the paths of n's descendants.
    let fresh = xuc_xtree::NodeId::fresh();
    before.replace_id(n, fresh).expect("live");
    // Fresh chain realizing `word`; its intermediate nodes are new in I and
    // vanish in J — harmless because C is ↓-only.
    let mut cursor = before.root_id();
    for &l in &word[..word.len().saturating_sub(1)] {
        cursor = before.add(cursor, l).expect("fresh");
    }
    let last_label = word.last().copied().unwrap_or(n_label);
    before.add_with_id(cursor, n, last_label).expect("witness placement");
    InstanceCounterExample { before }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    fn decide(set: &[Constraint], j: &DataTree, goal: &Constraint) -> bool {
        match implies_no_insert_linear(set, j, goal) {
            Outcome::Implied => true,
            Outcome::NotImplied(ce) => {
                assert!(ce.verify(set, j, goal));
                false
            }
            other => panic!("linear instance decision is exact, got {other}"),
        }
    }

    #[test]
    fn exact_string_protection() {
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = vec![c("(/a/b, ↓)")];
        assert!(decide(&set, &j, &c("(/a/b, ↓)")));
        // /a/b pins the path "ab", which is in L(//b): the weaker goal is
        // implied on this instance…
        assert!(decide(&set, &j, &c("(//b, ↓)")));
        // …while the reverse protection leaves room (path "b").
        let set2 = vec![c("(//b, ↓)")];
        assert!(!decide(&set2, &j, &c("(/a/b, ↓)")));
    }

    #[test]
    fn descendant_range_covers() {
        // n's only ↓ range in J is //b; goal //a//b is weaker on this
        // instance? The b node is in //b(J) so it must be in //b(I) — but a
        // //b path need not pass through an a: not implied.
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = vec![c("(//b, ↓)")];
        assert!(!decide(&set, &j, &c("(//a//b, ↓)")));
        // Conversely //a//b(J) ⊆ //a//b(I) forces b under an a: the goal
        // //b then holds too.
        let set2 = vec![c("(//a//b, ↓)")];
        assert!(decide(&set2, &j, &c("(//b, ↓)")));
    }

    #[test]
    fn intersection_of_ranges() {
        // n in both //a//c and //b//c in J: any I path must satisfy both,
        // but the interleaving is free: //a//b//c not implied.
        let j = parse_term("r(a#1(b#2(c#3)))").unwrap();
        let set = vec![c("(//a//c, ↓)"), c("(//b//c, ↓)")];
        assert!(!decide(&set, &j, &c("(//a//b//c, ↓)")));
        assert!(decide(&set, &j, &c("(//c, ↓)")));
    }

    #[test]
    fn vacuous_goal() {
        let j = parse_term("r(x#1)").unwrap();
        assert!(decide(&[], &j, &c("(/a, ↓)")));
    }

    #[test]
    fn wildcard_ranges() {
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = vec![c("(/*/b, ↓)")];
        assert!(decide(&set, &j, &c("(/*/b, ↓)")));
        assert!(!decide(&set, &j, &c("(/a/b, ↓)")));
    }
}
