//! Instance-based implication `C ⊨_J c` (Definition 2.5) — Section 5.
//!
//! [`implies_on`] dispatches on the fragment and the update-type mix,
//! mirroring Table 2:
//!
//! | input | procedure | exact? |
//! |---|---|---|
//! | all ranges in `XP{/}` | [`plain::implies_plain`] | yes (any types) |
//! | C and goal all ↓, `XP{/,[],*}` | certain-facts `F_J` (Thm 5.3) | yes |
//! | C and goal all ↓, linear | automata (Thm 5.4) | yes |
//! | C and goal all ↑ | possible embeddings (Thm 5.5) | yes, budgeted |
//! | C all ↓, goal ↑ / C all ↑, goal ↓ | direct argument | yes |
//! | mixed types (coNP-hard, Thm 5.2) | `F_J` refutation + search | sound, may return Unknown |

pub mod certain;
pub mod embeddings;
pub mod linear;
pub mod plain;
pub mod search;

use crate::constraint::{Constraint, ConstraintKind};
use crate::implication::ImplicationConfig;
use crate::outcome::{InstanceCounterExample, Outcome};
use xuc_xpath::{canonical, eval, Features};
use xuc_xtree::DataTree;

/// Decides `C ⊨_J c` with default budgets. See [`implies_on_with`].
pub fn implies_on(
    set: &[Constraint],
    j: &DataTree,
    goal: &Constraint,
) -> Outcome<InstanceCounterExample> {
    implies_on_with(set, j, goal, &ImplicationConfig::default())
}

/// Decides `C ⊨_J c`: is every previous instance `I` with `(I,J) ⊨ C` also
/// valid for `c`?
pub fn implies_on_with(
    set: &[Constraint],
    j: &DataTree,
    goal: &Constraint,
    config: &ImplicationConfig,
) -> Outcome<InstanceCounterExample> {
    let features = Features::of_all(set.iter().map(|c| &c.range)).union(Features::of(&goal.range));

    // XP{/}: exact for arbitrary type mixes.
    if features.is_plain() {
        return plain::implies_plain(set, j, goal);
    }

    let all_down = set.iter().all(|c| c.kind == ConstraintKind::NoInsert);
    let all_up = set.iter().all(|c| c.kind == ConstraintKind::NoRemove);

    match goal.kind {
        ConstraintKind::NoInsert if all_down => {
            if features.in_pred_star() && all_concrete(set, goal) {
                // Theorem 5.3, exact (concrete paths, the paper's standing
                // assumption).
                return match certain::implies_no_insert_pred_star(set, j, goal) {
                    Ok(()) => Outcome::Implied,
                    Err(f) => Outcome::NotImplied(InstanceCounterExample { before: f }),
                };
            }
            if features.in_linear() {
                // Theorem 5.4, exact for concrete ranges; non-concrete
                // outputs fall through to the search.
                match linear::implies_no_insert_linear(set, j, goal) {
                    Outcome::Unknown { .. } => {}
                    decided => return decided,
                }
            }
            // Full fragment, ↓-only: coNP-complete (Theorem 5.1). F_J still
            // refutes soundly; otherwise search.
            if let Err(f) = certain::implies_no_insert_pred_star(set, j, goal) {
                let ce = InstanceCounterExample { before: f };
                if ce.verify(set, j, goal) {
                    return Outcome::NotImplied(ce);
                }
            }
        }
        ConstraintKind::NoRemove if all_up => {
            // Theorem 5.5, exact up to the enumeration budget.
            return embeddings::implies_no_remove(set, j, goal, config.search_budget.max(100_000));
        }
        ConstraintKind::NoRemove if all_down => {
            // ↓ constraints never restrict additions to I: grafting a fresh
            // canonical model of the goal range into J always yields a
            // valid counterexample. Never implied.
            let ce = graft_goal_witness(j, goal);
            debug_assert!(ce.verify(set, j, goal));
            return Outcome::NotImplied(ce);
        }
        ConstraintKind::NoInsert if all_up => {
            // ↑ constraints allow `I` to be (almost) empty: `(q,↓)` is
            // implied iff `q(J)` is empty.
            return if eval::eval(&goal.range, j).is_empty() {
                Outcome::Implied
            } else {
                let before = DataTree::with_root_id(j.root_id(), j.root_label());
                let ce = InstanceCounterExample { before };
                debug_assert!(ce.verify(set, j, goal));
                Outcome::NotImplied(ce)
            };
        }
        _ => {}
    }

    // General implication is a sound sufficient condition: C ⊨ c entails
    // C ⊨_J c for every J (Section 2.1).
    if crate::implication::implies_with(set, goal, config).is_implied() {
        return Outcome::Implied;
    }

    // Mixed types (coNP-hard by Theorem 5.2): sound bounded search.
    match search::find_instance_counterexample(set, j, goal, config.search_budget) {
        Some(ce) => Outcome::NotImplied(ce),
        None => Outcome::Unknown {
            effort: format!("searched {} candidate instances", config.search_budget),
        },
    }
}

fn all_concrete(set: &[Constraint], goal: &Constraint) -> bool {
    set.iter().chain([goal]).all(|c| c.range.is_concrete())
}

/// `I` = `J` plus a fresh canonical model of the goal range at the root.
fn graft_goal_witness(j: &DataTree, goal: &Constraint) -> InstanceCounterExample {
    let z = canonical::fresh_label_for([&goal.range]);
    let model = canonical::instantiate(
        &goal.range,
        &vec![1; goal.range.descendant_edge_count()],
        z,
        xuc_xtree::Label::new("side"),
    );
    let mut before = j.clone();
    for child in model.tree.children_iter(model.tree.root_id()).expect("root") {
        before.graft_copy(before.root_id(), &model.tree, child).expect("fresh graft");
    }
    InstanceCounterExample { before }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn dispatch_plain() {
        let j = parse_term("r(a#1)").unwrap();
        assert!(implies_on(&[c("(/a, ↑)")], &j, &c("(/a, ↑)")).is_implied());
    }

    #[test]
    fn dispatch_certain_facts() {
        let j = parse_term("r(a#1(x#2,y#3))").unwrap();
        let set = vec![c("(/a[/x], ↓)"), c("(/a[/y], ↓)")];
        assert!(implies_on(&set, &j, &c("(/a[/x][/y], ↓)")).is_implied());
    }

    #[test]
    fn dispatch_linear_instance() {
        let j = parse_term("r(a#1(b#2(c#3)))").unwrap();
        let set = vec![c("(//a//c, ↓)"), c("(//b//c, ↓)")];
        assert!(implies_on(&set, &j, &c("(//a//b//c, ↓)")).is_not_implied());
    }

    #[test]
    fn dispatch_embeddings() {
        let j = parse_term("h(patient#2(visit#6,clinicalTrial#8))").unwrap();
        let set = vec![c("(/patient/visit, ↑)")];
        assert!(implies_on(&set, &j, &c("(/patient[/clinicalTrial]/visit, ↑)")).is_implied());
    }

    #[test]
    fn down_set_up_goal_never_implied() {
        let j = parse_term("r(a#1)").unwrap();
        let set = vec![c("(/a, ↓)"), c("(//b, ↓)")];
        let out = implies_on(&set, &j, &c("(//b, ↑)"));
        assert!(out.is_not_implied());
    }

    #[test]
    fn up_set_down_goal_vacuity() {
        let j = parse_term("r(a#1)").unwrap();
        let set = vec![c("(/a, ↑)")];
        assert!(implies_on(&set, &j, &c("(/b, ↓)")).is_implied());
        assert!(implies_on(&set, &j, &c("(/a, ↓)")).is_not_implied());
    }

    #[test]
    fn general_implication_implies_instance_based() {
        // Section 2.1: C ⊨ c entails C ⊨_J c for every J.
        let set = vec![
            c("(/patient[/visit], ↓)"),
            c("(/patient[/clinicalTrial], ↓)"),
            c("(/patient[/clinicalTrial], ↑)"),
        ];
        let goal = c("(/patient[/visit][/clinicalTrial], ↓)");
        for term in
            ["h(patient#1(visit#2))", "h(patient#1(visit#2,clinicalTrial#3),patient#4)", "h(x#1)"]
        {
            let j = parse_term(term).unwrap();
            assert!(implies_on(&set, &j, &goal).is_implied(), "instance-based must hold on {term}");
        }
    }
}
