//! The certain-facts tree `F_J` and the PTIME instance-based decision for
//! no-insert constraints in `XP{/,[],*}` (Theorem 5.3).
//!
//! `F_J` collects everything every valid previous instance `I` *must*
//! contain: for each `(qᵢ, ↓) ∈ C` and each node `n ∈ qᵢ(J)`, a skeleton
//! of `qᵢ` with `n` as the distinguished node (fresh ids elsewhere, fresh
//! label `z` on wildcards), all skeletons merged by node id with ancestors
//! merged level-wise. Theorem 5.3: `C ⊨_J (q, ↓)` iff `q(J) ⊆ q(F_J)`.
//!
//! When the inclusion fails, `(F_J, J)` itself is a *verified*
//! counterexample pair — this soundness direction holds in **every**
//! fragment (skeletons guarantee the ↓ obligations), which is how the
//! dispatcher uses `F_J` outside `XP{/,[],*}` as a refutation engine.

use crate::constraint::{Constraint, ConstraintKind};
use xuc_xpath::{canonical, Axis, Evaluator, NodeTest, PIdx, Pattern};
use xuc_xtree::{DataTree, Label, NodeId};

/// Builds the certain-facts tree `F_J` for the no-insert constraints of
/// `set` against the current instance `j`.
pub fn certain_facts_tree(set: &[Constraint], j: &DataTree) -> DataTree {
    certain_facts_tree_with(&mut Evaluator::new(j), set)
}

/// As [`certain_facts_tree`], but reusing an existing snapshot of `J` so
/// callers that also evaluate goal ranges on `J` pay for it once.
fn certain_facts_tree_with(j_ev: &mut Evaluator, set: &[Constraint]) -> DataTree {
    let patterns: Vec<&Pattern> = set.iter().map(|c| &c.range).collect();
    let z = canonical::fresh_label_for(patterns);
    let root = j_ev.root();
    let mut f = DataTree::with_root_id(root.id, root.label);
    for c in set {
        if c.kind != ConstraintKind::NoInsert {
            continue;
        }
        for n in j_ev.eval(&c.range) {
            insert_skeleton(&mut f, &c.range, n.id, n.label, z);
        }
    }
    f
}

/// Inserts one skeleton of `q` with distinguished node `(n, n_label)` into
/// `f`, merging with an existing root-to-`n` path when `n` is already
/// present (label policy: concrete labels win over fresh `z` labels).
fn insert_skeleton(f: &mut DataTree, q: &Pattern, n: NodeId, n_label: Label, z: Label) {
    let spine = q.spine();
    // Flattened spine slots: one z of padding before each descendant step
    // (`None` = padding slot; only relevant outside XP{/,[],*}, where the
    // caller uses F_J as a sound refutation candidate, not as an exact
    // decision).
    let mut slots: Vec<Option<usize>> = Vec::new();
    for &snode in &spine {
        if q.axis(snode) == Axis::Descendant {
            slots.push(None);
        }
        slots.push(Some(snode));
    }
    let depth = slots.len();

    let path: Vec<NodeId> = if f.contains(n) {
        // Merge with the existing path. In XP{/,[],*} the depths always
        // agree (no padding, and both skeletons reflect n's depth in J);
        // with descendant edges the flattened depths may differ, in which
        // case this skeleton is skipped — F_J is then only a refutation
        // candidate and every use verifies it first.
        let existing = f.id_path(n).expect("n present");
        if existing.len() != depth + 1 {
            return;
        }
        existing[1..].to_vec()
    } else {
        // Create a fresh path under the root.
        let mut cur = f.root_id();
        let mut created = Vec::with_capacity(depth);
        for (level, slot) in slots.iter().enumerate() {
            let id = if level + 1 == depth { n } else { NodeId::fresh() };
            let label = if level + 1 == depth {
                n_label
            } else {
                match slot {
                    None => z,
                    Some(snode) => match q.test(*snode) {
                        NodeTest::Label(l) => l,
                        NodeTest::Wildcard => z,
                    },
                }
            };
            cur = f.add_with_id(cur, id, label).expect("fresh path id");
            created.push(cur);
        }
        created
    };

    // Merge labels (concrete wins over z) and attach predicate skeletons.
    for (level, slot) in slots.iter().enumerate() {
        let Some(snode) = slot else { continue };
        let node = path[level];
        if let NodeTest::Label(l) = q.test(*snode) {
            if f.label(node).expect("live") == z {
                f.relabel(node, l).expect("live");
            }
        }
        for pred in q.predicate_children(*snode) {
            attach_pred_skeleton(f, node, q, pred, z);
        }
    }
}

fn attach_pred_skeleton(f: &mut DataTree, parent: NodeId, q: &Pattern, node: PIdx, z: Label) {
    let mut attach = parent;
    if q.axis(node) == Axis::Descendant {
        // One z of padding keeps the descendant edge honest without
        // accidentally satisfying child-axis tests (XP{/,[],*} skeletons
        // never take this branch; it future-proofs the refutation use).
        attach = f.add(attach, z).expect("fresh");
    }
    let label = match q.test(node) {
        NodeTest::Label(l) => l,
        NodeTest::Wildcard => z,
    };
    let me = f.add(attach, label).expect("fresh");
    for &c in q.children(node) {
        attach_pred_skeleton(f, me, q, c, z);
    }
}

/// Theorem 5.3: exact PTIME decision of `C ⊨_J (q, ↓)` for no-insert
/// constraint sets in `XP{/,[],*}`. Returns the certain-facts tree as the
/// counterexample `I` when the implication fails.
#[allow(clippy::result_large_err)] // the Err *is* the result: a whole counterexample tree
pub fn implies_no_insert_pred_star(
    set: &[Constraint],
    j: &DataTree,
    goal: &Constraint,
) -> Result<(), DataTree> {
    debug_assert!(goal.kind == ConstraintKind::NoInsert);
    // One snapshot of J serves both the skeleton construction and the
    // goal-range inclusion check.
    let mut j_ev = Evaluator::new(j);
    let f = certain_facts_tree_with(&mut j_ev, set);
    let in_j = j_ev.eval(&goal.range);
    let in_f = Evaluator::new(&f).eval(&goal.range);
    let missing = in_j.difference(&in_f).next();
    match missing {
        None => Ok(()),
        Some(_) => Err(f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;
    use xuc_xpath::eval;
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    fn decide(set: &[Constraint], j: &DataTree, goal: &Constraint) -> bool {
        match implies_no_insert_pred_star(set, j, goal) {
            Ok(()) => true,
            Err(f) => {
                // The refutation must verify as a real counterexample.
                let ce = crate::outcome::InstanceCounterExample { before: f };
                assert!(ce.verify(set, j, goal), "F_J refutation must verify");
                false
            }
        }
    }

    #[test]
    fn direct_constraint_implies_itself() {
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = vec![c("(/a[/b], ↓)")];
        assert!(decide(&set, &j, &c("(/a[/b], ↓)")));
    }

    #[test]
    fn weaker_goal_not_implied() {
        // (/a[/b],↓) protects only predicate-qualified patients: the goal
        // (/a,↓) could have been violated by inserting the bare a-node a3.
        let j = parse_term("r(a#1(b#2),a#3)").unwrap();
        let set = vec![c("(/a[/b], ↓)")];
        assert!(!decide(&set, &j, &c("(/a, ↓)")));
    }

    #[test]
    fn instance_makes_goal_implied() {
        // With J having no a-nodes at all, (/a,↓) holds vacuously.
        let j = parse_term("r(x#1)").unwrap();
        let set: Vec<Constraint> = vec![];
        assert!(decide(&set, &j, &c("(/a, ↓)")));
    }

    #[test]
    fn combination_of_ranges() {
        // J's only a-node is in both ↓ ranges; the conjunction covers the
        // goal on this instance.
        let j = parse_term("r(a#1(x#2,y#3))").unwrap();
        let set = vec![c("(/a[/x], ↓)"), c("(/a[/y], ↓)")];
        assert!(decide(&set, &j, &c("(/a[/x][/y], ↓)")));
        // But a different goal predicate is not protected.
        let j2 = parse_term("r(a#1(x#2,y#3,w#4))").unwrap();
        assert!(!decide(&set, &j2, &c("(/a[/w], ↓)")));
    }

    #[test]
    fn certain_tree_contains_obligations() {
        let j = parse_term("r(a#1(b#2),a#3(b#4))").unwrap();
        let set = vec![c("(/a[/b], ↓)")];
        let f = certain_facts_tree(&set, &j);
        // Both a-nodes must be present with b children.
        assert!(f.contains(NodeId::from_raw(1)));
        assert!(f.contains(NodeId::from_raw(3)));
        let q = xuc_xpath::parse("/a[/b]").unwrap();
        assert_eq!(eval::eval(&q, &f).len(), 2);
    }

    #[test]
    fn merging_same_node_across_ranges() {
        let j = parse_term("r(a#1(x#2,y#3))").unwrap();
        let set = vec![c("(/a[/x], ↓)"), c("(/a[/y], ↓)"), c("(/*[/x], ↓)")];
        let f = certain_facts_tree(&set, &j);
        // Node 1 appears once, with both obligations attached.
        assert!(f.contains(NodeId::from_raw(1)));
        let qx = xuc_xpath::parse("/a[/x]").unwrap();
        let qy = xuc_xpath::parse("/a[/y]").unwrap();
        assert!(eval::eval(&qx, &f).iter().any(|n| n.id.raw() == 1));
        assert!(eval::eval(&qy, &f).iter().any(|n| n.id.raw() == 1));
    }

    #[test]
    fn wildcard_spines_get_fresh_labels() {
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = vec![c("(/*/b, ↓)")];
        let f = certain_facts_tree(&set, &j);
        // b#2's parent in F_J is fresh and labeled z... unless merged with
        // a concrete label. Here only the wildcard skeleton exists.
        let parent = f.parent(NodeId::from_raw(2)).unwrap().unwrap();
        assert_ne!(parent, NodeId::from_raw(1));
        assert_eq!(f.label(parent).unwrap(), Label::z());
    }

    #[test]
    fn mixed_concrete_and_wildcard_merge_label() {
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = [c("(/*/b, ↓)")];
        // The same node 2 selected through a concrete range as well: since
        // both skeletons go root→parent→2 but create *separate* parents
        // unless ids coincide, merging only happens through n itself.
        let set2 = vec![set[0].clone(), c("(/a/b, ↓)")];
        let f = certain_facts_tree(&set2, &j);
        // Node 2 present once; its single F_J parent got the concrete
        // label by the merge policy (first skeleton creates z, second
        // relabels to a).
        let parent = f.parent(NodeId::from_raw(2)).unwrap().unwrap();
        let lbl = f.label(parent).unwrap();
        assert_eq!(lbl, Label::new("a"));
    }
}
