//! Bounded, verified counterexample search for instance-based implication
//! (the coNP cells of Table 2, justified by the small-model property of
//! Theorem 5.1).
//!
//! Candidates for the previous instance `I` are generated from
//!
//! 1. the **certain-facts tree** `F_J` and the current instance `J` itself,
//! 2. targeted edits of `J` — for every node in the goal range, the inverse
//!    updates a violator would have performed (re-identification, moves,
//!    deletions, relabelings, fresh insertions of range skeletons),
//! 3. deterministic pseudo-random backward edits of `J`,
//!
//! each verified against `C` and the goal before being returned.

use crate::constraint::{Constraint, ConstraintKind};
use crate::implication::search::{random_edit, XorShift};
use crate::instance::certain::certain_facts_tree;
use crate::outcome::InstanceCounterExample;
use xuc_xpath::{canonical, eval, Pattern};
use xuc_xtree::{DataTree, Label};

/// Searches for a verified `I` refuting `C ⊨_J c`, examining at most
/// `budget` candidates.
pub fn find_instance_counterexample(
    set: &[Constraint],
    j: &DataTree,
    goal: &Constraint,
    budget: usize,
) -> Option<InstanceCounterExample> {
    let mut examined = 0usize;
    let check = |before: DataTree| -> Option<InstanceCounterExample> {
        let ce = InstanceCounterExample { before };
        if ce.verify(set, j, goal) {
            Some(ce)
        } else {
            None
        }
    };

    // Phase 0: the two canonical candidates.
    for candidate in [certain_facts_tree(set, j), empty_like(j)] {
        examined += 1;
        if examined > budget {
            return None;
        }
        if let Some(ce) = check(candidate) {
            return Some(ce);
        }
    }

    // Phase 1: targeted single-node edits of J (seen backwards: I = edited J).
    let targets: Vec<_> = match goal.kind {
        // For a ↓ goal the witness is a node of q(J) that was *absent or
        // elsewhere* in I; for a ↑ goal the witness is extra structure in I.
        ConstraintKind::NoInsert => eval::eval(&goal.range, j).into_iter().collect(),
        ConstraintKind::NoRemove => j.nodes().into_iter().skip(1).collect(),
    };
    let patterns: Vec<&Pattern> = set.iter().map(|c| &c.range).chain([&goal.range]).collect();
    let z = canonical::fresh_label_for(patterns.iter().copied());
    let labels: Vec<Label> = {
        let mut pool: std::collections::BTreeSet<Label> =
            patterns.iter().flat_map(|p| p.labels()).collect();
        pool.extend(j.labels());
        pool.insert(z);
        pool.into_iter().collect()
    };

    for t in &targets {
        let mut candidates: Vec<DataTree> = Vec::new();
        if j.parent(t.id).ok().flatten().is_some() {
            let mut d = j.clone();
            d.delete_subtree(t.id).expect("live");
            candidates.push(d);
            let mut d = j.clone();
            d.delete_node(t.id).expect("live");
            candidates.push(d);
            let (d, _) = crate::construct::replace_with_fresh(j, t.id);
            candidates.push(d);
            for target in j.node_ids() {
                if target != t.id {
                    let mut d = j.clone();
                    if d.move_node(t.id, target).is_ok() {
                        candidates.push(d);
                    }
                }
            }
        }
        for &l in &labels {
            if Ok(l) != j.label(t.id) {
                let mut d = j.clone();
                d.relabel(t.id, l).expect("live");
                candidates.push(d);
            }
        }
        // Fresh range-skeleton insertions under this node (↑ witnesses).
        let side = canonical::instantiate(
            &goal.range,
            &vec![1; goal.range.descendant_edge_count()],
            z,
            Label::new("side"),
        );
        let mut d = j.clone();
        let mut ok = true;
        for child in side.tree.children_iter(side.tree.root_id()).expect("root") {
            if d.graft_copy(t.id, &side.tree, child).is_err() {
                ok = false;
            }
        }
        if ok {
            candidates.push(d);
        }

        for candidate in candidates {
            examined += 1;
            if examined > budget {
                return None;
            }
            if let Some(ce) = check(candidate) {
                return Some(ce);
            }
        }
    }

    // Phase 2: pseudo-random backward edits.
    let mut rng = XorShift::new(0xbead_5eed_0123_4567);
    while examined < budget {
        examined += 1;
        let edits = 1 + rng.below(4);
        let candidate = random_edit(&mut rng, j, &labels, edits);
        if let Some(ce) = check(candidate) {
            return Some(ce);
        }
    }
    None
}

/// A root-only instance matching `j`'s root (the minimal candidate: valid
/// whenever `C` is ↑-only).
fn empty_like(j: &DataTree) -> DataTree {
    DataTree::with_root_id(j.root_id(), j.root_label())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn finds_down_witness() {
        let j = parse_term("r(a#1(b#2),a#3)").unwrap();
        let set = vec![c("(/a[/b], ↓)")];
        let goal = c("(/a, ↓)");
        let ce = find_instance_counterexample(&set, &j, &goal, 2_000).expect("exists");
        assert!(ce.verify(&set, &j, &goal));
    }

    #[test]
    fn finds_up_witness() {
        let j = parse_term("r(a#1)").unwrap();
        let set = vec![c("(/a[/b], ↑)")];
        let goal = c("(/a, ↑)");
        let ce = find_instance_counterexample(&set, &j, &goal, 2_000).expect("exists");
        assert!(ce.verify(&set, &j, &goal));
    }

    #[test]
    fn no_witness_when_protected() {
        let j = parse_term("r(a#1)").unwrap();
        let set = vec![c("(/a, ↑)"), c("(/a, ↓)")];
        let goal = c("(/a, ↑)");
        assert!(find_instance_counterexample(&set, &j, &goal, 2_000).is_none());
    }
}
