//! Instance-based implication for no-remove constraints via *possible
//! embeddings* (Theorem 5.5).
//!
//! `C ⊭_J (q, ↑)` iff some previous instance `I` shaped like an embedding
//! image of `q` removes a node from `q`'s result. The procedure:
//!
//! 1. **Enumerate homomorphic images of `q`** (the paper's "possible
//!    embeddings"): pattern nodes are placed one by one; each is either
//!    *merged* onto a compatible already-placed node or *created* —
//!    child-axis nodes as new children, descendant-axis nodes at the end
//!    of a fresh `z` chain (length `0..=m+1`, `m` the maximal star length)
//!    anchored below the parent's image. This covers the paper's
//!    conditions (1)–(4) including node merges and branch orderings.
//! 2. **Assign node ids by bipartite matching.** Range membership in `I`
//!    depends only on structure and labels, never on ids, so each image
//!    node's required memberships `U(v)` are fixed per image; a node with
//!    `U(v) = ∅` takes a fresh id, the others need *distinct* ids from
//!    `{ j ∈ J : label agrees, j ∈ qᵢ(J) ∀ i ∈ U(v) }` — an injective
//!    assignment found by augmenting-path matching (polynomial in `|J|`).
//! 3. The image of `q`'s output is the removed witness: it must be fresh
//!    or matched to a `J` node outside `q(J)`.
//!
//! The enumeration is exponential in `|q|` and polynomial in `|J|` and
//! `|C|`, exactly the bound of Theorem 5.5; a budget caps pathological
//! inputs (`Unknown` on exhaustion).

use crate::constraint::{Constraint, ConstraintKind};
use crate::outcome::{InstanceCounterExample, Outcome};
use std::collections::{BTreeSet, HashMap};
use xuc_xpath::{canonical, Axis, Evaluator, NodeTest, PIdx, Pattern};
use xuc_xtree::{DataTree, Label, NodeId, NodeRef};

/// Decides `C ⊨_J (q, ↑)` for a no-remove constraint set.
///
/// # Panics
/// Panics if `set` contains a no-insert constraint or the goal is not
/// no-remove (the dispatcher guarantees both).
pub fn implies_no_remove(
    set: &[Constraint],
    j: &DataTree,
    goal: &Constraint,
    budget: usize,
) -> Outcome<InstanceCounterExample> {
    assert!(goal.kind == ConstraintKind::NoRemove);
    assert!(set.iter().all(|c| c.kind == ConstraintKind::NoRemove));
    let q = &goal.range;

    // Label pool for wildcard instantiation.
    let z = canonical::fresh_label_for(set.iter().map(|c| &c.range).chain([q]));
    let mut pool: BTreeSet<Label> = set.iter().flat_map(|c| c.range.labels()).collect();
    pool.extend(q.labels());
    pool.extend(j.labels());
    pool.insert(z);
    let pool: Vec<Label> = pool.into_iter().collect();

    let m = set.iter().map(|c| c.range.star_length()).chain([q.star_length()]).max().unwrap_or(0);

    // Precompute range results on J with one shared snapshot of J.
    let mut j_ev = Evaluator::new(j);
    let ranges_on_j: Vec<BTreeSet<NodeRef>> = set.iter().map(|c| j_ev.eval(&c.range)).collect();
    let goal_on_j = j_ev.eval(q);

    let mut budget_left = budget;
    let order = q.dfs();
    let mut image = DataTree::new("root");
    let root = image.root_id();
    let mut placement: HashMap<PIdx, NodeId> = HashMap::new();

    // One evaluator reused (re-snapshotted) for every candidate image the
    // enumeration completes, instead of a fresh dense build per range per
    // candidate.
    let image_ev = Evaluator::new(&image);
    let found = place(
        &mut PlaceCtx {
            q,
            order: &order,
            pool: &pool,
            z,
            m,
            set,
            ranges_on_j: &ranges_on_j,
            goal_on_j: &goal_on_j,
            j,
            image_ev,
            budget_left: &mut budget_left,
        },
        0,
        &mut image,
        root,
        &mut placement,
    );

    match found {
        PlaceResult::Found(tree) => {
            let ce = InstanceCounterExample { before: tree };
            debug_assert!(ce.verify(set, j, goal), "embedding witness must verify");
            Outcome::NotImplied(ce)
        }
        PlaceResult::Exhausted => Outcome::Implied,
        PlaceResult::BudgetOut => Outcome::Unknown {
            effort: format!("embedding enumeration budget of {budget} exhausted"),
        },
    }
}

struct PlaceCtx<'a> {
    q: &'a Pattern,
    order: &'a [PIdx],
    pool: &'a [Label],
    z: Label,
    m: usize,
    set: &'a [Constraint],
    ranges_on_j: &'a [BTreeSet<NodeRef>],
    goal_on_j: &'a BTreeSet<NodeRef>,
    j: &'a DataTree,
    image_ev: Evaluator,
    budget_left: &'a mut usize,
}

// One short-lived value per search, immediately destructured — the tree
// payload's size doesn't justify a heap indirection.
#[allow(clippy::large_enum_variant)]
enum PlaceResult {
    Found(DataTree),
    Exhausted,
    BudgetOut,
}

fn place(
    ctx: &mut PlaceCtx<'_>,
    idx: usize,
    image: &mut DataTree,
    root: NodeId,
    placement: &mut HashMap<PIdx, NodeId>,
) -> PlaceResult {
    if *ctx.budget_left == 0 {
        return PlaceResult::BudgetOut;
    }
    *ctx.budget_left -= 1;

    if idx == ctx.order.len() {
        return match try_assign_ids(ctx, image, placement) {
            Some(tree) => PlaceResult::Found(tree),
            None => PlaceResult::Exhausted,
        };
    }
    let u = ctx.order[idx];
    let parent_img = match ctx.q.parent(u) {
        None => root,
        Some(p) => placement[&p],
    };

    // Option A: merge onto an existing compatible node.
    let merge_targets: Vec<NodeId> = match ctx.q.axis(u) {
        Axis::Child => image.children(parent_img).expect("live"),
        Axis::Descendant => strict_descendants(image, parent_img),
    };
    for w in merge_targets {
        let wl = image.label(w).expect("live");
        if !ctx.q.test(u).accepts(wl) {
            continue;
        }
        placement.insert(u, w);
        match place(ctx, idx + 1, image, root, placement) {
            PlaceResult::Exhausted => {}
            other => return other,
        }
        placement.remove(&u);
    }

    // Option B: create a new node.
    let labels: Vec<Label> = match ctx.q.test(u) {
        NodeTest::Label(l) => vec![l],
        NodeTest::Wildcard => ctx.pool.to_vec(),
    };
    match ctx.q.axis(u) {
        Axis::Child => {
            for &l in &labels {
                let me = image.add(parent_img, l).expect("fresh");
                placement.insert(u, me);
                match place(ctx, idx + 1, image, root, placement) {
                    PlaceResult::Exhausted => {}
                    other => return other,
                }
                placement.remove(&u);
                image.delete_subtree(me).expect("cleanup");
            }
        }
        Axis::Descendant => {
            // Chains of z's under any anchor at or below the parent image.
            let mut anchors = vec![parent_img];
            anchors.extend(strict_descendants(image, parent_img));
            for anchor in anchors {
                for len in 0..=ctx.m + 1 {
                    let mut attach = anchor;
                    let mut chain_first = None;
                    for _ in 0..len {
                        attach = image.add(attach, ctx.z).expect("fresh");
                        chain_first.get_or_insert(attach);
                    }
                    for &l in &labels {
                        let me = image.add(attach, l).expect("fresh");
                        placement.insert(u, me);
                        match place(ctx, idx + 1, image, root, placement) {
                            PlaceResult::Exhausted => {}
                            other => return other,
                        }
                        placement.remove(&u);
                        image.delete_subtree(me).expect("cleanup");
                    }
                    if let Some(cf) = chain_first {
                        image.delete_subtree(cf).expect("cleanup chain");
                    }
                }
            }
        }
    }
    PlaceResult::Exhausted
}

fn strict_descendants(tree: &DataTree, of: NodeId) -> Vec<NodeId> {
    // Stack-pop order is load-bearing: `place` tries merge targets in this
    // sequence and the first embedding found wins, so the traversal must
    // stay byte-identical to the historical per-node-Vec version.
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = tree.children_iter(of).expect("live").collect();
    while let Some(n) = stack.pop() {
        out.push(n);
        tree.for_each_child(n, |c| stack.push(c.id)).expect("live");
    }
    out
}

/// Step 2/3: id assignment by bipartite matching; returns the finished
/// `I` on success.
fn try_assign_ids(
    ctx: &mut PlaceCtx<'_>,
    image: &DataTree,
    placement: &HashMap<PIdx, NodeId>,
) -> Option<DataTree> {
    let witness_img = placement[&ctx.q.output()];

    // Membership of every image node in each ↑ range (structure-only),
    // against one snapshot of the candidate image.
    ctx.image_ev.refresh(image);
    let mut needs: Vec<(NodeId, Vec<usize>)> = Vec::new();
    let mut membership: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, c) in ctx.set.iter().enumerate() {
        for n in ctx.image_ev.eval(&c.range) {
            membership.entry(n.id).or_default().push(i);
        }
    }
    // The witness must not already be selected by q in J; also, the image
    // must actually put the witness in q(image) — guaranteed by
    // construction, but check cheaply in debug builds.
    debug_assert!(ctx.image_ev.eval(ctx.q).iter().any(|n| n.id == witness_img));
    // The enumeration in `place` mutates the image as soon as we return;
    // mark the snapshot stale so any eval before the next refresh panics.
    ctx.image_ev.invalidate();

    for id in image.node_ids() {
        if id == image.root_id() {
            continue;
        }
        if let Some(u) = membership.get(&id) {
            needs.push((id, u.clone()));
        }
    }

    // Candidates per needing node.
    let mut candidates: Vec<Vec<NodeId>> = Vec::new();
    for (id, us) in &needs {
        let label = image.label(*id).expect("live");
        let mut cands: Vec<NodeId> = Vec::new();
        'j: for jn in ctx.j.nodes() {
            if jn.label != label {
                continue;
            }
            for &u in us {
                if !ctx.ranges_on_j[u].contains(&jn) {
                    continue 'j;
                }
            }
            // The witness additionally must escape q(J).
            if *id == witness_img && ctx.goal_on_j.contains(&jn) {
                continue;
            }
            cands.push(jn.id);
        }
        if cands.is_empty() {
            return None;
        }
        candidates.push(cands);
    }

    // Injective assignment (augmenting paths).
    let assignment = bipartite_match(&needs, &candidates)?;

    // Materialize I: replace image ids. Nodes without needs keep fresh ids
    // (their current image ids are already fresh and disjoint from J).
    let mut tree = image.clone();
    for ((img_id, _), j_id) in needs.iter().zip(assignment) {
        tree.replace_id(*img_id, j_id).ok()?;
    }
    Some(tree)
}

/// Simple augmenting-path bipartite matching: `needs[i]` must get a
/// distinct id from `candidates[i]`.
fn bipartite_match(
    needs: &[(NodeId, Vec<usize>)],
    candidates: &[Vec<NodeId>],
) -> Option<Vec<NodeId>> {
    let n = needs.len();
    let mut owner: HashMap<NodeId, usize> = HashMap::new();
    let mut assigned: Vec<Option<NodeId>> = vec![None; n];

    fn augment(
        i: usize,
        candidates: &[Vec<NodeId>],
        owner: &mut HashMap<NodeId, usize>,
        assigned: &mut Vec<Option<NodeId>>,
        visited: &mut std::collections::HashSet<NodeId>,
    ) -> bool {
        for &cand in &candidates[i] {
            if visited.contains(&cand) {
                continue;
            }
            visited.insert(cand);
            match owner.get(&cand).copied() {
                None => {
                    owner.insert(cand, i);
                    assigned[i] = Some(cand);
                    return true;
                }
                Some(prev) => {
                    if augment(prev, candidates, owner, assigned, visited) {
                        owner.insert(cand, i);
                        assigned[i] = Some(cand);
                        return true;
                    }
                }
            }
        }
        false
    }

    for i in 0..n {
        let mut visited = std::collections::HashSet::new();
        if !augment(i, candidates, &mut owner, &mut assigned, &mut visited) {
            return None;
        }
    }
    Some(assigned.into_iter().map(|a| a.expect("matched")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    fn decide(set: &[Constraint], j: &DataTree, goal: &Constraint) -> bool {
        match implies_no_remove(set, j, goal, 2_000_000) {
            Outcome::Implied => true,
            Outcome::NotImplied(ce) => {
                assert!(ce.verify(set, j, goal));
                false
            }
            other => panic!("unexpected outcome {other}"),
        }
    }

    #[test]
    fn direct_self_implication() {
        let j = parse_term("r(a#1)").unwrap();
        let set = vec![c("(/a, ↑)")];
        assert!(decide(&set, &j, &c("(/a, ↑)")));
    }

    #[test]
    fn unconstrained_removal_possible() {
        let j = parse_term("r(a#1)").unwrap();
        let set: Vec<Constraint> = vec![];
        assert!(!decide(&set, &j, &c("(/a, ↑)")));
    }

    #[test]
    fn paper_section_2_1_instance_example() {
        // J of Fig. 2; C = {(/patient/visit, ↑)} implies
        // (/patient[/clinicalTrial]/visit, ↑) because J has no patient
        // without clinicalTrial… (see §2.1: the move target is missing).
        let j = parse_term("h(patient#2(visit#6,clinicalTrial#8))").unwrap();
        let set = vec![c("(/patient/visit, ↑)")];
        assert!(decide(&set, &j, &c("(/patient[/clinicalTrial]/visit, ↑)")));
    }

    #[test]
    fn paper_example_needs_instance() {
        // Same constraints but J now has a patient *without* clinicalTrial:
        // the visit could have been moved from under a clinicalTrial
        // patient to the plain one, so the goal is NOT implied.
        let j = parse_term("h(patient#2(visit#6,clinicalTrial#8),patient#3(visit#9))").unwrap();
        let set = vec![c("(/patient/visit, ↑)")];
        assert!(!decide(&set, &j, &c("(/patient[/clinicalTrial]/visit, ↑)")));
    }

    #[test]
    fn merge_required_counterexample() {
        // C = {(//b, ↑)} and J has a single b node: a counterexample to
        // (/a[/b[/x]][/b[/y]], ↑)… both pattern b's must merge onto the
        // single J b-node.
        let j = parse_term("r(a#1(b#2(x#3,y#4)))").unwrap();
        let set = vec![c("(//b, ↑)")];
        assert!(!decide(&set, &j, &c("(/a[/b[/x]][/b[/y]], ↑)")));
    }

    #[test]
    fn goal_with_descendants() {
        let j = parse_term("r(a#1(b#2(c#3)))").unwrap();
        let set = vec![c("(//c, ↑)")];
        // //a//c can lose a c node only if the c escapes //c — impossible
        // under (//c,↑) unless the c sits elsewhere in J. Here J's only c
        // is in //a//c(J)… but I could have had the c under a *different*
        // shape still matching //c in J. The c node must be in //c(J) ✓,
        // and //a//c(I) ∋ c requires an a ancestor; in J it has one, so
        // moving it kept //a//c. Not implied? The witness needs
        // c ∈ //a//c(I) \ //a//c(J): impossible since c ∈ //a//c(J).
        // A fresh c is forbidden by (//c,↑). So: implied.
        assert!(decide(&set, &j, &c("(//a//c, ↑)")));
        // Without the protecting constraint, not implied.
        assert!(!decide(&[], &j, &c("(//a//c, ↑)")));
    }

    #[test]
    fn injectivity_blocks_double_use() {
        // Two removed nodes would need the same J id — only one b exists,
        // but the goal needs only ONE witness, so this still refutes.
        // Conversely a single-b J cannot support removing a b that must
        // stay in //b: (//b,↑) with goal (//b,↑) is implied.
        let j = parse_term("r(b#1)").unwrap();
        let set = vec![c("(//b, ↑)")];
        assert!(decide(&set, &j, &c("(//b, ↑)")));
    }

    #[test]
    fn wildcard_goal() {
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = vec![c("(/a/*, ↑)")];
        assert!(decide(&set, &j, &c("(/a/*, ↑)")));
        // Under (id,label)-pair semantics the wildcard range pins both the
        // id and the label of every child of a, so /a/b is protected too.
        assert!(decide(&set, &j, &c("(/a/b, ↑)")));
        // An unprotected sibling label is not.
        assert!(!decide(&[], &j, &c("(/a/b, ↑)")));
    }
}
