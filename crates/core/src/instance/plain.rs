//! Instance-based implication for the plain fragment `XP{/}` — arbitrary
//! update types, PTIME (Table 2, first column).
//!
//! In `XP{/}` a query is a fixed label string and a node belongs to its
//! range iff its root-to-node label path equals that string, so "the tree
//! structure plays no role" (Section 5). The analysis:
//!
//! * **↓ obligations.** Every valid `I` must contain each `J`-node selected
//!   by a `(p, ↓)` range, *at path `p`* — which is its own `J`-path. The
//!   minimal such `I` (the node together with its original ancestor chain)
//!   is always valid, because reused `J`-nodes sit at their `J`-paths and
//!   hence satisfy every ↑ obligation trivially.
//! * **Goal `(q, ↓)`:** a witness `n ∈ q(J)` can escape `q(I)` unless it is
//!   directly obligated (`(q,↓) ∈ C` up to string equality) or it is pinned
//!   as the unavoidable depth-`|q|` ancestor of an obligated descendant:
//!   that happens exactly when such a descendant exists, `q` is an
//!   ↑ string (fresh stand-ins forbidden), and no other `J`-node sits at
//!   path `q` to reroute through.
//! * **Goal `(q, ↑)`:** a fresh (or relocated) node at path `q` violates
//!   the goal unless `q` itself is an ↑ string, or some proper prefix `p`
//!   of `q` is an ↑ string with no `J`-node at path `p` (the chain to the
//!   witness cannot be built).

use crate::constraint::{Constraint, ConstraintKind};
use crate::outcome::{InstanceCounterExample, Outcome};
use std::collections::{BTreeMap, BTreeSet};
use xuc_xpath::{Axis, NodeTest, Pattern};
use xuc_xtree::{DataTree, Label, NodeId};

/// The label string of an `XP{/}` query.
fn string_of(q: &Pattern) -> Vec<Label> {
    q.spine()
        .iter()
        .map(|&i| {
            assert_eq!(q.axis(i), Axis::Child, "XP{{/}} queries are child-only");
            match q.test(i) {
                NodeTest::Label(l) => l,
                NodeTest::Wildcard => panic!("XP{{/}} queries have no wildcards"),
            }
        })
        .collect()
}

/// Exact instance-based decision for `XP{/}` with arbitrary update types.
pub fn implies_plain(
    set: &[Constraint],
    j: &DataTree,
    goal: &Constraint,
) -> Outcome<InstanceCounterExample> {
    let q = string_of(&goal.range);
    let up: BTreeSet<Vec<Label>> = set
        .iter()
        .filter(|c| c.kind == ConstraintKind::NoRemove)
        .map(|c| string_of(&c.range))
        .collect();
    let down: BTreeSet<Vec<Label>> = set
        .iter()
        .filter(|c| c.kind == ConstraintKind::NoInsert)
        .map(|c| string_of(&c.range))
        .collect();

    // Paths of every J node.
    let mut path_of: BTreeMap<NodeId, Vec<Label>> = BTreeMap::new();
    let mut nodes_at: BTreeMap<Vec<Label>, Vec<NodeId>> = BTreeMap::new();
    for n in j.nodes() {
        let p = j.label_path(n.id).expect("live");
        nodes_at.entry(p.clone()).or_default().push(n.id);
        path_of.insert(n.id, p);
    }

    match goal.kind {
        ConstraintKind::NoInsert => {
            if down.contains(&q) {
                return Outcome::Implied;
            }
            let witnesses = nodes_at.get(&q).cloned().unwrap_or_default();
            if witnesses.is_empty() {
                return Outcome::Implied; // vacuous: q(J) is empty
            }
            let others_at_q = witnesses.len() >= 2;
            for &n in &witnesses {
                let has_obligated_desc = j.nodes().iter().filter(|m| m.id != n).any(|m| {
                    j.is_proper_ancestor(n, m.id).unwrap_or(false) && down.contains(&path_of[&m.id])
                });
                let stuck = has_obligated_desc && up.contains(&q) && !others_at_q;
                if !stuck {
                    let ce = build_no_insert_witness(j, n, &q, &down, &up, &nodes_at);
                    debug_assert!(ce.verify(set, j, goal), "plain ↓ witness must verify");
                    return Outcome::NotImplied(ce);
                }
            }
            Outcome::Implied
        }
        ConstraintKind::NoRemove => {
            if up.contains(&q) {
                return Outcome::Implied;
            }
            // A proper prefix that is ↑-protected and unpopulated in J
            // blocks the witness chain.
            for k in 1..q.len() {
                let prefix = q[..k].to_vec();
                if up.contains(&prefix) && !nodes_at.contains_key(&prefix) {
                    return Outcome::Implied;
                }
            }
            let ce = build_no_remove_witness(j, &q, &nodes_at, &down);
            debug_assert!(ce.verify(set, j, goal), "plain ↑ witness must verify");
            Outcome::NotImplied(ce)
        }
    }
}

/// Places a root-anchored chain of `(id, label)` nodes into `tree`,
/// reusing already-placed nodes and creating the rest in order.
fn place_chain(tree: &mut DataTree, chain: &[(NodeId, Label)]) {
    let mut cursor = tree.root_id();
    for &(id, label) in chain {
        cursor = if tree.contains(id) {
            id
        } else {
            tree.add_with_id(cursor, id, label).expect("fresh id")
        };
    }
}

fn chain_of(j: &DataTree, node: NodeId) -> Vec<(NodeId, Label)> {
    j.id_path(node)
        .expect("live")
        .into_iter()
        .skip(1) // drop the root
        .map(|id| (id, j.label(id).expect("live")))
        .collect()
}

/// The certain tree: every ↓-obligated J node with its original ancestor
/// chain (reused ids ⇒ all ↑ obligations hold trivially).
fn certain_tree(j: &DataTree, down: &BTreeSet<Vec<Label>>) -> DataTree {
    let mut out = DataTree::with_root_id(j.root_id(), j.root_label());
    for m in j.nodes() {
        let p = j.label_path(m.id).expect("live");
        if down.contains(&p) {
            place_chain(&mut out, &chain_of(j, m.id));
        }
    }
    out
}

/// Builds `I` for a ↓ goal witness `n ∈ q(J)`: the certain tree with `n`
/// evicted. Obligated descendants of `n` are rerouted through a fresh
/// stand-in (when `q` is not ↑-protected) or through another `J` node `x`
/// sitting at path `q`.
fn build_no_insert_witness(
    j: &DataTree,
    n: NodeId,
    q: &[Label],
    down: &BTreeSet<Vec<Label>>,
    up: &BTreeSet<Vec<Label>>,
    nodes_at: &BTreeMap<Vec<Label>, Vec<NodeId>>,
) -> InstanceCounterExample {
    let mut out = DataTree::with_root_id(j.root_id(), j.root_label());

    // Obligations not involving n: original chains.
    let mut under_n: Vec<NodeId> = Vec::new();
    for m in j.nodes() {
        let p = j.label_path(m.id).expect("live");
        if !down.contains(&p) || m.id == n {
            continue;
        }
        if j.is_proper_ancestor(n, m.id).unwrap_or(false) {
            under_n.push(m.id);
        } else {
            place_chain(&mut out, &chain_of(j, m.id));
        }
    }

    if !under_n.is_empty() {
        // Stand-in for n at path q: fresh if q is unprotected, otherwise a
        // different J node x with J-path q (the decision guarantees one).
        let q_label = *q.last().expect("non-empty goal path");
        let stand_in = if up.contains(&q.to_vec()) {
            let x = nodes_at[&q.to_vec()]
                .iter()
                .copied()
                .find(|&x| x != n)
                .expect("decision guarantees a reroute node");
            place_chain(&mut out, &chain_of(j, x));
            x
        } else {
            // Fresh node at path q under the (possibly reused) prefix.
            let prefix = chain_of(j, n);
            let parent_chain = &prefix[..prefix.len() - 1];
            place_chain(&mut out, parent_chain);
            let parent = parent_chain.last().map(|&(id, _)| id).unwrap_or_else(|| out.root_id());
            out.add(parent, q_label).expect("fresh stand-in")
        };
        // Route every obligated descendant of n below the stand-in.
        for m in under_n {
            let full = chain_of(j, m);
            let below_n: Vec<(NodeId, Label)> = full.into_iter().skip(q.len()).collect();
            let mut cursor = stand_in;
            for (id, label) in below_n {
                cursor = if out.contains(id) {
                    id
                } else {
                    out.add_with_id(cursor, id, label).expect("fresh id")
                };
            }
        }
    }
    InstanceCounterExample { before: out }
}

/// Builds `I` for an ↑ goal: the certain tree plus a chain to a fresh
/// witness at path `q`. Protected prefixes reuse `J` nodes — preferring a
/// deepest already-placed obligation chain so reused ids keep their
/// `J` ancestry.
fn build_no_remove_witness(
    j: &DataTree,
    q: &[Label],
    nodes_at: &BTreeMap<Vec<Label>, Vec<NodeId>>,
    down: &BTreeSet<Vec<Label>>,
) -> InstanceCounterExample {
    let mut out = certain_tree(j, down);

    // Deepest proper prefix with a node already in the certain tree: its
    // whole J chain is present and consistent.
    let mut k0 = 0;
    let mut anchor = out.root_id();
    for k in (1..q.len()).rev() {
        let prefix = q[..k].to_vec();
        if let Some(ids) = nodes_at.get(&prefix) {
            if let Some(&id) = ids.iter().find(|&&id| out.contains(id)) {
                k0 = k;
                anchor = id;
                break;
            }
        }
    }
    // Below the anchor: graft unplaced J nodes when available, else fresh
    // (legal because such prefixes are not ↑-protected).
    let mut cursor = anchor;
    for k in k0 + 1..q.len() {
        let prefix = q[..k].to_vec();
        let label = q[k - 1];
        let graft =
            nodes_at.get(&prefix).and_then(|ids| ids.iter().copied().find(|&id| !out.contains(id)));
        cursor = match graft {
            Some(id) => out.add_with_id(cursor, id, label).expect("fresh"),
            None => out.add(cursor, label).expect("fresh"),
        };
    }
    // The witness itself is always fresh (the decision guarantees q ∉ up).
    out.add(cursor, *q.last().expect("non-empty")).expect("fresh witness");
    InstanceCounterExample { before: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;
    use xuc_xtree::parse_term;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    fn decide(set: &[Constraint], j: &DataTree, goal: &Constraint) -> bool {
        match implies_plain(set, j, goal) {
            Outcome::Implied => true,
            Outcome::NotImplied(ce) => {
                assert!(ce.verify(set, j, goal), "plain witness must verify");
                false
            }
            other => panic!("plain decision is exact, got {other}"),
        }
    }

    #[test]
    fn direct_membership() {
        let j = parse_term("r(a#1(b#2))").unwrap();
        assert!(decide(&[c("(/a/b, ↓)")], &j, &c("(/a/b, ↓)")));
        assert!(decide(&[c("(/a/b, ↑)")], &j, &c("(/a/b, ↑)")));
        assert!(!decide(&[c("(/a/b, ↓)")], &j, &c("(/a, ↓)")));
        assert!(!decide(&[c("(/a/b, ↑)")], &j, &c("(/a, ↑)")));
    }

    #[test]
    fn vacuous_down_goal() {
        let j = parse_term("r(x#1)").unwrap();
        assert!(decide(&[], &j, &c("(/a, ↓)")));
    }

    #[test]
    fn up_goal_blocked_by_unpopulated_prefix() {
        // (/a,↑) ∈ C and J has no a node: nothing can ever appear at /a/b
        // in a valid I, so (/a/b, ↑) is implied by the instance.
        let j = parse_term("r(x#1)").unwrap();
        let set = vec![c("(/a, ↑)")];
        assert!(decide(&set, &j, &c("(/a/b, ↑)")));
        // With an a present in J the chain can be built: not implied.
        let j2 = parse_term("r(a#1)").unwrap();
        assert!(!decide(&set, &j2, &c("(/a/b, ↑)")));
    }

    #[test]
    fn down_goal_pinned_ancestor() {
        // n at /a is the only node at /a; its descendant at /a/b is
        // ↓-obligated and /a is ↑-protected: n cannot escape.
        let j = parse_term("r(a#1(b#2))").unwrap();
        let set = vec![c("(/a/b, ↓)"), c("(/a, ↑)")];
        assert!(decide(&set, &j, &c("(/a, ↓)")));
        // A second a-node at the same path unlocks the reroute.
        let j2 = parse_term("r(a#1(b#2),a#3)").unwrap();
        assert!(!decide(&set, &j2, &c("(/a, ↓)")));
        // Without the ↑ protection a fresh stand-in suffices.
        let set2 = vec![c("(/a/b, ↓)")];
        assert!(!decide(&set2, &j, &c("(/a, ↓)")));
    }

    #[test]
    fn mixed_types_interact() {
        let j = parse_term("r(a#1(b#2(d#3)))").unwrap();
        // d is ↓-obligated; b (its parent) pinned when /a/b is ↑-protected
        // and unique.
        let set = vec![c("(/a/b/d, ↓)"), c("(/a/b, ↑)")];
        assert!(decide(&set, &j, &c("(/a/b, ↓)")));
    }

    #[test]
    fn up_goal_protected_by_itself() {
        let j = parse_term("r(a#1)").unwrap();
        let set = vec![c("(/a, ↑)")];
        assert!(decide(&set, &j, &c("(/a, ↑)")));
        assert!(!decide(&[], &j, &c("(/a, ↑)")));
    }
}
