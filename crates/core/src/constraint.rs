//! Update constraints: syntax, semantics, validity (Definitions 2.2/2.3).

use std::collections::BTreeSet;
use std::fmt;
use xuc_xpath::{eval, Evaluator, Pattern};
use xuc_xtree::{DataTree, NodeRef};

/// The constraint type `σ`: `no-insert` (↓) or `no-remove` (↑).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintKind {
    /// `↓` — the selected node set may only shrink: `q(J) ⊆ q(I)`.
    NoInsert,
    /// `↑` — the selected node set may only grow: `q(I) ⊆ q(J)`.
    NoRemove,
}

impl ConstraintKind {
    /// The opposite type (used by the symmetry arguments throughout §4/§5).
    pub fn flip(self) -> ConstraintKind {
        match self {
            ConstraintKind::NoInsert => ConstraintKind::NoRemove,
            ConstraintKind::NoRemove => ConstraintKind::NoInsert,
        }
    }

    /// The paper's arrow notation.
    pub fn arrow(self) -> &'static str {
        match self {
            ConstraintKind::NoInsert => "↓",
            ConstraintKind::NoRemove => "↑",
        }
    }

    /// Definition 2.3 on precomputed range results: is a pair with these
    /// evaluations valid for a constraint of this kind? The single home of
    /// the `⊆`-direction logic — every validity check (cold or on cached
    /// sets) goes through here or [`offenders_on`](Self::offenders_on).
    pub fn satisfied_on(self, in_before: &BTreeSet<NodeRef>, in_after: &BTreeSet<NodeRef>) -> bool {
        match self {
            ConstraintKind::NoInsert => in_after.is_subset(in_before),
            ConstraintKind::NoRemove => in_before.is_subset(in_after),
        }
    }

    /// The violating nodes for a pair with these range results: nodes
    /// inserted into (↓) or removed from (↑) the range.
    pub fn offenders_on(
        self,
        in_before: &BTreeSet<NodeRef>,
        in_after: &BTreeSet<NodeRef>,
    ) -> BTreeSet<NodeRef> {
        match self {
            ConstraintKind::NoInsert => in_after.difference(in_before).copied().collect(),
            ConstraintKind::NoRemove => in_before.difference(in_after).copied().collect(),
        }
    }
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.arrow())
    }
}

/// An XML update constraint `(q, σ)` (Definition 2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    pub range: Pattern,
    pub kind: ConstraintKind,
}

impl Constraint {
    pub fn new(range: Pattern, kind: ConstraintKind) -> Self {
        Constraint { range, kind }
    }

    /// `(q, ↓)`.
    pub fn no_insert(range: Pattern) -> Self {
        Constraint::new(range, ConstraintKind::NoInsert)
    }

    /// `(q, ↑)`.
    pub fn no_remove(range: Pattern) -> Self {
        Constraint::new(range, ConstraintKind::NoRemove)
    }

    /// The paper's shorthand `(q, ↕)`: the pair of a no-remove and a
    /// no-insert constraint over the same range (immutability).
    pub fn immutable(range: Pattern) -> Vec<Constraint> {
        vec![Constraint::no_remove(range.clone()), Constraint::no_insert(range)]
    }

    /// Is the pair `(before, after)` valid for this constraint
    /// (Definition 2.3)? Results are compared as sets of `(id, label)`
    /// pairs, exactly as in the paper (for concrete ranges this coincides
    /// with comparing id sets).
    pub fn satisfied_by(&self, before: &DataTree, after: &DataTree) -> bool {
        self.violation(before, after).is_none()
    }

    /// Returns the violating node ids, if any: nodes inserted into the range
    /// of a `↓` constraint, or removed from the range of an `↑` constraint.
    pub fn violation(&self, before: &DataTree, after: &DataTree) -> Option<Violation> {
        let in_before = eval::eval(&self.range, before);
        let in_after = eval::eval(&self.range, after);
        let offenders = self.kind.offenders_on(&in_before, &in_after);
        if offenders.is_empty() {
            None
        } else {
            Some(Violation { constraint: self.clone(), offenders })
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.range, self.kind)
    }
}

/// A witnessed constraint violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub constraint: Constraint,
    /// Nodes inserted into (↓) or removed from (↑) the range.
    pub offenders: BTreeSet<NodeRef>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.offenders.iter().map(|n| n.id.to_string()).collect();
        let action = match self.constraint.kind {
            ConstraintKind::NoInsert => "inserted into",
            ConstraintKind::NoRemove => "removed from",
        };
        write!(f, "{} {} range of {}", ids.join(", "), action, self.constraint)
    }
}

/// Is the pair valid for every constraint in `set`? Both trees are
/// snapshotted once and shared across the whole set.
pub fn all_satisfied(set: &[Constraint], before: &DataTree, after: &DataTree) -> bool {
    if set.is_empty() {
        return true;
    }
    let mut ev_before = Evaluator::new(before);
    let mut ev_after = Evaluator::new(after);
    set.iter().all(|c| c.kind.satisfied_on(&ev_before.eval(&c.range), &ev_after.eval(&c.range)))
}

/// All violations of the pair against `set`. Both trees are snapshotted
/// once and shared across the whole set.
pub fn violations(set: &[Constraint], before: &DataTree, after: &DataTree) -> Vec<Violation> {
    if set.is_empty() {
        return Vec::new();
    }
    let mut ev_before = Evaluator::new(before);
    let mut ev_after = Evaluator::new(after);
    set.iter()
        .filter_map(|c| {
            let offenders =
                c.kind.offenders_on(&ev_before.eval(&c.range), &ev_after.eval(&c.range));
            if offenders.is_empty() {
                None
            } else {
                Some(Violation { constraint: c.clone(), offenders })
            }
        })
        .collect()
}

/// Pairwise validity of a sequence of instances (Section 2.2): every pair
/// `(Iᵢ, Iⱼ)` with `i < j` must be valid. For the absolute constraints of
/// this module this is equivalent to checking consecutive pairs *and* the
/// end-to-end pair; we check all pairs, matching the definition.
pub fn sequence_pairwise_valid(set: &[Constraint], seq: &[DataTree]) -> bool {
    for i in 0..seq.len() {
        for j in i + 1..seq.len() {
            if !all_satisfied(set, &seq[i], &seq[j]) {
                return false;
            }
        }
    }
    true
}

/// Data-oriented sequence validity "for `I_k`" (Section 2.2): only the pair
/// `(I₀, I_k)` matters.
pub fn sequence_valid_for_last(set: &[Constraint], seq: &[DataTree]) -> bool {
    match (seq.first(), seq.last()) {
        (Some(first), Some(last)) => all_satisfied(set, first, last),
        _ => true,
    }
}

/// Parses the paper's constraint notation: `(/a//b[/c], up)` or
/// `(/a//b[/c], ↑)`; accepted type tokens are `↓`, `↑`, `down`, `up`,
/// `no-insert`, `no-remove`. The parenthesis pair is optional.
pub fn parse_constraint(src: &str) -> Result<Constraint, String> {
    let s = src.trim();
    let s = s.strip_prefix('(').and_then(|t| t.strip_suffix(')')).unwrap_or(s);
    let (qpart, kpart) = s
        .rsplit_once(',')
        .ok_or_else(|| format!("expected `query, kind` in constraint {src:?}"))?;
    let range = xuc_xpath::parse(qpart.trim()).map_err(|e| e.to_string())?;
    let kind = match kpart.trim() {
        "↓" | "down" | "no-insert" | "noinsert" => ConstraintKind::NoInsert,
        "↑" | "up" | "no-remove" | "noremove" => ConstraintKind::NoRemove,
        other => return Err(format!("unknown constraint kind {other:?}")),
    };
    Ok(Constraint::new(range, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_xtree::{parse_term, NodeId};

    fn q(s: &str) -> Pattern {
        xuc_xpath::parse(s).unwrap()
    }

    /// The paper's Figure 2 instances (Example 2.1), with shared node ids.
    fn fig2() -> (DataTree, DataTree) {
        // I: patient1(visit n6, visit n7), patient2(clinicalTrial n8)
        let i = parse_term("hospital#1(patient#2(visit#6,visit#7),patient#3(clinicalTrial#8))")
            .unwrap();
        // J: visit n7 deleted; a new patient without visits added.
        let j = parse_term("hospital#1(patient#2(visit#6),patient#3(clinicalTrial#8),patient#4)")
            .unwrap();
        (i, j)
    }

    #[test]
    fn example_2_1_validity() {
        let (i, j) = fig2();
        let c1 = Constraint::no_insert(q("/patient[/visit]"));
        let c2 = Constraint::immutable(q("/patient[/clinicalTrial]"));
        let c3 = Constraint::no_remove(q("/patient/visit"));
        assert!(c1.satisfied_by(&i, &j), "c1 holds on Fig. 2");
        assert!(all_satisfied(&c2, &i, &j), "c2 holds on Fig. 2");
        // c3 fails: visit n7 was deleted.
        let v = c3.violation(&i, &j).expect("c3 violated");
        assert_eq!(v.offenders.iter().map(|n| n.id.raw()).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn identity_pair_always_valid() {
        let (i, _) = fig2();
        for c in [
            Constraint::no_insert(q("/patient")),
            Constraint::no_remove(q("//visit")),
            Constraint::no_insert(q("//*")),
        ] {
            assert!(c.satisfied_by(&i, &i), "(I, I) ⊨ {c}");
        }
    }

    #[test]
    fn no_insert_catches_insertions() {
        let i = parse_term("r(a#1)").unwrap();
        let j = parse_term("r(a#1,a#2)").unwrap();
        let c = Constraint::no_insert(q("/a"));
        let v = c.violation(&i, &j).unwrap();
        assert_eq!(v.offenders.iter().next().unwrap().id.raw(), 2);
        assert!(Constraint::no_remove(q("/a")).satisfied_by(&i, &j));
    }

    #[test]
    fn move_violates_both_sides() {
        // Moving a node out of a range removes it (↑ violation) and moving
        // it in inserts it (↓ violation on the other range).
        let i = parse_term("r(a#1(x#3),b#2)").unwrap();
        let j = parse_term("r(a#1,b#2(x#3))").unwrap();
        assert!(Constraint::no_remove(q("/a/x")).violation(&i, &j).is_some());
        assert!(Constraint::no_insert(q("/b/x")).violation(&i, &j).is_some());
        assert!(Constraint::no_remove(q("//x")).satisfied_by(&i, &j));
    }

    #[test]
    fn relabel_changes_ranges() {
        let i = parse_term("r(a#1)").unwrap();
        let mut j = i.clone();
        j.relabel(NodeId::from_raw(1), "b").unwrap();
        assert!(Constraint::no_remove(q("/a")).violation(&i, &j).is_some());
        assert!(Constraint::no_insert(q("/b")).violation(&i, &j).is_some());
    }

    #[test]
    fn sequences_pairwise_vs_last() {
        let t0 = parse_term("r(a#1,a#2)").unwrap();
        let t1 = parse_term("r(a#1)").unwrap();
        let t2 = parse_term("r(a#1,a#3)").unwrap();
        let c = vec![Constraint::no_insert(q("/a"))];
        // (t0,t1) ok; (t1,t2) inserts a3 → pairwise invalid.
        assert!(!sequence_pairwise_valid(&c, &[t0.clone(), t1.clone(), t2.clone()]));
        // End-to-end also invalid here (a3 not in t0).
        assert!(!sequence_valid_for_last(&c, &[t0.clone(), t1.clone(), t2.clone()]));
        // A genuinely shrinking sequence is pairwise fine.
        let s0 = parse_term("r(a#1,a#2)").unwrap();
        let s1 = parse_term("r(a#1)").unwrap();
        let s2 = parse_term("r(x#9)").unwrap();
        assert!(sequence_pairwise_valid(&c, &[s0, s1, s2]));
        let _ = (t0, t2, t1);
    }

    #[test]
    fn parse_constraint_notation() {
        let c = parse_constraint("(/patient[/visit], ↓)").unwrap();
        assert_eq!(c.kind, ConstraintKind::NoInsert);
        assert_eq!(c.range.to_string(), "/patient[/visit]");
        let c2 = parse_constraint("//a//b , up").unwrap();
        assert_eq!(c2.kind, ConstraintKind::NoRemove);
        assert!(parse_constraint("/a").is_err());
        assert!(parse_constraint("(/a, sideways)").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let c = Constraint::no_remove(q("/a[/b]"));
        assert_eq!(c.to_string(), "(/a[/b], ↑)");
        let parsed = parse_constraint(&c.to_string()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn kind_flip() {
        assert_eq!(ConstraintKind::NoInsert.flip(), ConstraintKind::NoRemove);
        assert_eq!(ConstraintKind::NoRemove.flip(), ConstraintKind::NoInsert);
    }
}
