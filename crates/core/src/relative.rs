//! Relative update constraints (Section 6).
//!
//! A relative constraint `(q_s, q_r, σ)` restricts, for every node `x`
//! selected by the *scope* `q_s` in **both** instances, how the *range*
//! `q_r` evaluated at `x` may change (Definitions 6.1/6.2).
//!
//! The paper leaves implication for relative constraints open; this module
//! provides the model — syntax, semantics, validity checking — plus the two
//! phenomena the paper demonstrates: the failure of the same-type property
//! (Example 6.1) and the divergence of pairwise and end-to-end sequence
//! validity (Example 6.2), both covered by tests.

use crate::constraint::ConstraintKind;
use std::fmt;
use xuc_xpath::{eval, Pattern};
use xuc_xtree::{DataTree, NodeRef};

/// A relative XML update constraint `(q_s, q_r, σ)` (Definition 6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelativeConstraint {
    /// The scope query, evaluated from the document root.
    pub scope: Pattern,
    /// The range query, evaluated at each scope node.
    pub range: Pattern,
    pub kind: ConstraintKind,
}

impl RelativeConstraint {
    pub fn new(scope: Pattern, range: Pattern, kind: ConstraintKind) -> Self {
        RelativeConstraint { scope, range, kind }
    }

    /// Is `(before, after)` valid (Definition 6.2)? For every `x` in
    /// `q_s(before) ∩ q_s(after)`, the range at `x` must only shrink (↓)
    /// or only grow (↑).
    pub fn satisfied_by(&self, before: &DataTree, after: &DataTree) -> bool {
        self.violating_scopes(before, after).is_empty()
    }

    /// The scope nodes at which the pair violates the constraint.
    pub fn violating_scopes(&self, before: &DataTree, after: &DataTree) -> Vec<NodeRef> {
        let scope_before = eval::eval(&self.scope, before);
        let scope_after = eval::eval(&self.scope, after);
        let mut bad = Vec::new();
        for x in scope_before.intersection(&scope_after) {
            let rb = eval::eval_at(&self.range, before, x.id);
            let ra = eval::eval_at(&self.range, after, x.id);
            let ok = match self.kind {
                ConstraintKind::NoInsert => ra.is_subset(&rb),
                ConstraintKind::NoRemove => rb.is_subset(&ra),
            };
            if !ok {
                bad.push(*x);
            }
        }
        bad
    }

    /// An absolute constraint `(q, σ)` viewed as the relative constraint
    /// with the document root as scope is expressed here by scope `q_s`
    /// being irrelevant; this helper instead *composes* scope and range
    /// into the absolute query `q_s/q_r`-style constraint the paper uses
    /// when it writes `(/patient/visit, ↑)` next to
    /// `(/patient, /visit, ↑)`. The two are **not** equivalent — the
    /// relative form is strictly stronger — and tests rely on that gap.
    pub fn flattened_range(&self) -> Option<Pattern> {
        // Rebuild the scope pattern, then graft the range below the scope's
        // output node, keeping the range's output as the composed output.
        fn graft_tracking(
            dst: &mut xuc_xpath::PatternBuilder,
            src: &Pattern,
            src_idx: usize,
            parent: usize,
            map: &mut std::collections::HashMap<usize, usize>,
        ) {
            let idx = dst.add(parent, src.axis(src_idx), src.test(src_idx));
            map.insert(src_idx, idx);
            for &c in src.children(src_idx) {
                graft_tracking(dst, src, c, idx, map);
            }
        }
        let scope = &self.scope;
        let mut b =
            xuc_xpath::PatternBuilder::new(scope.axis(scope.root()), scope.test(scope.root()));
        let mut map = std::collections::HashMap::new();
        map.insert(scope.root(), b.root());
        for i in scope.dfs().into_iter().skip(1) {
            let p = scope.parent(i).expect("non-root");
            let ni = b.add(map[&p], scope.axis(i), scope.test(i));
            map.insert(i, ni);
        }
        let scope_out = map[&scope.output()];
        let mut range_map = std::collections::HashMap::new();
        graft_tracking(&mut b, &self.range, self.range.root(), scope_out, &mut range_map);
        Some(b.finish(range_map[&self.range.output()]))
    }
}

impl fmt::Display for RelativeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.scope, self.range, self.kind)
    }
}

/// Pairwise sequence validity for relative constraints (Section 2.2 applied
/// to Section 6). Unlike absolute constraints, this is *not* implied by
/// consecutive validity (Example 6.2).
pub fn sequence_pairwise_valid(set: &[RelativeConstraint], seq: &[DataTree]) -> bool {
    for i in 0..seq.len() {
        for j in i + 1..seq.len() {
            if !set.iter().all(|c| c.satisfied_by(&seq[i], &seq[j])) {
                return false;
            }
        }
    }
    true
}

/// Validity of each consecutive pair only.
pub fn sequence_stepwise_valid(set: &[RelativeConstraint], seq: &[DataTree]) -> bool {
    seq.windows(2).all(|w| set.iter().all(|c| c.satisfied_by(&w[0], &w[1])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_xtree::parse_term;

    fn q(s: &str) -> Pattern {
        xuc_xpath::parse(s).unwrap()
    }

    #[test]
    fn per_scope_vs_global() {
        // Move a visit from one patient to another: the *global* constraint
        // (/patient/visit, ↑) holds, the relative one does not.
        let i = parse_term("h(patient#1(visit#3),patient#2)").unwrap();
        let j = parse_term("h(patient#1,patient#2(visit#3))").unwrap();
        let global = crate::constraint::Constraint::no_remove(q("/patient/visit"));
        assert!(global.satisfied_by(&i, &j));
        let relative =
            RelativeConstraint::new(q("/patient"), q("/visit"), ConstraintKind::NoRemove);
        let bad = relative.violating_scopes(&i, &j);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id.raw(), 1);
    }

    #[test]
    fn scope_only_counts_shared_nodes() {
        // A patient present only in `before` imposes nothing.
        let i = parse_term("h(patient#1(visit#3))").unwrap();
        let j = parse_term("h(patient#2)").unwrap();
        let relative =
            RelativeConstraint::new(q("/patient"), q("/visit"), ConstraintKind::NoRemove);
        assert!(relative.satisfied_by(&i, &j));
    }

    #[test]
    fn example_6_2_sequence_divergence() {
        // (/person[/friend], /appointment, ↑): deleting the friend marker,
        // then the appointment, then restoring the marker is stepwise valid
        // but not pairwise valid.
        let c = RelativeConstraint::new(
            q("/person[/friend]"),
            q("/appointment"),
            ConstraintKind::NoRemove,
        );
        let s0 = parse_term("r(person#1(friend#2,appointment#3))").unwrap();
        let s1 = parse_term("r(person#1(appointment#3))").unwrap();
        let s2 = parse_term("r(person#1)").unwrap();
        let s3 = parse_term("r(person#1(friend#9))").unwrap();
        let seq = [s0, s1, s2, s3];
        let set = [c];
        assert!(sequence_stepwise_valid(&set, &seq), "each step is allowed");
        assert!(!sequence_pairwise_valid(&set, &seq), "end-to-end it is not");
    }

    #[test]
    fn no_insert_relative() {
        let i = parse_term("h(patient#1)").unwrap();
        let j = parse_term("h(patient#1(visit#5))").unwrap();
        let c = RelativeConstraint::new(q("/patient"), q("/visit"), ConstraintKind::NoInsert);
        assert!(!c.satisfied_by(&i, &j));
        assert!(c.satisfied_by(&j, &i));
    }

    #[test]
    fn flattened_range_composes() {
        let c = RelativeConstraint::new(q("/patient"), q("/visit"), ConstraintKind::NoRemove);
        let flat = c.flattened_range().unwrap();
        assert_eq!(flat.to_string(), "/patient/visit");
    }

    #[test]
    fn display_form() {
        let c = RelativeConstraint::new(q("/a"), q("/b"), ConstraintKind::NoInsert);
        assert_eq!(c.to_string(), "(/a, /b, ↓)");
    }
}
