//! The workspace's one time abstraction.
//!
//! Every subsystem that touches time — persist's retry backoff, the
//! bench harness, telemetry's stage tracer — injects a [`Clock`] instead
//! of calling `std::time` directly, so tests swap in a [`VirtualClock`]
//! and run the exact production code path at full speed while asserting
//! the schedule that *would* have been slept. The trait lived in
//! `xuc-persist` while retrying was its only customer; it is hoisted
//! here so persist, bench, and telemetry share one abstraction
//! (`xuc_persist::Clock` re-exports this type for compatibility).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// An injectable time source: a monotonic microsecond reading plus the
/// ability to sleep. Implementations must keep `now_micros` monotonic
/// non-decreasing; nothing requires it to track wall-clock time — the
/// zero point is implementation-defined (process start for
/// [`SystemClock`], construction for [`VirtualClock`]).
pub trait Clock {
    /// Microseconds since this clock's zero point. Monotonic.
    fn now_micros(&self) -> u64;

    fn sleep_micros(&self, micros: u64);
}

/// Shared clocks tick through the `Arc` — callers hand a gateway a
/// `Box<Arc<VirtualClock>>` and keep a handle to read the schedule back.
impl<C: Clock + ?Sized> Clock for std::sync::Arc<C> {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }

    fn sleep_micros(&self, micros: u64) {
        (**self).sleep_micros(micros);
    }
}

/// Process-wide monotonic anchor shared by every `SystemClock` value, so
/// readings from independently-constructed clocks are comparable.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Wall-clock time — what production uses. `now_micros` reads a
/// monotonic clock anchored at the first use in the process; sleeps
/// really sleep.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        process_epoch().elapsed().as_micros() as u64
    }

    fn sleep_micros(&self, micros: u64) {
        if micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
    }
}

/// Records requested sleeps instead of performing them, and serves a
/// virtual `now` that advances only through those sleeps and explicit
/// [`advance_micros`](VirtualClock::advance_micros) calls. Tests assert
/// backoff schedules from `slept_micros` and drive span timings by
/// advancing between tracer calls — deterministically, at full speed.
#[derive(Debug, Default)]
pub struct VirtualClock {
    slept: AtomicU64,
    advanced: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Total microseconds callers asked to sleep.
    pub fn slept_micros(&self) -> u64 {
        self.slept.load(Ordering::Relaxed)
    }

    /// Moves virtual time forward without anyone sleeping — how tests
    /// give successive `now_micros` readings a known separation.
    pub fn advance_micros(&self, micros: u64) {
        self.advanced.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_micros(&self) -> u64 {
        // Sleeps advance virtual time too: a retry loop that sleeps
        // 700µs observes 700µs elapsed, same as production.
        self.slept.load(Ordering::Relaxed) + self.advanced.load(Ordering::Relaxed)
    }

    fn sleep_micros(&self, micros: u64) {
        self.slept.fetch_add(micros, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_shared_across_values() {
        let a = SystemClock;
        let b = SystemClock;
        let t0 = a.now_micros();
        let t1 = b.now_micros();
        assert!(t1 >= t0, "independent SystemClock values share one epoch");
    }

    #[test]
    fn virtual_clock_advances_by_sleeps_and_explicit_steps() {
        let c = VirtualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.sleep_micros(250);
        assert_eq!((c.now_micros(), c.slept_micros()), (250, 250));
        c.advance_micros(50);
        assert_eq!(c.now_micros(), 300, "advance moves now but not slept");
        assert_eq!(c.slept_micros(), 250);
    }

    #[test]
    fn arc_blanket_forwards_both_methods() {
        let c = std::sync::Arc::new(VirtualClock::new());
        let as_clock: &dyn Clock = &c;
        as_clock.sleep_micros(10);
        assert_eq!(as_clock.now_micros(), 10);
        assert_eq!(c.slept_micros(), 10);
    }
}
