//! Three-valued outcomes for implication queries, with machine-checkable
//! counterexamples.

use crate::constraint::{all_satisfied, Constraint};
use std::collections::HashMap;
use std::fmt;
use xuc_xtree::{DataTree, NodeId};

/// A counterexample to general implication `C ⊨ c`: a pair of instances
/// valid for `C` but violating `c`.
#[derive(Debug, Clone)]
pub struct CounterExample {
    pub before: DataTree,
    pub after: DataTree,
}

impl CounterExample {
    /// Checks that this pair actually refutes the implication: it satisfies
    /// all of `set` and violates `goal`.
    pub fn verify(&self, set: &[Constraint], goal: &Constraint) -> bool {
        all_satisfied(set, &self.before, &self.after)
            && !goal.satisfied_by(&self.before, &self.after)
    }

    /// A canonical serialization of the pair, invariant under a consistent
    /// renaming of node ids across `before` and `after` (id *sharing*
    /// between the two trees — the thing constraints are about — is
    /// preserved by the shared alias map).
    ///
    /// Freshly minted ids differ between otherwise identical search runs,
    /// so shard-determinism tests compare these strings instead of raw
    /// ids: two runs returning the same candidate produce byte-identical
    /// forms.
    pub fn canonical_pair_form(&self) -> String {
        fn rec(t: &DataTree, id: NodeId, alias: &mut HashMap<NodeId, usize>, out: &mut String) {
            let next = alias.len();
            let a = *alias.entry(id).or_insert(next);
            out.push_str(t.label(id).expect("live node").as_str());
            out.push('#');
            out.push_str(&a.to_string());
            let mut keyed: Vec<(String, NodeId)> = t
                .children_iter(id)
                .expect("live node")
                .map(|c| (t.canonical_form_of(c).expect("live node"), c))
                .collect();
            if !keyed.is_empty() {
                // Sort children by their id-free shape (stable: structurally
                // identical siblings keep their arrival order, which is
                // itself deterministic — undo tokens restore exact child
                // positions, so the search's working trees never depend on
                // scheduling), then assign aliases in that order.
                keyed.sort_by(|a, b| a.0.cmp(&b.0));
                out.push('(');
                for (i, (_, c)) in keyed.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    rec(t, *c, alias, out);
                }
                out.push(')');
            }
        }
        let mut alias = HashMap::new();
        let mut out = String::new();
        rec(&self.before, self.before.root_id(), &mut alias, &mut out);
        out.push('|');
        rec(&self.after, self.after.root_id(), &mut alias, &mut out);
        out
    }
}

/// A counterexample to instance-based implication `C ⊨_J c`: a *before*
/// instance forming, with the given `J`, a pair valid for `C` but violating
/// `c`.
#[derive(Debug, Clone)]
pub struct InstanceCounterExample {
    pub before: DataTree,
}

impl InstanceCounterExample {
    /// Checks the refutation against the given current instance `after`.
    pub fn verify(&self, set: &[Constraint], after: &DataTree, goal: &Constraint) -> bool {
        all_satisfied(set, &self.before, after) && !goal.satisfied_by(&self.before, after)
    }
}

/// The result of an implication query.
#[derive(Debug, Clone)]
pub enum Outcome<W> {
    /// The implication holds; produced only by procedures that are exact
    /// for their input fragment.
    Implied,
    /// The implication fails, witnessed by a verified counterexample.
    NotImplied(W),
    /// The implication fails — decided by an exact procedure — but no
    /// explicit counterexample pair was materialized within budget.
    NotImpliedNoWitness,
    /// The (sound but incomplete) procedure exhausted its budget without
    /// an answer. `effort` describes the search bound reached.
    Unknown { effort: String },
}

impl<W> Outcome<W> {
    pub fn is_implied(&self) -> bool {
        matches!(self, Outcome::Implied)
    }

    pub fn is_not_implied(&self) -> bool {
        matches!(self, Outcome::NotImplied(_) | Outcome::NotImpliedNoWitness)
    }

    pub fn is_unknown(&self) -> bool {
        matches!(self, Outcome::Unknown { .. })
    }

    /// The counterexample, if the outcome is `NotImplied`.
    pub fn counterexample(&self) -> Option<&W> {
        match self {
            Outcome::NotImplied(w) => Some(w),
            _ => None,
        }
    }

    /// Converts to `Some(bool)` when decided, `None` when unknown.
    pub fn decided(&self) -> Option<bool> {
        match self {
            Outcome::Implied => Some(true),
            Outcome::NotImplied(_) | Outcome::NotImpliedNoWitness => Some(false),
            Outcome::Unknown { .. } => None,
        }
    }
}

impl<W> fmt::Display for Outcome<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Implied => write!(f, "implied"),
            Outcome::NotImplied(_) => write!(f, "not implied (counterexample found)"),
            Outcome::NotImpliedNoWitness => write!(f, "not implied"),
            Outcome::Unknown { effort } => write!(f, "unknown (searched: {effort})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use xuc_xtree::parse_term;

    #[test]
    fn verify_accepts_real_counterexample() {
        let before = parse_term("r(a#1,a#2)").unwrap();
        let after = parse_term("r(a#1)").unwrap();
        let ce = CounterExample { before, after };
        let set = vec![Constraint::no_insert(xuc_xpath::parse("/a").unwrap())];
        let goal = Constraint::no_remove(xuc_xpath::parse("/a").unwrap());
        assert!(ce.verify(&set, &goal));
        // Not a counterexample to its own constraint set member.
        assert!(!ce.verify(&set, &set[0].clone()));
    }

    #[test]
    fn canonical_pair_form_ignores_renaming_but_keeps_sharing() {
        let a = CounterExample {
            before: parse_term("r(a#1,a#2)").unwrap(),
            after: parse_term("r(a#1)").unwrap(),
        };
        // Same pair under an id renaming (1,2) → (7,9).
        let b = CounterExample {
            before: parse_term("r(a#7,a#9)").unwrap(),
            after: parse_term("r(a#7)").unwrap(),
        };
        assert_eq!(a.canonical_pair_form(), b.canonical_pair_form());
        // Different id *sharing*: the surviving node is the other one.
        let c = CounterExample {
            before: parse_term("r(a#1,a#2)").unwrap(),
            after: parse_term("r(a#2)").unwrap(),
        };
        // (a#1, a#2) are structurally identical siblings, so `a` and `c`
        // canonicalize identically only if sharing is ignored — it is not:
        // the alias of the survivor differs.
        assert_ne!(a.canonical_pair_form(), c.canonical_pair_form());
        // Sibling order is canonicalized away.
        let d = CounterExample {
            before: parse_term("r(b#1,a#2)").unwrap(),
            after: parse_term("r(a#2,b#1)").unwrap(),
        };
        let e = CounterExample {
            before: parse_term("r(a#2,b#1)").unwrap(),
            after: parse_term("r(b#1,a#2)").unwrap(),
        };
        assert_eq!(d.canonical_pair_form(), e.canonical_pair_form());
    }

    #[test]
    fn outcome_accessors() {
        let o: Outcome<CounterExample> = Outcome::Implied;
        assert!(o.is_implied());
        assert_eq!(o.decided(), Some(true));
        let u: Outcome<CounterExample> = Outcome::Unknown { effort: "depth 3".into() };
        assert!(u.is_unknown());
        assert_eq!(u.decided(), None);
        assert!(u.counterexample().is_none());
    }
}
