//! The PTIME implication algorithm for `XP{/,[],*}` (Theorems 4.1, 4.4, 4.5)
//! and the intersection-equivalence test it rests on.
//!
//! For constraints all of one type σ expressed in `XP{/,[],*}` (or
//! `XP{/,[],//}`), Theorem 4.4 shows `C ⊨ c` **iff** there are ranges
//! `q1..qk` in `C` with `q ≡ q1 ∩ … ∩ qk`. The efficient check takes
//! `S = { qi : q ⊆ qi }` (adding more containing ranges only shrinks the
//! intersection towards `q`) and tests `q ≡ ⋂S`.
//!
//! For `XP{/,[],*}` with *mixed* types, Theorem 4.1's same-type property
//! lets us drop all constraints of the opposite type first.

use crate::constraint::{Constraint, ConstraintKind};
use xuc_xpath::{containment, intersect, Pattern};

/// The ranges of `set` (restricted to `kind`) that contain `q`.
pub fn containing_ranges<'a>(
    set: &'a [Constraint],
    kind: ConstraintKind,
    q: &Pattern,
) -> Vec<&'a Pattern> {
    set.iter()
        .filter(|c| c.kind == kind)
        .map(|c| &c.range)
        .filter(|qi| containment::contains(q, qi))
        .collect()
}

/// Exact decision for `XP{/,[],*}` — arbitrary update types in `C`
/// (Theorem 4.1 reduces to one type; Theorem 4.4 decides it).
/// Returns `true` iff `C ⊨ c`.
///
/// # Panics
/// Panics if any involved query uses the descendant axis.
pub fn implies_pred_star(set: &[Constraint], goal: &Constraint) -> bool {
    let relevant = containing_ranges(set, goal.kind, &goal.range);
    if relevant.is_empty() {
        return false;
    }
    match intersect::intersect_all(relevant.iter().copied()) {
        // ⋂S ⊆ q always contains q's results? We have q ⊆ ⋂S by
        // construction; implication holds iff additionally ⋂S ⊆ q.
        Some(meet) => containment::contains(&meet, &goal.range),
        // Containing ranges with an empty intersection cannot happen when
        // q ⊆ each of them (q is satisfiable), but be defensive.
        None => false,
    }
}

/// The sufficient test of Proposition 3.1, valid in *every* fragment for a
/// goal of type σ against the σ-constraints of `C`: if `q` is equivalent to
/// the intersection of all containing ranges, the implication holds.
///
/// For fragments where intersection is not syntactically computable
/// (descendant axis present), we check `⋂S ⊆ q` semantically through
/// [`conjunctive_contained_in`](super::conjunctive::conjunctive_contained_in).
pub fn sufficient_by_intersection(set: &[Constraint], goal: &Constraint) -> Option<bool> {
    let relevant = containing_ranges(set, goal.kind, &goal.range);
    if relevant.is_empty() {
        return Some(false);
    }
    let all_child_only = relevant.iter().all(|q| q.descendant_edge_count() == 0)
        && goal.range.descendant_edge_count() == 0;
    if all_child_only {
        return Some(match intersect::intersect_all(relevant.iter().copied()) {
            Some(meet) => containment::contains(&meet, &goal.range),
            None => false,
        });
    }
    super::conjunctive::conjunctive_contained_in(&relevant, &goal.range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn paper_section_2_1_example() {
        // {(/patient[/visit],↓), (/patient[/clinicalTrial],↕)} implies
        // (/patient[/visit][/clinicalTrial],↓).
        let set = vec![
            c("(/patient[/visit], ↓)"),
            c("(/patient[/clinicalTrial], ↓)"),
            c("(/patient[/clinicalTrial], ↑)"),
        ];
        let goal = c("(/patient[/visit][/clinicalTrial], ↓)");
        assert!(implies_pred_star(&set, &goal));
    }

    #[test]
    fn single_constraint_self_implication() {
        let set = vec![c("(/a[/b], ↑)")];
        assert!(implies_pred_star(&set, &c("(/a[/b], ↑)")));
        assert!(!implies_pred_star(&set, &c("(/a, ↑)")));
        assert!(!implies_pred_star(&set, &c("(/a[/b][/d], ↑)")));
    }

    #[test]
    fn intersection_of_two_needed() {
        let set = vec![c("(/a[/x], ↓)"), c("(/a[/y], ↓)")];
        assert!(implies_pred_star(&set, &c("(/a[/x][/y], ↓)")));
        assert!(!implies_pred_star(&set, &c("(/a[/x][/z], ↓)")));
    }

    #[test]
    fn opposite_type_ignored() {
        // Theorem 4.1: only same-type constraints matter in XP{/,[],*}.
        let set = vec![c("(/a[/x], ↓)"), c("(/a[/y], ↑)")];
        assert!(!implies_pred_star(&set, &c("(/a[/x][/y], ↓)")));
        let set2 = vec![c("(/a[/x], ↓)"), c("(/a[/y], ↓)"), c("(/a[/x][/y], ↑)")];
        assert!(implies_pred_star(&set2, &c("(/a[/x][/y], ↓)")));
    }

    #[test]
    fn wildcard_ranges_combine() {
        let set = vec![c("(/*[/x], ↑)"), c("(/a, ↑)")];
        assert!(implies_pred_star(&set, &c("(/a[/x], ↑)")));
        assert!(!implies_pred_star(&set, &c("(/b[/x][/y], ↑)")));
    }

    #[test]
    fn longer_spines() {
        let set = vec![c("(/a/b[/u], ↑)"), c("(/a[/w]/b, ↑)")];
        assert!(implies_pred_star(&set, &c("(/a[/w]/b[/u], ↑)")));
        assert!(!implies_pred_star(&set, &c("(/a/b, ↑)")));
    }

    #[test]
    fn no_containing_range_means_not_implied() {
        let set = vec![c("(/a[/b], ↑)")];
        assert!(!implies_pred_star(&set, &c("(/c, ↑)")));
    }
}
