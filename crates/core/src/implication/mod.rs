//! General implication `C ⊨ c` (Definition 2.4) — Section 4 of the paper.
//!
//! [`implies`] dispatches on the fragment and type mix of the input,
//! choosing the strongest exact procedure available and falling back to
//! sound bounded search (Table 1's intractable cells):
//!
//! | input | procedure | exact? |
//! |---|---|---|
//! | all ranges in `XP{/,[],*}` | [`ptime::implies_pred_star`] (Thms 4.1/4.4/4.5) | yes |
//! | all ranges linear (`XP{/,//,*}`) | [`linear::implies_linear`] (Thms 4.3/4.8) | yes |
//! | `XP{/,[],//}`, one update type | Thm 4.4 + conjunctive containment | yes |
//! | full fragment / mixed types | sufficient test + counterexample search (Thms 4.2/4.7) | sound, may return Unknown |

pub mod conjunctive;
pub mod linear;
pub mod ptime;
pub mod search;

use crate::constraint::{Constraint, ConstraintKind};
use crate::outcome::{CounterExample, Outcome};
use xuc_xpath::Features;

/// Budget knobs for the procedures that search for counterexamples.
#[derive(Debug, Clone)]
pub struct ImplicationConfig {
    /// Budget (number of candidate pairs examined) for the bounded
    /// counterexample search.
    pub search_budget: usize,
    /// Budget (number of merged canonical models examined) for conjunctive
    /// containment in `XP{/,[],//}`.
    pub conjunctive_budget: usize,
}

impl Default for ImplicationConfig {
    fn default() -> Self {
        ImplicationConfig { search_budget: 20_000, conjunctive_budget: 200_000 }
    }
}

/// Decides `C ⊨ c` with default budgets. See [`implies_with`].
pub fn implies(set: &[Constraint], goal: &Constraint) -> Outcome<CounterExample> {
    implies_with(set, goal, &ImplicationConfig::default())
}

/// Decides `C ⊨ c`, dispatching to the strongest procedure for the input
/// fragment. `Implied`/`NotImplied` answers are exact (counterexamples are
/// machine-verified); `Unknown` is only returned on inputs in the paper's
/// intractable cells once the configured budgets are exhausted.
pub fn implies_with(
    set: &[Constraint],
    goal: &Constraint,
    config: &ImplicationConfig,
) -> Outcome<CounterExample> {
    let features = Features::of_all(set.iter().map(|c| &c.range)).union(Features::of(&goal.range));

    let all_concrete = set.iter().chain([goal]).all(|c| c.range.is_concrete());

    // XP{/,[],*}: PTIME, arbitrary types (Theorems 4.1 + 4.4 + 4.5). The
    // characterization assumes concrete paths (the paper's standing
    // assumption); wildcard outputs fall through to the sound procedures.
    if features.in_pred_star() && all_concrete {
        return if ptime::implies_pred_star(set, goal) {
            Outcome::Implied
        } else {
            // The PTIME test is exact; try to surface a concrete witness
            // for callers to inspect, but the boolean answer stands either
            // way.
            match search::find_counterexample(set, goal, config.search_budget) {
                Some(ce) => Outcome::NotImplied(ce),
                None => Outcome::NotImpliedNoWitness,
            }
        };
    }

    // Linear fragment XP{/,//,*}: exact for arbitrary types (concrete
    // outputs; otherwise the procedure reports Unknown and we fall through).
    if features.in_linear() {
        match linear::implies_linear(set, goal) {
            Outcome::Unknown { .. } => {}
            decided => return decided,
        }
    }

    let one_type = set.iter().all(|c| c.kind == goal.kind);
    let _ = all_concrete;

    // XP{/,[],//}, one update type: Theorem 4.4 characterization with the
    // conjunctive-containment check (coNP; budgeted but complete within
    // budget).
    if one_type {
        match ptime::sufficient_by_intersection(set, goal) {
            Some(true) => return Outcome::Implied,
            Some(false) if features.in_pred_desc() => {
                // Exact for XP{/,[],//} by Theorem 4.4: not equivalent to
                // the intersection of containing ranges ⇒ not implied.
                return match search::find_counterexample(set, goal, config.search_budget) {
                    Some(ce) => Outcome::NotImplied(ce),
                    None => Outcome::NotImpliedNoWitness,
                };
            }
            Some(false) => {
                // Full fragment: intersection equivalence is sufficient but
                // not known to be necessary; fall through to search.
            }
            None => {
                // Budget exhausted in conjunctive containment.
            }
        }
    }

    // Remaining territory (full fragment, or mixed types with predicates):
    // sound search for a counterexample; Unknown when the budget runs out.
    match search::find_counterexample(set, goal, config.search_budget) {
        Some(ce) => Outcome::NotImplied(ce),
        None => Outcome::Unknown {
            effort: format!("searched {} candidate pairs", config.search_budget),
        },
    }
}

/// Restriction helper used by Theorem 4.1: the subset of `set` whose kind
/// matches `kind`.
pub fn same_type(set: &[Constraint], kind: ConstraintKind) -> Vec<Constraint> {
    set.iter().filter(|c| c.kind == kind).cloned().collect()
}
