//! Exact implication for the linear fragment `XP{/,//,*}` — arbitrary
//! update types (Theorems 4.3 and 4.8).
//!
//! For linear queries, whether a node lies in a range depends only on its
//! root-to-node label string, so a counterexample pair `(I, J)` is fully
//! described by assigning each node an I-string and, optionally, a J-string
//! subject to (a) *prefix closure* inside each tree — every prefix of a
//! node's path is the path of one of its ancestors, itself a node with
//! obligations — and (b) per-node *membership implications* from `C`:
//!
//! * an I-node whose path lies in the range of some `(qᵢ, ↑)` must also
//!   exist in `J` with a path in `L(qᵢ)`;
//! * a J-node whose path lies in the range of some `(qᵢ, ↓)` must exist in
//!   `I` with a path in `L(qᵢ)`.
//!
//! Over the synchronous product DFA of all ranges these become conditions
//! on *states*, and counterexample existence reduces to a greatest fixpoint
//! of two mutually supporting state sets `Good_I`, `Good_J` (see
//! DESIGN.md §2). The procedure is exact and constructs a concrete,
//! machine-verified witness pair on the "not implied" side. Its cost is
//! exponential only in the number of constraints and the star-gaps of the
//! queries — precisely the parameters the paper fixes to obtain PTIME/NP
//! upper bounds.

use crate::constraint::{Constraint, ConstraintKind};
use crate::outcome::{CounterExample, Outcome};
use std::collections::HashMap;
use xuc_automata::{effective_alphabet, Dfa, Nfa, ProductDfa};
use xuc_xtree::{DataTree, Label, NodeId};

/// Decides `C ⊨ c` exactly for linear queries of arbitrary update types.
///
/// Requires *concrete* ranges (the paper's standing assumption): a
/// wildcard-labeled output changes the `(id, label)` pair semantics in
/// ways the state abstraction does not track, so such inputs return
/// `Unknown`.
///
/// # Panics
/// Panics if any range (or the goal range) has predicates.
pub fn implies_linear(set: &[Constraint], goal: &Constraint) -> Outcome<CounterExample> {
    for c in set.iter().chain([goal]) {
        assert!(
            c.range.is_linear(),
            "implies_linear requires linear (predicate-free) ranges; got {}",
            c.range
        );
    }
    if set.iter().chain([goal]).any(|c| !c.range.is_concrete()) {
        return Outcome::Unknown {
            effort: "exact linear decision requires concrete (non-wildcard) outputs".into(),
        };
    }
    // The fixpoint's `Analysis` packs one bit per range (constraints +
    // goal) into `u64` masks. `ProductDfa` itself has no component
    // ceiling any more (ranked rows), but this procedure's masks do —
    // and the paper's PTIME/NP cells assume a *bounded* constraint count
    // anyway, so past it we report honest ignorance instead of panicking
    // deep in the mask arithmetic.
    if set.len() + 1 > 64 {
        return Outcome::Unknown {
            effort: format!(
                "exact linear decision packs ranges into u64 masks; got {} ranges (max 64)",
                set.len() + 1
            ),
        };
    }
    match goal.kind {
        ConstraintKind::NoRemove => decide_no_remove(set, goal),
        ConstraintKind::NoInsert => {
            // (q,↓) on (I,J) is (q,↑) on (J,I); flip every constraint and
            // swap the counterexample back.
            let flipped: Vec<Constraint> =
                set.iter().map(|c| Constraint::new(c.range.clone(), c.kind.flip())).collect();
            let flipped_goal = Constraint::no_remove(goal.range.clone());
            match decide_no_remove(&flipped, &flipped_goal) {
                Outcome::Implied => Outcome::Implied,
                Outcome::NotImplied(ce) => {
                    Outcome::NotImplied(CounterExample { before: ce.after, after: ce.before })
                }
                Outcome::NotImpliedNoWitness => Outcome::NotImpliedNoWitness,
                Outcome::Unknown { effort } => Outcome::Unknown { effort },
            }
        }
    }
}

struct Analysis {
    product: ProductDfa,
    /// Bit i set in `up_mask` iff component i is a ↑ constraint of C.
    up_mask: u64,
    down_mask: u64,
    /// Component index of the goal range.
    goal_bit: u64,
    good_i: Vec<bool>,
    good_j: Vec<bool>,
}

impl Analysis {
    fn acc(&self, s: usize) -> u64 {
        self.product.accept_mask(s)
    }

    /// Can an I-node at state `s` be absent from J? (No ↑ range accepts.)
    fn vanish_ok_i(&self, s: usize) -> bool {
        self.acc(s) & self.up_mask == 0
    }

    /// Can a J-node at state `t` be absent from I? (No ↓ range accepts.)
    fn vanish_ok_j(&self, t: usize) -> bool {
        self.acc(t) & self.down_mask == 0
    }

    /// May one node have I-path state `s` and J-path state `t`?
    fn legal_pair(&self, s: usize, t: usize) -> bool {
        let a = self.acc(s);
        let b = self.acc(t);
        (a & self.up_mask) & !b == 0 && (b & self.down_mask) & !a == 0
    }
}

fn decide_no_remove(set: &[Constraint], goal: &Constraint) -> Outcome<CounterExample> {
    let ranges: Vec<&xuc_xpath::Pattern> =
        set.iter().map(|c| &c.range).chain([&goal.range]).collect();
    let alphabet = effective_alphabet(ranges.iter().copied());
    let dfas: Vec<Dfa> =
        ranges.iter().map(|q| Nfa::from_linear_pattern(q).determinize(&alphabet)).collect();
    let product = ProductDfa::build(&dfas);

    let mut up_mask = 0u64;
    let mut down_mask = 0u64;
    for (i, c) in set.iter().enumerate() {
        match c.kind {
            ConstraintKind::NoRemove => up_mask |= 1 << i,
            ConstraintKind::NoInsert => down_mask |= 1 << i,
        }
    }
    let goal_bit = 1u64 << set.len();

    let n = product.state_count();
    let mut analysis = Analysis {
        product,
        up_mask,
        down_mask,
        goal_bit,
        good_i: vec![true; n],
        good_j: vec![true; n],
    };
    compute_fixpoint(&mut analysis);

    // Witness: a good I-state accepted by the goal whose node can either
    // vanish from J or demote to a good J-state outside the goal range.
    for s in 0..n {
        if !analysis.good_i[s] || analysis.acc(s) & analysis.goal_bit == 0 {
            continue;
        }
        if analysis.vanish_ok_i(s) {
            let ce = build_counterexample(&analysis, s, None);
            debug_assert!(ce.verify(set, goal), "constructed witness must verify");
            return Outcome::NotImplied(ce);
        }
        for t in 0..n {
            if analysis.good_j[t]
                && analysis.legal_pair(s, t)
                && analysis.acc(t) & analysis.goal_bit == 0
            {
                let ce = build_counterexample(&analysis, s, Some(t));
                debug_assert!(ce.verify(set, goal), "constructed witness must verify");
                return Outcome::NotImplied(ce);
            }
        }
    }
    Outcome::Implied
}

/// Greatest fixpoint of the mutual-support conditions.
fn compute_fixpoint(a: &mut Analysis) {
    let n = a.product.state_count();
    loop {
        let reach_i = good_reachable(&a.product, &a.good_i);
        let reach_j = good_reachable(&a.product, &a.good_j);
        let mut changed = false;
        let mut next_i = vec![false; n];
        let mut next_j = vec![false; n];
        for s in 0..n {
            if reach_i[s] {
                let supported = a.vanish_ok_i(s)
                    || (0..n).any(|t| a.good_j[t] && reach_j[t] && a.legal_pair(s, t));
                next_i[s] = supported;
            }
        }
        for t in 0..n {
            if reach_j[t] {
                let supported = a.vanish_ok_j(t) || (0..n).any(|s| next_i[s] && a.legal_pair(s, t));
                next_j[t] = supported;
            }
        }
        if next_i != a.good_i || next_j != a.good_j {
            changed = true;
        }
        a.good_i = next_i;
        a.good_j = next_j;
        if !changed {
            break;
        }
    }
}

/// States reachable from the start through `good` states only (the start
/// itself accepts nothing, hence is always good).
fn good_reachable(product: &ProductDfa, good: &[bool]) -> Vec<bool> {
    let n = product.state_count();
    let mut reach = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if good[product.start()] {
        reach[product.start()] = true;
        queue.push_back(product.start());
    }
    while let Some(s) = queue.pop_front() {
        for sym in 0..product.alphabet().len() {
            let t = product.step(s, sym);
            if good[t] && !reach[t] {
                reach[t] = true;
                queue.push_back(t);
            }
        }
    }
    reach
}

/// Shortest symbol-index words (within the good subgraph) from the start to
/// every good-reachable state.
fn good_words(product: &ProductDfa, good: &[bool]) -> Vec<Option<Vec<usize>>> {
    let n = product.state_count();
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if good[product.start()] {
        seen[product.start()] = true;
        queue.push_back(product.start());
    }
    while let Some(s) = queue.pop_front() {
        for sym in 0..product.alphabet().len() {
            let t = product.step(s, sym);
            if good[t] && !seen[t] {
                seen[t] = true;
                parent[t] = Some((s, sym));
                queue.push_back(t);
            }
        }
    }
    (0..n)
        .map(|s| {
            if !seen[s] {
                return None;
            }
            let mut word = Vec::new();
            let mut cur = s;
            while let Some((p, sym)) = parent[cur] {
                word.push(sym);
                cur = p;
            }
            word.reverse();
            Some(word)
        })
        .collect()
}

/// One side of the pair under construction: a tree plus the trie of
/// realized symbol words.
struct Side {
    tree: DataTree,
    trie: HashMap<Vec<usize>, NodeId>,
}

impl Side {
    fn new() -> Side {
        let tree = DataTree::new("root");
        let mut trie = HashMap::new();
        trie.insert(Vec::new(), tree.root_id());
        Side { tree, trie }
    }

    /// Ensures the trie contains `word`, creating intermediate nodes with
    /// fresh ids; every *newly created* node is reported through
    /// `created(word_prefix, id)`.
    fn ensure_word(
        &mut self,
        word: &[usize],
        alphabet: &[Label],
        created: &mut impl FnMut(&[usize], NodeId),
    ) -> NodeId {
        for k in 1..=word.len() {
            if self.trie.contains_key(&word[..k]) {
                continue;
            }
            let parent = self.trie[&word[..k - 1]];
            let id = self.tree.add(parent, alphabet[word[k - 1]]).expect("fresh id");
            self.trie.insert(word[..k].to_vec(), id);
            created(&word[..k], id);
        }
        self.trie[word]
    }

    /// Adds `id` as an extra leaf realizing `word` (which must be
    /// non-empty); the prefix is created through `ensure_word` first.
    fn place(
        &mut self,
        id: NodeId,
        word: &[usize],
        alphabet: &[Label],
        created: &mut impl FnMut(&[usize], NodeId),
    ) {
        assert!(!word.is_empty(), "cannot place a node at the root");
        let parent_word = &word[..word.len() - 1];
        self.ensure_word(parent_word, alphabet, created);
        let parent = self.trie[parent_word];
        self.tree
            .add_with_id(parent, id, alphabet[word[word.len() - 1]])
            .expect("fresh placement id");
    }
}

/// Builds the explicit counterexample pair for witness I-state `s_star`
/// (and optional J-state `t_star` when the witness node survives in J
/// outside the goal range).
fn build_counterexample(a: &Analysis, s_star: usize, t_star: Option<usize>) -> CounterExample {
    let alphabet: Vec<Label> = a.product.alphabet().to_vec();
    let words_i = good_words(&a.product, &a.good_i);
    let words_j = good_words(&a.product, &a.good_j);

    // Canonical partner choice per state.
    let n = a.product.state_count();
    let partner_i: Vec<Option<usize>> = (0..n)
        .map(|s| {
            if a.vanish_ok_i(s) {
                None
            } else {
                Some(
                    (0..n)
                        .find(|&t| a.good_j[t] && words_j[t].is_some() && a.legal_pair(s, t))
                        .expect("good I-state must have a good J partner"),
                )
            }
        })
        .collect();
    let partner_j: Vec<Option<usize>> = (0..n)
        .map(|t| {
            if a.vanish_ok_j(t) {
                None
            } else {
                Some(
                    (0..n)
                        .find(|&s| a.good_i[s] && words_i[s].is_some() && a.legal_pair(s, t))
                        .expect("good J-state must have a good I partner"),
                )
            }
        })
        .collect();

    let mut side_i = Side::new();
    let mut side_j = Side::new();

    // Pending placements: (into_j, id, state).
    let mut pending: Vec<(bool, NodeId, usize)> = Vec::new();

    // Create the witness leaf in I.
    let witness_word = words_i[s_star].clone().expect("witness state reachable in Good_I");
    let witness_id = NodeId::fresh();
    {
        let mut created: Vec<(Vec<usize>, NodeId)> = Vec::new();
        side_i.place(witness_id, &witness_word, &alphabet, &mut |w, id| {
            created.push((w.to_vec(), id));
        });
        for (w, id) in created {
            let state = run_word(&a.product, &w);
            if let Some(t) = partner_i[state] {
                pending.push((true, id, t));
            }
        }
    }
    if let Some(t) = t_star {
        pending.push((true, witness_id, t));
    }

    // Drain placements; each placement may create trie nodes which spawn
    // further placements on the opposite side. Termination: tries only grow
    // along the finitely many canonical words.
    while let Some((into_j, id, state)) = pending.pop() {
        let (side, words, partners) = if into_j {
            (&mut side_j, &words_j, &partner_j)
        } else {
            (&mut side_i, &words_i, &partner_i)
        };
        let word = words[state].clone().expect("partner state reachable");
        let mut created: Vec<(Vec<usize>, NodeId)> = Vec::new();
        side.place(id, &word, &alphabet, &mut |w, nid| {
            created.push((w.to_vec(), nid));
        });
        // Newly created trie nodes on this side may need partners placed on
        // the opposite side.
        for (w, nid) in created {
            let st = run_word(&a.product, &w);
            if let Some(p) = partners[st] {
                pending.push((!into_j, nid, p));
            }
        }
    }

    CounterExample { before: side_i.tree, after: side_j.tree }
}

fn run_word(product: &ProductDfa, word: &[usize]) -> usize {
    word.iter().fold(product.start(), |s, &sym| product.step(s, sym))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn past_64_ranges_reports_unknown_not_panic() {
        // The fixpoint packs ranges into u64 masks; ProductDfa itself no
        // longer has a component ceiling, so the guard must live here.
        // 64 constraints + goal = 65 mask bits: honest Unknown, and the
        // implies() dispatcher falls through to the (set-path) search.
        let set: Vec<Constraint> = (0..64).map(|i| c(&format!("(//k{i}, ↑)"))).collect();
        let goal = c("(//g, ↑)");
        assert!(matches!(implies_linear(&set, &goal), Outcome::Unknown { .. }));
        // One fewer constraint fits the masks and decides exactly.
        assert!(implies_linear(&set[..63], &goal).is_not_implied());
        // End to end: the dispatcher still answers (via the search).
        assert!(crate::implication::implies(&set, &goal).is_not_implied());
    }

    fn decide(set: &[Constraint], goal: &Constraint) -> bool {
        match implies_linear(set, goal) {
            Outcome::Implied => true,
            Outcome::NotImplied(ce) => {
                assert!(ce.verify(set, goal), "counterexample must verify");
                false
            }
            Outcome::NotImpliedNoWitness | Outcome::Unknown { .. } => {
                panic!("linear decision always materializes witnesses")
            }
        }
    }

    #[test]
    fn self_implication() {
        let set = vec![c("(//a//b, ↑)")];
        assert!(decide(&set, &c("(//a//b, ↑)")));
        assert!(!decide(&set, &c("(//a, ↑)")));
    }

    #[test]
    fn example_4_1_interacting_types() {
        // The paper's Example 4.1: c is implied by the full mixed-type set…
        let set = vec![
            c("(//a//c, ↑)"),
            c("(//b//c, ↑)"),
            c("(//a//b//c, ↓)"),
            c("(//a//b//a//c, ↑)"),
            c("(//b//a//b//c, ↑)"),
        ];
        let goal = c("(//b//a//c, ↑)");
        assert!(decide(&set, &goal), "Example 4.1: full set implies c");
        // …but NOT by the no-remove constraints alone.
        let up_only: Vec<Constraint> =
            set.iter().filter(|x| x.kind == ConstraintKind::NoRemove).cloned().collect();
        assert!(!decide(&up_only, &goal), "Example 4.1: ↑ constraints alone do not imply c");
    }

    #[test]
    fn no_insert_goals_by_symmetry() {
        let set = vec![c("(//a//c, ↓)")];
        assert!(decide(&set, &c("(//a//c, ↓)")));
        assert!(!decide(&set, &c("(//c, ↓)")));
    }

    #[test]
    fn equivalent_ranges_imply() {
        // /a/b ⊆ //b and //a//b; equivalence-based implication: /a/b only
        // implied by an equivalent range.
        let set = vec![c("(//b, ↑)")];
        assert!(!decide(&set, &c("(/a/b, ↑)")));
        let set2 = vec![c("(/a/b, ↑)")];
        assert!(decide(&set2, &c("(/a/b, ↑)")));
    }

    #[test]
    fn wildcards_in_linear_ranges() {
        let set = vec![c("(/a/*/c, ↑)")];
        assert!(decide(&set, &c("(/a/*/c, ↑)")));
        assert!(!decide(&set, &c("(/a/b/c, ↑)")));
        assert!(!decide(&set, &c("(//c, ↑)")));
    }

    #[test]
    fn non_concrete_outputs_route_to_unknown() {
        let set = vec![c("(/a/*, ↑)")];
        assert!(implies_linear(&set, &c("(/a/b, ↑)")).is_unknown());
    }

    #[test]
    fn opposite_type_alone_never_implies() {
        // A ↓ constraint cannot imply a ↑ goal on its own (removals are
        // unrestricted), and vice versa.
        let set = vec![c("(//a, ↓)")];
        assert!(!decide(&set, &c("(//a, ↑)")));
        let set2 = vec![c("(//a, ↑)")];
        assert!(!decide(&set2, &c("(//a, ↓)")));
    }

    #[test]
    fn counterexamples_always_verify() {
        // A small sweep of random-ish combinations; decide() already
        // asserts verification of every counterexample.
        let ranges = ["//a", "/a", "//a//b", "/a//b", "//b", "/a/*/b", "//*//b"];
        let kinds = ["↑", "↓"];
        let mut checked = 0;
        for r1 in ranges {
            for k1 in kinds {
                for r2 in ranges {
                    for k2 in kinds {
                        let set = vec![c(&format!("({r1}, {k1})"))];
                        let goal = c(&format!("({r2}, {k2})"));
                        let _ = decide(&set, &goal);
                        checked += 1;
                    }
                }
            }
        }
        assert_eq!(checked, ranges.len() * ranges.len() * 4);
    }
}
