//! Bounded, verified counterexample search for general implication.
//!
//! This is the sound-but-budgeted workhorse behind the coNP/NEXPTIME cells
//! of Table 1 (and the test oracle for the exact procedures): it enumerates
//! candidate pairs `(I, J)` built from
//!
//! 1. **canonical models** of the goal range, edited by the update
//!    operations a violator would use (delete / splice / re-identify /
//!    move / relabel), including the proof constructions of Figures 3–5,
//! 2. enriched variants that graft canonical models of the constraint
//!    ranges alongside (so interactions between ranges are exercised), and
//! 3. **deterministic pseudo-random** tree pairs over the constraint
//!    alphabet (seeded xorshift, so runs are reproducible),
//!
//! and returns the first candidate that *verifies*: satisfies every
//! constraint of `C` and violates `c`. Small-model properties
//! (Theorems 4.7/5.1) justify searching small instances first.

use crate::constraint::Constraint;
use crate::construct;
use crate::outcome::CounterExample;
use xuc_xpath::{canonical, Pattern};
use xuc_xtree::{DataTree, Label, NodeId};

/// A tiny deterministic xorshift generator (no external dependency, fully
/// reproducible searches).
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Searches for a verified counterexample to `C ⊨ c`, examining at most
/// `budget` candidate pairs. Sound: every returned pair is checked by
/// [`CounterExample::verify`].
pub fn find_counterexample(
    set: &[Constraint],
    goal: &Constraint,
    budget: usize,
) -> Option<CounterExample> {
    let mut examined = 0usize;
    let check = |before: &DataTree, after: &DataTree| -> Option<CounterExample> {
        let ce = CounterExample { before: before.clone(), after: after.clone() };
        if ce.verify(set, goal) {
            Some(ce)
        } else {
            None
        }
    };

    // Phase 1: canonical-model edits.
    let all_patterns: Vec<&Pattern> =
        set.iter().map(|c| &c.range).chain([&goal.range]).collect();
    let z = canonical::fresh_label_for(all_patterns.iter().copied());
    let bound = all_patterns.iter().map(|p| canonical::chain_bound_for(p)).max().unwrap_or(2);
    let labels = label_pool(&all_patterns, z);

    let seeds = seed_trees(&goal.range, set, bound.min(3), z);
    for (tree, n) in &seeds {
        for (before, after) in edit_candidates(tree, *n, &labels) {
            examined += 1;
            if examined > budget {
                return None;
            }
            if let Some(ce) = check(&before, &after) {
                return Some(ce);
            }
            // Also try the pair in the opposite direction (covers ↓ goals).
            examined += 1;
            if examined > budget {
                return None;
            }
            if let Some(ce) = check(&after, &before) {
                return Some(ce);
            }
        }
    }

    // Phase 2: proof constructions on seed trees.
    for (tree, n) in &seeds {
        if tree.parent(*n).ok().flatten().is_some() {
            examined += 2;
            if examined > budget {
                return None;
            }
            let fig4 = construct::duplicate_and_drop(tree, *n);
            if let Some(ce) = check(&fig4.before, &fig4.after) {
                return Some(ce);
            }
            if let Some(ce) = check(&fig4.after, &fig4.before) {
                return Some(ce);
            }
        }
    }

    // Phase 3: deterministic random pairs.
    let mut rng = XorShift::new(0x5eed_cafe_d00d_f00d);
    while examined < budget {
        examined += 1;
        let size = 2 + rng.below(7);
        let before = random_tree(&mut rng, &labels, size);
        let edits = 1 + rng.below(3);
        let after = random_edit(&mut rng, &before, &labels, edits);
        if let Some(ce) = check(&before, &after) {
            return Some(ce);
        }
    }
    None
}

/// The label pool for candidate trees: constraint labels plus `z`.
fn label_pool(patterns: &[&Pattern], z: Label) -> Vec<Label> {
    let mut pool: std::collections::BTreeSet<Label> =
        patterns.iter().flat_map(|p| p.labels()).collect();
    pool.insert(z);
    pool.into_iter().collect()
}

/// Seed trees: canonical models of the goal range (the node to attack is
/// the model's output), plus variants enriched with canonical models of
/// each constraint range grafted at the root.
fn seed_trees(
    goal_range: &Pattern,
    set: &[Constraint],
    max_chain: usize,
    z: Label,
) -> Vec<(DataTree, NodeId)> {
    let mut out = Vec::new();
    for model in canonical::canonical_models(goal_range, max_chain, z).take(64) {
        out.push((model.tree.clone(), model.output));
        // Enriched: add one canonical model of each constraint range.
        let mut enriched = model.tree.clone();
        for c in set.iter().take(4) {
            let side = canonical::instantiate(
                &c.range,
                &vec![1; c.range.descendant_edge_count()],
                z,
                Label::new("side"),
            );
            for child in side.tree.children(side.tree.root_id()).expect("root") {
                let _ = enriched.graft_copy(enriched.root_id(), &side.tree, child);
            }
        }
        out.push((enriched, model.output));
    }
    out
}

/// Candidate `J`s for a given `I` and target node: the edits a violator
/// could try.
fn edit_candidates(
    tree: &DataTree,
    n: NodeId,
    labels: &[Label],
) -> Vec<(DataTree, DataTree)> {
    let mut out = Vec::new();
    let before = tree.clone();

    if tree.parent(n).ok().flatten().is_some() {
        // Delete the whole subtree.
        let mut t = tree.clone();
        t.delete_subtree(n).expect("live");
        out.push((before.clone(), t));
        // Splice the node out.
        let mut t = tree.clone();
        t.delete_node(n).expect("live");
        out.push((before.clone(), t));
        // Replace identity (Theorem 3.1).
        let (t, _) = construct::replace_with_fresh(tree, n);
        out.push((before.clone(), t));
        // Move under the root.
        let mut t = tree.clone();
        if t.move_node(n, t.root_id()).is_ok() {
            out.push((before.clone(), t));
        }
        // Move under every other node.
        for target in tree.node_ids() {
            if target == n {
                continue;
            }
            let mut t = tree.clone();
            if t.move_node(n, target).is_ok() {
                out.push((before.clone(), t));
            }
        }
    }
    // Relabel.
    for &l in labels {
        if Ok(l) != tree.label(n) {
            let mut t = tree.clone();
            t.relabel(n, l).expect("live");
            out.push((before.clone(), t));
        }
    }
    // Also attack each ancestor of n the same basic ways.
    let mut cur = tree.parent(n).ok().flatten();
    while let Some(a) = cur {
        if tree.parent(a).ok().flatten().is_some() {
            let mut t = tree.clone();
            t.delete_node(a).expect("live");
            out.push((before.clone(), t));
            let (t, _) = construct::replace_with_fresh(tree, a);
            out.push((before.clone(), t));
        }
        cur = tree.parent(a).ok().flatten();
    }
    out
}

/// A uniformly random tree with `n` non-root nodes over the label pool.
pub(crate) fn random_tree(rng: &mut XorShift, labels: &[Label], n: usize) -> DataTree {
    let mut tree = DataTree::new("root");
    let mut ids = vec![tree.root_id()];
    for _ in 0..n {
        let parent = ids[rng.below(ids.len())];
        let label = labels[rng.below(labels.len())];
        let id = tree.add(parent, label).expect("fresh");
        ids.push(id);
    }
    tree
}

/// Applies `k` random updates to a copy of `tree`.
pub(crate) fn random_edit(
    rng: &mut XorShift,
    tree: &DataTree,
    labels: &[Label],
    k: usize,
) -> DataTree {
    let mut t = tree.clone();
    for _ in 0..k {
        let ids = t.node_ids();
        match rng.below(5) {
            0 => {
                let parent = ids[rng.below(ids.len())];
                let label = labels[rng.below(labels.len())];
                let _ = t.add(parent, label);
            }
            1 => {
                let victim = ids[rng.below(ids.len())];
                let _ = t.delete_subtree(victim);
            }
            2 => {
                let victim = ids[rng.below(ids.len())];
                let _ = t.delete_node(victim);
            }
            3 => {
                let node = ids[rng.below(ids.len())];
                let target = ids[rng.below(ids.len())];
                let _ = t.move_node(node, target);
            }
            _ => {
                let node = ids[rng.below(ids.len())];
                let label = labels[rng.below(labels.len())];
                let _ = t.relabel(node, label);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn finds_simple_deletion_witness() {
        let set = vec![c("(/a[/b], ↑)")];
        let goal = c("(/a, ↑)");
        let ce = find_counterexample(&set, &goal, 5_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn finds_insertion_witness() {
        let set = vec![c("(/a[/b], ↓)")];
        let goal = c("(/a, ↓)");
        let ce = find_counterexample(&set, &goal, 5_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn respects_budget() {
        // Implied case: no counterexample exists; search must terminate.
        let set = vec![c("(/a, ↑)")];
        let goal = c("(/a, ↑)");
        assert!(find_counterexample(&set, &goal, 500).is_none());
    }

    #[test]
    fn full_fragment_witness() {
        // //a[/b]/* vs //a/*: removal allowed when predicate not protected.
        let set = vec![c("(//a[/b]/c, ↑)")];
        let goal = c("(//a/c, ↑)");
        let ce = find_counterexample(&set, &goal, 20_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn random_trees_are_well_formed() {
        let mut rng = XorShift::new(7);
        let labels = vec![Label::new("a"), Label::new("b")];
        for _ in 0..50 {
            let t = random_tree(&mut rng, &labels, 6);
            assert_eq!(t.len(), 7);
            let edited = random_edit(&mut rng, &t, &labels, 3);
            // Edits keep a live tree rooted at the same root.
            assert!(edited.len() >= 1);
            assert_eq!(edited.root_id(), t.root_id());
        }
    }
}
