//! Bounded, verified counterexample search for general implication.
//!
//! This is the sound-but-budgeted workhorse behind the coNP/NEXPTIME cells
//! of Table 1 (and the test oracle for the exact procedures): it enumerates
//! candidate pairs `(I, J)` built from
//!
//! 1. **canonical models** of the goal range, edited by the update
//!    operations a violator would use (delete / splice / re-identify /
//!    move / relabel), including the proof constructions of Figures 3–5,
//! 2. enriched variants that graft canonical models of the constraint
//!    ranges alongside (so interactions between ranges are exercised), and
//! 3. **deterministic pseudo-random** tree pairs over the constraint
//!    alphabet (seeded xorshift, so runs are reproducible),
//!
//! and returns a candidate that *verifies*: satisfies every constraint of
//! `C` and violates `c`. Small-model properties (Theorems 4.7/5.1) justify
//! searching small instances first.
//!
//! # Hot-path layout
//!
//! The search examines thousands of candidates per call, so it never
//! clones a tree per candidate. Each working tree gets **one** reusable
//! [`Evaluator`]; every candidate edit is applied via
//! [`xuc_xtree::apply_undoable`], the evaluator is re-synced **in time
//! proportional to the edit** via [`Evaluator::refresh_after`] and the
//! [`xuc_xtree::EditScope`] the apply returned (a relabel candidate costs
//! two bitset-word patches, not an O(n) re-walk), all range results are
//! compared against the seed's cached results as plain set inclusions, and
//! the edit is reverted via [`xuc_xtree::undo`]. Trees are cloned exactly
//! once per *returned* counterexample.
//!
//! Large constraint batches additionally take the **set-at-a-time** path:
//! when at least `SET_PATH_CROSSOVER` constraint ranges are linear, the
//! whole range batch is compiled **once per search** into a single tagged
//! automaton ([`xuc_automata::PatternSetCompiler`]) and every candidate's
//! constraint verification becomes one [`Evaluator::eval_set`] pass —
//! one automaton step per node instead of one bitset sweep per range.
//! The goal range stays on the lazy per-pattern path (it is evaluated for
//! every candidate; the constraint ranges only when the goal check
//! fires). Results are identical either way (`eval_set` ≡ `eval_all` is
//! property-pinned in `xuc-xpath`), so determinism is unaffected — the
//! sharded determinism suite runs a batch above the crossover to prove it.
//!
//! # Sharding and determinism
//!
//! Candidate enumeration is embarrassingly parallel, so
//! [`find_counterexample_sharded`] fans the candidate space out over a
//! [`std::thread::scope`] worker pool. The result is **identical at every
//! shard count** because nothing about a candidate depends on scheduling:
//!
//! * every candidate has a fixed **global index** (phase 1 in seed × edit
//!   order, two evaluation half-steps per candidate; then phase 2's proof
//!   constructions; then phase 3), assigned before workers start;
//! * the budget admits exactly the candidates whose index is below it —
//!   a *deterministic prefix* of the enumeration, not a race on a counter;
//! * the returned counterexample is the **lowest-index** verifying
//!   candidate: workers publish wins to a shared atomic best-index (also
//!   used to prune candidates that can no longer win), and the minimum
//!   over all workers is taken at join;
//! * phase 3's random pairs are drawn from `P3_STREAMS` *virtual
//!   streams*, each with a seed derived as `P3_SEED ^ mix(stream)`
//!   (per-stream, **not** per-OS-thread), interleaved round-robin into the
//!   global index space — so the pair at any index is the same no matter
//!   which worker draws it.
//!
//! Work units (one seed's candidate chunk — currently the whole list, so
//! the per-seed working-tree setup is amortized over every candidate of
//! the seed — one proof construction, or one random stream) are handed to
//! workers through a single atomic cursor; each worker owns its working
//! tree and evaluator, so there is no shared mutable tree state at all.

use crate::constraint::Constraint;
use crate::construct;
use crate::outcome::CounterExample;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use xuc_automata::{CompiledPatternSet, PatternSetCompiler};
use xuc_xpath::{canonical, Evaluator, Pattern};
use xuc_xtree::{apply_undoable, undo, DataTree, Label, NodeId, NodeRef, Update};

/// Crossover for the set-at-a-time constraint verification path: the
/// range batch is compiled into one automaton when at least this many
/// ranges take the compiled (linear) path. Below the crossover the
/// per-pattern loop wins — it usually evaluates only the goal range,
/// while the compiled pass scans every range's acceptance row per node.
/// The E-SET experiment in `run_experiments` measures the batch
/// break-even (between 8 and 16 patterns on 1k-node documents) and
/// asserts the ≥ 3× win at 64 patterns that justifies the switch.
pub(crate) const SET_PATH_CROSSOVER: usize = 16;

/// A tiny deterministic xorshift generator (no external dependency, fully
/// reproducible searches).
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A near-uniform draw from `0..n` by widening multiply. The previous
    /// `next_u64() % n` carried modulo bias (the low `2^64 mod n` residues
    /// were over-weighted); `(x * n) >> 64` reduces the bias to at most
    /// `n / 2^64` while still consuming exactly one draw per call, which
    /// keeps derived streams aligned.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (((self.next_u64() as u128) * (n.max(1) as u128)) >> 64) as usize
    }
}

/// Is the pair a counterexample, judged on precomputed range results
/// (one entry per constraint of `set` followed by one for `goal`)?
/// Reference implementation of the candidate check — the hot loops in
/// [`find_counterexample`] compute the same answer lazily, goal range
/// first, and the agreement test pins the two to `CounterExample::verify`.
#[cfg(test)]
fn refutes(
    set: &[Constraint],
    goal: &Constraint,
    before_sets: &[BTreeSet<NodeRef>],
    after_sets: &[BTreeSet<NodeRef>],
) -> bool {
    let goal_i = set.len();
    if goal.kind.satisfied_on(&before_sets[goal_i], &after_sets[goal_i]) {
        return false;
    }
    set.iter().enumerate().all(|(i, c)| c.kind.satisfied_on(&before_sets[i], &after_sets[i]))
}

fn eval_sets(ev: &mut Evaluator, patterns: &[&Pattern]) -> Vec<BTreeSet<NodeRef>> {
    patterns.iter().map(|q| ev.eval(q)).collect()
}

/// All range results for the current tree, in `SearchCtx::patterns`
/// layout (one entry per constraint of `set`, then the goal): a single
/// [`Evaluator::eval_set`] pass on the set-at-a-time path, the
/// per-pattern loop otherwise. The two produce identical sets.
fn eval_ranges(ctx: &SearchCtx, ev: &mut Evaluator) -> Vec<BTreeSet<NodeRef>> {
    match ctx.set_dfa {
        Some(dfa) => {
            let mut sets = ev.eval_set(dfa);
            sets.push(ev.eval(&ctx.goal.range));
            sets
        }
        None => eval_sets(ev, ctx.patterns),
    }
}

/// Virtual phase-3 RNG streams. Fixed (independent of the worker count) so
/// that the random pair at any global candidate index is the same at every
/// shard count.
const P3_STREAMS: u64 = 64;

/// Base seed for phase 3; stream `s` uses `P3_SEED ^ mix(s)`.
const P3_SEED: u64 = 0x5eed_cafe_d00d_f00d;

// Phase-1 work units are whole seeds: seeds are small bounded canonical
// models and there are usually far more of them than shards, so per-seed
// units balance fine — and claiming a seed whole lets a worker amortize
// its SeedState (tree clone + evaluator + cached base sets) over every
// candidate of that seed, instead of rebuilding it per interleaved chunk.

/// Aggregate statistics of one search run. `winner_index` is deterministic
/// for a fixed input and budget (shard-count independent); `evaluated` can
/// vary slightly with scheduling because workers skip candidates that
/// provably cannot beat the current best.
#[derive(Debug, Default, Clone)]
pub struct SearchStats {
    /// Evaluation half-steps actually spent (never exceeds the budget).
    pub evaluated: u64,
    /// Global index of the returned counterexample, if any.
    pub winner_index: Option<u64>,
}

/// The default shard count: one per available core, capped at 8 (the
/// candidate space rarely feeds more).
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Searches for a verified counterexample to `C ⊨ c`, examining at most
/// `budget` candidate evaluation steps across [`default_shards`] worker
/// threads. Sound: every returned pair is checked by
/// [`CounterExample::verify`]. Deterministic: the result is the
/// lowest-index verifying candidate of a fixed enumeration, independent of
/// thread count and scheduling.
pub fn find_counterexample(
    set: &[Constraint],
    goal: &Constraint,
    budget: usize,
) -> Option<CounterExample> {
    // Small budgets are sub-millisecond searches where thread spawn/join
    // would dominate; stay inline. The result is shard-count independent
    // by construction, so this is purely a scheduling choice.
    let shards = if budget < 2_000 { 1 } else { default_shards() };
    find_counterexample_sharded(set, goal, budget, shards)
}

/// [`find_counterexample`] with an explicit shard (worker thread) count.
/// The returned counterexample is identical at every shard count.
pub fn find_counterexample_sharded(
    set: &[Constraint],
    goal: &Constraint,
    budget: usize,
    shards: usize,
) -> Option<CounterExample> {
    find_counterexample_with_stats(set, goal, budget, shards).0
}

/// [`find_counterexample_sharded`] plus run statistics (for benches and
/// determinism tests).
pub fn find_counterexample_with_stats(
    set: &[Constraint],
    goal: &Constraint,
    budget: usize,
    shards: usize,
) -> (Option<CounterExample>, SearchStats) {
    find_counterexample_tuned(set, goal, budget, shards, SET_PATH_CROSSOVER)
}

/// [`find_counterexample_with_stats`] with an explicit set-path crossover
/// (tests force both verification paths on one input; `usize::MAX`
/// disables the set path entirely).
fn find_counterexample_tuned(
    set: &[Constraint],
    goal: &Constraint,
    budget: usize,
    shards: usize,
    crossover: usize,
) -> (Option<CounterExample>, SearchStats) {
    let shards = shards.max(1);
    let budget = budget as u64;
    let patterns: Vec<&Pattern> = set.iter().map(|c| &c.range).chain([&goal.range]).collect();

    let z = canonical::fresh_label_for(patterns.iter().copied());
    let bound = patterns.iter().map(|p| canonical::chain_bound_for(p)).max().unwrap_or(2);
    let labels = label_pool(&patterns, z);
    let seeds = seed_trees(&goal.range, set, bound.min(3), z);

    // Set-at-a-time crossover: compile the constraint ranges (goal
    // excluded — it stays on the lazy per-candidate path) once for the
    // whole search when enough of them compile to linear automata.
    let set_dfa: Option<CompiledPatternSet> = if set.len() >= crossover {
        let compiled = PatternSetCompiler::compile(set.iter().map(|c| &c.range));
        (compiled.compiled_count() >= crossover).then_some(compiled)
    } else {
        None
    };

    // Enumerate the phase-1 candidates up front on this thread, so
    // candidate identity (including the ids minted for `ReplaceId` edits)
    // is fixed before any worker runs, and assign the global index space:
    // phase 1, then 2, then 3. Enumeration stops with the budget prefix:
    // once `next_index >= budget` no later seed can contribute an
    // eligible candidate, so skipping its enumeration cannot change the
    // admitted set (small-budget calls stay cheap).
    let mut seed_edits: Vec<Vec<Update>> = Vec::with_capacity(seeds.len());
    let mut units = Vec::new();
    let mut next_index = 0u64;
    for (s, (tree, n)) in seeds.iter().enumerate() {
        if next_index >= budget {
            seed_edits.push(Vec::new());
            continue;
        }
        let edits = applicable_edit_candidates(tree, *n, &labels);
        if !edits.is_empty() {
            units.push(Unit::Edits { seed: s, lo: 0, hi: edits.len(), base: next_index });
        }
        next_index += 2 * edits.len() as u64;
        seed_edits.push(edits);
    }
    for (s, (tree, n)) in seeds.iter().enumerate() {
        if tree.parent(*n).ok().flatten().is_some() {
            if next_index < budget {
                units.push(Unit::Construct { seed: s, base: next_index });
            }
            next_index += 2;
        }
    }
    let p3_base = next_index;
    for stream in 0..P3_STREAMS {
        if p3_base + stream < budget {
            units.push(Unit::Random { stream, base: p3_base });
        }
    }

    let ctx = SearchCtx {
        set,
        goal,
        patterns: &patterns,
        set_dfa: set_dfa.as_ref(),
        seeds: &seeds,
        seed_edits: &seed_edits,
        labels: &labels,
        budget,
        units: &units,
        next_unit: AtomicUsize::new(0),
        best: AtomicU64::new(u64::MAX),
        spent: AtomicU64::new(0),
        winner: Mutex::new(None),
    };

    if shards == 1 {
        run_worker(&ctx);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..shards {
                scope.spawn(|| run_worker(&ctx));
            }
        });
    }

    let winner = ctx.winner.into_inner();
    let stats = SearchStats {
        evaluated: ctx.spent.into_inner(),
        winner_index: winner.as_ref().map(|(i, _)| *i),
    };
    (winner.map(|(_, ce)| ce), stats)
}

/// One unit of work a shard claims from the shared cursor. `base` is the
/// global index of the unit's first candidate evaluation.
enum Unit {
    /// Candidates `lo..hi` of `seed_edits[seed]` (two half-steps each).
    Edits { seed: usize, lo: usize, hi: usize, base: u64 },
    /// The Figure 4 proof construction for one seed (two half-steps).
    Construct { seed: usize, base: u64 },
    /// One virtual phase-3 RNG stream; draw `j` of `stream` sits at global
    /// index `base + stream + j * P3_STREAMS`.
    Random { stream: u64, base: u64 },
}

/// Shared read-only inputs plus the coordination cells of one search run.
struct SearchCtx<'a> {
    set: &'a [Constraint],
    goal: &'a Constraint,
    patterns: &'a [&'a Pattern],
    /// The compiled constraint-range batch, present iff the search is on
    /// the set-at-a-time path (see `SET_PATH_CROSSOVER`).
    set_dfa: Option<&'a CompiledPatternSet>,
    seeds: &'a [(DataTree, NodeId)],
    seed_edits: &'a [Vec<Update>],
    labels: &'a [Label],
    budget: u64,
    units: &'a [Unit],
    /// Work-stealing cursor into `units`.
    next_unit: AtomicUsize,
    /// Lowest verifying global index found so far (pruning + determinism).
    best: AtomicU64,
    /// Evaluation half-steps spent (bounded by `budget` by construction).
    spent: AtomicU64,
    /// The lowest-index verified counterexample found so far.
    winner: Mutex<Option<(u64, CounterExample)>>,
}

impl SearchCtx<'_> {
    /// Publishes a verified counterexample found at `idx`; keeps the
    /// lowest-index one.
    fn offer(&self, idx: u64, ce: CounterExample) {
        self.best.fetch_min(idx, Ordering::Relaxed);
        let mut w = self.winner.lock();
        if w.as_ref().is_none_or(|(i, _)| idx < *i) {
            *w = Some((idx, ce));
        }
    }
}

/// Per-worker cached state for phase-1 units: one working copy of the
/// current seed plus its evaluator and cached range results. Reused across
/// chunks of the same seed; the evaluator's allocations survive even a
/// switch to a different seed.
struct SeedState {
    seed: usize,
    work: DataTree,
    ev: Evaluator,
    base_sets: Vec<BTreeSet<NodeRef>>,
}

fn run_worker(ctx: &SearchCtx) {
    let mut cache: Option<SeedState> = None;
    loop {
        let u = ctx.next_unit.fetch_add(1, Ordering::Relaxed);
        let Some(unit) = ctx.units.get(u) else { return };
        match unit {
            Unit::Edits { seed, lo, hi, base } => {
                run_edit_chunk(ctx, &mut cache, *seed, *lo, *hi, *base);
            }
            Unit::Construct { seed, base } => run_construct(ctx, *seed, *base),
            Unit::Random { stream, base } => run_random_stream(ctx, *stream, *base),
        }
    }
}

/// Phase 1 on one chunk: apply/evaluate/undo each candidate on the
/// worker-owned working tree. Zero tree clones and, for relabel
/// candidates, zero tree walks — the evaluator is patched in place via the
/// edit scope.
fn run_edit_chunk(
    ctx: &SearchCtx,
    cache: &mut Option<SeedState>,
    seed: usize,
    lo: usize,
    hi: usize,
    base: u64,
) {
    if base >= ctx.budget || base >= ctx.best.load(Ordering::Relaxed) {
        return;
    }
    if cache.as_ref().is_none_or(|s| s.seed != seed) {
        let work = ctx.seeds[seed].0.clone();
        let mut ev = match cache.take() {
            // Reuse the previous evaluator's allocations.
            Some(mut prev) => {
                prev.ev.refresh(&work);
                prev.ev
            }
            None => Evaluator::new(&work),
        };
        let base_sets = eval_ranges(ctx, &mut ev);
        *cache = Some(SeedState { seed, work, ev, base_sets });
    }
    let st = cache.as_mut().expect("just built");
    let seed_tree = &ctx.seeds[seed].0;
    let goal_i = ctx.set.len();

    for (k, edit) in ctx.seed_edits[seed][lo..hi].iter().enumerate() {
        let idx_fwd = base + 2 * k as u64;
        let idx_bwd = idx_fwd + 1;
        // Indices grow within the chunk: past the budget or the current
        // best, nothing here can win any more.
        if idx_fwd >= ctx.budget || idx_fwd >= ctx.best.load(Ordering::Relaxed) {
            return;
        }
        let (token, scope) =
            apply_undoable(&mut st.work, edit).expect("pre-filtered candidates apply");
        st.ev.refresh_after(&st.work, &scope);
        ctx.spent.fetch_add(1, Ordering::Relaxed);

        // Goal range first: most candidates leave the goal satisfied in
        // both directions and never pay for the constraint ranges.
        let after_goal = st.ev.eval(&ctx.goal.range);
        let fwd = !ctx.goal.kind.satisfied_on(&st.base_sets[goal_i], &after_goal);
        // The opposite direction covers ↓ goals.
        let bwd = !ctx.goal.kind.satisfied_on(&after_goal, &st.base_sets[goal_i]);
        let after: Vec<BTreeSet<NodeRef>> = if fwd || bwd {
            match ctx.set_dfa {
                // One compiled pass for the whole constraint batch.
                Some(dfa) => st.ev.eval_set(dfa),
                None => ctx.set.iter().map(|c| st.ev.eval(&c.range)).collect(),
            }
        } else {
            Vec::new()
        };
        let constraints_ok = |before_sets: &[BTreeSet<NodeRef>],
                              after_sets: &[BTreeSet<NodeRef>]| {
            ctx.set
                .iter()
                .enumerate()
                .all(|(i, c)| c.kind.satisfied_on(&before_sets[i], &after_sets[i]))
        };
        if fwd && constraints_ok(&st.base_sets, &after) {
            let ce = CounterExample { before: seed_tree.clone(), after: st.work.clone() };
            debug_assert!(ce.verify(ctx.set, ctx.goal), "set-level refutation must verify");
            if ce.verify(ctx.set, ctx.goal) {
                ctx.offer(idx_fwd, ce);
            }
        }
        if idx_bwd < ctx.budget && idx_bwd < ctx.best.load(Ordering::Relaxed) {
            ctx.spent.fetch_add(1, Ordering::Relaxed);
            if bwd && constraints_ok(&after, &st.base_sets) {
                let ce = CounterExample { before: st.work.clone(), after: seed_tree.clone() };
                debug_assert!(ce.verify(ctx.set, ctx.goal), "set-level refutation must verify");
                if ce.verify(ctx.set, ctx.goal) {
                    ctx.offer(idx_bwd, ce);
                }
            }
        }
        let scope = undo(&mut st.work, token).expect("undo token applies to its own tree");
        st.ev.refresh_after(&st.work, &scope);
    }
}

/// Phase 2: the Figure 4 proof construction for one seed, both directions.
fn run_construct(ctx: &SearchCtx, seed: usize, base: u64) {
    if base >= ctx.budget || base >= ctx.best.load(Ordering::Relaxed) {
        return;
    }
    let (tree, n) = &ctx.seeds[seed];
    ctx.spent.fetch_add(1, Ordering::Relaxed);
    let fig4 = construct::duplicate_and_drop(tree, *n);
    if fig4.verify(ctx.set, ctx.goal) {
        ctx.offer(base, fig4.clone());
    }
    if base + 1 < ctx.budget {
        ctx.spent.fetch_add(1, Ordering::Relaxed);
        let flipped = CounterExample { before: fig4.after, after: fig4.before };
        if flipped.verify(ctx.set, ctx.goal) {
            ctx.offer(base + 1, flipped);
        }
    }
}

/// Phase 3: one virtual random stream — deterministic pseudo-random pairs,
/// edited in place with an undo stack so the `before` tree is recovered
/// without a per-candidate clone.
fn run_random_stream(ctx: &SearchCtx, stream: u64, base: u64) {
    // Per-stream derived seed (`base_seed ^ stream`, bits spread by a
    // splitmix-style odd multiplier so low stream ids do not collide into
    // correlated xorshift states).
    let mut rng = XorShift::new(P3_SEED ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for j in 0.. {
        let idx = base + stream + j * P3_STREAMS;
        // Later draws only have larger indices; once past the budget or
        // the winning index, the whole stream is done.
        if idx >= ctx.budget || idx >= ctx.best.load(Ordering::Relaxed) {
            return;
        }
        ctx.spent.fetch_add(1, Ordering::Relaxed);
        let size = 2 + rng.below(7);
        let mut t = random_tree(&mut rng, ctx.labels, size);
        let mut ev = Evaluator::new(&t);
        // Goal range only: constraint validity is left to `verify` on the
        // rare candidates whose goal check fires.
        let base_goal = ev.eval(&ctx.goal.range);
        let edits = 1 + rng.below(3);
        let mut stack = Vec::new();
        let mut scopes = Vec::new();
        for _ in 0..edits {
            let op = random_update(&mut rng, &t, ctx.labels);
            if let Ok((token, scope)) = apply_undoable(&mut t, &op) {
                stack.push(token);
                scopes.push(scope);
            }
        }
        // Nothing is evaluated between the edits, so sync once for the
        // whole batch: one re-walk if any edit was structural, else the
        // O(1) patches replayed in order (non-structural edits keep the
        // layout fixed, so sequential patching stays in sync).
        if scopes.iter().any(xuc_xtree::EditScope::is_structural) {
            ev.refresh(&t);
        } else {
            for scope in &scopes {
                ev.refresh_after(&t, scope);
            }
        }
        let after_goal = ev.eval(&ctx.goal.range);
        if !ctx.goal.kind.satisfied_on(&base_goal, &after_goal) {
            let after_tree = t.clone();
            while let Some(token) = stack.pop() {
                undo(&mut t, token).expect("undo token applies to its own tree");
            }
            let ce = CounterExample { before: t, after: after_tree };
            if ce.verify(ctx.set, ctx.goal) {
                ctx.offer(idx, ce);
            }
        }
    }
}

/// The label pool for candidate trees: constraint labels plus `z`.
fn label_pool(patterns: &[&Pattern], z: Label) -> Vec<Label> {
    let mut pool: std::collections::BTreeSet<Label> =
        patterns.iter().flat_map(|p| p.labels()).collect();
    pool.insert(z);
    pool.into_iter().collect()
}

/// Seed trees: canonical models of the goal range (the node to attack is
/// the model's output), plus variants enriched with canonical models of
/// each constraint range grafted at the root.
fn seed_trees(
    goal_range: &Pattern,
    set: &[Constraint],
    max_chain: usize,
    z: Label,
) -> Vec<(DataTree, NodeId)> {
    let mut out = Vec::new();
    for model in canonical::canonical_models(goal_range, max_chain, z).take(64) {
        out.push((model.tree.clone(), model.output));
        // Enriched: add one canonical model of each constraint range.
        let mut enriched = model.tree.clone();
        for c in set.iter().take(4) {
            let side = canonical::instantiate(
                &c.range,
                &vec![1; c.range.descendant_edge_count()],
                z,
                Label::new("side"),
            );
            for child in side.tree.children_iter(side.tree.root_id()).expect("root") {
                let _ = enriched.graft_copy(enriched.root_id(), &side.tree, child);
            }
        }
        out.push((enriched, model.output));
    }
    out
}

/// Candidate edits for a given `I` and target node: the updates a violator
/// could try, as undoable operations (no trees are materialized here).
fn edit_candidates(tree: &DataTree, n: NodeId, labels: &[Label]) -> Vec<Update> {
    let mut out = Vec::new();

    if tree.parent(n).ok().flatten().is_some() {
        // Delete the whole subtree.
        out.push(Update::DeleteSubtree { node: n });
        // Splice the node out.
        out.push(Update::DeleteNode { node: n });
        // Replace identity (Theorem 3.1).
        out.push(Update::ReplaceId { node: n, new_id: NodeId::fresh() });
        // Move under the root.
        out.push(Update::Move { node: n, new_parent: tree.root_id() });
        // Move under every other node (the root was already tried above;
        // cycle-creating moves are filtered by the caller).
        for target in tree.node_ids() {
            if target != n && target != tree.root_id() {
                out.push(Update::Move { node: n, new_parent: target });
            }
        }
    }
    // Relabel.
    for &l in labels {
        if Ok(l) != tree.label(n) {
            out.push(Update::Relabel { node: n, label: l });
        }
    }
    // Also attack each ancestor of n the same basic ways.
    let mut cur = tree.parent(n).ok().flatten();
    while let Some(a) = cur {
        if tree.parent(a).ok().flatten().is_some() {
            out.push(Update::DeleteNode { node: a });
            out.push(Update::ReplaceId { node: a, new_id: NodeId::fresh() });
        }
        cur = tree.parent(a).ok().flatten();
    }
    out
}

/// [`edit_candidates`] restricted to edits that actually apply on the seed
/// tree (cycle-creating moves are dropped). Filtering up front keeps the
/// global candidate indices dense, so budget accounting matches the
/// sequential semantics: budget is spent on *evaluated* candidates only.
fn applicable_edit_candidates(tree: &DataTree, n: NodeId, labels: &[Label]) -> Vec<Update> {
    edit_candidates(tree, n, labels)
        .into_iter()
        .filter(|e| match e {
            Update::Move { node, new_parent } => {
                node != new_parent && !tree.is_proper_ancestor(*node, *new_parent).unwrap_or(true)
            }
            _ => true,
        })
        .collect()
}

/// A uniformly random tree with `n` non-root nodes over the label pool.
pub(crate) fn random_tree(rng: &mut XorShift, labels: &[Label], n: usize) -> DataTree {
    let mut tree = DataTree::new("root");
    let mut ids = vec![tree.root_id()];
    for _ in 0..n {
        let parent = ids[rng.below(ids.len())];
        let label = labels[rng.below(labels.len())];
        let id = tree.add(parent, label).expect("fresh");
        ids.push(id);
    }
    tree
}

/// One random primitive update against the current shape of `tree`.
fn random_update(rng: &mut XorShift, tree: &DataTree, labels: &[Label]) -> Update {
    let ids = tree.node_ids();
    match rng.below(5) {
        0 => Update::InsertLeaf {
            parent: ids[rng.below(ids.len())],
            id: NodeId::fresh(),
            label: labels[rng.below(labels.len())],
        },
        1 => Update::DeleteSubtree { node: ids[rng.below(ids.len())] },
        2 => Update::DeleteNode { node: ids[rng.below(ids.len())] },
        3 => {
            let node = ids[rng.below(ids.len())];
            let target = ids[rng.below(ids.len())];
            Update::Move { node, new_parent: target }
        }
        _ => {
            let node = ids[rng.below(ids.len())];
            let label = labels[rng.below(labels.len())];
            Update::Relabel { node, label }
        }
    }
}

/// Applies `k` random updates to a copy of `tree`.
pub(crate) fn random_edit(
    rng: &mut XorShift,
    tree: &DataTree,
    labels: &[Label],
    k: usize,
) -> DataTree {
    let mut t = tree.clone();
    for _ in 0..k {
        let op = random_update(rng, &t, labels);
        let _ = xuc_xtree::apply_update(&mut t, &op);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn finds_simple_deletion_witness() {
        let set = vec![c("(/a[/b], ↑)")];
        let goal = c("(/a, ↑)");
        let ce = find_counterexample(&set, &goal, 5_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn finds_insertion_witness() {
        let set = vec![c("(/a[/b], ↓)")];
        let goal = c("(/a, ↓)");
        let ce = find_counterexample(&set, &goal, 5_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn respects_budget() {
        // Implied case: no counterexample exists; search must terminate.
        let set = vec![c("(/a, ↑)")];
        let goal = c("(/a, ↑)");
        assert!(find_counterexample(&set, &goal, 500).is_none());
    }

    #[test]
    fn budget_bounds_evaluations() {
        let set = vec![c("(/a, ↑)")];
        let goal = c("(/a, ↑)");
        for budget in [0usize, 1, 100, 500] {
            let (ce, stats) = find_counterexample_with_stats(&set, &goal, budget, 2);
            assert!(ce.is_none());
            assert!(
                stats.evaluated <= budget as u64,
                "evaluated {} > budget {budget}",
                stats.evaluated
            );
        }
    }

    #[test]
    fn full_fragment_witness() {
        // //a[/b]/* vs //a/*: removal allowed when predicate not protected.
        let set = vec![c("(//a[/b]/c, ↑)")];
        let goal = c("(//a/c, ↑)");
        let ce = find_counterexample(&set, &goal, 20_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn random_trees_are_well_formed() {
        let mut rng = XorShift::new(7);
        let labels = vec![Label::new("a"), Label::new("b")];
        for _ in 0..50 {
            let t = random_tree(&mut rng, &labels, 6);
            assert_eq!(t.len(), 7);
            let edited = random_edit(&mut rng, &t, &labels, 3);
            // Edits keep a live tree rooted at the same root (3 edits can
            // at most insert 3 leaves; deletions may empty it down to the
            // root, which stays).
            assert!((1..=10).contains(&edited.len()));
            assert_eq!(edited.root_id(), t.root_id());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = XorShift::new(42);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
        assert_eq!(XorShift::new(9).below(0), 0, "n = 0 clamps to 0");
        assert_eq!(XorShift::new(9).below(1), 0);
    }

    #[test]
    fn edit_candidates_apply_and_undo_without_cloning() {
        // The acceptance property of the clone-free search: every candidate
        // edit round-trips on the single working tree via apply/undo.
        let z = Label::z();
        let goal = c("(/a[/b]//c, ↑)");
        let set = vec![c("(//c, ↑)"), c("(/a, ↓)")];
        let patterns: Vec<&Pattern> = set.iter().map(|x| &x.range).chain([&goal.range]).collect();
        let labels = label_pool(&patterns, z);
        let seeds = seed_trees(&goal.range, &set, 2, z);
        assert!(!seeds.is_empty());
        let mut candidates_seen = 0;
        for (tree, n) in &seeds {
            let mut work = tree.clone();
            for edit in applicable_edit_candidates(tree, *n, &labels) {
                let (token, _scope) =
                    apply_undoable(&mut work, &edit).expect("pre-filtered candidates apply");
                candidates_seen += 1;
                undo(&mut work, token).unwrap();
                assert!(work.identified_eq(tree), "apply/undo of {edit} must restore the seed");
            }
        }
        assert!(candidates_seen > 50, "enumeration exercised: {candidates_seen}");
    }

    #[test]
    fn relabel_candidates_do_zero_full_walks() {
        // The acceptance property of the edit-proportional search: running
        // the real phase-1 chunk loop over relabel-only candidates performs
        // exactly the walks needed to build the per-seed state — none per
        // candidate.
        let goal = c("(/a[/b]//c, ↑)");
        let set = vec![c("(//c, ↑)"), c("(/a, ↓)")];
        let patterns: Vec<&Pattern> = set.iter().map(|x| &x.range).chain([&goal.range]).collect();
        let labels = label_pool(&patterns, Label::z());
        let seeds = seed_trees(&goal.range, &set, 2, Label::z());
        let seed_edits: Vec<Vec<Update>> = seeds
            .iter()
            .map(|(tree, n)| {
                applicable_edit_candidates(tree, *n, &labels)
                    .into_iter()
                    .filter(|e| matches!(e, Update::Relabel { .. }))
                    .collect()
            })
            .collect();
        let total: usize = seed_edits.iter().map(Vec::len).sum();
        assert!(total >= 10, "relabel candidates exercised: {total}");

        let units: Vec<Unit> = Vec::new();
        let ctx = SearchCtx {
            set: &set,
            goal: &goal,
            patterns: &patterns,
            set_dfa: None,
            seeds: &seeds,
            seed_edits: &seed_edits,
            labels: &labels,
            budget: u64::MAX,
            units: &units,
            next_unit: AtomicUsize::new(0),
            best: AtomicU64::new(u64::MAX),
            spent: AtomicU64::new(0),
            winner: Mutex::new(None),
        };
        let mut cache = None;
        let mut seeds_built = 0u64;
        let walks_before = xuc_xtree::preorder_walk_count();
        for (s, edits) in seed_edits.iter().enumerate() {
            if !edits.is_empty() {
                seeds_built += 1;
            }
            run_edit_chunk(&ctx, &mut cache, s, 0, edits.len(), 0);
        }
        let walks = xuc_xtree::preorder_walk_count() - walks_before;
        // One walk per per-seed state build (Evaluator::new / refresh);
        // zero walks for the relabel candidates themselves.
        assert_eq!(
            walks, seeds_built,
            "walks {walks} != seed builds {seeds_built} over {total} relabel candidates"
        );
        assert!(ctx.spent.load(Ordering::Relaxed) >= total as u64);
    }

    /// A linear constraint batch above the set-path crossover: `count`
    /// distinct `(//k{i}, ↑)` ranges. The goal `(//g, ↑)` is refutable
    /// (delete the `g` node: no `k{i}` range is touched).
    fn big_linear_batch(count: usize) -> (Vec<Constraint>, Constraint) {
        let set = (0..count).map(|i| c(&format!("(//k{i}, ↑)"))).collect();
        (set, c("(//g, ↑)"))
    }

    #[test]
    fn set_path_agrees_with_per_pattern_path() {
        // The same input forced down both verification paths must produce
        // the same winner index and the same counterexample (modulo fresh
        // ids): the set path may only change *speed*, never results.
        let (set, goal) = big_linear_batch(20);
        for budget in [500usize, 5_000] {
            let (via_set, s1) = find_counterexample_tuned(&set, &goal, budget, 1, 16);
            let (via_pat, s2) = find_counterexample_tuned(&set, &goal, budget, 1, usize::MAX);
            assert_eq!(s1.winner_index, s2.winner_index, "budget {budget}");
            assert_eq!(
                via_set.map(|ce| ce.canonical_pair_form()),
                via_pat.map(|ce| ce.canonical_pair_form()),
                "budget {budget}"
            );
        }
        // An implied goal exhausts its budget identically on both paths.
        let goal = set[3].clone();
        let (none_set, s1) = find_counterexample_tuned(&set, &goal, 2_000, 1, 16);
        let (none_pat, s2) = find_counterexample_tuned(&set, &goal, 2_000, 1, usize::MAX);
        assert!(none_set.is_none() && none_pat.is_none());
        assert_eq!(s1.evaluated, s2.evaluated);
    }

    #[test]
    fn set_path_counterexamples_verify() {
        let (set, goal) = big_linear_batch(SET_PATH_CROSSOVER + 4);
        let ce = find_counterexample(&set, &goal, 5_000).expect("refutable goal");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn mostly_nonlinear_batches_stay_on_the_per_pattern_path() {
        // Predicate-heavy ranges do not compile; with fewer than
        // SET_PATH_CROSSOVER compiled patterns the search must not build
        // a set automaton (compiled_count gate), and still be correct.
        let mut set: Vec<Constraint> =
            (0..SET_PATH_CROSSOVER).map(|i| c(&format!("(/h[/p{i}], ↑)"))).collect();
        set.push(c("(//k, ↑)"));
        let goal = c("(//g, ↑)");
        let ce = find_counterexample(&set, &goal, 5_000).expect("refutable goal");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn sharded_search_agrees_with_single_shard() {
        let cases = [
            (vec![c("(/a[/b], ↑)")], c("(/a, ↑)"), 3_000usize),
            (vec![c("(/a, ↑)")], c("(/a, ↑)"), 500),
            (vec![c("(/a[/b], ↓)")], c("(/a, ↓)"), 3_000),
        ];
        for (set, goal, budget) in &cases {
            let (one, s1) = find_counterexample_with_stats(set, goal, *budget, 1);
            let (four, s4) = find_counterexample_with_stats(set, goal, *budget, 4);
            assert_eq!(one.is_some(), four.is_some(), "{goal:?}");
            assert_eq!(s1.winner_index, s4.winner_index, "{goal:?}");
            if let (Some(a), Some(b)) = (&one, &four) {
                // Fresh ids differ between runs; compare modulo renaming.
                assert_eq!(a.canonical_pair_form(), b.canonical_pair_form(), "{goal:?}");
            }
        }
    }

    #[test]
    fn refutes_agrees_with_verify_on_random_pairs() {
        // The set-inclusion fast path must judge pairs exactly like
        // CounterExample::verify.
        let set = vec![c("(/a[/b], ↑)"), c("(//b, ↓)")];
        let goal = c("(/a, ↑)");
        let patterns: Vec<&Pattern> = set.iter().map(|x| &x.range).chain([&goal.range]).collect();
        let labels = label_pool(&patterns, Label::z());
        let mut rng = XorShift::new(99);
        for _ in 0..200 {
            let before = random_tree(&mut rng, &labels, 5);
            let after = random_edit(&mut rng, &before, &labels, 2);
            let base = eval_sets(&mut Evaluator::new(&before), &patterns);
            let post = eval_sets(&mut Evaluator::new(&after), &patterns);
            let fast = refutes(&set, &goal, &base, &post);
            let slow =
                CounterExample { before: before.clone(), after: after.clone() }.verify(&set, &goal);
            assert_eq!(fast, slow, "before={before:?} after={after:?}");
        }
    }
}
