//! Bounded, verified counterexample search for general implication.
//!
//! This is the sound-but-budgeted workhorse behind the coNP/NEXPTIME cells
//! of Table 1 (and the test oracle for the exact procedures): it enumerates
//! candidate pairs `(I, J)` built from
//!
//! 1. **canonical models** of the goal range, edited by the update
//!    operations a violator would use (delete / splice / re-identify /
//!    move / relabel), including the proof constructions of Figures 3–5,
//! 2. enriched variants that graft canonical models of the constraint
//!    ranges alongside (so interactions between ranges are exercised), and
//! 3. **deterministic pseudo-random** tree pairs over the constraint
//!    alphabet (seeded xorshift, so runs are reproducible),
//!
//! and returns the first candidate that *verifies*: satisfies every
//! constraint of `C` and violates `c`. Small-model properties
//! (Theorems 4.7/5.1) justify searching small instances first.
//!
//! # Hot-path layout
//!
//! The search examines thousands of candidates per call, so it never
//! clones a tree per candidate. Each seed tree gets **one** working copy
//! and **one** reusable [`Evaluator`]; every candidate edit is applied via
//! [`xuc_xtree::apply_undoable`], the evaluator is re-snapshotted, all
//! range results are compared against the seed's cached results as plain
//! set inclusions, and the edit is reverted via [`xuc_xtree::undo`].
//! Trees are cloned exactly once per *returned* counterexample.

use crate::constraint::Constraint;
use crate::construct;
use crate::outcome::CounterExample;
use std::collections::BTreeSet;
use xuc_xpath::{canonical, Evaluator, Pattern};
use xuc_xtree::{apply_undoable, undo, DataTree, Label, NodeId, NodeRef, Update};

/// A tiny deterministic xorshift generator (no external dependency, fully
/// reproducible searches).
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Is the pair a counterexample, judged on precomputed range results
/// (one entry per constraint of `set` followed by one for `goal`)?
/// Reference implementation of the candidate check — the hot loops in
/// [`find_counterexample`] compute the same answer lazily, goal range
/// first, and the agreement test pins the two to `CounterExample::verify`.
#[cfg(test)]
fn refutes(
    set: &[Constraint],
    goal: &Constraint,
    before_sets: &[BTreeSet<NodeRef>],
    after_sets: &[BTreeSet<NodeRef>],
) -> bool {
    let goal_i = set.len();
    if goal.kind.satisfied_on(&before_sets[goal_i], &after_sets[goal_i]) {
        return false;
    }
    set.iter().enumerate().all(|(i, c)| c.kind.satisfied_on(&before_sets[i], &after_sets[i]))
}

fn eval_sets(ev: &mut Evaluator, patterns: &[&Pattern]) -> Vec<BTreeSet<NodeRef>> {
    patterns.iter().map(|q| ev.eval(q)).collect()
}

/// Searches for a verified counterexample to `C ⊨ c`, examining at most
/// `budget` candidate pairs. Sound: every returned pair is checked by
/// [`CounterExample::verify`].
pub fn find_counterexample(
    set: &[Constraint],
    goal: &Constraint,
    budget: usize,
) -> Option<CounterExample> {
    let mut examined = 0usize;
    let patterns: Vec<&Pattern> = set.iter().map(|c| &c.range).chain([&goal.range]).collect();

    // Phase 1: canonical-model edits, apply/evaluate/undo on one working
    // tree per seed.
    let z = canonical::fresh_label_for(patterns.iter().copied());
    let bound = patterns.iter().map(|p| canonical::chain_bound_for(p)).max().unwrap_or(2);
    let labels = label_pool(&patterns, z);

    let seeds = seed_trees(&goal.range, set, bound.min(3), z);
    for (tree, n) in &seeds {
        let mut work = tree.clone();
        let mut work_ev = Evaluator::new(&work);
        // `work` is still identical to the seed here, so the same snapshot
        // serves both the cached before-sets and the first candidate.
        let base = eval_sets(&mut work_ev, &patterns);
        let base_goal = &base[set.len()];
        for edit in edit_candidates(tree, *n, &labels) {
            // Unapplicable edits (e.g. cycle-creating moves) cost nothing:
            // budget is spent on *evaluated* candidates only, matching the
            // old materialize-then-check enumeration.
            work_ev.invalidate();
            let Ok(token) = apply_undoable(&mut work, &edit) else { continue };
            examined += 1;
            if examined > budget {
                return None;
            }
            work_ev.refresh(&work);

            // Goal range first: most candidates leave the goal satisfied in
            // both directions and never pay for the constraint ranges.
            let after_goal = work_ev.eval(&goal.range);
            let fwd = !goal.kind.satisfied_on(base_goal, &after_goal);
            // The opposite direction covers ↓ goals.
            let bwd = !goal.kind.satisfied_on(&after_goal, base_goal);
            let after: Vec<BTreeSet<NodeRef>> = if fwd || bwd {
                set.iter().map(|c| work_ev.eval(&c.range)).collect()
            } else {
                Vec::new()
            };
            let constraints_ok =
                |before_sets: &[BTreeSet<NodeRef>], after_sets: &[BTreeSet<NodeRef>]| {
                    set.iter()
                        .enumerate()
                        .all(|(i, c)| c.kind.satisfied_on(&before_sets[i], &after_sets[i]))
                };
            if fwd && constraints_ok(&base, &after) {
                let ce = CounterExample { before: tree.clone(), after: work.clone() };
                debug_assert!(ce.verify(set, goal), "set-level refutation must verify");
                if ce.verify(set, goal) {
                    return Some(ce);
                }
            }
            examined += 1;
            if examined > budget {
                return None;
            }
            if bwd && constraints_ok(&after, &base) {
                let ce = CounterExample { before: work.clone(), after: tree.clone() };
                debug_assert!(ce.verify(set, goal), "set-level refutation must verify");
                if ce.verify(set, goal) {
                    return Some(ce);
                }
            }
            undo(&mut work, token).expect("undo token applies to its own tree");
            debug_assert!(work.identified_eq(tree), "undo must restore the seed");
        }
    }

    // Phase 2: proof constructions on seed trees.
    for (tree, n) in &seeds {
        if tree.parent(*n).ok().flatten().is_some() {
            examined += 2;
            if examined > budget {
                return None;
            }
            let fig4 = construct::duplicate_and_drop(tree, *n);
            if fig4.verify(set, goal) {
                return Some(fig4);
            }
            let flipped = CounterExample { before: fig4.after, after: fig4.before };
            if flipped.verify(set, goal) {
                return Some(flipped);
            }
        }
    }

    // Phase 3: deterministic random pairs, edited in place with an undo
    // stack so the `before` tree is recovered without a per-candidate
    // clone.
    let mut rng = XorShift::new(0x5eed_cafe_d00d_f00d);
    while examined < budget {
        examined += 1;
        let size = 2 + rng.below(7);
        let mut t = random_tree(&mut rng, &labels, size);
        let mut ev = Evaluator::new(&t);
        // Goal range only: constraint validity is left to `verify` on the
        // rare candidates whose goal check fires.
        let base_goal = ev.eval(&goal.range);
        let edits = 1 + rng.below(3);
        let mut stack = Vec::new();
        ev.invalidate();
        for _ in 0..edits {
            let op = random_update(&mut rng, &t, &labels);
            if let Ok(token) = apply_undoable(&mut t, &op) {
                stack.push(token);
            }
        }
        ev.refresh(&t);
        let after_goal = ev.eval(&goal.range);
        if !goal.kind.satisfied_on(&base_goal, &after_goal) {
            let after_tree = t.clone();
            while let Some(token) = stack.pop() {
                undo(&mut t, token).expect("undo token applies to its own tree");
            }
            let ce = CounterExample { before: t, after: after_tree };
            if ce.verify(set, goal) {
                return Some(ce);
            }
        }
    }
    None
}

/// The label pool for candidate trees: constraint labels plus `z`.
fn label_pool(patterns: &[&Pattern], z: Label) -> Vec<Label> {
    let mut pool: std::collections::BTreeSet<Label> =
        patterns.iter().flat_map(|p| p.labels()).collect();
    pool.insert(z);
    pool.into_iter().collect()
}

/// Seed trees: canonical models of the goal range (the node to attack is
/// the model's output), plus variants enriched with canonical models of
/// each constraint range grafted at the root.
fn seed_trees(
    goal_range: &Pattern,
    set: &[Constraint],
    max_chain: usize,
    z: Label,
) -> Vec<(DataTree, NodeId)> {
    let mut out = Vec::new();
    for model in canonical::canonical_models(goal_range, max_chain, z).take(64) {
        out.push((model.tree.clone(), model.output));
        // Enriched: add one canonical model of each constraint range.
        let mut enriched = model.tree.clone();
        for c in set.iter().take(4) {
            let side = canonical::instantiate(
                &c.range,
                &vec![1; c.range.descendant_edge_count()],
                z,
                Label::new("side"),
            );
            for child in side.tree.children(side.tree.root_id()).expect("root") {
                let _ = enriched.graft_copy(enriched.root_id(), &side.tree, child);
            }
        }
        out.push((enriched, model.output));
    }
    out
}

/// Candidate edits for a given `I` and target node: the updates a violator
/// could try, as undoable operations (no trees are materialized here).
fn edit_candidates(tree: &DataTree, n: NodeId, labels: &[Label]) -> Vec<Update> {
    let mut out = Vec::new();

    if tree.parent(n).ok().flatten().is_some() {
        // Delete the whole subtree.
        out.push(Update::DeleteSubtree { node: n });
        // Splice the node out.
        out.push(Update::DeleteNode { node: n });
        // Replace identity (Theorem 3.1).
        out.push(Update::ReplaceId { node: n, new_id: NodeId::fresh() });
        // Move under the root.
        out.push(Update::Move { node: n, new_parent: tree.root_id() });
        // Move under every other node (cycle-creating moves fail to apply
        // and are skipped by the caller; the root was already tried above).
        for target in tree.node_ids() {
            if target != n && target != tree.root_id() {
                out.push(Update::Move { node: n, new_parent: target });
            }
        }
    }
    // Relabel.
    for &l in labels {
        if Ok(l) != tree.label(n) {
            out.push(Update::Relabel { node: n, label: l });
        }
    }
    // Also attack each ancestor of n the same basic ways.
    let mut cur = tree.parent(n).ok().flatten();
    while let Some(a) = cur {
        if tree.parent(a).ok().flatten().is_some() {
            out.push(Update::DeleteNode { node: a });
            out.push(Update::ReplaceId { node: a, new_id: NodeId::fresh() });
        }
        cur = tree.parent(a).ok().flatten();
    }
    out
}

/// A uniformly random tree with `n` non-root nodes over the label pool.
pub(crate) fn random_tree(rng: &mut XorShift, labels: &[Label], n: usize) -> DataTree {
    let mut tree = DataTree::new("root");
    let mut ids = vec![tree.root_id()];
    for _ in 0..n {
        let parent = ids[rng.below(ids.len())];
        let label = labels[rng.below(labels.len())];
        let id = tree.add(parent, label).expect("fresh");
        ids.push(id);
    }
    tree
}

/// One random primitive update against the current shape of `tree`.
fn random_update(rng: &mut XorShift, tree: &DataTree, labels: &[Label]) -> Update {
    let ids = tree.node_ids();
    match rng.below(5) {
        0 => Update::InsertLeaf {
            parent: ids[rng.below(ids.len())],
            id: NodeId::fresh(),
            label: labels[rng.below(labels.len())],
        },
        1 => Update::DeleteSubtree { node: ids[rng.below(ids.len())] },
        2 => Update::DeleteNode { node: ids[rng.below(ids.len())] },
        3 => {
            let node = ids[rng.below(ids.len())];
            let target = ids[rng.below(ids.len())];
            Update::Move { node, new_parent: target }
        }
        _ => {
            let node = ids[rng.below(ids.len())];
            let label = labels[rng.below(labels.len())];
            Update::Relabel { node, label }
        }
    }
}

/// Applies `k` random updates to a copy of `tree`.
pub(crate) fn random_edit(
    rng: &mut XorShift,
    tree: &DataTree,
    labels: &[Label],
    k: usize,
) -> DataTree {
    let mut t = tree.clone();
    for _ in 0..k {
        let op = random_update(rng, &t, labels);
        let _ = xuc_xtree::apply_update(&mut t, &op);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse_constraint;

    fn c(s: &str) -> Constraint {
        parse_constraint(s).unwrap()
    }

    #[test]
    fn finds_simple_deletion_witness() {
        let set = vec![c("(/a[/b], ↑)")];
        let goal = c("(/a, ↑)");
        let ce = find_counterexample(&set, &goal, 5_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn finds_insertion_witness() {
        let set = vec![c("(/a[/b], ↓)")];
        let goal = c("(/a, ↓)");
        let ce = find_counterexample(&set, &goal, 5_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn respects_budget() {
        // Implied case: no counterexample exists; search must terminate.
        let set = vec![c("(/a, ↑)")];
        let goal = c("(/a, ↑)");
        assert!(find_counterexample(&set, &goal, 500).is_none());
    }

    #[test]
    fn full_fragment_witness() {
        // //a[/b]/* vs //a/*: removal allowed when predicate not protected.
        let set = vec![c("(//a[/b]/c, ↑)")];
        let goal = c("(//a/c, ↑)");
        let ce = find_counterexample(&set, &goal, 20_000).expect("counterexample exists");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn random_trees_are_well_formed() {
        let mut rng = XorShift::new(7);
        let labels = vec![Label::new("a"), Label::new("b")];
        for _ in 0..50 {
            let t = random_tree(&mut rng, &labels, 6);
            assert_eq!(t.len(), 7);
            let edited = random_edit(&mut rng, &t, &labels, 3);
            // Edits keep a live tree rooted at the same root.
            assert!(!edited.is_empty());
            assert_eq!(edited.root_id(), t.root_id());
        }
    }

    #[test]
    fn edit_candidates_apply_and_undo_without_cloning() {
        // The acceptance property of the clone-free search: every candidate
        // edit round-trips on the single working tree via apply/undo.
        let z = Label::z();
        let goal = c("(/a[/b]//c, ↑)");
        let set = vec![c("(//c, ↑)"), c("(/a, ↓)")];
        let patterns: Vec<&Pattern> = set.iter().map(|x| &x.range).chain([&goal.range]).collect();
        let labels = label_pool(&patterns, z);
        let seeds = seed_trees(&goal.range, &set, 2, z);
        assert!(!seeds.is_empty());
        let mut candidates_seen = 0;
        for (tree, n) in &seeds {
            let mut work = tree.clone();
            for edit in edit_candidates(tree, *n, &labels) {
                let Ok(token) = apply_undoable(&mut work, &edit) else { continue };
                candidates_seen += 1;
                undo(&mut work, token).unwrap();
                assert!(work.identified_eq(tree), "apply/undo of {edit} must restore the seed");
            }
        }
        assert!(candidates_seen > 50, "enumeration exercised: {candidates_seen}");
    }

    #[test]
    fn refutes_agrees_with_verify_on_random_pairs() {
        // The set-inclusion fast path must judge pairs exactly like
        // CounterExample::verify.
        let set = vec![c("(/a[/b], ↑)"), c("(//b, ↓)")];
        let goal = c("(/a, ↑)");
        let patterns: Vec<&Pattern> = set.iter().map(|x| &x.range).chain([&goal.range]).collect();
        let labels = label_pool(&patterns, Label::z());
        let mut rng = XorShift::new(99);
        for _ in 0..200 {
            let before = random_tree(&mut rng, &labels, 5);
            let after = random_edit(&mut rng, &before, &labels, 2);
            let base = eval_sets(&mut Evaluator::new(&before), &patterns);
            let post = eval_sets(&mut Evaluator::new(&after), &patterns);
            let fast = refutes(&set, &goal, &base, &post);
            let slow =
                CounterExample { before: before.clone(), after: after.clone() }.verify(&set, &goal);
            assert_eq!(fast, slow, "before={before:?} after={after:?}");
        }
    }
}
