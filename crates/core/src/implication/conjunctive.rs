//! Containment of an intersection of patterns in a pattern:
//! `q1 ∩ … ∩ qk ⊆ q`.
//!
//! This is the hard direction of Theorem 4.4's equivalence test for
//! `XP{/,[],//}` — coNP-hard by \[13\] (Theorem 4.9) — decided here by
//! enumerating the *merged canonical models* of the conjunction:
//!
//! In any tree where all `qi` select a common output node `n`, every
//! spine embeds into the root-to-`n` chain. A canonical counterexample
//! therefore consists of (a) a chain of positions, (b) a monotone embedding
//! of each spine into the chain (child edges to adjacent positions, the
//! common output at the end), (c) `z` labels on unused positions, and
//! (d) each predicate subtree instantiated as a fresh branch at its spine
//! node's position. The intersection is contained in `q` iff `q` selects
//! the output in *every* such model.
//!
//! Without wildcards (the `XP{/,[],//}` fragment), `z` never matches `q`,
//! so one `z` of padding per `//`-expansion is enough and the procedure is
//! complete. With wildcards present, gap lengths are enumerated up to the
//! star-length bound. Enumeration is budgeted; exceeding the budget yields
//! `None` (unknown).

use xuc_xpath::{canonical, eval, Axis, NodeTest, PIdx, Pattern};
use xuc_xtree::{DataTree, Label, NodeId};

/// Does `⋂ qs ⊆ q` hold? `Some(answer)` when decided within `budget`
/// candidate models (see module docs), `None` otherwise.
pub fn conjunctive_contained_in_budgeted(
    qs: &[&Pattern],
    q: &Pattern,
    budget: usize,
) -> Option<bool> {
    assert!(!qs.is_empty(), "conjunction of zero queries");
    let wildcards = q.wildcard_count() > 0 || qs.iter().any(|p| p.wildcard_count() > 0);
    let z = canonical::fresh_label_for(qs.iter().copied().chain([q]));
    let max_gap = if wildcards { q.star_length() + 2 } else { 1 };

    let spines: Vec<Vec<PIdx>> = qs.iter().map(|p| p.spine()).collect();
    let sum_len: usize = spines.iter().map(|s| s.len()).sum();
    let min_len = spines.iter().map(|s| s.len()).max().unwrap_or(1);
    let max_len = (sum_len * (max_gap + 1)).max(min_len).min(sum_len + 24);

    let mut examined = 0usize;
    for chain_len in min_len..=max_len {
        // Enumerate embeddings of every spine into positions 0..chain_len,
        // output pinned at chain_len - 1.
        let mut embeddings: Vec<Vec<Vec<usize>>> = Vec::new();
        for (qi, spine) in qs.iter().zip(&spines) {
            let embs = spine_embeddings(qi, spine, chain_len);
            if embs.is_empty() {
                embeddings.clear();
                break;
            }
            embeddings.push(embs);
        }
        if embeddings.is_empty() {
            continue;
        }
        // Mixed-radix walk over one embedding choice per query.
        let mut counter = vec![0usize; embeddings.len()];
        'outer: loop {
            examined += 1;
            if examined > budget {
                return None;
            }
            let choice: Vec<&Vec<usize>> =
                counter.iter().zip(&embeddings).map(|(&c, e)| &e[c]).collect();
            if let Some(found) = check_candidate(
                qs,
                &spines,
                &choice,
                chain_len,
                q,
                z,
                max_gap,
                budget,
                &mut examined,
            ) {
                if found {
                    return Some(false); // counterexample: intersection ⊄ q
                }
            } else {
                return None; // inner budget exhausted
            }
            // Increment.
            for i in 0..counter.len() {
                counter[i] += 1;
                if counter[i] < embeddings[i].len() {
                    continue 'outer;
                }
                counter[i] = 0;
                if i == counter.len() - 1 {
                    break 'outer;
                }
            }
        }
    }
    Some(true)
}

/// Default-budget wrapper used by the implication dispatcher.
pub fn conjunctive_contained_in(qs: &[&Pattern], q: &Pattern) -> Option<bool> {
    conjunctive_contained_in_budgeted(qs, q, 200_000)
}

/// All monotone embeddings of `spine` into chain positions `0..chain_len`
/// with the output at `chain_len - 1`: child edges advance exactly one
/// position (the first child-axis step starts at position 0), descendant
/// edges advance by at least one.
fn spine_embeddings(q: &Pattern, spine: &[PIdx], chain_len: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut positions = Vec::with_capacity(spine.len());
    fn rec(
        q: &Pattern,
        spine: &[PIdx],
        chain_len: usize,
        idx: usize,
        positions: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if idx == spine.len() {
            if positions.last() == Some(&(chain_len - 1)) {
                out.push(positions.clone());
            }
            return;
        }
        let node = spine[idx];
        let candidates: Vec<usize> = match (idx, q.axis(node)) {
            (0, Axis::Child) => vec![0],
            (0, Axis::Descendant) => (0..chain_len).collect(),
            (_, Axis::Child) => {
                let prev = *positions.last().expect("previous position");
                if prev + 1 < chain_len {
                    vec![prev + 1]
                } else {
                    vec![]
                }
            }
            (_, Axis::Descendant) => {
                let prev = *positions.last().expect("previous position");
                (prev + 1..chain_len).collect()
            }
        };
        for p in candidates {
            positions.push(p);
            rec(q, spine, chain_len, idx + 1, positions, out);
            positions.pop();
        }
    }
    rec(q, spine, chain_len, 0, &mut positions, &mut out);
    out
}

/// Builds the candidate model(s) for one embedding choice and reports
/// whether any of them avoids `q` at the output. `Some(true)` = found a
/// counterexample; `Some(false)` = all candidates select the output under
/// `q`; `None` = budget exhausted.
#[allow(clippy::too_many_arguments)]
fn check_candidate(
    qs: &[&Pattern],
    spines: &[Vec<PIdx>],
    choice: &[&Vec<usize>],
    chain_len: usize,
    q: &Pattern,
    z: Label,
    max_gap: usize,
    budget: usize,
    examined: &mut usize,
) -> Option<bool> {
    // Resolve position labels; incompatible concrete labels kill the
    // candidate (that merge denotes the empty set — vacuously contained).
    let mut labels: Vec<Option<Label>> = vec![None; chain_len];
    for ((qi, spine), emb) in qs.iter().zip(spines).zip(choice) {
        for (&node, &pos) in spine.iter().zip(emb.iter()) {
            if let NodeTest::Label(l) = qi.test(node) {
                match labels[pos] {
                    Some(existing) if existing != l => return Some(false),
                    _ => labels[pos] = Some(l),
                }
            }
        }
    }

    // Collect the predicate subtrees attached at each position, and the
    // number of descendant edges across all of them (for gap enumeration
    // when wildcards are present).
    let mut preds_at: Vec<Vec<(usize, PIdx)>> = vec![Vec::new(); chain_len]; // (query idx, pred root)
    for (i, (qi, spine)) in qs.iter().zip(spines).enumerate() {
        for (&node, &pos) in spine.iter().zip(choice[i].iter()) {
            for p in qi.predicate_children(node) {
                preds_at[pos].push((i, p));
            }
        }
    }
    let desc_edges: usize =
        preds_at.iter().flatten().map(|&(i, p)| count_desc_edges(qs[i], p)).sum();

    // Enumerate predicate //-expansion lengths (all 1 when no wildcards).
    let gap_choices: Vec<usize> = if max_gap == 1 { vec![1] } else { (0..=max_gap).collect() };
    let mut gaps = vec![0usize; desc_edges]; // indexes into gap_choices
    loop {
        *examined += 1;
        if *examined > budget {
            return None;
        }
        let expansions: Vec<usize> = gaps.iter().map(|&g| gap_choices[g]).collect();
        let (tree, output) = build_model(chain_len, &labels, &preds_at, qs, z, &expansions);
        // Sanity: the output must be selected by every conjunct.
        debug_assert!(
            qs.iter().all(|qi| eval::eval(qi, &tree).iter().any(|n| n.id == output)),
            "constructed model must satisfy the conjunction"
        );
        if !eval::eval(q, &tree).iter().any(|n| n.id == output) {
            return Some(true);
        }
        // Next gap assignment.
        let mut i = 0;
        loop {
            if i == gaps.len() {
                return Some(false);
            }
            gaps[i] += 1;
            if gaps[i] < gap_choices.len() {
                break;
            }
            gaps[i] = 0;
            i += 1;
        }
    }
}

fn count_desc_edges(q: &Pattern, root: PIdx) -> usize {
    let mut count = 0;
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if q.axis(i) == Axis::Descendant {
            count += 1;
        }
        stack.extend(q.children(i).iter().copied());
    }
    count
}

/// Materializes the merged model: the chain, `z` padding, and predicate
/// branches with the given `//`-expansion lengths (consumed in DFS order).
fn build_model(
    chain_len: usize,
    labels: &[Option<Label>],
    preds_at: &[Vec<(usize, PIdx)>],
    qs: &[&Pattern],
    z: Label,
    expansions: &[usize],
) -> (DataTree, NodeId) {
    let mut tree = DataTree::new("root");
    let mut cursor = tree.root_id();
    let mut chain_nodes = Vec::with_capacity(chain_len);
    for &label_at in labels.iter().take(chain_len) {
        let label = label_at.unwrap_or(z);
        cursor = tree.add(cursor, label).expect("fresh id");
        chain_nodes.push(cursor);
    }
    let mut exp_iter = expansions.iter().copied();
    for (pos, preds) in preds_at.iter().enumerate() {
        for &(i, p) in preds {
            attach_pred(&mut tree, chain_nodes[pos], qs[i], p, z, &mut exp_iter);
        }
    }
    (tree, chain_nodes[chain_len - 1])
}

fn attach_pred(
    tree: &mut DataTree,
    parent: NodeId,
    q: &Pattern,
    node: PIdx,
    z: Label,
    expansions: &mut impl Iterator<Item = usize>,
) {
    let mut attach = parent;
    if q.axis(node) == Axis::Descendant {
        let len = expansions.next().unwrap_or(1);
        for _ in 0..len {
            attach = tree.add(attach, z).expect("fresh id");
        }
    }
    let label = match q.test(node) {
        NodeTest::Label(l) => l,
        NodeTest::Wildcard => z,
    };
    let me = tree.add(attach, label).expect("fresh id");
    for &c in q.children(node) {
        attach_pred(tree, me, q, c, z, expansions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Pattern {
        xuc_xpath::parse(s).unwrap()
    }

    fn contained(qs: &[&str], target: &str) -> bool {
        let patterns: Vec<Pattern> = qs.iter().map(|s| q(s)).collect();
        let refs: Vec<&Pattern> = patterns.iter().collect();
        conjunctive_contained_in(&refs, &q(target)).expect("within budget")
    }

    #[test]
    fn single_query_reduces_to_containment() {
        assert!(contained(&["/a/b"], "//b"));
        assert!(!contained(&["//b"], "/a/b"));
        assert!(contained(&["/a[/c]/b"], "/a/b"));
    }

    #[test]
    fn predicates_combine_across_conjuncts() {
        assert!(contained(&["/a[/x]", "/a[/y]"], "/a[/x][/y]"));
        assert!(!contained(&["/a[/x]", "/a[/y]"], "/a[/w]"));
    }

    #[test]
    fn descendant_interleavings() {
        // //a//c ∩ //b//c is NOT contained in //a//b//c: the a and b
        // ancestors may appear in either order.
        assert!(!contained(&["//a//c", "//b//c"], "//a//b//c"));
        // But it IS contained in //c and in each conjunct.
        assert!(contained(&["//a//c", "//b//c"], "//c"));
        assert!(contained(&["//a//c", "//b//c"], "//a//c"));
    }

    #[test]
    fn order_forced_by_child_edges() {
        // /a/b ∩ //b trivially ⊆ /a/b.
        assert!(contained(&["/a/b", "//b"], "/a/b"));
        // /a//c ∩ /a/b//c ⊆ /a/b//c.
        assert!(contained(&["/a//c", "/a/b//c"], "/a/b//c"));
    }

    #[test]
    fn deep_predicates() {
        // The two conjuncts may be witnessed by *different* a-ancestors, so
        // the conjunction is NOT contained in the single-a query.
        assert!(!contained(&["//a[/p[/u]]//c", "//a[/q]//c"], "//a[/p/u][/q]//c"));
        assert!(contained(&["//a[/p[/u]]//c", "//a[/q]//c"], "//a[/p/u]//c"));
        assert!(!contained(&["//a[/p]//c"], "//a[/p/u]//c"));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let p1 = q("//a//b//c//d");
        let p2 = q("//d//c//b//a//a//b//c//d");
        let refs = vec![&p1, &p2];
        assert_eq!(conjunctive_contained_in_budgeted(&refs, &p1, 3), None);
    }
}
