//! Commit coalescing: several consecutive queued batches for one
//! document, **one** admission pass.
//!
//! Under sustained load a hot document accumulates a run of queued
//! batches. Admitting them one by one pays one
//! [`eval_set_splice`](xuc_xpath::Evaluator::eval_set_splice) walk per
//! batch, even when the batches touch disjoint parts of the tree. The
//! coalescer applies the whole run, folds the per-batch
//! [`DirtyRegion`]s into one merged region
//! ([`DirtyRegion::merge`]), splices **once**, and recovers every
//! batch's own verdict and certificate from the merged journal.
//!
//! # Soundness
//!
//! The fast path is taken only when it provably equals the sequential
//! path; everything else falls back to batch-at-a-time admission
//! ([`CoalesceOutcome::Sequential`]). Three gates enforce that:
//!
//! 1. **Pairwise non-interference** — before each update applies, its
//!    footprint (the subtrees and nodes it can affect) is probed against
//!    the merged region of all *earlier* batches
//!    ([`DirtyRegion::overlaps`]). A hit means an earlier batch may have
//!    changed what this update sees (or this update may change what an
//!    earlier batch's admission depends on): the batches do not commute
//!    and the run is re-admitted sequentially. This is what rules out
//!    the classic masking hazard — an insert in batch *j* and a delete
//!    of the same region in batch *k* net to **zero** in a merged
//!    journal, hiding a violation either batch would show alone.
//! 2. **Unique attribution** — every update also claims the node ids
//!    whose pattern membership it can change (a deletion claims the
//!    doomed subtree, a relabel its subtree at claim time, an insert its
//!    fresh leaf). Claims are per-batch; a cross-batch double claim, or
//!    a journal net change owned by **no** batch, aborts to sequential.
//!    Gate 1 makes cross-batch claims disjoint, so this is a safety
//!    net — but it is the property the reconstruction below actually
//!    consumes, so it is checked, not assumed.
//! 3. **All-accept or bust** — if any batch's attributed net changes
//!    violate its constraint suite, the merged journal is reverted
//!    (restoring the committed baselines byte-identically), every
//!    applied update is unwound LIFO, and the run falls back: a mid-run
//!    reject poisons every later batch (they applied against a tree
//!    containing the rejected edits), so only the sequential path can
//!    produce its verdicts.
//!
//! On the fast path, per-batch baselines are reconstructed by replaying
//! each batch's attributed net changes onto the pre-run sets — by
//! disjointness this equals the sequential sets — and certificates are
//! hash-chained per batch ([`Signer::certify_chained`]), so the
//! certificate history is indistinguishable from sequential admission.
//! The load-differential suite (`tests/load.rs`) and the coalescing
//! proptests (`tests/coalesce.rs`) pin exactly that.

use crate::session::{unwind_batch, Commit};
use crate::store::Document;
use crate::Request;
use std::collections::{BTreeSet, HashMap};
use xuc_core::ConstraintKind;
use xuc_sigstore::{Certificate, Signer};
use xuc_telemetry::{Stage, Telemetry};
use xuc_xtree::{apply_undoable, DirtyRegion, NodeId, NodeRef, Undo, Update};

/// What [`try_coalesce`] did with a run of batches.
pub(crate) enum CoalesceOutcome {
    /// The whole run committed through one merged admission pass:
    /// one `(receipt, certificate)` per batch, in run order. The
    /// document's tree, baselines, certificate and commit counter have
    /// advanced exactly as sequential admission would have left them.
    Committed(Vec<(Commit, Certificate)>),
    /// The fast path declined (interference, a failed update, a
    /// predicate/poison/size fallback, or a mid-run violation). The
    /// document is byte-identical to its state before the attempt —
    /// tree, evaluator, baselines, certificate, commit counter — and the
    /// caller must admit the batches one at a time.
    Sequential,
}

/// The pre-apply probe footprint of one update: `(anchors, points)` for
/// [`DirtyRegion::overlaps`]. `None` means the update references nodes
/// the current tree does not hold — it will fail to apply, which the
/// sequential path reports per batch.
fn probe_footprint(doc: &Document, update: &Update) -> Option<(Vec<NodeId>, Vec<NodeId>)> {
    match update {
        // The fresh leaf id is probed *post*-apply (it is not live yet);
        // the parent point catches every subtree relation the leaf can
        // enter, because the leaf's path runs through it.
        Update::InsertLeaf { parent, .. } => Some((Vec::new(), vec![*parent])),
        Update::DeleteSubtree { node } | Update::DeleteNode { node } => {
            let parent = doc.tree.parent(*node).ok()??;
            Some((vec![*node], vec![parent]))
        }
        Update::Move { node, new_parent } => {
            let old_parent = doc.tree.parent(*node).ok()??;
            Some((vec![*node], vec![old_parent, *new_parent]))
        }
        Update::Relabel { node, .. } => Some((vec![*node], Vec::new())),
        Update::ReplaceId { node, .. } => Some((Vec::new(), vec![*node])),
    }
}

/// The node ids whose pattern membership `update` can change, computed
/// against the tree *as the update sees it*. Net journal changes are
/// attributed to batches through these claims; gate 1 keeps claims of
/// different batches disjoint (a relabeled subtree cannot grow or
/// shrink across batches without the probe firing first).
fn claimed_ids(doc: &Document, update: &Update) -> Option<Vec<NodeId>> {
    match update {
        Update::InsertLeaf { id, .. } => Some(vec![*id]),
        Update::DeleteSubtree { node }
        | Update::DeleteNode { node }
        | Update::Move { node, .. }
        | Update::Relabel { node, .. } => {
            Some(doc.tree.subtree_nodes(*node).ok()?.iter().map(|r| r.id).collect())
        }
        Update::ReplaceId { node, new_id } => Some(vec![*node, *new_id]),
    }
}

/// Attempts to admit `batches` (all against `doc`, in order) through one
/// merged splice. See the [module docs](self) for the protocol; the
/// caller holds the document mutex and must run the batches
/// sequentially on [`CoalesceOutcome::Sequential`].
pub(crate) fn try_coalesce(
    doc: &mut Document,
    signer: &Signer,
    batches: &[&Request],
    tel: Option<&Telemetry>,
    tag: u16,
) -> CoalesceOutcome {
    debug_assert!(batches.len() >= 2, "a run of one is just submit");
    let mut undo_stack: Vec<Undo> = Vec::new();
    let mut merged = DirtyRegion::new();
    let mut owner: HashMap<NodeId, usize> = HashMap::new();

    let bail = |doc: &mut Document, undo_stack: &mut Vec<Undo>| {
        unwind_batch(doc, undo_stack);
        CoalesceOutcome::Sequential
    };

    // Stage attribution (observationally inert, like the session path):
    // one Apply span per batch (probe + edits + evaluator re-sync) and
    // one DirtyAccumulate span per batch (the region merge) — splitting
    // per update would put two clock reads inside the innermost loop.
    // Spans open at a bail are simply dropped: a declined attempt's
    // re-admission is attributed by the sequential path that follows.
    let mut apply_started = tel.map(|t| t.now_micros());

    // Gate 1+2: apply every batch, probing each update against the
    // merged region of earlier batches and claiming its footprint.
    for (k, request) in batches.iter().enumerate() {
        let mut region = DirtyRegion::new();
        for update in &request.updates {
            let Some((anchors, points)) = probe_footprint(doc, update) else {
                return bail(doc, &mut undo_stack);
            };
            if merged.overlaps(&doc.tree, &anchors, &points) {
                return bail(doc, &mut undo_stack);
            }
            let Some(claims) = claimed_ids(doc, update) else {
                return bail(doc, &mut undo_stack);
            };
            for id in claims {
                if *owner.entry(id).or_insert(k) != k {
                    return bail(doc, &mut undo_stack);
                }
            }
            // Mirror Session::apply: capture what a deletion removes
            // before it happens, so the merged splice can evict exactly
            // those baseline entries.
            let doomed = match update {
                Update::DeleteSubtree { node } => doc.tree.subtree_nodes(*node).ok(),
                Update::DeleteNode { node } => doc.tree.node(*node).ok().map(|r| vec![r]),
                _ => None,
            };
            let Ok((token, scope)) = apply_undoable(&mut doc.tree, update) else {
                return bail(doc, &mut undo_stack);
            };
            if let Some(refs) = doomed {
                region.record_removals(&refs);
            }
            doc.ev.refresh_after(&doc.tree, &scope);
            region.record(&doc.tree, &scope);
            undo_stack.push(token);
            // The id an insert or swap minted is live now — close the
            // id-collision window the pre-apply probe could not check.
            let fresh = match update {
                Update::InsertLeaf { id, .. } => Some(*id),
                Update::ReplaceId { new_id, .. } => Some(*new_id),
                _ => None,
            };
            if let Some(id) = fresh {
                if merged.overlaps(&doc.tree, &[], &[id]) {
                    return bail(doc, &mut undo_stack);
                }
            }
        }
        if let (Some(t), Some(started)) = (tel, apply_started) {
            t.record_stage(Stage::Apply, tag, started);
            let merge_started = t.now_micros();
            merged.merge(&doc.tree, &region);
            t.record_stage(Stage::DirtyAccumulate, tag, merge_started);
            apply_started = Some(t.now_micros());
        } else {
            merged.merge(&doc.tree, &region);
        }
    }
    if merged.is_full() {
        return bail(doc, &mut undo_stack);
    }

    // One admission pass over the merged region. `None` (predicate
    // fallback, stale, or dirty-region-too-large) leaves the baselines
    // untouched — the sequential path will run its own full passes.
    let compiled = doc.compiled.clone();
    let splice = Telemetry::time(tel, Stage::Splice, tag, || {
        doc.ev.eval_set_splice(&*compiled, &merged, &mut doc.base_sets)
    });
    let Some(journal) = splice else {
        return bail(doc, &mut undo_stack);
    };

    // Gate 2+3: attribute every net change to its owning batch and
    // judge each batch's constraints on its own attributed delta.
    let verdict_started = tel.map(|t| t.now_micros());
    let patterns = doc.suite.len();
    let mut removed_by: Vec<Vec<Vec<NodeRef>>> = vec![vec![Vec::new(); patterns]; batches.len()];
    let mut added_by: Vec<Vec<Vec<NodeRef>>> = vec![vec![Vec::new(); patterns]; batches.len()];
    for i in 0..patterns {
        let (net_removed, net_added) = journal.net_changes(i);
        for (refs, by) in [(net_removed, &mut removed_by), (net_added, &mut added_by)] {
            for r in refs {
                let Some(&k) = owner.get(&r.id) else {
                    journal.revert(&mut doc.base_sets);
                    return bail(doc, &mut undo_stack);
                };
                by[k][i].push(r);
            }
        }
    }
    let violates = |k: usize| {
        doc.suite.iter().enumerate().any(|(i, c)| match c.kind {
            ConstraintKind::NoRemove => !removed_by[k][i].is_empty(),
            ConstraintKind::NoInsert => !added_by[k][i].is_empty(),
        })
    };
    if (0..batches.len()).any(violates) {
        journal.revert(&mut doc.base_sets);
        return bail(doc, &mut undo_stack);
    }
    if let (Some(t), Some(started)) = (tel, verdict_started) {
        t.record_stage(Stage::Verdict, tag, started);
    }
    let certify_started = tel.map(|t| t.now_micros());

    // All accepted. Rewind the final sets to the pre-run baselines, then
    // replay each batch's attributed delta to recover its own admission
    // snapshot and chain its certificate — by claim disjointness this is
    // exactly the sequence sequential admission certifies.
    let mut sets: Vec<BTreeSet<NodeRef>> = doc.base_sets.clone();
    for (i, set) in sets.iter_mut().enumerate().take(patterns) {
        let (net_removed, net_added) = journal.net_changes(i);
        for r in net_added {
            set.remove(&r);
        }
        for r in net_removed {
            set.insert(r);
        }
    }
    let mut out = Vec::with_capacity(batches.len());
    let mut prev = doc.cert.digest();
    for k in 0..batches.len() {
        for i in 0..patterns {
            for r in &removed_by[k][i] {
                sets[i].remove(r);
            }
            for r in &added_by[k][i] {
                sets[i].insert(*r);
            }
        }
        let cert = signer.certify_chained(&doc.suite, &sets, prev);
        prev = cert.digest();
        doc.commits += 1;
        out.push((Commit { commit: doc.commits }, cert));
    }
    debug_assert_eq!(
        sets, doc.base_sets,
        "replaying every batch's attributed delta must land on the spliced sets"
    );
    doc.cert = out.last().expect("at least two batches").1.clone();
    if let (Some(t), Some(started)) = (tel, certify_started) {
        t.record_stage(Stage::Certify, tag, started);
    }
    CoalesceOutcome::Committed(out)
}
