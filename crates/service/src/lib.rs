//! A concurrent, transactional update-validation gateway — the paper's
//! Figure 1 deployment as a long-running service.
//!
//! The motivating scenario of *Cautis–Abiteboul–Milo* (Section 1) is a
//! gateway that intercepts update streams against signed XML documents
//! and accepts or rejects each batch under the documents' update
//! constraints. The library crates of this workspace provide all the
//! single-shot pieces — evaluation ([`xuc_xpath::Evaluator`]), undoable
//! edits ([`xuc_xtree::apply_undoable`]), compiled constraint batches
//! ([`xuc_automata::PatternSetCompiler`]), certification
//! ([`xuc_sigstore::Signer`]) — and this crate composes them under
//! concurrency:
//!
//! * [`DocumentStore`] — documents sharded by id behind `parking_lot`
//!   locks; each [`Document`] owns its tree, a **warm** evaluator whose
//!   snapshot is kept in sync by the edit-scope protocol, its constraint
//!   suite, the suite's compiled automaton and its current certificate;
//! * [`Session`] — `begin / apply / commit / rollback` transactions built
//!   on undo tokens: a rejected batch unwinds exactly (same child order,
//!   [`xuc_xtree::undo`]'s position-restoration invariant) and the
//!   evaluator is never left stale. Commit admission is
//!   **edit-proportional** ([`admit_delta_in_place`]): the batch's edit
//!   scopes accumulate into a [`DirtyRegion`](xuc_xtree::DirtyRegion)
//!   and the committed baseline range results are spliced in place
//!   ([`eval_set_splice`](xuc_xpath::Evaluator::eval_set_splice)) — the
//!   check costs what the batch touched, not what the document holds
//!   (predicate suites degrade to the full pass; the differential
//!   harness pins both arms identical);
//! * [`SuiteCache`] — constraint suites fingerprinted by canonical
//!   pattern serialization ([`xuc_xpath::fingerprint`]); compiled
//!   automata are memoized so admission rides the
//!   [`eval_set`](xuc_xpath::Evaluator::eval_set) fast path with **zero**
//!   per-request compilation;
//! * [`Gateway`] — the front-end: publish documents, submit requests,
//!   and drain a request stream through a deterministic worker pool
//!   ([`Gateway::process`]) whose accept/reject log is byte-identical at
//!   every worker count;
//! * commit **re-certifies** the document
//!   ([`Signer::certify_precomputed`](xuc_sigstore::Signer::certify_precomputed)
//!   over the admission pass's own range results), closing the Figure 1
//!   loop: users can verify every accepted state without seeing its
//!   predecessor.
//!
//! ```
//! use xuc_core::parse_constraint;
//! use xuc_service::{DocId, Gateway, Request, Verdict};
//! use xuc_sigstore::Signer;
//! use xuc_xtree::{parse_term, NodeId, Update};
//!
//! let gw = Gateway::new(Signer::new(0xfeed));
//! let doc = DocId::new("mercy-west");
//! let tree = parse_term("hospital#1(patient#2(visit#3))").unwrap();
//! let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
//! gw.publish(doc, tree, suite).unwrap();
//!
//! // A compliant batch commits and re-certifies…
//! let ok = Request {
//!     doc,
//!     updates: vec![Update::InsertLeaf {
//!         parent: NodeId::from_raw(2),
//!         id: NodeId::fresh(),
//!         label: "visit".into(),
//!     }],
//! };
//! assert!(matches!(gw.submit(&ok), Verdict::Accepted { commit: 1 }));
//!
//! // …while tampering is rejected and rolled back.
//! let bad = Request { doc, updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(3) }] };
//! assert!(matches!(gw.submit(&bad), Verdict::Rejected(_)));
//! assert!(gw.certificate(doc).unwrap().verify(0xfeed, &gw.snapshot(doc).unwrap()).is_ok());
//! ```

pub mod cache;
pub(crate) mod coalesce;
pub mod gateway;
pub mod persist;
pub mod queue;
pub mod session;
pub mod store;
pub mod telemetry;
pub mod workload;

pub use cache::SuiteCache;
pub use gateway::{render_log, CoalesceStats, Gateway, GatewayState, ThroughputOptions};
pub use persist::{DurableOptions, RecoverError, ResumeError};
pub use queue::{plan_admission, render_arrival_log, Arrival, LoadOptions, LoadReport, ShedCause};
pub use session::{
    admit, admit_delta, admit_delta_in_place, AdmissionMode, Commit, Rejection, Session,
};
pub use store::{Document, DocumentStore, PublishError};
pub use telemetry::{scrape_engine_metrics, scrape_persist_metrics};
pub use xuc_persist::{RetryPolicy, WriteFault};
pub use xuc_telemetry::{
    Determinism, MetricsRegistry, MetricsSnapshot, RecordInto, Stage, Telemetry, TraceRing,
};

use std::fmt;
use xuc_xtree::{Label, Update};

/// A document's identity inside the store. Backed by an interned
/// [`Label`], so ids are `Copy` and compare in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(Label);

impl DocId {
    pub fn new(name: &str) -> DocId {
        DocId(Label::new(name))
    }

    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for DocId {
    fn from(s: &str) -> DocId {
        DocId::new(s)
    }
}

/// One client request: a batch of updates against one document, admitted
/// or rejected **atomically** (all updates commit, or none do).
#[derive(Debug, Clone)]
pub struct Request {
    pub doc: DocId,
    pub updates: Vec<Update>,
}

/// The gateway's answer to one [`Request`] (or read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The batch committed; `commit` is the document's new commit number
    /// (deterministic: requests against one document are processed in
    /// arrival order at every worker count).
    Accepted {
        commit: u64,
    },
    /// A read-class request was served ([`Gateway::read`]): the document
    /// exists and the gateway is not halted. Reads carry no commit
    /// number — they change nothing.
    Served,
    Rejected(RejectReason),
}

impl Verdict {
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted { .. })
    }

    /// Accepted commit, served read — anything the gateway did not
    /// refuse or shed.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Verdict::Rejected(_))
    }
}

/// Which degraded condition refused a request (the payload of
/// [`RejectReason::Degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The gateway's journal sealed after a fatal fault
    /// ([`GatewayState::ReadOnly`]); commits are refused until
    /// [`Gateway::try_resume`] succeeds.
    ReadOnly,
    /// The gateway was halted ([`GatewayState::Halted`]); nothing
    /// serves.
    Halted,
    /// This document is quarantined after repeated contained panics;
    /// sibling documents are unaffected
    /// ([`Gateway::lift_quarantine`] clears it).
    Quarantined,
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::ReadOnly => write!(f, "read-only"),
            DegradedReason::Halted => write!(f, "halted"),
            DegradedReason::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// Why a request was rejected. Every variant leaves the document exactly
/// as the previous commit left it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The request named a document the store does not hold.
    UnknownDocument,
    /// `updates[index]` did not apply (dead node, cycle-creating move,
    /// duplicate id); the already-applied prefix was unwound.
    FailedUpdate { index: usize, error: String },
    /// The batch applied but violates the document's suite; the whole
    /// batch was unwound.
    Violation { constraint: String, offenders: usize },
    /// The request handler panicked mid-session. The session's
    /// rollback-on-drop unwound the batch and the gateway kept serving —
    /// see the panic-containment discipline on
    /// [`Gateway::submit`](crate::Gateway::submit). The message is
    /// truncated to a fixed length so a panicking payload cannot bloat
    /// verdict logs unboundedly.
    Internal { error: String },
    /// The gateway (read-only after a fatal journal fault, or halted) or
    /// this document (quarantined) is degraded; the request was refused
    /// before evaluation. Reads keep serving in `ReadOnly` — see
    /// [`GatewayState`].
    Degraded { reason: DegradedReason },
    /// Admission control shed the request before evaluation: the
    /// per-shard queue overflowed, the request's deadline expired while
    /// queued, or a queued read was displaced to make room for a commit.
    Overloaded { cause: ShedCause },
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Accepted { commit } => write!(f, "ACCEPT commit={commit}"),
            Verdict::Rejected(RejectReason::UnknownDocument) => {
                write!(f, "REJECT unknown document")
            }
            Verdict::Rejected(RejectReason::FailedUpdate { index, error }) => {
                write!(f, "REJECT update {index} failed: {error}")
            }
            Verdict::Rejected(RejectReason::Violation { constraint, offenders }) => {
                write!(f, "REJECT violates {constraint} ({offenders} offending nodes)")
            }
            Verdict::Rejected(RejectReason::Internal { error }) => {
                write!(f, "REJECT internal error: {error}")
            }
            Verdict::Rejected(RejectReason::Degraded { reason }) => {
                write!(f, "REJECT degraded: {reason}")
            }
            Verdict::Rejected(RejectReason::Overloaded { cause }) => {
                write!(f, "REJECT overloaded: {cause}")
            }
            Verdict::Served => write!(f, "READ ok"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_ids_are_cheap_names() {
        let a = DocId::new("mercy-west");
        let b: DocId = "mercy-west".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "mercy-west");
        assert_ne!(a, DocId::new("seattle-grace"));
    }

    #[test]
    fn verdicts_render_stably() {
        assert_eq!(Verdict::Accepted { commit: 3 }.to_string(), "ACCEPT commit=3");
        assert!(Verdict::Accepted { commit: 3 }.is_accepted());
        let v = Verdict::Rejected(RejectReason::Violation {
            constraint: "(/a, ↑)".into(),
            offenders: 2,
        });
        assert_eq!(v.to_string(), "REJECT violates (/a, ↑) (2 offending nodes)");
        assert!(!v.is_accepted());
        let v = Verdict::Rejected(RejectReason::FailedUpdate {
            index: 1,
            error: "node n9 not found".into(),
        });
        assert_eq!(v.to_string(), "REJECT update 1 failed: node n9 not found");
        assert_eq!(
            Verdict::Rejected(RejectReason::UnknownDocument).to_string(),
            "REJECT unknown document"
        );
    }
}
