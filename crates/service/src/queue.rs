//! Overload protection: bounded per-shard admission queues, request
//! deadlines, and a read-shedding-first load policy in front of the
//! gateway's worker pool.
//!
//! # The model
//!
//! Arrivals carry a **virtual arrival tick** (`at`, nondecreasing along
//! the stream) and an optional absolute **deadline** tick. Each store
//! shard (same 16-way split as the [`DocumentStore`](crate::DocumentStore)
//! locks — the overload unit matches the contention unit) is modeled as a
//! single server taking [`LoadOptions::service_ticks`] per request, with
//! a waiting room of [`LoadOptions::queue_capacity`] requests:
//!
//! * a request whose service could not *start* before its deadline is
//!   shed with [`ShedCause::DeadlineExpired`] — before any evaluation,
//!   which is the whole point of a deadline;
//! * a request arriving to a full waiting room is shed with
//!   [`ShedCause::QueueFull`] — unless it is a commit and a read is
//!   still queued, in which case the **youngest queued read** is
//!   displaced ([`ShedCause::ShedForCommit`]) and the commit takes its
//!   place: reads are cheap to retry against any replica, an accepted
//!   commit is the service's actual job.
//!
//! # Determinism
//!
//! [`plan_admission`] is a *pure function* of the arrival stream and the
//! options — no wall clock, no thread timing. The shed/admit decisions
//! are therefore byte-stable at every worker count, and
//! [`Gateway::process_open_loop`](crate::Gateway::process_open_loop)
//! inherits the gateway's determinism contract even when shedding fires.
//! With unbounded capacity and no deadlines nothing sheds and the
//! verdicts equal [`Gateway::process`](crate::Gateway::process) on the
//! bare commit stream (the differential harness pins both properties).

use crate::store::{shard_of, STORE_SHARDS};
use crate::{DocId, Gateway, RejectReason, Request, Verdict};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning knobs of the admission queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Waiting-room size per shard (the request in service does not
    /// count). Arrivals beyond it are shed; `usize::MAX` disables
    /// shedding by capacity.
    pub queue_capacity: usize,
    /// Virtual ticks one request occupies its shard's server — the
    /// knob that turns a given arrival stream into under- or overload.
    pub service_ticks: u64,
}

impl Default for LoadOptions {
    /// Unbounded queue, one tick per request: nothing sheds unless
    /// deadlines say so.
    fn default() -> LoadOptions {
        LoadOptions { queue_capacity: usize::MAX, service_ticks: 1 }
    }
}

/// Why admission control shed a request (the payload of
/// [`RejectReason::Overloaded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The shard's waiting room was full.
    QueueFull,
    /// Service could not have started before the request's deadline.
    DeadlineExpired,
    /// A queued read was displaced to admit a commit into a full
    /// waiting room.
    ShedForCommit,
}

impl fmt::Display for ShedCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedCause::QueueFull => write!(f, "queue full"),
            ShedCause::DeadlineExpired => write!(f, "deadline expired"),
            ShedCause::ShedForCommit => write!(f, "read shed for commit"),
        }
    }
}

/// One timed request in an open-loop stream.
#[derive(Debug, Clone)]
pub struct Arrival {
    pub request: Request,
    /// Read-class: served by [`Gateway::read`] (no session, no commit)
    /// and first in line for shedding.
    pub read: bool,
    /// Arrival tick. Streams must be nondecreasing in `at`.
    pub at: u64,
    /// Absolute tick service must start by, if any.
    pub deadline: Option<u64>,
}

impl Arrival {
    /// A commit-class arrival with no deadline.
    pub fn commit(request: Request, at: u64) -> Arrival {
        Arrival { request, read: false, at, deadline: None }
    }

    /// A read-class arrival (empty update batch) with no deadline.
    pub fn read_of(doc: DocId, at: u64) -> Arrival {
        Arrival { request: Request { doc, updates: Vec::new() }, read: true, at, deadline: None }
    }

    /// Attaches an absolute deadline tick.
    pub fn with_deadline(mut self, deadline: u64) -> Arrival {
        self.deadline = Some(deadline);
        self
    }
}

/// A queued-but-not-yet-started request in the shard simulation.
struct QueueSlot {
    index: usize,
    start: u64,
    read: bool,
}

struct ShardQueue {
    next_free: u64,
    waiting: Vec<QueueSlot>,
}

/// Plans shed/admit decisions for a timed arrival stream: `None` means
/// admitted, `Some(cause)` shed. Pure and deterministic — see the module
/// docs for the queueing model. Panics if arrivals are not time-ordered.
pub fn plan_admission(arrivals: &[Arrival], opts: &LoadOptions) -> Vec<Option<ShedCause>> {
    let capacity = opts.queue_capacity.max(1);
    let service = opts.service_ticks.max(1);
    let mut shards: Vec<ShardQueue> =
        (0..STORE_SHARDS).map(|_| ShardQueue { next_free: 0, waiting: Vec::new() }).collect();
    let mut plan: Vec<Option<ShedCause>> = vec![None; arrivals.len()];
    let mut clock = 0u64;
    for (i, a) in arrivals.iter().enumerate() {
        assert!(a.at >= clock, "arrival stream must be nondecreasing in `at`");
        clock = a.at;
        let shard = &mut shards[shard_of(a.request.doc)];
        // Everything whose service started by now has left the waiting
        // room (it is in service or done — either way, not sheddable).
        shard.waiting.retain(|slot| slot.start > a.at);
        // Deadline first: an expired request must never occupy a slot —
        // and must never displace a read it cannot make use of. The
        // start tick judged here is the one this request would actually
        // dequeue at: a commit arriving to a full room with a queued
        // read starts one service slot *earlier* (the displacement
        // below shifts everything up), so checking the pre-displacement
        // start would shed commits whose service still starts in time.
        let displaces =
            shard.waiting.len() >= capacity && !a.read && shard.waiting.iter().any(|s| s.read);
        let earliest = if displaces { shard.next_free - service } else { shard.next_free };
        let start = a.at.max(earliest);
        if a.deadline.is_some_and(|d| d < start) {
            plan[i] = Some(ShedCause::DeadlineExpired);
            continue;
        }
        if shard.waiting.len() >= capacity {
            // Prefer dropping reads over commits: displace the youngest
            // queued read if this is a commit, else shed the arrival.
            let victim = (!a.read).then(|| shard.waiting.iter().rposition(|s| s.read)).flatten();
            let Some(pos) = victim else {
                plan[i] = Some(ShedCause::QueueFull);
                continue;
            };
            let slot = shard.waiting.remove(pos);
            plan[slot.index] = Some(ShedCause::ShedForCommit);
            // Everything behind the displaced read starts one service
            // slot earlier (FIFO spacing keeps starts > `a.at`).
            for s in &mut shard.waiting[pos..] {
                s.start -= service;
            }
            shard.next_free -= service;
        }
        let start = a.at.max(shard.next_free);
        shard.waiting.push(QueueSlot { index: i, start, read: a.read });
        shard.next_free = start + service;
    }
    plan
}

/// Shed/serve accounting of one open-loop run. "Served" counts requests
/// that reached the gateway — including ones it then rejected on their
/// merits (a violation verdict is service, not overload).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadReport {
    pub offered: usize,
    pub served: usize,
    pub shed_queue_full: usize,
    pub shed_deadline: usize,
    pub shed_for_commit: usize,
    pub reads_offered: usize,
    pub reads_served: usize,
    pub commits_offered: usize,
    pub commits_served: usize,
}

impl LoadReport {
    /// Fraction of offered requests that were not shed (1.0 when none
    /// were offered).
    pub fn availability(&self) -> f64 {
        ratio(self.served, self.offered)
    }

    pub fn read_availability(&self) -> f64 {
        ratio(self.reads_served, self.reads_offered)
    }

    pub fn commit_availability(&self) -> f64 {
        ratio(self.commits_served, self.commits_offered)
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        1.0
    } else {
        part as f64 / whole as f64
    }
}

impl Gateway {
    /// Drains a timed arrival stream through the bounded per-shard
    /// admission queues: plans shedding with [`plan_admission`] (pure,
    /// so the decisions — and the whole log — stay byte-identical at
    /// every worker count, shedding or not), then drains the admitted
    /// requests over the usual deterministic worker pool. Shed requests
    /// verdict as [`RejectReason::Overloaded`] without ever touching a
    /// document; admitted reads go through [`Gateway::read`], admitted
    /// commits through [`Gateway::submit`].
    pub fn process_open_loop(
        &self,
        arrivals: &[Arrival],
        workers: usize,
        opts: &LoadOptions,
    ) -> (Vec<Verdict>, LoadReport) {
        let workers = workers.max(1);
        let plan = plan_admission(arrivals, opts);
        // Shed verdicts never reach `submit`/`read`, so their counters
        // bump here; the plan is pure, so these counts are deterministic
        // at every worker count.
        if self.metrics().is_some() {
            for (a, p) in arrivals.iter().zip(&plan) {
                if let Some(cause) = p {
                    let v = Verdict::Rejected(RejectReason::Overloaded { cause: *cause });
                    self.note_verdict(&v, a.request.doc);
                }
            }
        }

        // Units: each document's *admitted* arrival indices, in order —
        // the same grouping discipline as `Gateway::process`.
        let mut order: Vec<DocId> = Vec::new();
        let mut by_doc: HashMap<DocId, Vec<usize>> = HashMap::new();
        for (i, a) in arrivals.iter().enumerate() {
            if plan[i].is_some() {
                continue;
            }
            by_doc
                .entry(a.request.doc)
                .or_insert_with(|| {
                    order.push(a.request.doc);
                    Vec::new()
                })
                .push(i);
        }
        // Invariant: `order` records exactly the keys inserted into
        // `by_doc` above, so every removal hits.
        let units: Vec<Vec<usize>> =
            order.into_iter().map(|d| by_doc.remove(&d).expect("grouped")).collect();

        let mut verdicts: Vec<Option<Verdict>> = plan
            .iter()
            .map(|p| p.map(|cause| Verdict::Rejected(RejectReason::Overloaded { cause })))
            .collect();
        let serve = |i: usize| {
            let a = &arrivals[i];
            if a.read {
                self.read(a.request.doc)
            } else {
                self.submit(&a.request)
            }
        };
        if workers == 1 {
            for unit in &units {
                for &i in unit {
                    verdicts[i] = Some(serve(i));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let u = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(unit) = units.get(u) else { break };
                                for &i in unit {
                                    out.push((i, serve(i)));
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Invariant, not an IO-path unwrap: `serve` routes
                    // through `read`/`submit`, which contain every
                    // request panic, so a worker can only die of
                    // something non-unwindable (abort), which join
                    // cannot observe anyway.
                    .flat_map(|h| h.join().expect("gateway worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, v) in results {
                verdicts[i] = Some(v);
            }
        }

        let mut report = LoadReport { offered: arrivals.len(), ..LoadReport::default() };
        for (a, p) in arrivals.iter().zip(&plan) {
            let served = p.is_none();
            report.served += served as usize;
            if a.read {
                report.reads_offered += 1;
                report.reads_served += served as usize;
            } else {
                report.commits_offered += 1;
                report.commits_served += served as usize;
            }
            match p {
                Some(ShedCause::QueueFull) => report.shed_queue_full += 1,
                Some(ShedCause::DeadlineExpired) => report.shed_deadline += 1,
                Some(ShedCause::ShedForCommit) => report.shed_for_commit += 1,
                None => {}
            }
        }
        // Invariant: sheds were filled from the plan above and admitted
        // indices partition across the units, all of which were drained.
        let verdicts = verdicts.into_iter().map(|v| v.expect("every arrival verdicted")).collect();
        (verdicts, report)
    }
}

/// The canonical log of one open-loop run: like
/// [`render_log`](crate::render_log) with a read/commit class marker.
/// Byte-identical at every worker count.
pub fn render_arrival_log(arrivals: &[Arrival], verdicts: &[Verdict]) -> String {
    assert_eq!(arrivals.len(), verdicts.len(), "one verdict per arrival");
    let mut out = String::new();
    for (i, (a, v)) in arrivals.iter().zip(verdicts).enumerate() {
        let class = if a.read { 'R' } else { 'C' };
        out.push_str(&format!("#{i:04} {class} {} {}\n", a.request.doc, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;
    use xuc_sigstore::Signer;
    use xuc_xtree::{parse_term, NodeId, Update};

    fn gateway_with_doc(name: &str) -> (Gateway, DocId) {
        let gw = Gateway::new(Signer::new(0x10ad));
        let id = DocId::new(name);
        let tree = parse_term("hospital#1(patient#2(visit#3))").unwrap();
        let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
        gw.publish(id, tree, suite).unwrap();
        (gw, id)
    }

    fn insert_req(id: DocId) -> Request {
        Request {
            doc: id,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(2),
                id: NodeId::fresh(),
                label: "visit".into(),
            }],
        }
    }

    #[test]
    fn unbounded_open_loop_equals_closed_loop() {
        let (gw, id) = gateway_with_doc("open-eq");
        let reqs: Vec<Request> = (0..6).map(|_| insert_req(id)).collect();
        let arrivals: Vec<Arrival> =
            reqs.iter().cloned().enumerate().map(|(i, r)| Arrival::commit(r, i as u64)).collect();
        let (verdicts, report) = gw.process_open_loop(&arrivals, 2, &LoadOptions::default());
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.shed_queue_full + report.shed_deadline + report.shed_for_commit, 0);
        // Same verdicts a plain process run would produce on a fresh
        // gateway (commit numbers 1..=6 in order).
        for (k, v) in verdicts.iter().enumerate() {
            assert_eq!(*v, Verdict::Accepted { commit: k as u64 + 1 });
        }
    }

    #[test]
    fn full_queue_sheds_and_prefers_commits_over_reads() {
        let (gw, id) = gateway_with_doc("shed");
        // Everything arrives at tick 0 against one document (one shard):
        // server takes 4 ticks, waiting room of 2.
        let opts = LoadOptions { queue_capacity: 2, service_ticks: 4 };
        let arrivals = vec![
            Arrival::commit(insert_req(id), 0), // starts at 0: in service
            Arrival::read_of(id, 0),            // waits (slot 1)
            Arrival::commit(insert_req(id), 0), // waits (slot 2) — room full
            Arrival::read_of(id, 0),            // read + full room: shed
            Arrival::commit(insert_req(id), 0), // commit displaces queued read
        ];
        let (verdicts, report) = gw.process_open_loop(&arrivals, 1, &opts);
        assert_eq!(
            verdicts[3],
            Verdict::Rejected(RejectReason::Overloaded { cause: ShedCause::QueueFull })
        );
        assert_eq!(
            verdicts[1],
            Verdict::Rejected(RejectReason::Overloaded { cause: ShedCause::ShedForCommit }),
            "the queued read is displaced by the later commit"
        );
        assert!(
            verdicts[0].is_accepted() && verdicts[2].is_accepted() && verdicts[4].is_accepted()
        );
        assert_eq!((report.served, report.offered), (3, 5));
        assert!(report.commit_availability() > report.read_availability());
        assert_eq!(report.commit_availability(), 1.0, "no commit was shed");
    }

    #[test]
    fn expired_deadlines_shed_before_evaluation() {
        let (gw, id) = gateway_with_doc("deadline");
        let opts = LoadOptions { queue_capacity: usize::MAX, service_ticks: 10 };
        let arrivals = vec![
            Arrival::commit(insert_req(id), 0), // service 0..10
            Arrival::commit(insert_req(id), 1).with_deadline(5), // would start at 10 > 5
            Arrival::commit(insert_req(id), 2).with_deadline(50), // starts at 10 ≤ 50
        ];
        let (verdicts, report) = gw.process_open_loop(&arrivals, 1, &opts);
        assert_eq!(
            verdicts[1],
            Verdict::Rejected(RejectReason::Overloaded { cause: ShedCause::DeadlineExpired })
        );
        assert_eq!(verdicts[0], Verdict::Accepted { commit: 1 });
        assert_eq!(
            verdicts[2],
            Verdict::Accepted { commit: 2 },
            "commit numbers skip shed requests"
        );
        assert_eq!(report.shed_deadline, 1);
    }

    #[test]
    fn deadline_is_judged_at_the_true_dequeue_tick() {
        // One document (one shard), server busy 0..4, waiting room of 1
        // holding a read: the next commit would dequeue at tick 8 — but
        // displacing the read makes its true start tick 4.
        let (gw, id) = gateway_with_doc("deadline-dequeue");
        let opts = LoadOptions { queue_capacity: 1, service_ticks: 4 };
        let mk = |deadline| {
            vec![
                Arrival::commit(insert_req(id), 0), // in service 0..4
                Arrival::read_of(id, 0),            // queued, would start at 4
                Arrival::commit(insert_req(id), 0).with_deadline(deadline),
            ]
        };
        // Deadline 5 ≥ the post-displacement start 4: the commit must be
        // admitted (the regression was shedding it against the stale
        // pre-displacement start 8) and the read displaced.
        let (verdicts, report) = gw.process_open_loop(&mk(5), 1, &opts);
        assert_eq!(
            verdicts[1],
            Verdict::Rejected(RejectReason::Overloaded { cause: ShedCause::ShedForCommit })
        );
        assert!(verdicts[2].is_accepted(), "starts at tick 4, before its deadline");
        assert_eq!(report.shed_deadline, 0);
        // Deadline 3 < even the post-displacement start: the commit is
        // shed — and must NOT displace the read it cannot make use of.
        let (gw, id) = gateway_with_doc("deadline-dequeue-2");
        let (verdicts, report) = gw.process_open_loop(
            &{
                let mut a = mk(3);
                for x in &mut a {
                    x.request.doc = id;
                }
                a
            },
            1,
            &opts,
        );
        assert_eq!(
            verdicts[2],
            Verdict::Rejected(RejectReason::Overloaded { cause: ShedCause::DeadlineExpired })
        );
        assert_eq!(verdicts[1], Verdict::Served, "a doomed commit must not displace the read");
        assert_eq!((report.shed_deadline, report.shed_for_commit), (1, 0));
    }

    #[test]
    fn shedding_decisions_are_worker_count_invariant() {
        let docs: Vec<DocId> = (0..4).map(|k| DocId::new(&format!("inv-{k}"))).collect();
        let opts = LoadOptions { queue_capacity: 1, service_ticks: 3 };
        let build = || {
            let gw = Gateway::new(Signer::new(7));
            for d in &docs {
                let tree = parse_term("hospital#1(patient#2(visit#3))").unwrap();
                let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
                gw.publish(*d, tree, suite).unwrap();
            }
            gw
        };
        let mut arrivals = Vec::new();
        for t in 0..24u64 {
            let d = docs[(t % 4) as usize];
            if t % 3 == 0 {
                arrivals.push(Arrival::read_of(d, t / 2));
            } else {
                arrivals.push(Arrival::commit(insert_req_for(d), t / 2).with_deadline(t / 2 + 4));
            }
        }
        let reference = {
            let gw = build();
            let (v, _) = gw.process_open_loop(&arrivals, 1, &opts);
            render_arrival_log(&arrivals, &v)
        };
        assert!(reference.contains("REJECT overloaded"), "the stream must actually shed");
        for workers in [2, 8] {
            let gw = build();
            let (v, _) = gw.process_open_loop(&arrivals, workers, &opts);
            assert_eq!(render_arrival_log(&arrivals, &v), reference, "workers={workers}");
        }
    }

    fn insert_req_for(id: DocId) -> Request {
        Request {
            doc: id,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(2),
                id: NodeId::fresh(),
                label: "visit".into(),
            }],
        }
    }

    #[test]
    fn reads_serve_and_unknown_docs_reject() {
        let (gw, id) = gateway_with_doc("reads");
        assert_eq!(gw.read(id), Verdict::Served);
        assert_eq!(gw.read(DocId::new("ghost")), Verdict::Rejected(RejectReason::UnknownDocument));
        assert_eq!(Verdict::Served.to_string(), "READ ok");
        assert!(Verdict::Served.is_ok() && !Verdict::Served.is_accepted());
    }
}
