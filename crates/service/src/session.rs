//! Transactional update sessions over one document.
//!
//! A [`Session`] wraps one exclusive borrow of a [`Document`] (the caller
//! holds the document's mutex) in `begin / apply / commit / rollback`
//! semantics:
//!
//! * [`Session::apply`] edits the working tree through
//!   [`apply_undoable`], pushes the undo token, and re-syncs the warm
//!   evaluator **proportionally to the edit** via
//!   [`Evaluator::refresh_after`](xuc_xpath::Evaluator::refresh_after) and
//!   the returned [`EditScope`](xuc_xtree::EditScope) — the evaluator is
//!   never stale, at any point of the session;
//! * [`Session::commit`] runs the admission check **edit-proportionally**
//!   ([`admit_delta_in_place`]): every applied scope is folded into a
//!   [`DirtyRegion`], and
//!   [`eval_set_delta`](xuc_xpath::Evaluator::eval_set_delta) re-drives
//!   the suite's compiled automaton only below the batch's dirty subtrees,
//!   splicing the fresh sub-results into the committed baseline — compared
//!   under Definition 2.3. Predicate suites and poisoned regions degrade
//!   to the full [`eval_set`](xuc_xpath::Evaluator::eval_set) pass
//!   ([`admit`], still available via [`AdmissionMode::FullPass`]) with
//!   identical verdicts and baselines. Accepted batches re-certify the
//!   document from the very sets the check computed
//!   ([`Signer::certify_precomputed`](xuc_sigstore::Signer::certify_precomputed));
//!   rejected batches unwind;
//! * [`Session::rollback`] (and `Drop`, for abandoned sessions) unwinds
//!   the undo stack in LIFO order. Undo is an *exact* inverse (child
//!   positions restored), so the tree returns byte-identical to the
//!   committed state; the evaluator re-syncs once — structural edits pool
//!   into a single re-walk, pure relabel/id batches replay their O(1)
//!   patches.

use crate::store::Document;
use std::collections::BTreeSet;
use xuc_automata::CompiledPatternSet;
use xuc_core::{Constraint, ConstraintKind};
use xuc_sigstore::Signer;
use xuc_telemetry::{Stage, Telemetry};
use xuc_xpath::{Evaluator, SpliceJournal};
use xuc_xtree::{apply_undoable, undo, DirtyRegion, NodeRef, Undo, Update, UpdateError};

/// A committed batch's receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// The document's commit number after this batch (1 for the first
    /// accepted batch after publish).
    pub commit: u64,
}

/// Why a batch failed admission. The session has already rolled back
/// when a `Rejection` is returned.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The first violated constraint (suite order).
    pub constraint: Constraint,
    /// Nodes inserted into (↓) or removed from (↑) its range.
    pub offenders: usize,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch violates {} ({} offending nodes)", self.constraint, self.offenders)
    }
}

impl std::error::Error for Rejection {}

/// The admission check: evaluates the whole suite in **one**
/// [`eval_set`](Evaluator::eval_set) pass over `compiled` and compares
/// each range against the committed baseline under Definition 2.3
/// (`⊆` for ↓, `⊇` for ↑ — via
/// [`ConstraintKind::satisfied_on`](xuc_core::ConstraintKind::satisfied_on)).
///
/// Returns the fresh range results on success (the caller re-uses them as
/// the next baseline and as certification snapshots), or the first
/// violation in suite order. Exposed for the E-SVC experiment, which
/// measures this exact function under cached vs per-request-recompiled
/// automata.
pub fn admit(
    ev: &mut Evaluator,
    compiled: &CompiledPatternSet,
    suite: &[Constraint],
    base_sets: &[BTreeSet<NodeRef>],
) -> Result<Vec<BTreeSet<NodeRef>>, Rejection> {
    admit_traced(ev, compiled, suite, base_sets, None, 0)
}

/// [`admit`] with optional stage tracing: the full `eval_set` sweep is
/// attributed to [`Stage::Splice`] (the evaluation stage — splice or
/// full pass), the Definition 2.3 comparison to [`Stage::Verdict`].
/// Telemetry is observationally inert: verdicts and returned sets are
/// those of [`admit`] on every input.
pub(crate) fn admit_traced(
    ev: &mut Evaluator,
    compiled: &CompiledPatternSet,
    suite: &[Constraint],
    base_sets: &[BTreeSet<NodeRef>],
    tel: Option<&Telemetry>,
    tag: u16,
) -> Result<Vec<BTreeSet<NodeRef>>, Rejection> {
    debug_assert_eq!(suite.len(), base_sets.len(), "one baseline per constraint");
    let t0 = tel.map(Telemetry::now_micros);
    let now_sets = ev.eval_set(compiled);
    // Splice closes and Verdict opens on one shared clock reading — the
    // read, not the atomics, is the tracer's hot-path cost.
    let boundary = splice_boundary(tel, tag, t0);
    let out = check_against_baseline(suite, base_sets, now_sets);
    if let (Some(t), Some(t1)) = (tel, boundary) {
        t.record_stage(Stage::Verdict, tag, t1);
    }
    out
}

/// Closes a [`Stage::Splice`] span opened at `t0` and returns the shared
/// boundary reading that opens the adjacent [`Stage::Verdict`] span.
fn splice_boundary(tel: Option<&Telemetry>, tag: u16, t0: Option<u64>) -> Option<u64> {
    tel.map(|t| {
        let t1 = t.now_micros();
        t.record_span(Stage::Splice, tag, t1.saturating_sub(t0.unwrap_or(t1)));
        t1
    })
}

/// [`admit`]'s edit-proportional twin: instead of re-sweeping the whole
/// document, the fresh range results are **spliced** out of the committed
/// baselines via
/// [`eval_set_delta`](Evaluator::eval_set_delta) — the compiled automaton
/// is re-driven only below the batch's [`DirtyRegion`], so the check costs
/// what the *batch* touched, not what the document holds. Suites with
/// predicate fallbacks (membership not determined by the label path) and
/// poisoned regions degrade to the full pass inside `eval_set_delta`; the
/// verdict, the returned range results, and therefore the next baseline
/// and certification snapshots are **identical** to [`admit`]'s on every
/// input — asserted per sweep point by the E-DLT experiment (the in-place
/// form the session actually commits through, [`admit_delta_in_place`],
/// is pinned by the differential harness in `tests/differential.rs`).
pub fn admit_delta(
    ev: &mut Evaluator,
    compiled: &CompiledPatternSet,
    suite: &[Constraint],
    base_sets: &[BTreeSet<NodeRef>],
    region: &DirtyRegion,
) -> Result<Vec<BTreeSet<NodeRef>>, Rejection> {
    debug_assert_eq!(suite.len(), base_sets.len(), "one baseline per constraint");
    let now_sets = ev.eval_set_delta(compiled, region, base_sets);
    check_against_baseline(suite, base_sets, now_sets)
}

/// The commit hot path: [`admit_delta`]'s **in-place** form, built on
/// [`eval_set_splice`](Evaluator::eval_set_splice). The committed
/// baselines are spliced directly — targeted removals/patches/inserts
/// proportional to the batch's dirty region, never a clone or re-sweep of
/// the whole document — and Definition 2.3 is judged straight off the
/// splice journal's net changes (`base \ now` per ↑ range, `now \ base`
/// per ↓). On success `base_sets` **are** the admission pass's fresh
/// range results (certify from them); on rejection the splice has been
/// reverted and `base_sets` are byte-identical to the committed
/// baselines. When the splice does not apply (predicate fallbacks,
/// poisoned/stale region, or a dirty region so large the clean sweep is
/// cheaper) the full pass runs instead and `base_sets` is replaced
/// wholesale.
///
/// Returns `Ok(Some(journal))` on a spliced accept, `Ok(None)` on a
/// full-pass accept. Verdicts, resulting baselines and rejection
/// offenders are identical to [`admit`]'s on every input — pinned by the
/// differential harness in `tests/differential.rs`.
pub fn admit_delta_in_place(
    ev: &mut Evaluator,
    compiled: &CompiledPatternSet,
    suite: &[Constraint],
    base_sets: &mut Vec<BTreeSet<NodeRef>>,
    region: &DirtyRegion,
) -> Result<Option<SpliceJournal>, Rejection> {
    admit_delta_in_place_traced(ev, compiled, suite, base_sets, region, None, 0)
}

/// [`admit_delta_in_place`] with optional stage tracing: the splice (or
/// its full-pass degradation) is attributed to [`Stage::Splice`], the
/// Definition 2.3 judgement off the journal's net changes (or against
/// the baseline) to [`Stage::Verdict`]. Telemetry is observationally
/// inert — verdicts, baselines and journals are those of the untraced
/// form on every input.
pub(crate) fn admit_delta_in_place_traced(
    ev: &mut Evaluator,
    compiled: &CompiledPatternSet,
    suite: &[Constraint],
    base_sets: &mut Vec<BTreeSet<NodeRef>>,
    region: &DirtyRegion,
    tel: Option<&Telemetry>,
    tag: u16,
) -> Result<Option<SpliceJournal>, Rejection> {
    debug_assert_eq!(suite.len(), base_sets.len(), "one baseline per constraint");
    let t0 = tel.map(Telemetry::now_micros);
    match ev.eval_set_splice(compiled, region, base_sets) {
        None => {
            // Degradation: the splice attempt *and* the full pass it
            // fell back to are one Splice span — what the evaluation
            // stage cost, not how it got there.
            let now_sets = ev.eval_set(compiled);
            let boundary = splice_boundary(tel, tag, t0);
            let checked = check_against_baseline(suite, base_sets, now_sets);
            if let (Some(t), Some(t1)) = (tel, boundary) {
                t.record_stage(Stage::Verdict, tag, t1);
            }
            *base_sets = checked?;
            Ok(None)
        }
        Some(journal) => {
            let boundary = splice_boundary(tel, tag, t0);
            let judged = (|| {
                for (i, c) in suite.iter().enumerate() {
                    let (net_removed, net_added) = journal.net_changes(i);
                    let offenders = match c.kind {
                        ConstraintKind::NoRemove => net_removed.len(),
                        ConstraintKind::NoInsert => net_added.len(),
                    };
                    if offenders > 0 {
                        journal.revert(base_sets);
                        return Err(Rejection { constraint: c.clone(), offenders });
                    }
                }
                Ok(())
            })();
            if let (Some(t), Some(t1)) = (tel, boundary) {
                t.record_stage(Stage::Verdict, tag, t1);
            }
            judged.map(|()| Some(journal))
        }
    }
}

/// Definition 2.3 on precomputed range results: first violation in suite
/// order, or the fresh results for reuse as the next baseline.
fn check_against_baseline(
    suite: &[Constraint],
    base_sets: &[BTreeSet<NodeRef>],
    now_sets: Vec<BTreeSet<NodeRef>>,
) -> Result<Vec<BTreeSet<NodeRef>>, Rejection> {
    for ((c, base), now) in suite.iter().zip(base_sets).zip(&now_sets) {
        if !c.kind.satisfied_on(base, now) {
            let offenders = c.kind.offenders_on(base, now).len();
            return Err(Rejection { constraint: c.clone(), offenders });
        }
    }
    Ok(now_sets)
}

/// How a [`Session`] (and the [`Gateway`](crate::Gateway) above it) runs
/// its admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Edit-proportional splice ([`admit_delta`]): the production path.
    #[default]
    Delta,
    /// Unconditional full `eval_set` pass ([`admit`]): the pre-delta
    /// shape, kept as the differential-testing and benchmarking baseline.
    FullPass,
}

/// An open transaction on one document. See the module docs.
pub struct Session<'a> {
    doc: &'a mut Document,
    undo_stack: Vec<Undo>,
    /// Union of the batch's edit scopes — what [`admit_delta`] splices
    /// against at commit time. Reset (with the undo stack) on rollback.
    region: DirtyRegion,
    open: bool,
    /// Stage tracer, when the owning gateway has telemetry attached.
    /// Never consulted for any admission decision.
    tel: Option<&'a Telemetry>,
    /// Trace-ring tag correlating this session's spans.
    tag: u16,
}

impl<'a> Session<'a> {
    /// Opens a transaction. Free: the baseline range results were cached
    /// by the last commit (or publish), so nothing is evaluated here.
    pub fn begin(doc: &'a mut Document) -> Session<'a> {
        Session::begin_traced(doc, None, 0)
    }

    /// [`begin`](Self::begin) with a stage tracer: `apply` and `commit`
    /// attribute their phases to the [`Stage`] taxonomy under `tag`.
    pub(crate) fn begin_traced(
        doc: &'a mut Document,
        tel: Option<&'a Telemetry>,
        tag: u16,
    ) -> Session<'a> {
        Session { doc, undo_stack: Vec::new(), region: DirtyRegion::new(), open: true, tel, tag }
    }

    /// Number of updates applied so far.
    pub fn applied(&self) -> usize {
        self.undo_stack.len()
    }

    /// Applies one update to the working tree and re-syncs the evaluator
    /// in time proportional to the edit. On error the tree is untouched
    /// (the primitive either applies fully or not at all) and the session
    /// stays usable — the caller decides whether to continue or roll
    /// back.
    pub fn apply(&mut self, update: &Update) -> Result<(), UpdateError> {
        let (tel, tag) = (self.tel, self.tag);
        let doc = &mut *self.doc;
        // Stage::Apply covers the footprint probe, the edit and the
        // evaluator re-sync — everything proportional to the edit;
        // Stage::DirtyAccumulate the region bookkeeping. The two spans
        // split on ONE shared boundary reading: the tracer's hot-path
        // cost is the clock, so adjacent stages never read it twice at
        // their seam. (A failing apply returns before the boundary and
        // drops its open span — rejected updates carry no timing.)
        let t0 = tel.map(Telemetry::now_micros);
        // Capture what a deletion is about to remove, before it
        // happens (cost proportional to the doomed subtree, like the
        // deletion itself): the commit-time splice evicts exactly
        // these baseline entries instead of scanning for absentees.
        let doomed = match update {
            Update::DeleteSubtree { node } => doc.tree.subtree_nodes(*node).ok(),
            Update::DeleteNode { node } => doc.tree.node(*node).ok().map(|r| vec![r]),
            _ => None,
        };
        let (token, scope) = apply_undoable(&mut doc.tree, update)?;
        doc.ev.refresh_after(&doc.tree, &scope);
        let boundary = tel.map(|t| {
            let t1 = t.now_micros();
            t.record_span(Stage::Apply, tag, t1.saturating_sub(t0.unwrap_or(t1)));
            t1
        });
        if let Some(refs) = doomed {
            self.region.record_removals(&refs);
        }
        self.region.record(&doc.tree, &scope);
        if let (Some(t), Some(t1)) = (tel, boundary) {
            t.record_stage(Stage::DirtyAccumulate, tag, t1);
        }
        self.undo_stack.push(token);
        Ok(())
    }

    /// The accumulated dirty region of the batch so far (what a
    /// [`AdmissionMode::Delta`] commit will splice against).
    pub fn dirty_region(&self) -> &DirtyRegion {
        &self.region
    }

    /// Commits the batch: admission check, then re-certification.
    ///
    /// * Accepted: the working tree becomes the committed state, the
    ///   admission pass's range results become the new baseline **and**
    ///   the certification snapshots (no re-evaluation), and the commit
    ///   counter advances.
    /// * Rejected: the batch is unwound exactly ([`Session::rollback`])
    ///   before the [`Rejection`] is returned — the document is
    ///   byte-identical to its committed state.
    pub fn commit(self, signer: &Signer) -> Result<Commit, Rejection> {
        self.commit_with(signer, AdmissionMode::Delta)
    }

    /// [`commit`](Self::commit) with an explicit [`AdmissionMode`] —
    /// [`AdmissionMode::FullPass`] forces the pre-delta full `eval_set`
    /// admission (the differential harness's reference arm).
    pub fn commit_with(
        mut self,
        signer: &Signer,
        mode: AdmissionMode,
    ) -> Result<Commit, Rejection> {
        let (tel, tag) = (self.tel, self.tag);
        let admitted = match mode {
            // The delta path splices doc.base_sets in place: on success
            // they already ARE the admission pass's fresh range results,
            // on rejection they have been reverted to the committed
            // baselines.
            AdmissionMode::Delta => admit_delta_in_place_traced(
                &mut self.doc.ev,
                &self.doc.compiled,
                &self.doc.suite,
                &mut self.doc.base_sets,
                &self.region,
                tel,
                tag,
            )
            .map(|_journal| ()),
            AdmissionMode::FullPass => admit_traced(
                &mut self.doc.ev,
                &self.doc.compiled,
                &self.doc.suite,
                &self.doc.base_sets,
                tel,
                tag,
            )
            .map(|now_sets| self.doc.base_sets = now_sets),
        };
        match admitted {
            Ok(()) => {
                // Chain onto the outgoing certificate: its digest becomes
                // the new certificate's `prev_digest`, making the
                // document's certificate history a hash-linked chain
                // auditable from the journal alone (see `xuc-persist`).
                let prev = self.doc.cert.digest();
                let doc = &mut *self.doc;
                Telemetry::time(tel, Stage::Certify, tag, || {
                    doc.cert = signer.certify_chained(&doc.suite, &doc.base_sets, prev);
                });
                self.doc.commits += 1;
                self.open = false;
                Ok(Commit { commit: self.doc.commits })
            }
            Err(rejection) => {
                self.unwind();
                Err(rejection)
            }
        }
    }

    /// Abandons the batch: unwinds every applied update in LIFO order and
    /// re-syncs the evaluator. The document is left byte-identical to its
    /// committed state (exact child order — the undo tokens' position
    /// restoration invariant).
    pub fn rollback(mut self) {
        self.unwind();
    }

    fn unwind(&mut self) {
        unwind_batch(self.doc, &mut self.undo_stack);
        // The tree is back to the committed state: nothing is dirty.
        self.region.clear();
        self.open = false;
    }
}

/// Unwinds a LIFO stack of undo tokens over `doc` and re-syncs the warm
/// evaluator with **one pooled pass** — the rollback engine shared by
/// [`Session`] and the commit coalescer
/// ([`crate::coalesce`], which stacks several batches before deciding).
/// Nothing evaluates mid-unwind, so one re-sync covers the whole stack:
/// any structural undo forces the single re-walk (which subsumes the
/// patches); otherwise the O(1) patches replay in undo order
/// (non-structural edits keep the preorder layout fixed, so sequential
/// patching stays exact).
pub(crate) fn unwind_batch(doc: &mut Document, undo_stack: &mut Vec<Undo>) {
    let mut structural = false;
    let mut patches = Vec::new();
    while let Some(token) = undo_stack.pop() {
        // Invariant, not fallible IO: every token on the stack was
        // minted by applying an update to exactly this tree, and
        // LIFO replay restores the positions each token assumes.
        let scope = undo(&mut doc.tree, token).expect("undo token applies to its own tree");
        if scope.is_structural() {
            structural = true;
        } else {
            patches.push(scope);
        }
    }
    if structural {
        doc.ev.refresh(&doc.tree);
    } else {
        for scope in &patches {
            doc.ev.refresh_after(&doc.tree, scope);
        }
    }
}

impl Drop for Session<'_> {
    /// A dropped open session rolls back — a panicking or early-returning
    /// request handler can never leave a document mid-edit or its
    /// evaluator out of sync.
    fn drop(&mut self) {
        if self.open {
            self.unwind();
        }
    }
}
