//! Transactional update sessions over one document.
//!
//! A [`Session`] wraps one exclusive borrow of a [`Document`] (the caller
//! holds the document's mutex) in `begin / apply / commit / rollback`
//! semantics:
//!
//! * [`Session::apply`] edits the working tree through
//!   [`apply_undoable`], pushes the undo token, and re-syncs the warm
//!   evaluator **proportionally to the edit** via
//!   [`Evaluator::refresh_after`](xuc_xpath::Evaluator::refresh_after) and
//!   the returned [`EditScope`](xuc_xtree::EditScope) — the evaluator is
//!   never stale, at any point of the session;
//! * [`Session::commit`] runs the admission check ([`admit`]): one
//!   [`eval_set`](xuc_xpath::Evaluator::eval_set) pass over the suite's
//!   compiled automaton, compared against the committed baseline under
//!   Definition 2.3. Accepted batches re-certify the document from the
//!   very sets the check computed
//!   ([`Signer::certify_precomputed`](xuc_sigstore::Signer::certify_precomputed));
//!   rejected batches unwind;
//! * [`Session::rollback`] (and `Drop`, for abandoned sessions) unwinds
//!   the undo stack in LIFO order. Undo is an *exact* inverse (child
//!   positions restored), so the tree returns byte-identical to the
//!   committed state; the evaluator re-syncs once — structural edits pool
//!   into a single re-walk, pure relabel/id batches replay their O(1)
//!   patches.

use crate::store::Document;
use std::collections::BTreeSet;
use xuc_automata::CompiledPatternSet;
use xuc_core::Constraint;
use xuc_sigstore::Signer;
use xuc_xpath::Evaluator;
use xuc_xtree::{apply_undoable, undo, NodeRef, Undo, Update, UpdateError};

/// A committed batch's receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// The document's commit number after this batch (1 for the first
    /// accepted batch after publish).
    pub commit: u64,
}

/// Why a batch failed admission. The session has already rolled back
/// when a `Rejection` is returned.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The first violated constraint (suite order).
    pub constraint: Constraint,
    /// Nodes inserted into (↓) or removed from (↑) its range.
    pub offenders: usize,
}

/// The admission check: evaluates the whole suite in **one**
/// [`eval_set`](Evaluator::eval_set) pass over `compiled` and compares
/// each range against the committed baseline under Definition 2.3
/// (`⊆` for ↓, `⊇` for ↑ — via
/// [`ConstraintKind::satisfied_on`](xuc_core::ConstraintKind::satisfied_on)).
///
/// Returns the fresh range results on success (the caller re-uses them as
/// the next baseline and as certification snapshots), or the first
/// violation in suite order. Exposed for the E-SVC experiment, which
/// measures this exact function under cached vs per-request-recompiled
/// automata.
pub fn admit(
    ev: &mut Evaluator,
    compiled: &CompiledPatternSet,
    suite: &[Constraint],
    base_sets: &[BTreeSet<NodeRef>],
) -> Result<Vec<BTreeSet<NodeRef>>, Rejection> {
    debug_assert_eq!(suite.len(), base_sets.len(), "one baseline per constraint");
    let now_sets = ev.eval_set(compiled);
    for ((c, base), now) in suite.iter().zip(base_sets).zip(&now_sets) {
        if !c.kind.satisfied_on(base, now) {
            let offenders = c.kind.offenders_on(base, now).len();
            return Err(Rejection { constraint: c.clone(), offenders });
        }
    }
    Ok(now_sets)
}

/// An open transaction on one document. See the module docs.
pub struct Session<'a> {
    doc: &'a mut Document,
    undo_stack: Vec<Undo>,
    open: bool,
}

impl<'a> Session<'a> {
    /// Opens a transaction. Free: the baseline range results were cached
    /// by the last commit (or publish), so nothing is evaluated here.
    pub fn begin(doc: &'a mut Document) -> Session<'a> {
        Session { doc, undo_stack: Vec::new(), open: true }
    }

    /// Number of updates applied so far.
    pub fn applied(&self) -> usize {
        self.undo_stack.len()
    }

    /// Applies one update to the working tree and re-syncs the evaluator
    /// in time proportional to the edit. On error the tree is untouched
    /// (the primitive either applies fully or not at all) and the session
    /// stays usable — the caller decides whether to continue or roll
    /// back.
    pub fn apply(&mut self, update: &Update) -> Result<(), UpdateError> {
        let (token, scope) = apply_undoable(&mut self.doc.tree, update)?;
        self.doc.ev.refresh_after(&self.doc.tree, &scope);
        self.undo_stack.push(token);
        Ok(())
    }

    /// Commits the batch: admission check, then re-certification.
    ///
    /// * Accepted: the working tree becomes the committed state, the
    ///   admission pass's range results become the new baseline **and**
    ///   the certification snapshots (no re-evaluation), and the commit
    ///   counter advances.
    /// * Rejected: the batch is unwound exactly ([`Session::rollback`])
    ///   before the [`Rejection`] is returned — the document is
    ///   byte-identical to its committed state.
    pub fn commit(mut self, signer: &Signer) -> Result<Commit, Rejection> {
        match admit(&mut self.doc.ev, &self.doc.compiled, &self.doc.suite, &self.doc.base_sets) {
            Ok(now_sets) => {
                self.doc.cert = signer.certify_precomputed(&self.doc.suite, &now_sets);
                self.doc.base_sets = now_sets;
                self.doc.commits += 1;
                self.open = false;
                Ok(Commit { commit: self.doc.commits })
            }
            Err(rejection) => {
                self.unwind();
                Err(rejection)
            }
        }
    }

    /// Abandons the batch: unwinds every applied update in LIFO order and
    /// re-syncs the evaluator. The document is left byte-identical to its
    /// committed state (exact child order — the undo tokens' position
    /// restoration invariant).
    pub fn rollback(mut self) {
        self.unwind();
    }

    fn unwind(&mut self) {
        let mut structural = false;
        let mut patches = Vec::new();
        while let Some(token) = self.undo_stack.pop() {
            let scope =
                undo(&mut self.doc.tree, token).expect("undo token applies to its own tree");
            if scope.is_structural() {
                structural = true;
            } else {
                patches.push(scope);
            }
        }
        // Nothing evaluates mid-unwind, so one re-sync covers the whole
        // stack: any structural undo forces the single re-walk (which
        // subsumes the patches); otherwise the O(1) patches replay in
        // undo order (non-structural edits keep the preorder layout
        // fixed, so sequential patching stays exact).
        if structural {
            self.doc.ev.refresh(&self.doc.tree);
        } else {
            for scope in &patches {
                self.doc.ev.refresh_after(&self.doc.tree, scope);
            }
        }
        self.open = false;
    }
}

impl Drop for Session<'_> {
    /// A dropped open session rolls back — a panicking or early-returning
    /// request handler can never leave a document mid-edit or its
    /// evaluator out of sync.
    fn drop(&mut self) {
        if self.open {
            self.unwind();
        }
    }
}
