//! Seeded request streams for tests, experiments and examples.
//!
//! The generator is **deterministic per seed**, and — crucially for the
//! worker-count determinism contract — all nondeterminism is resolved
//! here, at *generation* time: fresh node ids for inserts are minted into
//! the [`Request`] values themselves, so replaying one generated stream
//! into two gateways (or into the same gateway shape at different worker
//! counts) presents byte-identical inputs.
//!
//! Updates are drawn against each document's **initial** node-id
//! population. As accepted batches mutate the documents, later requests
//! can reference ids that no longer exist or try cycle-creating moves —
//! exactly the malformed traffic a real gateway sees, and determinism
//! must (and does) hold for those rejection paths too.

use crate::queue::Arrival;
use crate::{DocId, Request};
use xuc_core::Constraint;
use xuc_xtree::{DataTree, Label, NodeId, Update};

/// A deployment blueprint — `(id, initial tree, suite)` per document —
/// the shape determinism tests and experiments publish into each
/// gateway under comparison (clone the trees per gateway so every run
/// starts identical).
pub type Deployment = Vec<(DocId, DataTree, Vec<Constraint>)>;

/// A tiny SplitMix64 — self-contained so a stream only depends on the
/// seed, never on another crate's RNG evolution. Public so differential
/// and fuzz harnesses draw from the exact same generator instead of
/// copying it.
pub struct SplitMix(u64);

impl SplitMix {
    pub fn new(seed: u64) -> SplitMix {
        SplitMix(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Near-uniform draw from `0..n` (widening multiply, one draw).
    pub fn below(&mut self, n: usize) -> usize {
        (((self.next_u64() as u128) * (n.max(1) as u128)) >> 64) as usize
    }
}

/// One random primitive update against a fixed id/label population.
fn random_update(rng: &mut SplitMix, ids: &[NodeId], labels: &[Label]) -> Update {
    match rng.below(5) {
        0 => Update::InsertLeaf {
            parent: ids[rng.below(ids.len())],
            id: NodeId::fresh(),
            label: labels[rng.below(labels.len())],
        },
        1 => Update::DeleteSubtree { node: ids[rng.below(ids.len())] },
        2 => Update::DeleteNode { node: ids[rng.below(ids.len())] },
        3 => {
            Update::Move { node: ids[rng.below(ids.len())], new_parent: ids[rng.below(ids.len())] }
        }
        _ => Update::Relabel {
            node: ids[rng.below(ids.len())],
            label: labels[rng.below(labels.len())],
        },
    }
}

/// Per-document draw pools: `(id, initial node ids, label palette)`.
fn draw_pools(
    docs: &[(DocId, &DataTree)],
    extra_labels: &[&str],
) -> Vec<(DocId, Vec<NodeId>, Vec<Label>)> {
    assert!(!docs.is_empty(), "need at least one document");
    docs.iter()
        .map(|(id, tree)| {
            let mut labels = tree.labels();
            labels.extend(extra_labels.iter().map(|l| Label::new(l)));
            // Sort by name, not by the interned handle: `Label`'s `Ord` is
            // interning order, which depends on process-global history —
            // the stream must be a pure function of the inputs.
            labels.sort_by_key(|l| l.as_str());
            labels.dedup();
            (*id, tree.node_ids(), labels)
        })
        .collect()
}

/// A deterministic stream of `count` requests spread round-robin-ish over
/// `docs` (each draw picks a document uniformly), each carrying 1–3
/// updates over that document's initial node population plus `extra`
/// labels. Same `(docs, extra, seed, count)` ⇒ byte-identical stream.
pub fn seeded_requests(
    docs: &[(DocId, &DataTree)],
    extra_labels: &[&str],
    seed: u64,
    count: usize,
) -> Vec<Request> {
    let pools = draw_pools(docs, extra_labels);
    let mut rng = SplitMix(seed);
    (0..count)
        .map(|_| {
            let (doc, ids, labels) = &pools[rng.below(pools.len())];
            let updates =
                (0..1 + rng.below(3)).map(|_| random_update(&mut rng, ids, labels)).collect();
            Request { doc: *doc, updates }
        })
        .collect()
}

/// [`seeded_requests`] with **Zipfian document skew**: draw `i` (0-based
/// position in `docs`) gets weight `1/(i+1)^s`, with `s` given in
/// hundredths (`skew_centi = 99` ⇒ s = 0.99 — the classic hot-document
/// workload where the first document soaks up a fifth of the traffic).
/// `skew_centi = 0` degrades to a uniform draw (though not the same
/// stream as [`seeded_requests`]: the selection consumes the RNG
/// differently). Same inputs ⇒ byte-identical stream, so differential
/// arms can replay one stream into gateways under comparison.
pub fn seeded_zipf_requests(
    docs: &[(DocId, &DataTree)],
    extra_labels: &[&str],
    seed: u64,
    count: usize,
    skew_centi: u32,
) -> Vec<Request> {
    let pools = draw_pools(docs, extra_labels);
    let s = skew_centi as f64 / 100.0;
    let weights: Vec<f64> = (0..pools.len()).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = SplitMix(seed);
    (0..count)
        .map(|_| {
            // A 53-bit fraction of the total weight, walked cumulatively.
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut acc = 0.0;
            let mut pick = pools.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                acc += w;
                if u < acc {
                    pick = i;
                    break;
                }
            }
            let (doc, ids, labels) = &pools[pick];
            let updates =
                (0..1 + rng.below(3)).map(|_| random_update(&mut rng, ids, labels)).collect();
            Request { doc: *doc, updates }
        })
        .collect()
}

/// A timed open-loop arrival stream for the admission queues
/// ([`Gateway::process_open_loop`](crate::Gateway::process_open_loop)):
/// `per_tick` arrivals share each virtual tick (so `per_tick` above a
/// shard's service rate is overload by construction), `read_pct` percent
/// of them are read-class, and — when `deadline_slack` is set — every
/// arrival must start service within that many ticks or be shed. Same
/// inputs ⇒ byte-identical stream, like [`seeded_requests`].
pub fn seeded_arrivals(
    docs: &[(DocId, &DataTree)],
    extra_labels: &[&str],
    seed: u64,
    count: usize,
    per_tick: usize,
    read_pct: usize,
    deadline_slack: Option<u64>,
) -> Vec<Arrival> {
    let requests = seeded_requests(docs, extra_labels, seed, count);
    let mut rng = SplitMix(seed ^ 0xA11_1FA1);
    requests
        .into_iter()
        .enumerate()
        .map(|(i, request)| {
            let at = (i / per_tick.max(1)) as u64;
            let read = rng.below(100) < read_pct.min(100);
            let mut a =
                if read { Arrival::read_of(request.doc, at) } else { Arrival::commit(request, at) };
            if let Some(slack) = deadline_slack {
                a = a.with_deadline(at + slack);
            }
            a
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_xtree::parse_term;

    #[test]
    fn streams_are_seed_deterministic() {
        let t1 = parse_term("r(a#1(b#2),c#3)").unwrap();
        let t2 = parse_term("h(p#10(v#11))").unwrap();
        let docs = vec![(DocId::new("one"), &t1), (DocId::new("two"), &t2)];
        let a = seeded_requests(&docs, &["x"], 42, 50);
        let b = seeded_requests(&docs, &["x"], 42, 50);
        // Everything except freshly minted insert ids must coincide; the
        // rendered form (which includes ids) differs only on inserts.
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.doc, rb.doc);
            assert_eq!(ra.updates.len(), rb.updates.len());
            for (ua, ub) in ra.updates.iter().zip(&rb.updates) {
                match (ua, ub) {
                    (
                        Update::InsertLeaf { parent: pa, label: la, .. },
                        Update::InsertLeaf { parent: pb, label: lb, .. },
                    ) => assert_eq!((pa, la), (pb, lb)),
                    _ => assert_eq!(ua, ub),
                }
            }
        }
        let c = seeded_requests(&docs, &["x"], 43, 50);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.doc != y.doc || x.updates.len() != y.updates.len()),
            "different seeds must differ"
        );
    }

    #[test]
    fn arrival_streams_mix_classes_deterministically() {
        let t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let docs = vec![(DocId::new("one"), &t), (DocId::new("two"), &t)];
        let a = seeded_arrivals(&docs, &[], 11, 120, 4, 30, Some(2));
        let b = seeded_arrivals(&docs, &[], 11, 120, 4, 30, Some(2));
        assert_eq!(a.len(), 120);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.read, x.at, x.deadline, x.request.doc),
                (y.read, y.at, y.deadline, y.request.doc)
            );
        }
        // Ticks are nondecreasing, four arrivals share each one, both
        // classes occur, deadlines carry the slack.
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(a[3].at, 0);
        assert_eq!(a[4].at, 1);
        assert!(a.iter().any(|x| x.read) && a.iter().any(|x| !x.read));
        assert!(a.iter().all(|x| x.deadline == Some(x.at + 2)));
        assert!(a.iter().filter(|x| x.read).all(|x| x.request.updates.is_empty()));
        let c = seeded_arrivals(&docs, &[], 11, 120, 4, 30, None);
        assert!(c.iter().all(|x| x.deadline.is_none()));
    }

    #[test]
    fn zipf_streams_skew_deterministically() {
        let t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let docs: Vec<(DocId, &DataTree)> =
            (0..8).map(|i| (DocId::new(&format!("z{i}")), &t)).collect();
        let hot = seeded_zipf_requests(&docs, &[], 99, 800, 99);
        let again = seeded_zipf_requests(&docs, &[], 99, 800, 99);
        assert_eq!(hot.len(), 800);
        for (a, b) in hot.iter().zip(&again) {
            assert_eq!((a.doc, a.updates.len()), (b.doc, b.updates.len()));
        }
        let count = |reqs: &[Request], d: DocId| reqs.iter().filter(|r| r.doc == d).count();
        // s = 0.99 over 8 docs: the hot document takes roughly 28% of the
        // traffic and strictly dominates the coldest.
        let hottest = count(&hot, docs[0].0);
        let coldest = count(&hot, docs[7].0);
        assert!(hottest > 2 * coldest, "skew must concentrate: {hottest} vs {coldest}");
        assert!(hottest > 800 / 5, "hot doc well above the uniform share: {hottest}");
        // s = 0 degrades to a uniform draw: every doc near 100 ± slack.
        let flat = seeded_zipf_requests(&docs, &[], 99, 800, 0);
        for (d, _) in &docs {
            let c = count(&flat, *d);
            assert!((60..=140).contains(&c), "uniform draw strayed: {d} got {c}");
        }
    }

    #[test]
    fn streams_cover_all_documents_and_op_kinds() {
        let t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let docs = vec![(DocId::new("one"), &t), (DocId::new("two"), &t)];
        let reqs = seeded_requests(&docs, &[], 7, 200);
        assert!(reqs.iter().any(|r| r.doc == DocId::new("one")));
        assert!(reqs.iter().any(|r| r.doc == DocId::new("two")));
        let mut kinds = [false; 5];
        for u in reqs.iter().flat_map(|r| &r.updates) {
            let k = match u {
                Update::InsertLeaf { .. } => 0,
                Update::DeleteSubtree { .. } => 1,
                Update::DeleteNode { .. } => 2,
                Update::Move { .. } => 3,
                Update::Relabel { .. } => 4,
                Update::ReplaceId { .. } => unreachable!("generator never re-identifies"),
            };
            kinds[k] = true;
        }
        assert!(kinds.iter().all(|&k| k), "all op kinds drawn: {kinds:?}");
    }
}
