//! The gateway's metric set: pre-registered handles for every service
//! counter, `RecordInto` impls for the crate's ad-hoc stats structs, and
//! the scrape points that fold the process-global counters of the crates
//! *below* telemetry (`xuc-xpath`, `xuc-persist`) into one registry.
//!
//! # Determinism classification
//!
//! Every metric declares whether its final value is a pure function of
//! the request stream ([`Determinism::Deterministic`] — byte-identical
//! at 1, 2 or 8 workers, pinned by the differential suites) or an
//! artifact of thread scheduling ([`Determinism::SchedulingDependent`]).
//! The line is drawn conservatively:
//!
//! * verdict counts (accept / violation / failed-update / unknown /
//!   internal / served reads) and shed causes are **deterministic** —
//!   they restate the verdict log, which is the determinism contract's
//!   subject, and [`plan_admission`](crate::plan_admission) is pure;
//! * panic containments and quarantine entries are **deterministic** —
//!   panics fire per document in per-document order;
//! * degraded-mode refusals and transitions are **scheduling-dependent**:
//!   a mid-run journal fault lands between two racing commits at a
//!   timing-defined point, so which requests see the degraded gate moves
//!   with the schedule;
//! * steal counts, queue-depth high-water marks and coalesce counters
//!   are **scheduling-dependent** by construction (which worker claims a
//!   unit, and how long a hot document's run grows, is timing);
//! * every *scraped* counter ([`scrape_engine_metrics`],
//!   [`scrape_persist_metrics`]) is classified scheduling-dependent even
//!   when the underlying quantity is per-gateway deterministic (WAL
//!   frames, splice commits): the sources are process-global atomics
//!   shared by every gateway in the process, so concurrently-running
//!   harnesses fold into the same totals.

use crate::gateway::CoalesceStats;
use crate::queue::LoadReport;
use crate::{RejectReason, ShedCause, Verdict};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xuc_telemetry::{Counter, Determinism, Gauge, MetricsRegistry, RecordInto, Telemetry};

/// The gateway's pre-registered metric handles plus the shared
/// [`Telemetry`] bundle. Built once at
/// [`Gateway::attach_telemetry`](crate::Gateway::attach_telemetry);
/// the hot path touches only the handles (relaxed atomic adds), never
/// the registry map.
pub(crate) struct ServiceMetrics {
    pub(crate) tel: Arc<Telemetry>,
    /// Monotonic per-gateway request sequence; its low 16 bits tag the
    /// trace-ring spans of one request so a drained ring can be grouped
    /// back into per-request traces.
    pub(crate) trace_seq: AtomicU64,
    commits_accepted: Counter,
    reads_served: Counter,
    rejected_violation: Counter,
    rejected_failed_update: Counter,
    rejected_unknown: Counter,
    rejected_internal: Counter,
    rejected_degraded: Counter,
    shed_queue_full: Counter,
    shed_deadline: Counter,
    shed_for_commit: Counter,
    panics_contained: Counter,
    quarantines_entered: Counter,
    degraded_transitions: Counter,
    resumes: Counter,
    halts: Counter,
    steals: Counter,
    ready_queue_depth_peak: Gauge,
}

impl ServiceMetrics {
    pub(crate) fn new(tel: Arc<Telemetry>) -> ServiceMetrics {
        let reg = tel.registry();
        let det = Determinism::Deterministic;
        let sched = Determinism::SchedulingDependent;
        ServiceMetrics {
            trace_seq: AtomicU64::new(0),
            commits_accepted: reg.counter("xuc_gateway_commits_accepted_total", det),
            reads_served: reg.counter("xuc_gateway_reads_served_total", det),
            rejected_violation: reg.counter("xuc_gateway_rejected_violation_total", det),
            rejected_failed_update: reg.counter("xuc_gateway_rejected_failed_update_total", det),
            rejected_unknown: reg.counter("xuc_gateway_rejected_unknown_document_total", det),
            rejected_internal: reg.counter("xuc_gateway_rejected_internal_total", det),
            rejected_degraded: reg.counter("xuc_gateway_rejected_degraded_total", sched),
            shed_queue_full: reg.counter("xuc_gateway_shed_queue_full_total", det),
            shed_deadline: reg.counter("xuc_gateway_shed_deadline_expired_total", det),
            shed_for_commit: reg.counter("xuc_gateway_shed_for_commit_total", det),
            panics_contained: reg.counter("xuc_gateway_panics_contained_total", det),
            quarantines_entered: reg.counter("xuc_gateway_quarantines_entered_total", det),
            degraded_transitions: reg.counter("xuc_gateway_degraded_transitions_total", sched),
            resumes: reg.counter("xuc_gateway_resumes_total", sched),
            halts: reg.counter("xuc_gateway_halts_total", sched),
            steals: reg.counter("xuc_gateway_shard_steals_total", sched),
            ready_queue_depth_peak: reg.gauge("xuc_gateway_ready_queue_depth_peak", sched),
            tel,
        }
    }

    /// Restates one verdict as a counter bump. `stripe` spreads
    /// concurrent workers across counter shards (any per-request value
    /// works; the gateway passes its trace tag).
    pub(crate) fn note_verdict(&self, v: &Verdict, stripe: usize) {
        let c = match v {
            Verdict::Accepted { .. } => &self.commits_accepted,
            Verdict::Served => &self.reads_served,
            Verdict::Rejected(RejectReason::Violation { .. }) => &self.rejected_violation,
            Verdict::Rejected(RejectReason::FailedUpdate { .. }) => &self.rejected_failed_update,
            Verdict::Rejected(RejectReason::UnknownDocument) => &self.rejected_unknown,
            Verdict::Rejected(RejectReason::Internal { .. }) => &self.rejected_internal,
            Verdict::Rejected(RejectReason::Degraded { .. }) => &self.rejected_degraded,
            Verdict::Rejected(RejectReason::Overloaded { cause }) => match cause {
                ShedCause::QueueFull => &self.shed_queue_full,
                ShedCause::DeadlineExpired => &self.shed_deadline,
                ShedCause::ShedForCommit => &self.shed_for_commit,
            },
        };
        c.add_striped(stripe, 1);
    }

    pub(crate) fn note_contained_panic(&self, quarantined_now: bool) {
        self.panics_contained.inc();
        if quarantined_now {
            self.quarantines_entered.inc();
        }
    }

    pub(crate) fn note_degraded_transition(&self) {
        self.degraded_transitions.inc();
    }

    pub(crate) fn note_resume(&self) {
        self.resumes.inc();
    }

    pub(crate) fn note_halt(&self) {
        self.halts.inc();
    }

    pub(crate) fn note_steal(&self, stripe: usize) {
        self.steals.add_striped(stripe, 1);
    }

    pub(crate) fn note_ready_depth(&self, depth: usize) {
        self.ready_queue_depth_peak.raise_to(depth as i64);
    }

    pub(crate) fn next_tag(&self) -> u16 {
        self.trace_seq.fetch_add(1, Ordering::Relaxed) as u16
    }
}

impl RecordInto for CoalesceStats {
    /// Coalescing is a timing artifact in throughput mode (how long a
    /// hot document's queued run grows before a worker claims it), so
    /// all three counters are scheduling-dependent.
    fn record_into(&self, reg: &MetricsRegistry) {
        let sched = Determinism::SchedulingDependent;
        reg.counter("xuc_coalesce_attempts_total", sched).set_absolute(self.attempts);
        reg.counter("xuc_coalesce_commits_total", sched).set_absolute(self.commits);
        reg.counter("xuc_coalesce_batches_total", sched).set_absolute(self.batches);
    }
}

impl RecordInto for LoadReport {
    /// Shed/serve accounting is a pure function of the arrival stream
    /// ([`plan_admission`](crate::plan_admission)), so every series is
    /// deterministic.
    fn record_into(&self, reg: &MetricsRegistry) {
        let det = Determinism::Deterministic;
        reg.counter("xuc_load_offered_total", det).set_absolute(self.offered as u64);
        reg.counter("xuc_load_served_total", det).set_absolute(self.served as u64);
        reg.counter("xuc_load_shed_queue_full_total", det)
            .set_absolute(self.shed_queue_full as u64);
        reg.counter("xuc_load_shed_deadline_total", det).set_absolute(self.shed_deadline as u64);
        reg.counter("xuc_load_shed_for_commit_total", det)
            .set_absolute(self.shed_for_commit as u64);
        reg.counter("xuc_load_reads_offered_total", det).set_absolute(self.reads_offered as u64);
        reg.counter("xuc_load_reads_served_total", det).set_absolute(self.reads_served as u64);
        reg.counter("xuc_load_commits_offered_total", det)
            .set_absolute(self.commits_offered as u64);
        reg.counter("xuc_load_commits_served_total", det).set_absolute(self.commits_served as u64);
    }
}

/// Scrapes the XPath engine's process-global counters
/// ([`xuc_xpath::engine_counters`]) into `reg`. Process-global, hence
/// scheduling-dependent (see the module docs); call at snapshot points,
/// not concurrently with another scrape of the same registry.
pub fn scrape_engine_metrics(reg: &MetricsRegistry) {
    let sched = Determinism::SchedulingDependent;
    let c = xuc_xpath::engine_counters();
    reg.counter("xuc_engine_eval_set_sweeps_total", sched).set_absolute(c.eval_set_sweeps);
    reg.counter("xuc_engine_fallback_pattern_evals_total", sched)
        .set_absolute(c.fallback_pattern_evals);
    reg.counter("xuc_engine_splice_attempts_total", sched).set_absolute(c.splice_attempts);
    reg.counter("xuc_engine_splice_commits_total", sched).set_absolute(c.splice_commits);
    reg.counter("xuc_engine_splice_declined_total", sched).set_absolute(c.splice_declined);
    reg.counter("xuc_engine_dirty_roots_swept_total", sched).set_absolute(c.dirty_roots_swept);
    reg.counter("xuc_engine_dirty_nodes_swept_total", sched).set_absolute(c.dirty_nodes_swept);
}

/// Scrapes the durability layer's process-global counters
/// ([`xuc_persist::persist_counters`]) into `reg`. Same caveats as
/// [`scrape_engine_metrics`].
pub fn scrape_persist_metrics(reg: &MetricsRegistry) {
    let sched = Determinism::SchedulingDependent;
    let c = xuc_persist::persist_counters();
    reg.counter("xuc_persist_wal_frames_total", sched).set_absolute(c.wal_frames);
    reg.counter("xuc_persist_wal_bytes_total", sched).set_absolute(c.wal_bytes);
    reg.counter("xuc_persist_wal_flushes_total", sched).set_absolute(c.wal_flushes);
    reg.counter("xuc_persist_wal_fsyncs_total", sched).set_absolute(c.wal_fsyncs);
    reg.counter("xuc_persist_wal_truncations_total", sched).set_absolute(c.wal_truncations);
    reg.counter("xuc_persist_snapshot_installs_total", sched).set_absolute(c.snapshot_installs);
    reg.counter("xuc_persist_retries_transient_total", sched).set_absolute(c.retries_transient);
    reg.counter("xuc_persist_faults_fatal_total", sched).set_absolute(c.faults_fatal);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_stats_record_into_registry() {
        let reg = MetricsRegistry::new();
        CoalesceStats { attempts: 5, commits: 3, batches: 12 }.record_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("xuc_coalesce_attempts_total"), Some(5));
        assert_eq!(snap.counter("xuc_coalesce_commits_total"), Some(3));
        assert_eq!(snap.counter("xuc_coalesce_batches_total"), Some(12));
    }

    #[test]
    fn load_report_record_into_is_deterministic_class() {
        let reg = MetricsRegistry::new();
        let report = LoadReport {
            offered: 10,
            served: 8,
            shed_queue_full: 1,
            shed_deadline: 1,
            shed_for_commit: 0,
            reads_offered: 4,
            reads_served: 3,
            commits_offered: 6,
            commits_served: 5,
        };
        report.record_into(&reg);
        let det = reg.snapshot().exposition_deterministic();
        assert!(det.contains("xuc_load_offered_total{class=\"deterministic\"} 10"));
        assert!(det.contains("xuc_load_served_total{class=\"deterministic\"} 8"));
    }

    #[test]
    fn scrapes_register_every_series() {
        let reg = MetricsRegistry::new();
        scrape_engine_metrics(&reg);
        scrape_persist_metrics(&reg);
        let snap = reg.snapshot();
        assert!(snap.counter("xuc_engine_eval_set_sweeps_total").is_some());
        assert!(snap.counter("xuc_persist_wal_frames_total").is_some());
        // Re-scraping must re-fetch, never conflict.
        scrape_engine_metrics(&reg);
        scrape_persist_metrics(&reg);
    }
}
