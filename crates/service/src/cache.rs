//! Memoized set-at-a-time compilation of constraint suites.
//!
//! Admission checks evaluate a document's whole constraint suite per
//! request. Compiling the suite into one tagged DFA
//! ([`PatternSetCompiler`]) makes the evaluation itself cheap
//! ([`xuc_xpath::Evaluator::eval_set`]: one automaton step per node), but
//! compilation is orders of magnitude more expensive than a single pass —
//! paying it per request would erase the win (the E-SVC experiment
//! measures exactly this). The cache pays compilation **once per distinct
//! suite**: documents published under the same policy share one
//! [`CompiledPatternSet`] behind an [`Arc`].
//!
//! Keys are canonical-serialization fingerprints
//! ([`xuc_xpath::fingerprint`]) of the suite **in sequence order** with
//! each range's update type mixed in — positional, because acceptance-row
//! bit `i` of the compiled automaton means "range of constraint `i`".
//! Fingerprints are 64-bit hashes, so each bucket also stores the
//! canonical entry strings and compares them on lookup: a collision costs
//! a duplicate compile, never a wrong automaton.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xuc_automata::{CompiledPatternSet, PatternSetCompiler};
use xuc_core::Constraint;
use xuc_xpath::Fingerprinter;

/// The canonical positional key of a suite: the sequence fingerprint and
/// the exact entry strings it digests (collision guard).
fn suite_key(suite: &[Constraint]) -> (u64, Vec<String>) {
    let mut fp = Fingerprinter::new();
    fp.write_u64(suite.len() as u64);
    let entries: Vec<String> = suite
        .iter()
        .map(|c| {
            let s = c.to_string();
            fp.write_str(&s);
            s
        })
        .collect();
    (fp.finish(), entries)
}

/// One fingerprint's compiled suites (more than one entry only on a
/// 64-bit collision; the canonical entry strings disambiguate).
type Bucket = Vec<(Vec<String>, Arc<CompiledPatternSet>)>;

/// A concurrent memo table `suite → Arc<CompiledPatternSet>`.
///
/// ```
/// use xuc_core::parse_constraint;
/// use xuc_service::SuiteCache;
///
/// let suite = vec![parse_constraint("(/a/b, ↑)").unwrap()];
/// let cache = SuiteCache::new();
/// let first = cache.get_or_compile(&suite);
/// let again = cache.get_or_compile(&suite);
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
pub struct SuiteCache {
    map: Mutex<HashMap<u64, Bucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SuiteCache {
    pub fn new() -> SuiteCache {
        SuiteCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The compiled automaton of `suite`'s range batch, compiling it on
    /// first sight. Compilation happens under the table lock: it only
    /// runs on publish-time misses, and holding the lock guarantees one
    /// shared `Arc` per suite instead of racing duplicate compiles.
    pub fn get_or_compile(&self, suite: &[Constraint]) -> Arc<CompiledPatternSet> {
        let (fp, entries) = suite_key(suite);
        let mut map = self.map.lock();
        let bucket = map.entry(fp).or_default();
        if let Some((_, compiled)) = bucket.iter().find(|(k, _)| *k == entries) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(compiled);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(PatternSetCompiler::compile(suite.iter().map(|c| &c.range)));
        bucket.push((entries, Arc::clone(&compiled)));
        compiled
    }

    /// Lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that compiled.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct suites held.
    pub fn len(&self) -> usize {
        self.map.lock().values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SuiteCache {
    fn default() -> Self {
        SuiteCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;

    fn suite(specs: &[&str]) -> Vec<Constraint> {
        specs.iter().map(|s| parse_constraint(s).unwrap()).collect()
    }

    #[test]
    fn same_suite_shares_one_automaton() {
        let cache = SuiteCache::new();
        let a = suite(&["(/a/b, ↑)", "(//c, ↓)"]);
        let first = cache.get_or_compile(&a);
        let again = cache.get_or_compile(&a.clone());
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!((cache.misses(), cache.hits(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn order_and_kind_are_part_of_the_key() {
        // Positional key: acceptance-row bit i means constraint i, so a
        // reordered suite must NOT share the compiled automaton; neither
        // may the same ranges under different update types.
        let cache = SuiteCache::new();
        let _ = cache.get_or_compile(&suite(&["(/a, ↑)", "(/b, ↑)"]));
        let _ = cache.get_or_compile(&suite(&["(/b, ↑)", "(/a, ↑)"]));
        let _ = cache.get_or_compile(&suite(&["(/a, ↓)", "(/b, ↑)"]));
        assert_eq!((cache.misses(), cache.hits(), cache.len()), (3, 0, 3));
    }

    #[test]
    fn compiled_output_answers_the_full_suite() {
        // Mixed batch: the predicate range rides along as a fallback.
        let cache = SuiteCache::new();
        let s = suite(&["(/a/b, ↑)", "(/a[/c], ↓)"]);
        let compiled = cache.get_or_compile(&s);
        assert_eq!(compiled.pattern_count(), 2);
        assert_eq!(compiled.fallback_count(), 1);
    }
}
