//! The sharded document store.
//!
//! Documents live behind two lock levels, in the pod-style shape of the
//! ROADMAP's serving scenario ("many independent documents behind one
//! admission front-end"):
//!
//! * the store is split into 16 shards, each a
//!   `parking_lot::RwLock` over its id → document map — publishes take
//!   one shard's write lock, lookups a read lock, and traffic against
//!   different documents only ever contends on the (brief) shard lock;
//! * each document sits behind its own `parking_lot::Mutex`, held for
//!   the duration of one [`Session`](crate::Session) — per-document
//!   serialization is exactly the atomicity a transactional update batch
//!   needs, and is what makes the gateway's accept/reject log a pure
//!   function of per-document request order (see
//!   [`Gateway::process`](crate::Gateway::process)).
//!
//! The **lock order discipline**: shard lock first, then document mutex;
//! shard locks are never held while a document mutex is held (lookups
//! clone the document's `Arc` and release the shard). No code path takes
//! two shard locks or two document locks at once, so deadlock is
//! impossible by construction.

use crate::cache::SuiteCache;
use crate::DocId;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use xuc_automata::CompiledPatternSet;
use xuc_core::Constraint;
use xuc_sigstore::{Certificate, Signer};
use xuc_xpath::{Evaluator, Pattern};
use xuc_xtree::{DataTree, NodeRef};

/// Number of store shards. Sixteen is plenty for the shard lock to stop
/// mattering: it is only held for map lookups, never across evaluation.
/// The admission queues of [`crate::queue`] are per-shard too, so the
/// overload unit matches the contention unit.
pub(crate) const STORE_SHARDS: usize = 16;

/// One served document: its tree, the warm evaluator bound to it, its
/// constraint suite (with the suite's compiled automaton shared through
/// the [`SuiteCache`]), the committed range results the next admission
/// check compares against, and the current certificate.
pub struct Document {
    id: DocId,
    pub(crate) tree: DataTree,
    pub(crate) ev: Evaluator,
    pub(crate) suite: Vec<Constraint>,
    pub(crate) compiled: Arc<CompiledPatternSet>,
    /// `suite[i].range`'s evaluation on the committed tree — the
    /// admission baseline, refreshed on every commit.
    pub(crate) base_sets: Vec<BTreeSet<NodeRef>>,
    pub(crate) cert: Certificate,
    pub(crate) commits: u64,
}

impl Document {
    fn open(
        id: DocId,
        tree: DataTree,
        suite: Vec<Constraint>,
        compiled: Arc<CompiledPatternSet>,
        signer: &Signer,
    ) -> Document {
        let mut ev = Evaluator::new(&tree);
        let base_sets = ev.eval_set(&*compiled);
        let cert = signer.certify_precomputed(&suite, &base_sets);
        Document { id, tree, ev, suite, compiled, base_sets, cert, commits: 0 }
    }

    /// Reassembles a document from persisted state (the recovery path).
    /// The snapshot's baselines, certificate and commit counter are
    /// trusted as the committed state — only the warm evaluator is
    /// rebuilt, and the suite's automaton comes back through the cache
    /// (recovered documents under one policy still share one compile).
    pub(crate) fn restore(
        id: DocId,
        tree: DataTree,
        suite: Vec<Constraint>,
        compiled: Arc<CompiledPatternSet>,
        base_sets: Vec<BTreeSet<NodeRef>>,
        cert: Certificate,
        commits: u64,
    ) -> Document {
        let ev = Evaluator::new(&tree);
        Document { id, tree, ev, suite, compiled, base_sets, cert, commits }
    }

    pub fn id(&self) -> DocId {
        self.id
    }

    /// The committed tree (callers holding the document lock between
    /// sessions see the last committed state; mid-session, the working
    /// state).
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    pub fn suite(&self) -> &[Constraint] {
        &self.suite
    }

    /// The certificate of the last committed state.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// The committed baseline: `suite()[i].range`'s evaluation on the last
    /// committed tree — what the next admission check compares (and, on
    /// the delta path, splices) against. Exposed so differential tests can
    /// assert the delta and full-pass admission arms maintain identical
    /// baselines.
    pub fn baseline(&self) -> &[BTreeSet<NodeRef>] {
        &self.base_sets
    }

    /// Number of committed update batches since publish.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Evaluates `q` on the document through its **warm** evaluator —
    /// no snapshot rebuild. Panics (via the evaluator's staleness guard)
    /// if the session discipline was ever broken, which is exactly the
    /// property the session tests lean on.
    pub fn eval(&mut self, q: &Pattern) -> BTreeSet<NodeRef> {
        self.ev.eval(q)
    }
}

/// Publishing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The id is already taken.
    Duplicate(DocId),
    /// The gateway is halted; nothing is accepted. (A merely `ReadOnly`
    /// gateway still publishes to memory — see
    /// [`Gateway::publish`](crate::Gateway::publish).)
    Halted,
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::Duplicate(id) => write!(f, "document {id} already published"),
            PublishError::Halted => write!(f, "gateway halted"),
        }
    }
}

impl std::error::Error for PublishError {}

/// Hash of the id's *name* ([`xuc_xpath::Fingerprinter`]): shard choice
/// is content-stable, not tied to label interning order. Shared with the
/// admission queues so load planning sees the same shards as locking.
pub(crate) fn shard_of(id: DocId) -> usize {
    let mut fp = xuc_xpath::Fingerprinter::new();
    fp.write_str(id.as_str());
    (fp.finish() % STORE_SHARDS as u64) as usize
}

/// The sharded id → document map. See the module docs for the locking
/// discipline.
pub struct DocumentStore {
    shards: Vec<RwLock<HashMap<DocId, Arc<Mutex<Document>>>>>,
}

impl DocumentStore {
    pub fn new() -> DocumentStore {
        DocumentStore { shards: (0..STORE_SHARDS).map(|_| RwLock::default()).collect() }
    }

    /// Publishes a document: compiles (or cache-hits) its suite, builds
    /// the warm evaluator and admission baseline, certifies the initial
    /// state, and inserts it under `id`.
    pub fn publish(
        &self,
        id: DocId,
        tree: DataTree,
        suite: Vec<Constraint>,
        cache: &SuiteCache,
        signer: &Signer,
    ) -> Result<(), PublishError> {
        // Cheap duplicate pre-check before compiling/evaluating/signing;
        // the write-lock re-check below closes the race.
        if self.shards[shard_of(id)].read().contains_key(&id) {
            return Err(PublishError::Duplicate(id));
        }
        let compiled = cache.get_or_compile(&suite);
        let doc = Document::open(id, tree, suite, compiled, signer);
        let mut shard = self.shards[shard_of(id)].write();
        if shard.contains_key(&id) {
            return Err(PublishError::Duplicate(id));
        }
        shard.insert(id, Arc::new(Mutex::new(doc)));
        Ok(())
    }

    /// Inserts an already-assembled document (the recovery path). Same
    /// duplicate discipline as [`publish`](Self::publish).
    pub(crate) fn install(&self, doc: Document) -> Result<(), PublishError> {
        let id = doc.id();
        let mut shard = self.shards[shard_of(id)].write();
        if shard.contains_key(&id) {
            return Err(PublishError::Duplicate(id));
        }
        shard.insert(id, Arc::new(Mutex::new(doc)));
        Ok(())
    }

    /// The document registered under `id`, if any. The returned `Arc`
    /// outlives the shard lock; lock the document's mutex to work with it
    /// (a [`Session`](crate::Session) is the intended way).
    pub fn document(&self, id: DocId) -> Option<Arc<Mutex<Document>>> {
        self.shards[shard_of(id)].read().get(&id).map(Arc::clone)
    }

    /// Number of documents held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All document ids, sorted by name (deterministic listing).
    pub fn doc_ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> =
            self.shards.iter().flat_map(|s| s.read().keys().copied().collect::<Vec<_>>()).collect();
        ids.sort_by_key(|i| i.as_str());
        ids
    }
}

impl Default for DocumentStore {
    fn default() -> Self {
        DocumentStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;
    use xuc_xtree::parse_term;

    fn publish_one(store: &DocumentStore, cache: &SuiteCache, name: &str) -> DocId {
        let id = DocId::new(name);
        let tree = parse_term("h(patient#1(visit#2))").unwrap();
        let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
        store.publish(id, tree, suite, cache, &Signer::new(7)).unwrap();
        id
    }

    #[test]
    fn publish_and_lookup() {
        let store = DocumentStore::new();
        let cache = SuiteCache::new();
        let id = publish_one(&store, &cache, "a");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        let doc = store.document(id).expect("published");
        let mut d = doc.lock();
        assert_eq!(d.id(), id);
        assert_eq!(d.commits(), 0);
        assert_eq!(d.suite().len(), 1);
        // The initial certificate covers the published state.
        assert!(d.certificate().clone().verify(7, d.tree()).is_ok());
        // The warm evaluator answers without a rebuild.
        let q = xuc_xpath::parse("/patient/visit").unwrap();
        assert_eq!(d.eval(&q).len(), 1);
        assert!(store.document(DocId::new("nope")).is_none());
    }

    #[test]
    fn duplicate_publish_rejected() {
        let store = DocumentStore::new();
        let cache = SuiteCache::new();
        let id = publish_one(&store, &cache, "a");
        let tree = parse_term("r(x#1)").unwrap();
        let err = store.publish(id, tree, Vec::new(), &cache, &Signer::new(7)).unwrap_err();
        assert_eq!(err, PublishError::Duplicate(id));
        assert_eq!(err.to_string(), "document a already published");
    }

    #[test]
    fn listing_is_sorted_and_suites_shared() {
        let store = DocumentStore::new();
        let cache = SuiteCache::new();
        for name in ["zeta", "alpha", "mid"] {
            publish_one(&store, &cache, name);
        }
        let names: Vec<&str> = store.doc_ids().iter().map(|i| i.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        // Three documents under one policy: one compile, two hits.
        assert_eq!((cache.misses(), cache.hits()), (1, 2));
    }
}
