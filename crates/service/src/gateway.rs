//! The admission front-end: publish, submit, and the deterministic
//! worker-pool request loop.
//!
//! # Determinism discipline
//!
//! [`Gateway::process`] drains a request stream over a
//! [`std::thread::scope`] worker pool and promises a **byte-identical
//! accept/reject log at every worker count**. The discipline mirrors the
//! sharded counterexample search (`find_counterexample_sharded`):
//!
//! * a request's verdict depends only on its document's state, which
//!   depends only on the verdicts of *earlier requests against the same
//!   document* — so the unit of work is **one document's whole request
//!   subsequence**, processed in arrival order by whichever worker claims
//!   it;
//! * units are handed out through a single atomic cursor (work stealing
//!   decides *who* runs a unit, never *what* the unit computes);
//! * commit numbers are per-document counters advanced in that fixed
//!   order, so even the `commit=` fields of the log are scheduling-free;
//! * fresh node ids are minted by the *client* (requests carry concrete
//!   [`Update`](xuc_xtree::Update) values), not by workers — nothing
//!   about a verdict or a log line depends on which thread ran it.
//!
//! Cross-document interleaving is where the parallelism lives: documents
//! are independent by construction (no constraint spans documents), so
//! per-document order is the *only* order the semantics needs.

use crate::cache::SuiteCache;
use crate::session::{AdmissionMode, Session};
use crate::store::{DocumentStore, PublishError};
use crate::{DocId, RejectReason, Request, Verdict};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use xuc_core::Constraint;
use xuc_sigstore::{Certificate, Signer};
use xuc_xtree::DataTree;

/// The update-validation gateway of Figure 1: a [`DocumentStore`] behind
/// an admission loop, with a [`SuiteCache`] so admission never recompiles
/// a suite, and a [`Signer`] re-certifying every accepted state. See the
/// crate docs for a walkthrough.
pub struct Gateway {
    store: DocumentStore,
    cache: SuiteCache,
    signer: Signer,
    admission: AdmissionMode,
}

impl Gateway {
    /// A gateway on the production admission path
    /// ([`AdmissionMode::Delta`]: edit-proportional commit validation).
    pub fn new(signer: Signer) -> Gateway {
        Gateway::with_admission(signer, AdmissionMode::Delta)
    }

    /// A gateway with an explicit [`AdmissionMode`] —
    /// [`AdmissionMode::FullPass`] is the reference arm the differential
    /// harness and the E-DLT experiment compare the delta path against.
    pub fn with_admission(signer: Signer, admission: AdmissionMode) -> Gateway {
        Gateway { store: DocumentStore::new(), cache: SuiteCache::new(), signer, admission }
    }

    /// The admission mode every [`submit`](Self::submit) commit runs under.
    pub fn admission_mode(&self) -> AdmissionMode {
        self.admission
    }

    /// Publishes a document under its constraint suite (the Source side
    /// of Figure 1): compiles or cache-hits the suite, certifies the
    /// initial state, and starts serving it.
    pub fn publish(
        &self,
        id: DocId,
        tree: DataTree,
        suite: Vec<Constraint>,
    ) -> Result<(), PublishError> {
        self.store.publish(id, tree, suite, &self.cache, &self.signer)
    }

    /// The underlying store (lock a document directly to run a manual
    /// [`Session`]).
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The suite cache (hit/miss counters for tests and experiments).
    pub fn cache(&self) -> &SuiteCache {
        &self.cache
    }

    /// The current certificate of `id`'s document — what a User fetches
    /// alongside [`snapshot`](Self::snapshot) to verify it independently.
    pub fn certificate(&self, id: DocId) -> Option<Certificate> {
        self.store.document(id).map(|d| d.lock().certificate().clone())
    }

    /// A clone of `id`'s current committed tree (the published state a
    /// User downloads).
    pub fn snapshot(&self, id: DocId) -> Option<DataTree> {
        self.store.document(id).map(|d| d.lock().tree().clone())
    }

    /// Admits or rejects one request: locks the document, applies the
    /// batch in a [`Session`], and commits (re-certifying) or rolls back.
    /// Atomic either way — a failed update unwinds the applied prefix.
    pub fn submit(&self, request: &Request) -> Verdict {
        let Some(doc) = self.store.document(request.doc) else {
            return Verdict::Rejected(RejectReason::UnknownDocument);
        };
        let mut doc = doc.lock();
        let mut session = Session::begin(&mut doc);
        for (index, update) in request.updates.iter().enumerate() {
            if let Err(e) = session.apply(update) {
                // Dropping the session rolls the applied prefix back.
                return Verdict::Rejected(RejectReason::FailedUpdate {
                    index,
                    error: e.to_string(),
                });
            }
        }
        match session.commit_with(&self.signer, self.admission) {
            Ok(receipt) => Verdict::Accepted { commit: receipt.commit },
            Err(r) => Verdict::Rejected(RejectReason::Violation {
                constraint: r.constraint.to_string(),
                offenders: r.offenders,
            }),
        }
    }

    /// Drains `requests` over `workers` threads and returns one verdict
    /// per request (same order). The result — and therefore
    /// [`render_log`] — is **identical at every worker count**; see the
    /// module docs for why.
    pub fn process(&self, requests: &[Request], workers: usize) -> Vec<Verdict> {
        let workers = workers.max(1);
        // Units: each document's request indices, in arrival order.
        let mut order: Vec<DocId> = Vec::new();
        let mut by_doc: HashMap<DocId, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            by_doc
                .entry(r.doc)
                .or_insert_with(|| {
                    order.push(r.doc);
                    Vec::new()
                })
                .push(i);
        }
        let units: Vec<Vec<usize>> =
            order.into_iter().map(|d| by_doc.remove(&d).expect("grouped")).collect();

        let mut verdicts: Vec<Option<Verdict>> = vec![None; requests.len()];
        if workers == 1 {
            // Inline: identical result by construction, no spawn cost.
            for unit in &units {
                for &i in unit {
                    verdicts[i] = Some(self.submit(&requests[i]));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let u = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(unit) = units.get(u) else { break };
                                for &i in unit {
                                    out.push((i, self.submit(&requests[i])));
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("gateway worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, v) in results {
                verdicts[i] = Some(v);
            }
        }
        verdicts.into_iter().map(|v| v.expect("every request verdicted")).collect()
    }
}

/// The canonical accept/reject log of one processed stream: one line per
/// request, in request order. This string is the determinism contract's
/// subject — byte-identical at every worker count.
pub fn render_log(requests: &[Request], verdicts: &[Verdict]) -> String {
    assert_eq!(requests.len(), verdicts.len(), "one verdict per request");
    let mut out = String::new();
    for (i, (r, v)) in requests.iter().zip(verdicts).enumerate() {
        out.push_str(&format!("#{i:04} {} {}\n", r.doc, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;
    use xuc_xtree::{parse_term, NodeId, Update};

    fn gateway_with_doc() -> (Gateway, DocId) {
        let gw = Gateway::new(Signer::new(0xabc));
        let id = DocId::new("h");
        let tree = parse_term("hospital#1(patient#2(visit#3),patient#4(clinicalTrial#5))").unwrap();
        let suite = vec![
            parse_constraint("(/patient/visit, ↑)").unwrap(),
            parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap(),
        ];
        gw.publish(id, tree, suite).unwrap();
        (gw, id)
    }

    #[test]
    fn accept_commits_and_recertifies() {
        let (gw, id) = gateway_with_doc();
        let before = gw.snapshot(id).unwrap();
        let req = Request {
            doc: id,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(2),
                id: NodeId::fresh(),
                label: "visit".into(),
            }],
        };
        assert_eq!(gw.submit(&req), Verdict::Accepted { commit: 1 });
        let snap = gw.snapshot(id).unwrap();
        assert_eq!(snap.len(), 6);
        // The new certificate covers the new state — and its ↑ baseline
        // has moved: the pre-commit tree (missing the new visit) now
        // fails verification against it.
        assert!(gw.certificate(id).unwrap().verify(0xabc, &snap).is_ok());
        assert!(gw.certificate(id).unwrap().verify(0xabc, &before).is_err());
    }

    #[test]
    fn violation_rejects_and_rolls_back() {
        let (gw, id) = gateway_with_doc();
        let before = gw.snapshot(id).unwrap();
        let req =
            Request { doc: id, updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(3) }] };
        match gw.submit(&req) {
            Verdict::Rejected(RejectReason::Violation { constraint, offenders }) => {
                assert_eq!(constraint, "(/patient/visit, ↑)");
                assert_eq!(offenders, 1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
        assert_eq!(gw.snapshot(id).unwrap().render(), before.render());
        assert!(gw.certificate(id).unwrap().verify(0xabc, &before).is_ok());
    }

    #[test]
    fn failed_update_rejects_whole_batch() {
        let (gw, id) = gateway_with_doc();
        let before = gw.snapshot(id).unwrap();
        // First update applies, second targets a dead node: the prefix
        // must unwind.
        let req = Request {
            doc: id,
            updates: vec![
                Update::InsertLeaf {
                    parent: NodeId::from_raw(2),
                    id: NodeId::fresh(),
                    label: "visit".into(),
                },
                Update::DeleteSubtree { node: NodeId::from_raw(99) },
            ],
        };
        match gw.submit(&req) {
            Verdict::Rejected(RejectReason::FailedUpdate { index: 1, .. }) => {}
            other => panic!("expected failed update, got {other:?}"),
        }
        assert_eq!(gw.snapshot(id).unwrap().render(), before.render());
    }

    #[test]
    fn unknown_document_rejected() {
        let (gw, _) = gateway_with_doc();
        let req = Request { doc: DocId::new("ghost"), updates: Vec::new() };
        assert_eq!(gw.submit(&req), Verdict::Rejected(RejectReason::UnknownDocument));
    }

    #[test]
    fn empty_batch_is_a_trivial_commit() {
        let (gw, id) = gateway_with_doc();
        let req = Request { doc: id, updates: Vec::new() };
        assert_eq!(gw.submit(&req), Verdict::Accepted { commit: 1 });
        assert_eq!(gw.submit(&req), Verdict::Accepted { commit: 2 });
    }

    #[test]
    fn log_renders_in_request_order() {
        let (gw, id) = gateway_with_doc();
        let reqs = vec![
            Request { doc: id, updates: Vec::new() },
            Request { doc: DocId::new("ghost"), updates: Vec::new() },
        ];
        let verdicts = gw.process(&reqs, 1);
        let log = render_log(&reqs, &verdicts);
        assert_eq!(log, "#0000 h ACCEPT commit=1\n#0001 ghost REJECT unknown document\n");
    }
}
