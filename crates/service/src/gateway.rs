//! The admission front-end: publish, submit, and the deterministic
//! worker-pool request loop.
//!
//! # Determinism discipline
//!
//! [`Gateway::process`] drains a request stream over a
//! [`std::thread::scope`] worker pool and promises a **byte-identical
//! accept/reject log at every worker count**. The discipline mirrors the
//! sharded counterexample search (`find_counterexample_sharded`):
//!
//! * a request's verdict depends only on its document's state, which
//!   depends only on the verdicts of *earlier requests against the same
//!   document* — so the unit of work is **one document's whole request
//!   subsequence**, processed in arrival order by whichever worker claims
//!   it;
//! * units are handed out through a single atomic cursor (work stealing
//!   decides *who* runs a unit, never *what* the unit computes);
//! * commit numbers are per-document counters advanced in that fixed
//!   order, so even the `commit=` fields of the log are scheduling-free;
//! * fresh node ids are minted by the *client* (requests carry concrete
//!   [`Update`] values), not by workers — nothing
//!   about a verdict or a log line depends on which thread ran it.
//!
//! Cross-document interleaving is where the parallelism lives: documents
//! are independent by construction (no constraint spans documents), so
//! per-document order is the *only* order the semantics needs.

use crate::cache::SuiteCache;
use crate::coalesce::{try_coalesce, CoalesceOutcome};
use crate::persist::{
    DurableOptions, Journal, JournalError, RecoverError, RecoveredState, ResumeError,
};
use crate::session::{AdmissionMode, Session};
use crate::store::{shard_of, Document, DocumentStore, PublishError, STORE_SHARDS};
use crate::telemetry::ServiceMetrics;
use crate::{DegradedReason, DocId, RejectReason, Request, Verdict};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use xuc_core::Constraint;
use xuc_persist::{Clock, SystemClock, WriteFault};
use xuc_sigstore::{Certificate, Signer};
use xuc_telemetry::{RecordInto, Stage, Telemetry};
use xuc_xtree::{DataTree, Update};

/// Serving health of a [`Gateway`] — the degraded-mode state machine
/// (DESIGN.md §9). Transitions: `Serving → ReadOnly` on a fatal journal
/// fault (the WAL seals, commits start rejecting with
/// [`RejectReason::Degraded`], reads and publishes-to-memory keep
/// serving); `ReadOnly → Serving` through [`Gateway::try_resume`];
/// any state `→ Halted` through [`Gateway::halt`] or an unreconcilable
/// resume — `Halted` is terminal for the process (restart and recover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayState {
    /// Full service: commits, reads, publishes, journaling.
    Serving,
    /// The journal is sealed; commits are refused, reads and
    /// in-memory publishes still serve.
    ReadOnly,
    /// Nothing serves. Terminal.
    Halted,
}

const STATE_SERVING: u8 = 0;
const STATE_READ_ONLY: u8 = 1;
const STATE_HALTED: u8 = 2;

/// Cap on a [`RejectReason::Internal`] message: panic payloads can be
/// arbitrarily large, and one poisoned request must not bloat every
/// verdict log that records it.
const INTERNAL_ERROR_MAX: usize = 160;

/// Truncates a panic message to [`INTERNAL_ERROR_MAX`] bytes on a char
/// boundary, marking the cut with an ellipsis.
pub(crate) fn bounded_internal_error(mut error: String) -> String {
    if error.len() <= INTERNAL_ERROR_MAX {
        return error;
    }
    let mut cut = INTERNAL_ERROR_MAX;
    while !error.is_char_boundary(cut) {
        cut -= 1;
    }
    error.truncate(cut);
    error.push('…');
    error
}

/// The update-validation gateway of Figure 1: a [`DocumentStore`] behind
/// an admission loop, with a [`SuiteCache`] so admission never recompiles
/// a suite, and a [`Signer`] re-certifying every accepted state. See the
/// crate docs for a walkthrough.
///
/// # Durability
///
/// A gateway opened with [`recover`](Self::recover) (or
/// [`recover_with`](Self::recover_with)) journals every publish and every
/// accepted commit to a write-ahead log and snapshots documents on a
/// cadence; re-opening the same directory replays the journal through the
/// live admission path and resumes byte-identical — same verdict history,
/// same baselines, same hash-linked certificates. See [`crate::persist`]
/// for the policy and `xuc-persist` for the file formats.
///
/// # Panic containment and quarantine
///
/// [`submit`](Self::submit) catches panics at the request boundary: a
/// panicking handler unwinds its session (rollback-on-drop), the verdict
/// degrades to [`RejectReason::Internal`] (message bounded), and the
/// document keeps serving — one poisoned request cannot wedge a worker
/// pool. A document that keeps panicking is **quarantined** after
/// [`quarantine_threshold`](Self::quarantine_threshold) contained panics:
/// its commits reject with [`RejectReason::Degraded`] until
/// [`lift_quarantine`](Self::lift_quarantine), its reads still serve,
/// and sibling documents are unaffected.
///
/// # Degraded modes
///
/// A fatal journal fault no longer stops the process: the WAL seals and
/// the gateway drops to [`GatewayState::ReadOnly`] — commits reject with
/// [`RejectReason::Degraded`], reads/certificates/snapshots and
/// in-memory publishes keep serving, and [`try_resume`](Self::try_resume)
/// re-opens the journal once the fault clears. Every *accepted* commit
/// is journaled-or-the-gateway-is-degraded; the degraded window's
/// unjournaled suffix is reconciled by resume (fresh snapshots) or
/// re-driven by recovery, exactly like a lost group-commit buffer.
pub struct Gateway {
    store: DocumentStore,
    cache: SuiteCache,
    signer: Signer,
    admission: AdmissionMode,
    /// `Some` on durable gateways ([`Gateway::recover`]).
    journal: Option<Journal>,
    /// The degraded-mode state machine ([`GatewayState`]).
    state: AtomicU8,
    /// The fault that degraded/halted the gateway (first one wins —
    /// later faults of a degraded gateway add no information).
    last_fault: Mutex<Option<String>>,
    /// Contained panics per document, for the quarantine policy.
    panic_counts: Mutex<HashMap<DocId, u32>>,
    /// Contained panics before a document is quarantined (`0` disables).
    quarantine_after: AtomicU32,
    /// Serializes [`try_resume`](Self::try_resume) runs.
    resume_lock: Mutex<()>,
    /// Runs offered to the commit coalescer ([`Self::submit_coalesced`]).
    coalesce_attempts: AtomicU64,
    /// Runs that committed through one merged admission pass.
    coalesce_commits: AtomicU64,
    /// Batches those merged passes admitted.
    coalesce_batches: AtomicU64,
    /// The attached observability bundle, if any
    /// ([`Gateway::attach_telemetry`]): pre-registered metric handles
    /// plus the shared registry / stage table / trace ring. Never
    /// consulted for an admission decision — telemetry is
    /// observationally inert by contract.
    telemetry: OnceLock<ServiceMetrics>,
    /// Test hook: documents whose next N sessions panic mid-request
    /// ([`Gateway::inject_session_panic`]).
    #[cfg(any(test, feature = "test-hooks"))]
    panic_injections: Mutex<HashMap<DocId, usize>>,
}

/// Contained panics before quarantine, unless overridden
/// ([`Gateway::set_quarantine_threshold`]).
const DEFAULT_QUARANTINE_AFTER: u32 = 3;

impl Gateway {
    /// A gateway on the production admission path
    /// ([`AdmissionMode::Delta`]: edit-proportional commit validation).
    pub fn new(signer: Signer) -> Gateway {
        Gateway::with_admission(signer, AdmissionMode::Delta)
    }

    /// A gateway with an explicit [`AdmissionMode`] —
    /// [`AdmissionMode::FullPass`] is the reference arm the differential
    /// harness and the E-DLT experiment compare the delta path against.
    pub fn with_admission(signer: Signer, admission: AdmissionMode) -> Gateway {
        Gateway::assemble(DocumentStore::new(), SuiteCache::new(), signer, admission, None)
    }

    fn assemble(
        store: DocumentStore,
        cache: SuiteCache,
        signer: Signer,
        admission: AdmissionMode,
        journal: Option<Journal>,
    ) -> Gateway {
        Gateway {
            store,
            cache,
            signer,
            admission,
            journal,
            state: AtomicU8::new(STATE_SERVING),
            last_fault: Mutex::new(None),
            panic_counts: Mutex::new(HashMap::new()),
            quarantine_after: AtomicU32::new(DEFAULT_QUARANTINE_AFTER),
            resume_lock: Mutex::new(()),
            coalesce_attempts: AtomicU64::new(0),
            coalesce_commits: AtomicU64::new(0),
            coalesce_batches: AtomicU64::new(0),
            telemetry: OnceLock::new(),
            #[cfg(any(test, feature = "test-hooks"))]
            panic_injections: Mutex::new(HashMap::new()),
        }
    }

    /// Opens a **durable** gateway on `dir` (created if absent): loads
    /// snapshots, replays the WAL tail through the live admission path,
    /// and journals everything the recovered gateway accepts from here
    /// on. An empty directory recovers to an empty gateway, so this is
    /// also how a durable gateway is *started*.
    pub fn recover(signer: Signer, dir: impl AsRef<Path>) -> Result<Gateway, RecoverError> {
        Gateway::recover_with(signer, AdmissionMode::Delta, dir, DurableOptions::default())
    }

    /// [`recover`](Self::recover) with explicit [`AdmissionMode`] and
    /// [`DurableOptions`] (group-commit batch size, snapshot cadence).
    pub fn recover_with(
        signer: Signer,
        admission: AdmissionMode,
        dir: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> Result<Gateway, RecoverError> {
        Gateway::recover_with_clock(signer, admission, dir, opts, Box::new(SystemClock))
    }

    /// [`recover_with`](Self::recover_with) with an injectable retry
    /// [`Clock`] — chaos tests pass a virtual clock so the production
    /// backoff loop runs (and is asserted) without real sleeping.
    pub fn recover_with_clock(
        signer: Signer,
        admission: AdmissionMode,
        dir: impl AsRef<Path>,
        opts: DurableOptions,
        clock: Box<dyn Clock + Send + Sync>,
    ) -> Result<Gateway, RecoverError> {
        let RecoveredState { store, cache, journal } =
            crate::persist::recover(&signer, admission, dir.as_ref(), opts, clock)?;
        Ok(Gateway::assemble(store, cache, signer, admission, Some(journal)))
    }

    /// Whether this gateway journals its commits.
    pub fn is_durable(&self) -> bool {
        self.journal.is_some()
    }

    /// Attaches an observability bundle: registers the gateway's metric
    /// set in `tel`'s registry and starts attributing admission stages
    /// to its stage table and trace ring. First attach wins (`true`);
    /// later calls are ignored (`false`).
    ///
    /// Telemetry is **observationally inert**: verdict logs, trees,
    /// baselines and certificate chains are byte-identical with and
    /// without it, at every worker count — pinned by the differential
    /// suites. The only side effects are relaxed atomic adds and clock
    /// reads.
    pub fn attach_telemetry(&self, tel: Arc<Telemetry>) -> bool {
        self.telemetry.set(ServiceMetrics::new(tel)).is_ok()
    }

    /// The attached telemetry bundle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.get().map(|m| &m.tel)
    }

    pub(crate) fn metrics(&self) -> Option<&ServiceMetrics> {
        self.telemetry.get()
    }

    /// Folds everything that does not stream through the registry into
    /// it: the coalesce counters plus the process-global XPath-engine
    /// and durability counters ([`crate::telemetry::scrape_engine_metrics`],
    /// [`crate::telemetry::scrape_persist_metrics`]). Call at snapshot
    /// points (before [`xuc_telemetry::MetricsRegistry::snapshot`]); a
    /// no-op without attached telemetry.
    pub fn record_metrics(&self) {
        let Some(m) = self.metrics() else { return };
        let reg = m.tel.registry();
        self.coalesce_stats().record_into(reg);
        crate::telemetry::scrape_engine_metrics(reg);
        crate::telemetry::scrape_persist_metrics(reg);
    }

    /// The gateway's serving health — see [`GatewayState`].
    pub fn state(&self) -> GatewayState {
        match self.state.load(Ordering::Acquire) {
            STATE_SERVING => GatewayState::Serving,
            STATE_READ_ONLY => GatewayState::ReadOnly,
            _ => GatewayState::Halted,
        }
    }

    /// The fault message that degraded (or halted) the gateway, if any.
    pub fn last_fault(&self) -> Option<String> {
        self.last_fault.lock().clone()
    }

    /// Transient journal IO failures absorbed by the retry loop (0 on
    /// non-durable gateways). A rising counter under a steady `Serving`
    /// state is the retry layer doing its job.
    pub fn journal_transient_retries(&self) -> u64 {
        self.journal.as_ref().map_or(0, Journal::transient_retries)
    }

    /// Whether the journal is sealed (true exactly while a durable
    /// gateway is degraded; always false for in-memory gateways).
    pub fn journal_sealed(&self) -> bool {
        self.journal.as_ref().is_some_and(Journal::is_sealed)
    }

    /// Drops `Serving → ReadOnly` and records the fault. A gateway that
    /// is already degraded or halted stays where it is.
    fn degrade(&self, fault: String) {
        let mut slot = self.last_fault.lock();
        if self
            .state
            .compare_exchange(STATE_SERVING, STATE_READ_ONLY, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            *slot = Some(fault);
            if let Some(m) = self.metrics() {
                m.note_degraded_transition();
            }
        }
    }

    /// Routes a journal failure: `Fatal` degrades (the writer already
    /// sealed itself); `Sealed` means a racing commit slipped past the
    /// state check after another thread degraded — the gateway is
    /// already read-only, nothing more to record.
    fn note_journal_error(&self, e: JournalError) {
        if let JournalError::Fatal { .. } = &e {
            self.degrade(e.to_string());
        }
    }

    /// Stops the gateway entirely: seals the journal, refuses commits
    /// *and* reads. Terminal — [`try_resume`](Self::try_resume) refuses
    /// halted gateways; restart the process and recover instead.
    pub fn halt(&self, reason: &str) {
        let mut slot = self.last_fault.lock();
        let prev = self.state.swap(STATE_HALTED, Ordering::AcqRel);
        if prev != STATE_HALTED {
            *slot = Some(format!("halted: {reason}"));
            if let Some(m) = self.metrics() {
                m.note_halt();
            }
        }
        drop(slot);
        if let Some(journal) = &self.journal {
            journal.seal();
        }
    }

    /// Attempts `ReadOnly → Serving`: re-opens the WAL (truncating any
    /// torn tail), rebuilds the durable bookkeeping from what is
    /// actually on disk, and snapshots every document whose memory ran
    /// ahead of the durable prefix — including the commit whose
    /// journaling failure caused the degradation. On success the gateway
    /// serves commits again and a subsequent crash recovers to exactly
    /// the live state. On IO failure the gateway stays `ReadOnly` (call
    /// again later); on a state mismatch it halts.
    pub fn try_resume(&self) -> Result<(), ResumeError> {
        let _guard = self.resume_lock.lock();
        match self.state() {
            GatewayState::Serving => return Err(ResumeError::NotDegraded),
            GatewayState::Halted => return Err(ResumeError::Halted),
            GatewayState::ReadOnly => {}
        }
        let Some(journal) = &self.journal else {
            // Only journal faults degrade, so a read-only gateway is
            // always durable; tolerate the impossible anyway.
            self.state.store(STATE_SERVING, Ordering::Release);
            return Ok(());
        };
        match journal.resume(&self.store) {
            Ok(()) => {
                self.state.store(STATE_SERVING, Ordering::Release);
                if let Some(m) = self.metrics() {
                    m.note_resume();
                }
                Ok(())
            }
            Err(e) => {
                if let ResumeError::StateMismatch { doc } = &e {
                    self.halt(&format!("resume found document {doc} behind its durable log"));
                }
                Err(e)
            }
        }
    }

    /// Contained panics before a document is quarantined; `0` disables
    /// quarantining.
    pub fn quarantine_threshold(&self) -> u32 {
        self.quarantine_after.load(Ordering::Relaxed)
    }

    /// Sets the quarantine threshold (takes effect on the next request;
    /// already-quarantined documents stay quarantined until lifted).
    pub fn set_quarantine_threshold(&self, after: u32) {
        self.quarantine_after.store(after, Ordering::Relaxed);
    }

    /// Contained panics recorded against `doc`.
    pub fn contained_panics(&self, doc: DocId) -> u32 {
        self.panic_counts.lock().get(&doc).copied().unwrap_or(0)
    }

    /// Whether `doc`'s commits are currently refused for repeated
    /// contained panics. Reads are unaffected: quarantine isolates
    /// *sessions*, and reads touch only committed state.
    pub fn is_quarantined(&self, doc: DocId) -> bool {
        let after = self.quarantine_threshold();
        after > 0 && self.contained_panics(doc) >= after
    }

    /// Clears `doc`'s panic record, letting its commits serve again.
    pub fn lift_quarantine(&self, doc: DocId) {
        self.panic_counts.lock().remove(&doc);
    }

    fn record_contained_panic(&self, doc: DocId) {
        let count = {
            let mut map = self.panic_counts.lock();
            let c = map.entry(doc).or_insert(0);
            *c += 1;
            *c
        };
        if let Some(m) = self.metrics() {
            let after = self.quarantine_threshold();
            m.note_contained_panic(after > 0 && count == after);
        }
    }

    /// Serves a read-class request: confirms `doc` exists and the
    /// gateway serves reads. Reads survive `ReadOnly` (that is the point
    /// of the degraded mode) and quarantine; only `Halted` refuses them.
    /// The actual payload is [`snapshot`](Self::snapshot) /
    /// [`certificate`](Self::certificate) — this is the admission-path
    /// verdict the load harness accounts.
    pub fn read(&self, doc: DocId) -> Verdict {
        let v = if self.state() == GatewayState::Halted {
            Verdict::Rejected(RejectReason::Degraded { reason: DegradedReason::Halted })
        } else if self.store.document(doc).is_some() {
            Verdict::Served
        } else {
            Verdict::Rejected(RejectReason::UnknownDocument)
        };
        self.note_verdict(&v, doc);
        v
    }

    /// Restates one verdict into the attached registry (no-op without
    /// telemetry); striped by the document's shard so concurrent
    /// workers stay off each other's counter lines.
    pub(crate) fn note_verdict(&self, v: &Verdict, doc: DocId) {
        if let Some(m) = self.metrics() {
            m.note_verdict(v, shard_of(doc));
        }
    }

    /// Tears the gateway down as a simulated crash: pending group-commit
    /// frames and the WAL tail suffer `fault` instead of the orderly
    /// drop-time sync. Only meaningful on durable gateways (a no-op
    /// otherwise); the crash-injection arm of the differential harness
    /// is built on this.
    pub fn simulate_crash(self, fault: WriteFault) -> std::io::Result<()> {
        match self.journal {
            Some(journal) => journal.into_writer().simulate_crash(fault),
            None => Ok(()),
        }
    }

    /// Test hook (`test-hooks` feature): the next `count` sessions
    /// against `doc` panic after applying their updates, exercising the
    /// panic containment and quarantine paths without a buggy handler.
    #[cfg(any(test, feature = "test-hooks"))]
    pub fn inject_session_panic(&self, doc: DocId, count: usize) {
        *self.panic_injections.lock().entry(doc).or_insert(0) += count;
    }

    #[cfg(any(test, feature = "test-hooks"))]
    fn fire_injected_panic(&self, doc: DocId) {
        let mut map = self.panic_injections.lock();
        if let Some(n) = map.get_mut(&doc) {
            if *n > 0 {
                *n -= 1;
                if *n == 0 {
                    map.remove(&doc);
                }
                drop(map);
                panic!("injected session panic");
            }
        }
    }

    #[cfg(not(any(test, feature = "test-hooks")))]
    #[inline(always)]
    fn fire_injected_panic(&self, _doc: DocId) {}

    /// Test hook (`test-hooks` feature): arms a write-time fault on the
    /// journal's WAL writer — the next syncs observe it. No-op on
    /// non-durable gateways. This is the chaos harness's lever for
    /// driving the retry/degrade machinery.
    #[cfg(feature = "test-hooks")]
    pub fn inject_journal_fault(&self, fault: WriteFault) {
        if let Some(journal) = &self.journal {
            journal.inject_fault(fault);
        }
    }

    /// The admission mode every [`submit`](Self::submit) commit runs under.
    pub fn admission_mode(&self) -> AdmissionMode {
        self.admission
    }

    /// Publishes a document under its constraint suite (the Source side
    /// of Figure 1): compiles or cache-hits the suite, certifies the
    /// initial state, and starts serving it.
    ///
    /// A `ReadOnly` gateway still publishes **to memory** (the sealed
    /// journal is skipped; [`try_resume`](Self::try_resume) snapshots
    /// the document before journaling restarts, so it is never silently
    /// dropped on resume). A `Halted` gateway refuses.
    pub fn publish(
        &self,
        id: DocId,
        tree: DataTree,
        suite: Vec<Constraint>,
    ) -> Result<(), PublishError> {
        if self.state() == GatewayState::Halted {
            return Err(PublishError::Halted);
        }
        let Some(journal) = &self.journal else {
            return self.store.publish(id, tree, suite, &self.cache, &self.signer);
        };
        // Store first (it rejects duplicates), then journal — synced
        // before we return, so an acknowledged publish is never lost to
        // group-commit buffering and every logged commit has its publish
        // earlier in the log.
        self.store.publish(id, tree.clone(), suite.clone(), &self.cache, &self.signer)?;
        if self.state() == GatewayState::Serving {
            if let Err(e) = journal.log_publish(id, tree, suite) {
                self.note_journal_error(e);
            }
        }
        Ok(())
    }

    /// The underlying store (lock a document directly to run a manual
    /// [`Session`]).
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The suite cache (hit/miss counters for tests and experiments).
    pub fn cache(&self) -> &SuiteCache {
        &self.cache
    }

    /// The current certificate of `id`'s document — what a User fetches
    /// alongside [`snapshot`](Self::snapshot) to verify it independently.
    pub fn certificate(&self, id: DocId) -> Option<Certificate> {
        self.store.document(id).map(|d| d.lock().certificate().clone())
    }

    /// A clone of `id`'s current committed tree (the published state a
    /// User downloads).
    pub fn snapshot(&self, id: DocId) -> Option<DataTree> {
        self.store.document(id).map(|d| d.lock().tree().clone())
    }

    /// Admits or rejects one request: locks the document, applies the
    /// batch in a [`Session`], and commits (re-certifying and, on durable
    /// gateways, journaling) or rolls back. Atomic either way — a failed
    /// update unwinds the applied prefix.
    ///
    /// Panics inside the request are contained here, at the unit
    /// boundary: the session's rollback-on-drop has already restored the
    /// document by the time the unwind reaches us, so the panic degrades
    /// to a [`RejectReason::Internal`] verdict (message bounded to a
    /// fixed length), the per-document mutex is released cleanly (no
    /// poisoning — `parking_lot` locks), and both this document and the
    /// worker pool keep serving. Each contained panic counts toward the
    /// document's quarantine; a fatal journal IO failure degrades the
    /// whole gateway to `ReadOnly` instead of stopping the process (see
    /// [`crate::persist`] and [`GatewayState`]).
    pub fn submit(&self, request: &Request) -> Verdict {
        let v = self.submit_uncounted(request);
        self.note_verdict(&v, request.doc);
        v
    }

    /// [`submit`](Self::submit) without the verdict-counter bump — the
    /// counting happens exactly once per verdict, at whichever boundary
    /// produced it.
    fn submit_uncounted(&self, request: &Request) -> Verdict {
        if let Some(refused) = self.refusal(request.doc) {
            return refused;
        }
        let Some(doc) = self.store.document(request.doc) else {
            return Verdict::Rejected(RejectReason::UnknownDocument);
        };
        let mut doc = doc.lock();
        self.submit_locked_contained(&mut doc, request)
    }

    /// The degraded-mode gate every commit path runs first: a rejection
    /// if the gateway (read-only, halted) or this document (quarantined)
    /// cannot take commits right now, `None` when serving.
    fn refusal(&self, doc: DocId) -> Option<Verdict> {
        match self.state() {
            GatewayState::Serving => {}
            GatewayState::ReadOnly => {
                return Some(Verdict::Rejected(RejectReason::Degraded {
                    reason: DegradedReason::ReadOnly,
                }))
            }
            GatewayState::Halted => {
                return Some(Verdict::Rejected(RejectReason::Degraded {
                    reason: DegradedReason::Halted,
                }))
            }
        }
        if self.is_quarantined(doc) {
            return Some(Verdict::Rejected(RejectReason::Degraded {
                reason: DegradedReason::Quarantined,
            }));
        }
        None
    }

    /// [`submit_locked`](Self::submit_locked) under the panic-containment
    /// boundary described on [`submit`](Self::submit).
    fn submit_locked_contained(&self, doc: &mut Document, request: &Request) -> Verdict {
        match panic::catch_unwind(AssertUnwindSafe(|| self.submit_locked(doc, request))) {
            Ok(verdict) => verdict,
            Err(payload) => {
                let error = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "request handler panicked".to_owned());
                self.record_contained_panic(request.doc);
                Verdict::Rejected(RejectReason::Internal { error: bounded_internal_error(error) })
            }
        }
    }

    fn submit_locked(&self, doc: &mut Document, request: &Request) -> Verdict {
        let m = self.metrics();
        let tel = m.map(|m| &*m.tel);
        let tag = m.map_or(0, ServiceMetrics::next_tag);
        let mut session = Session::begin_traced(doc, tel, tag);
        for (index, update) in request.updates.iter().enumerate() {
            if let Err(e) = session.apply(update) {
                // Dropping the session rolls the applied prefix back.
                return Verdict::Rejected(RejectReason::FailedUpdate {
                    index,
                    error: e.to_string(),
                });
            }
        }
        self.fire_injected_panic(request.doc);
        match session.commit_with(&self.signer, self.admission) {
            Ok(receipt) => {
                if let Some(journal) = &self.journal {
                    // Still under the document mutex: the log's
                    // per-document order is the commit order. A journal
                    // failure does NOT flip the verdict — the commit is
                    // real in memory — it degrades the gateway, and the
                    // unjournaled suffix is covered by resume/recovery
                    // like a lost group-commit buffer.
                    match self.log_commit_traced(
                        journal,
                        request.doc,
                        receipt.commit,
                        &request.updates,
                        doc.certificate(),
                        tel,
                        tag,
                    ) {
                        Ok(()) => {
                            if let Err(e) = journal.maybe_snapshot(doc) {
                                self.note_journal_error(e);
                            }
                        }
                        Err(e) => self.note_journal_error(e),
                    }
                }
                Verdict::Accepted { commit: receipt.commit }
            }
            Err(r) => Verdict::Rejected(RejectReason::Violation {
                constraint: r.constraint.to_string(),
                offenders: r.offenders,
            }),
        }
    }

    /// Journals one accepted commit, attributing the span to
    /// [`Stage::Fsync`] when the append tripped a durability sync (the
    /// process-global fsync counter moved — a heuristic that can
    /// misattribute under concurrently-journaling gateways, acceptable
    /// for an inherently scheduling-dependent stage) and
    /// [`Stage::JournalAppend`] when it was buffered for group commit.
    #[allow(clippy::too_many_arguments)]
    fn log_commit_traced(
        &self,
        journal: &Journal,
        doc: DocId,
        commit: u64,
        updates: &[Update],
        cert: &Certificate,
        tel: Option<&Telemetry>,
        tag: u16,
    ) -> Result<(), JournalError> {
        let Some(t) = tel else { return journal.log_commit(doc, commit, updates, cert) };
        let fsyncs_before = xuc_persist::persist_counters().wal_fsyncs;
        let started = t.now_micros();
        let out = journal.log_commit(doc, commit, updates, cert);
        let stage = if xuc_persist::persist_counters().wal_fsyncs > fsyncs_before {
            Stage::Fsync
        } else {
            Stage::JournalAppend
        };
        t.record_stage(stage, tag, started);
        out
    }

    /// Drains `requests` over `workers` threads and returns one verdict
    /// per request (same order). The result — and therefore
    /// [`render_log`] — is **identical at every worker count**; see the
    /// module docs for why.
    pub fn process(&self, requests: &[Request], workers: usize) -> Vec<Verdict> {
        let workers = workers.max(1);
        // Units: each document's request indices, in arrival order.
        let mut order: Vec<DocId> = Vec::new();
        let mut by_doc: HashMap<DocId, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            by_doc
                .entry(r.doc)
                .or_insert_with(|| {
                    order.push(r.doc);
                    Vec::new()
                })
                .push(i);
        }
        // Invariant: `order` records exactly the keys inserted into
        // `by_doc` above, so every removal hits.
        let units: Vec<Vec<usize>> =
            order.into_iter().map(|d| by_doc.remove(&d).expect("grouped")).collect();

        let mut verdicts: Vec<Option<Verdict>> = vec![None; requests.len()];
        if workers == 1 {
            // Inline: identical result by construction, no spawn cost.
            for unit in &units {
                for &i in unit {
                    verdicts[i] = Some(self.submit(&requests[i]));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let u = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(unit) = units.get(u) else { break };
                                for &i in unit {
                                    out.push((i, self.submit(&requests[i])));
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Invariant, not an IO-path unwrap: `submit` contains
                    // every request panic at the unit boundary, so a
                    // worker can only die of something non-unwindable
                    // (abort), which join cannot observe anyway.
                    .flat_map(|h| h.join().expect("gateway worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, v) in results {
                verdicts[i] = Some(v);
            }
        }
        // Invariant: the units partition `0..requests.len()` and every
        // unit was drained (serially or by a worker), so no slot is None.
        verdicts.into_iter().map(|v| v.expect("every request verdicted")).collect()
    }

    /// Submits a run of consecutive requests for **one** document,
    /// attempting to admit them through a single merged splice pass
    /// (commit coalescing, `crate::coalesce`). Verdicts, resulting
    /// document state and the certificate chain are **identical** to a
    /// `submit` loop over the same run — the coalescer takes its fast
    /// path only when it can prove that, and falls back to the
    /// sequential loop otherwise. Runs for mixed documents, non-delta
    /// admission modes, or degraded gateways degrade to plain submits.
    pub fn submit_coalesced(&self, requests: &[Request]) -> Vec<Verdict> {
        let Some(first) = requests.first() else { return Vec::new() };
        if requests.iter().all(|r| r.doc == first.doc) {
            let run: Vec<&Request> = requests.iter().collect();
            self.submit_run(first.doc, &run)
        } else {
            requests.iter().map(|r| self.submit(r)).collect()
        }
    }

    /// How often coalescing was attempted and how often the merged fast
    /// path actually fired — `(attempts, commits, batches)` counters.
    /// Load tests assert on these: a differential suite that silently
    /// never exercises the fast path proves nothing.
    pub fn coalesce_stats(&self) -> CoalesceStats {
        CoalesceStats {
            attempts: self.coalesce_attempts.load(Ordering::Relaxed),
            commits: self.coalesce_commits.load(Ordering::Relaxed),
            batches: self.coalesce_batches.load(Ordering::Relaxed),
        }
    }

    /// One document's run, all gates applied. The fallback loop re-checks
    /// the degraded gates per request so its verdicts match a plain
    /// `submit` loop exactly (a mid-run quarantine or journal fault
    /// rejects the tail the same way).
    fn submit_run(&self, doc_id: DocId, run: &[&Request]) -> Vec<Verdict> {
        debug_assert!(run.iter().all(|r| r.doc == doc_id), "a run is one document's requests");
        if run.len() >= 2
            && self.admission == AdmissionMode::Delta
            && self.refusal(doc_id).is_none()
        {
            if let Some(doc) = self.store.document(doc_id) {
                let mut doc = doc.lock();
                self.coalesce_attempts.fetch_add(1, Ordering::Relaxed);
                let m = self.metrics();
                let tel = m.map(|m| &*m.tel);
                let tag = m.map_or(0, ServiceMetrics::next_tag);
                if let CoalesceOutcome::Committed(receipts) =
                    try_coalesce(&mut doc, &self.signer, run, tel, tag)
                {
                    self.coalesce_commits.fetch_add(1, Ordering::Relaxed);
                    self.coalesce_batches.fetch_add(run.len() as u64, Ordering::Relaxed);
                    if let Some(journal) = &self.journal {
                        // Still under the document mutex: per-document
                        // journal order is commit order, one record per
                        // batch with its own chained certificate —
                        // recovery replays the run exactly as if it had
                        // been admitted sequentially.
                        let mut logged = true;
                        for ((receipt, cert), request) in receipts.iter().zip(run) {
                            if let Err(e) = self.log_commit_traced(
                                journal,
                                doc_id,
                                receipt.commit,
                                &request.updates,
                                cert,
                                tel,
                                tag,
                            ) {
                                self.note_journal_error(e);
                                logged = false;
                                break;
                            }
                        }
                        if logged {
                            if let Err(e) = journal.maybe_snapshot(&doc) {
                                self.note_journal_error(e);
                            }
                        }
                    }
                    return receipts
                        .into_iter()
                        .map(|(receipt, _)| {
                            let v = Verdict::Accepted { commit: receipt.commit };
                            self.note_verdict(&v, doc_id);
                            v
                        })
                        .collect();
                }
                // Sequential fallback under the lock we already hold.
                return run
                    .iter()
                    .map(|request| {
                        let v = self
                            .refusal(doc_id)
                            .unwrap_or_else(|| self.submit_locked_contained(&mut doc, request));
                        self.note_verdict(&v, doc_id);
                        v
                    })
                    .collect();
            }
        }
        run.iter().map(|r| self.submit(r)).collect()
    }

    /// Drains `requests` over `workers` threads through **per-shard work
    /// queues** instead of [`process`](Self::process)'s single atomic
    /// unit cursor, coalescing each document's queued run (up to
    /// [`ThroughputOptions::max_coalesce`] batches) into merged
    /// admission passes.
    ///
    /// The relaxed-ordering contract: what this mode gives up relative
    /// to `process` is only *temporal* — which worker runs a document's
    /// run, and how runs of different documents interleave in wall-clock
    /// time. Verdicts never relax: each document's requests are still
    /// admitted in arrival order (a document is held by at most one
    /// worker at a time and re-enqueued behind its shard), and the
    /// coalescer's fast path is taken only when provably equal to
    /// sequential admission — so the returned verdict vector, the final
    /// trees and the certificate chains are byte-identical to
    /// `process`'s at every worker count and every `max_coalesce`.
    /// Workers are shard-affine (worker *w* starts scanning at shard
    /// `w % 16`) and steal from other shards when their own runs dry,
    /// so a hot document pins at most one worker while cold shards keep
    /// draining.
    pub fn process_throughput(
        &self,
        requests: &[Request],
        workers: usize,
        opts: &ThroughputOptions,
    ) -> Vec<Verdict> {
        let workers = workers.max(1);
        let max_run = opts.max_coalesce.max(1);
        // Units: each document's request indices, in arrival order.
        let mut order: Vec<DocId> = Vec::new();
        let mut by_doc: HashMap<DocId, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            by_doc
                .entry(r.doc)
                .or_insert_with(|| {
                    order.push(r.doc);
                    Vec::new()
                })
                .push(i);
        }
        let docs = order;
        let pending: Vec<Mutex<VecDeque<usize>>> = docs
            .iter()
            // Invariant: `docs` records exactly the keys inserted into
            // `by_doc` above, so every removal hits.
            .map(|d| Mutex::new(by_doc.remove(d).expect("grouped").into()))
            .collect();
        // Shard-affine ready queues, seeded in first-arrival order so a
        // single worker drains them deterministically.
        let ready: Vec<Mutex<VecDeque<usize>>> =
            (0..STORE_SHARDS).map(|_| Mutex::new(VecDeque::new())).collect();
        for (u, d) in docs.iter().enumerate() {
            ready[shard_of(*d)].lock().push_back(u);
        }
        let metrics = self.metrics();
        if let Some(m) = metrics {
            for q in &ready {
                m.note_ready_depth(q.lock().len());
            }
        }
        let remaining = AtomicUsize::new(requests.len());

        let drain = |home: usize| -> Vec<(usize, Verdict)> {
            let mut out = Vec::new();
            while remaining.load(Ordering::Acquire) > 0 {
                let mut claimed = None;
                for off in 0..STORE_SHARDS {
                    let s = (home + off) % STORE_SHARDS;
                    if let Some(u) = ready[s].lock().pop_front() {
                        // A claim off the home shard is a steal — the
                        // temporal freedom this mode trades for
                        // throughput, counted so load tests can see the
                        // stealing actually happen.
                        if off != 0 {
                            if let Some(m) = metrics {
                                m.note_steal(home);
                            }
                        }
                        claimed = Some(u);
                        break;
                    }
                }
                let Some(u) = claimed else {
                    // Every queued unit is held by some worker; their
                    // re-enqueues (or the drained counter) end the spin.
                    std::thread::yield_now();
                    continue;
                };
                // We hold `u` exclusively — it sits in no ready queue
                // until pushed back — so per-document arrival order is
                // preserved even though *which* worker serves each run
                // is scheduling-dependent.
                let run: Vec<usize> = {
                    let mut q = pending[u].lock();
                    let n = q.len().min(max_run);
                    q.drain(..n).collect()
                };
                let refs: Vec<&Request> = run.iter().map(|&i| &requests[i]).collect();
                let verdicts = self.submit_run(docs[u], &refs);
                let served = run.len();
                out.extend(run.into_iter().zip(verdicts));
                remaining.fetch_sub(served, Ordering::AcqRel);
                if !pending[u].lock().is_empty() {
                    let mut q = ready[shard_of(docs[u])].lock();
                    q.push_back(u);
                    if let Some(m) = metrics {
                        m.note_ready_depth(q.len());
                    }
                }
            }
            out
        };

        let mut verdicts: Vec<Option<Verdict>> = vec![None; requests.len()];
        let results: Vec<(usize, Verdict)> = if workers == 1 {
            drain(0)
        } else {
            std::thread::scope(|scope| {
                let drain = &drain;
                let handles: Vec<_> =
                    (0..workers).map(|w| scope.spawn(move || drain(w % STORE_SHARDS))).collect();
                handles
                    .into_iter()
                    // Same invariant as `process`: submits contain every
                    // request panic, so join can only fail on aborts.
                    .flat_map(|h| h.join().expect("gateway worker panicked"))
                    .collect()
            })
        };
        for (i, v) in results {
            verdicts[i] = Some(v);
        }
        verdicts.into_iter().map(|v| v.expect("every request verdicted")).collect()
    }
}

/// Tuning for [`Gateway::process_throughput`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputOptions {
    /// Longest run of one document's queued batches offered to the
    /// commit coalescer per claim (≥ 1; a run of 1 is a plain submit).
    pub max_coalesce: usize,
}

impl Default for ThroughputOptions {
    fn default() -> ThroughputOptions {
        ThroughputOptions { max_coalesce: 8 }
    }
}

/// Counters from [`Gateway::coalesce_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoalesceStats {
    /// Runs (≥ 2 batches, one document) offered to the coalescer.
    pub attempts: u64,
    /// Runs admitted through one merged splice pass.
    pub commits: u64,
    /// Batches those merged passes committed.
    pub batches: u64,
}

/// The canonical accept/reject log of one processed stream: one line per
/// request, in request order. This string is the determinism contract's
/// subject — byte-identical at every worker count.
pub fn render_log(requests: &[Request], verdicts: &[Verdict]) -> String {
    assert_eq!(requests.len(), verdicts.len(), "one verdict per request");
    let mut out = String::new();
    for (i, (r, v)) in requests.iter().zip(verdicts).enumerate() {
        out.push_str(&format!("#{i:04} {} {}\n", r.doc, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::parse_constraint;
    use xuc_xtree::{parse_term, NodeId, Update};

    fn gateway_with_doc() -> (Gateway, DocId) {
        let gw = Gateway::new(Signer::new(0xabc));
        let id = DocId::new("h");
        let tree = parse_term("hospital#1(patient#2(visit#3),patient#4(clinicalTrial#5))").unwrap();
        let suite = vec![
            parse_constraint("(/patient/visit, ↑)").unwrap(),
            parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap(),
        ];
        gw.publish(id, tree, suite).unwrap();
        (gw, id)
    }

    /// Two gateways with the same wide all-linear document — the shape
    /// whose disjoint per-child edits the coalescer can actually merge.
    fn coalesce_pair() -> (Gateway, Gateway, DocId) {
        let id = DocId::new("wide");
        let tree = parse_term("h(p#1(v#2),p#3(v#4),p#5(v#6))").unwrap();
        let suite = vec![xuc_core::parse_constraint("(/p/v, ↑)").unwrap()];
        let a = Gateway::new(Signer::new(0xc0a1));
        let b = Gateway::new(Signer::new(0xc0a1));
        a.publish(id, tree.clone(), suite.clone()).unwrap();
        b.publish(id, tree, suite).unwrap();
        (a, b, id)
    }

    fn insert_under(doc: DocId, parent: u64, label: &str) -> Request {
        Request {
            doc,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(parent),
                id: NodeId::fresh(),
                label: label.into(),
            }],
        }
    }

    #[test]
    fn coalesced_run_fires_and_matches_sequential() {
        let (co, seq, id) = coalesce_pair();
        // Disjoint edits under sibling subtrees: insert under p#1,
        // relabel inside p#3, insert under p#5 — one merged pass.
        let requests = vec![
            insert_under(id, 1, "v"),
            Request {
                doc: id,
                updates: vec![Update::Relabel { node: NodeId::from_raw(4), label: "w".into() }],
            },
            insert_under(id, 5, "v"),
        ];
        // Relabeling v#4 away removes it from (/p/v, ↑)'s range — that
        // batch must be rejected, which forces the sequential fallback…
        let verdicts = co.submit_coalesced(&requests);
        let reference: Vec<Verdict> = requests.iter().map(|r| seq.submit(r)).collect();
        assert_eq!(verdicts, reference);
        assert!(verdicts[0].is_accepted() && verdicts[2].is_accepted());
        assert!(matches!(&verdicts[1], Verdict::Rejected(RejectReason::Violation { .. })));
        let stats = co.coalesce_stats();
        assert_eq!((stats.attempts, stats.commits), (1, 0), "violation run must fall back");
        // …while an all-accepting disjoint run takes the merged pass.
        let requests = vec![insert_under(id, 1, "v"), insert_under(id, 5, "v")];
        let verdicts = co.submit_coalesced(&requests);
        let reference: Vec<Verdict> = requests.iter().map(|r| seq.submit(r)).collect();
        assert_eq!(verdicts, reference);
        assert!(verdicts.iter().all(Verdict::is_accepted));
        let stats = co.coalesce_stats();
        assert_eq!((stats.commits, stats.batches), (1, 2), "disjoint run must coalesce");
        // Either way the arms stay indistinguishable: same tree, same
        // chained certificate, and the certificate verifies the tree.
        assert_eq!(co.snapshot(id).unwrap().render(), seq.snapshot(id).unwrap().render());
        assert_eq!(co.certificate(id).unwrap(), seq.certificate(id).unwrap());
        co.certificate(id).unwrap().verify(0xc0a1, &co.snapshot(id).unwrap()).unwrap();
    }

    #[test]
    fn process_throughput_log_matches_process() {
        let docs: Vec<(DocId, DataTree)> = (0..4)
            .map(|i| {
                (DocId::new(&format!("d{i}")), parse_term("h(p#1(v#2),p#3(v#4),p#5(v#6))").unwrap())
            })
            .collect();
        let suite = vec![xuc_core::parse_constraint("(/p/v, ↑)").unwrap()];
        let mk = || {
            let gw = Gateway::new(Signer::new(0x7677));
            for (id, tree) in &docs {
                gw.publish(*id, tree.clone(), suite.clone()).unwrap();
            }
            gw
        };
        let doc_refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(d, t)| (*d, t)).collect();
        let requests = crate::workload::seeded_requests(&doc_refs, &["v", "w"], 0xbeef, 64);
        let reference = mk().process(&requests, 1);
        for workers in [1, 2, 8] {
            let gw = mk();
            let verdicts = gw.process_throughput(&requests, workers, &ThroughputOptions::default());
            assert_eq!(
                render_log(&requests, &verdicts),
                render_log(&requests, &reference),
                "throughput mode diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn internal_error_messages_are_bounded() {
        let short = bounded_internal_error("boom".into());
        assert_eq!(short, "boom");
        let long = bounded_internal_error("x".repeat(5 * INTERNAL_ERROR_MAX));
        assert_eq!(long.chars().count(), INTERNAL_ERROR_MAX + 1);
        assert!(long.ends_with('…'));
        // The cut lands on a char boundary even when a multi-byte char
        // straddles the byte limit.
        let multi = bounded_internal_error("é".repeat(INTERNAL_ERROR_MAX));
        assert!(multi.len() <= INTERNAL_ERROR_MAX + '…'.len_utf8());
        assert!(multi.ends_with('…'));
        assert!(multi.chars().rev().skip(1).all(|c| c == 'é'));
    }

    #[test]
    fn accept_commits_and_recertifies() {
        let (gw, id) = gateway_with_doc();
        let before = gw.snapshot(id).unwrap();
        let req = Request {
            doc: id,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(2),
                id: NodeId::fresh(),
                label: "visit".into(),
            }],
        };
        assert_eq!(gw.submit(&req), Verdict::Accepted { commit: 1 });
        let snap = gw.snapshot(id).unwrap();
        assert_eq!(snap.len(), 6);
        // The new certificate covers the new state — and its ↑ baseline
        // has moved: the pre-commit tree (missing the new visit) now
        // fails verification against it.
        assert!(gw.certificate(id).unwrap().verify(0xabc, &snap).is_ok());
        assert!(gw.certificate(id).unwrap().verify(0xabc, &before).is_err());
    }

    #[test]
    fn violation_rejects_and_rolls_back() {
        let (gw, id) = gateway_with_doc();
        let before = gw.snapshot(id).unwrap();
        let req =
            Request { doc: id, updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(3) }] };
        match gw.submit(&req) {
            Verdict::Rejected(RejectReason::Violation { constraint, offenders }) => {
                assert_eq!(constraint, "(/patient/visit, ↑)");
                assert_eq!(offenders, 1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
        assert_eq!(gw.snapshot(id).unwrap().render(), before.render());
        assert!(gw.certificate(id).unwrap().verify(0xabc, &before).is_ok());
    }

    #[test]
    fn failed_update_rejects_whole_batch() {
        let (gw, id) = gateway_with_doc();
        let before = gw.snapshot(id).unwrap();
        // First update applies, second targets a dead node: the prefix
        // must unwind.
        let req = Request {
            doc: id,
            updates: vec![
                Update::InsertLeaf {
                    parent: NodeId::from_raw(2),
                    id: NodeId::fresh(),
                    label: "visit".into(),
                },
                Update::DeleteSubtree { node: NodeId::from_raw(99) },
            ],
        };
        match gw.submit(&req) {
            Verdict::Rejected(RejectReason::FailedUpdate { index: 1, .. }) => {}
            other => panic!("expected failed update, got {other:?}"),
        }
        assert_eq!(gw.snapshot(id).unwrap().render(), before.render());
    }

    #[test]
    fn unknown_document_rejected() {
        let (gw, _) = gateway_with_doc();
        let req = Request { doc: DocId::new("ghost"), updates: Vec::new() };
        assert_eq!(gw.submit(&req), Verdict::Rejected(RejectReason::UnknownDocument));
    }

    #[test]
    fn empty_batch_is_a_trivial_commit() {
        let (gw, id) = gateway_with_doc();
        let req = Request { doc: id, updates: Vec::new() };
        assert_eq!(gw.submit(&req), Verdict::Accepted { commit: 1 });
        assert_eq!(gw.submit(&req), Verdict::Accepted { commit: 2 });
    }

    /// Runs `f` with panic backtraces suppressed (for tests that
    /// intentionally panic inside the containment boundary). Serialized:
    /// the panic hook is process-global.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex as StdMutex;
        static HOOK: StdMutex<()> = StdMutex::new(());
        let _guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xuc-gw-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn injected_panic_is_contained() {
        let (gw, id) = gateway_with_doc();
        let before = gw.snapshot(id).unwrap().render();
        let req = Request {
            doc: id,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(2),
                id: NodeId::fresh(),
                label: "visit".into(),
            }],
        };
        gw.inject_session_panic(id, 1);
        match quiet_panics(|| gw.submit(&req)) {
            Verdict::Rejected(RejectReason::Internal { error }) => {
                assert!(error.contains("injected session panic"), "got: {error}");
            }
            other => panic!("expected internal rejection, got {other:?}"),
        }
        // The session's rollback-on-drop restored the document: no trace
        // of the applied update, no commit, lock not wedged.
        assert_eq!(gw.snapshot(id).unwrap().render(), before);
        assert_eq!(gw.store().document(id).unwrap().lock().commits(), 0);
        // The same request now commits normally.
        assert_eq!(gw.submit(&req), Verdict::Accepted { commit: 1 });
    }

    #[test]
    fn panicking_requests_do_not_wedge_the_pool() {
        let (gw, id) = gateway_with_doc();
        gw.inject_session_panic(id, 2);
        // Six trivially-committable requests; the first two sessions
        // panic. The pool must keep serving and the survivors must
        // commit in arrival order.
        let reqs: Vec<Request> = (0..6).map(|_| Request { doc: id, updates: Vec::new() }).collect();
        let verdicts = quiet_panics(|| gw.process(&reqs, 2));
        for v in &verdicts[..2] {
            assert!(
                matches!(v, Verdict::Rejected(RejectReason::Internal { .. })),
                "expected containment, got {v:?}"
            );
        }
        for (k, v) in verdicts[2..].iter().enumerate() {
            assert_eq!(*v, Verdict::Accepted { commit: k as u64 + 1 });
        }
    }

    #[test]
    fn durable_gateway_round_trips_state() {
        let dir = tmp_dir("roundtrip");
        let key = 0xD0C5;
        let id = DocId::new("h");
        let req_ok = |parent: u64| Request {
            doc: id,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(parent),
                id: NodeId::fresh(),
                label: "visit".into(),
            }],
        };
        let (render, cert) = {
            let gw = Gateway::recover(Signer::new(key), &dir).unwrap();
            assert!(gw.is_durable());
            let tree =
                parse_term("hospital#1(patient#2(visit#3),patient#4(clinicalTrial#5))").unwrap();
            let suite = vec![
                parse_constraint("(/patient/visit, ↑)").unwrap(),
                parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap(),
            ];
            gw.publish(id, tree, suite).unwrap();
            assert_eq!(gw.submit(&req_ok(2)), Verdict::Accepted { commit: 1 });
            assert!(matches!(
                gw.submit(&Request {
                    doc: id,
                    updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(3) }],
                }),
                Verdict::Rejected(RejectReason::Violation { .. })
            ));
            assert_eq!(gw.submit(&req_ok(4)), Verdict::Accepted { commit: 2 });
            (gw.snapshot(id).unwrap().render(), gw.certificate(id).unwrap())
            // Orderly drop: pending frames sync.
        };

        let rec = Gateway::recover(Signer::new(key), &dir).unwrap();
        let snap = rec.snapshot(id).unwrap();
        assert_eq!(snap.render(), render);
        assert_eq!(rec.certificate(id).unwrap(), cert, "recovered certificate differs");
        assert_eq!(rec.store().document(id).unwrap().lock().commits(), 2);
        assert!(cert.verify(key, &snap).is_ok());
        // The recovered gateway continues the hash chain where the
        // pre-crash one left off.
        let prev = cert.digest();
        assert_eq!(rec.submit(&req_ok(2)), Verdict::Accepted { commit: 3 });
        let next = rec.certificate(id).unwrap();
        assert!(next.verify_chained(key, &rec.snapshot(id).unwrap(), prev).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_renders_in_request_order() {
        let (gw, id) = gateway_with_doc();
        let reqs = vec![
            Request { doc: id, updates: Vec::new() },
            Request { doc: DocId::new("ghost"), updates: Vec::new() },
        ];
        let verdicts = gw.process(&reqs, 1);
        let log = render_log(&reqs, &verdicts);
        assert_eq!(log, "#0000 h ACCEPT commit=1\n#0001 ghost REJECT unknown document\n");
    }
}
