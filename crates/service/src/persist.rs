//! Durability for the gateway: the commit journal and crash recovery.
//!
//! A durable gateway ([`Gateway::recover`](crate::Gateway::recover)) owns
//! a `Journal`: a write-ahead log of every publish and every *accepted*
//! commit (rejected batches change nothing, so they are never logged),
//! plus periodic per-document snapshots. The mechanisms — frame format,
//! checksums, group commit, torn-tail truncation, atomic snapshot
//! install — live in [`xuc_persist`]; this module owns the *policy*:
//!
//! * **Write-ahead ordering.** A publish is appended (and synced) before
//!   `publish` returns; a commit is appended while the document's mutex
//!   is still held, so the log's per-document commit order is exactly the
//!   store's. With `group_commit > 1` frames buffer in memory and a crash
//!   can lose a suffix of *acknowledged* commits — the classic durability
//!   window, bounded by the batch size and closed by `group_commit = 1`.
//! * **Snapshots and truncation.** Every `snapshot_every` commits a
//!   document's full admission state is written (atomic rename); once
//!   every document logged in the WAL is covered by a snapshot at least
//!   as new, the whole log is truncated. Recovery cost is therefore
//!   bounded by the snapshot cadence, not by history length (measured by
//!   the E-REC experiment).
//! * **Recovery = snapshots + replay.** `recover` loads snapshots,
//!   re-runs the WAL tail through the *live* admission path
//!   ([`Session`]), and cross-checks every replayed certificate against
//!   the logged one — recovery that diverges from the original run is an
//!   error, never a silent wrong state. The kill/restart differential
//!   harness (`tests/differential.rs`) asserts byte-identical recovery
//!   under injected write faults at several worker counts.
//! * **Fail-stop journal.** A *real* IO error while journaling panics
//!   with a `JournalFatal` payload that
//!   [`Gateway::submit`](crate::Gateway::submit)'s panic containment
//!   deliberately re-raises: a gateway that can no longer guarantee
//!   durability stops, it does not keep acknowledging commits it cannot
//!   persist.

use crate::cache::SuiteCache;
use crate::session::{AdmissionMode, Session};
use crate::store::{Document, DocumentStore};
use crate::DocId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::MutexGuard;
use xuc_core::Constraint;
use xuc_persist::{
    read_snapshots, write_snapshot, DocSnapshot, PersistError, WalRecord, WalWriter,
};
use xuc_sigstore::{Certificate, Signer};
use xuc_xtree::{DataTree, NodeId, Update};

/// File name of the write-ahead log inside a gateway's durability
/// directory (snapshots sit alongside it as `*.snap`).
pub const WAL_FILE: &str = "wal.log";

/// The WAL path inside `dir` — exposed so offline auditors (see
/// `examples/audit_past.rs`) can read a gateway's journal without a
/// gateway.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Tuning knobs of a durable gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Commits per fsync batch: `1` syncs every commit (no durability
    /// window), `n` buffers up to `n` frames in memory and a crash can
    /// lose that suffix of acknowledged commits.
    pub group_commit: usize,
    /// Snapshot a document every this-many commits (`None`: never —
    /// recovery replays the document's whole history from the log).
    pub snapshot_every: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions { group_commit: 1, snapshot_every: Some(256) }
    }
}

/// Panic payload of a journal IO failure. [`Gateway`](crate::Gateway)'s
/// panic containment re-raises it instead of converting it to a verdict:
/// journal failure is fail-stop (see the module docs).
pub(crate) struct JournalFatal(pub String);

impl fmt::Display for JournalFatal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn journal_fatal(what: &str, e: io::Error) -> ! {
    std::panic::panic_any(JournalFatal(format!("journal {what} failed: {e}")))
}

/// The gateway's durability arm: WAL writer plus the bookkeeping that
/// decides when the log can be truncated. One mutex serializes appends —
/// held strictly *inside* a document mutex (commit logging) or alone
/// (publish logging), never around one, so the store's lock order
/// discipline is preserved.
pub(crate) struct Journal {
    dir: PathBuf,
    opts: DurableOptions,
    inner: Mutex<JournalInner>,
}

pub(crate) struct JournalInner {
    writer: WalWriter,
    /// Highest commit number in the WAL per document (`0`: publish
    /// record only).
    logged: HashMap<DocId, u64>,
    /// Commit counter covered by each document's installed snapshot.
    snapshotted: HashMap<DocId, u64>,
}

impl JournalInner {
    /// Truncates the whole log iff every logged document has a snapshot
    /// at least as new as its last logged commit (publish-only documents
    /// — logged `0`, no snapshot — keep the log alive).
    fn try_truncate(&mut self) {
        if self.logged.is_empty() {
            return;
        }
        let covered =
            self.logged.iter().all(|(d, c)| self.snapshotted.get(d).is_some_and(|s| s >= c));
        if covered {
            if let Err(e) = self.writer.truncate_all() {
                journal_fatal("truncate", e);
            }
            self.logged.clear();
        }
    }
}

impl Journal {
    fn lock(&self) -> MutexGuard<'_, JournalInner> {
        self.inner.lock()
    }

    /// Appends (and syncs — publishes are rare and must never sit in the
    /// group-commit buffer while their commits land) a publish record.
    /// Caller holds no document mutex.
    pub(crate) fn log_publish(&self, id: DocId, tree: DataTree, suite: Vec<Constraint>) {
        let mut inner = self.lock();
        let rec = WalRecord::Publish { doc: id.as_str().to_owned(), tree, suite };
        if let Err(e) = inner.writer.append(&rec).and_then(|()| inner.writer.sync()) {
            journal_fatal("publish append", e);
        }
        inner.logged.entry(id).or_insert(0);
    }

    /// Appends an accepted commit. Caller holds the document's mutex, so
    /// per-document log order equals store commit order.
    pub(crate) fn log_commit(
        &self,
        id: DocId,
        commit: u64,
        updates: &[Update],
        cert: &Certificate,
    ) {
        let mut inner = self.lock();
        let rec = WalRecord::Commit {
            doc: id.as_str().to_owned(),
            commit,
            updates: updates.to_vec(),
            cert: cert.clone(),
        };
        if let Err(e) = inner.writer.append(&rec) {
            journal_fatal("commit append", e);
        }
        inner.logged.insert(id, commit);
    }

    /// Snapshots `doc` if its commit counter hits the cadence. Caller
    /// holds the document's mutex (so the state written is exactly the
    /// state just committed).
    pub(crate) fn maybe_snapshot(&self, doc: &Document) {
        let Some(every) = self.opts.snapshot_every else { return };
        if every == 0 || doc.commits() == 0 || !doc.commits().is_multiple_of(every) {
            return;
        }
        self.snapshot(doc);
    }

    /// Unconditionally snapshots `doc` (atomic install), then truncates
    /// the WAL if snapshots now cover everything logged.
    pub(crate) fn snapshot(&self, doc: &Document) {
        let snap = DocSnapshot {
            doc: doc.id().as_str().to_owned(),
            commits: doc.commits(),
            tree: doc.tree().clone(),
            suite: doc.suite().to_vec(),
            base_sets: doc.baseline().to_vec(),
            cert: doc.certificate().clone(),
        };
        if let Err(e) = write_snapshot(&self.dir, &snap) {
            journal_fatal("snapshot write", e);
        }
        let mut inner = self.lock();
        inner.snapshotted.insert(doc.id(), doc.commits());
        inner.try_truncate();
    }

    /// Consumes the journal for crash injection
    /// ([`Gateway::simulate_crash`](crate::Gateway::simulate_crash)).
    pub(crate) fn into_writer(self) -> WalWriter {
        self.inner.into_inner().writer
    }
}

/// Why [`Gateway::recover`](crate::Gateway::recover) refused to come up.
/// Recovery is all-or-nothing: a journal that cannot be replayed exactly
/// is surfaced, never partially applied.
#[derive(Debug)]
pub enum RecoverError {
    /// The journal or a snapshot could not be read (IO or corruption
    /// past the torn tail the WAL scan already tolerates).
    Persist(PersistError),
    /// A logged commit references a document that is neither snapshotted
    /// nor published earlier in the log.
    UnknownDocument { doc: String },
    /// Replaying a logged commit failed or was rejected — the log and
    /// the live admission path disagree on an *accepted* batch.
    ReplayFailed { doc: String, commit: u64, error: String },
    /// Replay ran but did not reproduce the logged commit number or the
    /// logged certificate (hash chain included).
    Diverged { doc: String, commit: u64 },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Persist(e) => write!(f, "recovery failed: {e}"),
            RecoverError::UnknownDocument { doc } => {
                write!(f, "recovery failed: WAL commit for unknown document {doc}")
            }
            RecoverError::ReplayFailed { doc, commit, error } => {
                write!(f, "recovery failed: replaying {doc} commit {commit}: {error}")
            }
            RecoverError::Diverged { doc, commit } => write!(
                f,
                "recovery failed: replay of {doc} commit {commit} diverged from the journal"
            ),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for RecoverError {
    fn from(e: PersistError) -> Self {
        RecoverError::Persist(e)
    }
}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Persist(PersistError::Io(e))
    }
}

/// Store, cache and journal rebuilt from a durability directory — what
/// [`Gateway::recover_with`](crate::Gateway::recover_with) wraps into a
/// serving gateway.
pub(crate) struct RecoveredState {
    pub(crate) store: DocumentStore,
    pub(crate) cache: SuiteCache,
    pub(crate) journal: Journal,
}

fn tree_max_id(tree: &DataTree) -> u64 {
    tree.preorder_snapshot().iter().map(|(id, _, _)| id.raw()).max().unwrap_or(0)
}

fn update_max_id(u: &Update) -> u64 {
    match u {
        Update::InsertLeaf { parent, id, .. } => parent.raw().max(id.raw()),
        Update::DeleteSubtree { node }
        | Update::DeleteNode { node }
        | Update::Relabel { node, .. } => node.raw(),
        Update::Move { node, new_parent } => node.raw().max(new_parent.raw()),
        Update::ReplaceId { node, new_id } => node.raw().max(new_id.raw()),
    }
}

/// Rebuilds gateway state from `dir` (created if absent — an empty
/// directory recovers to an empty, durable gateway):
///
/// 1. install every snapshot (trusted committed state, fresh evaluator,
///    cache-shared automata);
/// 2. replay the WAL's durable prefix through the live admission path,
///    skipping records a snapshot already covers (replay is idempotent),
///    and cross-checking each replayed certificate — field for field,
///    hash chain included — against the logged one;
/// 3. advance the node-id allocator past every persisted id, so
///    post-recovery `NodeId::fresh()` never collides with history.
pub(crate) fn recover(
    signer: &Signer,
    admission: AdmissionMode,
    dir: &Path,
    opts: DurableOptions,
) -> Result<RecoveredState, RecoverError> {
    std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
    let store = DocumentStore::new();
    let cache = SuiteCache::new();
    let mut max_id: u64 = 0;
    let mut logged: HashMap<DocId, u64> = HashMap::new();
    let mut snapshotted: HashMap<DocId, u64> = HashMap::new();

    for snap in read_snapshots(dir)? {
        let id = DocId::new(&snap.doc);
        max_id = max_id.max(tree_max_id(&snap.tree));
        let compiled = cache.get_or_compile(&snap.suite);
        let doc = Document::restore(
            id,
            snap.tree,
            snap.suite,
            compiled,
            snap.base_sets,
            snap.cert,
            snap.commits,
        );
        store.install(doc).expect("snapshot file names are unique per document");
        snapshotted.insert(id, snap.commits);
    }

    let (writer, scan) = WalWriter::open(&wal_path(dir), opts.group_commit)?;
    for rec in scan.records {
        match rec {
            WalRecord::Publish { doc, tree, suite } => {
                let id = DocId::new(&doc);
                max_id = max_id.max(tree_max_id(&tree));
                logged.entry(id).or_insert(0);
                if store.document(id).is_some() {
                    // A snapshot already installed this document.
                    continue;
                }
                store
                    .publish(id, tree, suite, &cache, signer)
                    .expect("a document is published at most once per journal");
            }
            WalRecord::Commit { doc, commit, updates, cert } => {
                let id = DocId::new(&doc);
                for u in &updates {
                    max_id = max_id.max(update_max_id(u));
                }
                logged.insert(id, commit);
                let Some(arc) = store.document(id) else {
                    return Err(RecoverError::UnknownDocument { doc });
                };
                let mut d = arc.lock();
                if commit <= d.commits() {
                    // Covered by the snapshot; the WAL just has not been
                    // truncated yet.
                    continue;
                }
                if commit != d.commits() + 1 {
                    return Err(RecoverError::Diverged { doc, commit });
                }
                let mut session = Session::begin(&mut d);
                for u in &updates {
                    if let Err(e) = session.apply(u) {
                        return Err(RecoverError::ReplayFailed {
                            doc,
                            commit,
                            error: e.to_string(),
                        });
                    }
                }
                match session.commit_with(signer, admission) {
                    Ok(receipt) => debug_assert_eq!(receipt.commit, commit),
                    Err(r) => {
                        return Err(RecoverError::ReplayFailed {
                            doc,
                            commit,
                            error: r.to_string(),
                        });
                    }
                }
                if d.certificate() != &cert {
                    return Err(RecoverError::Diverged { doc, commit });
                }
            }
        }
    }

    NodeId::ensure_fresh_above(max_id);
    let journal = Journal {
        dir: dir.to_owned(),
        opts,
        inner: Mutex::new(JournalInner { writer, logged, snapshotted }),
    };
    Ok(RecoveredState { store, cache, journal })
}
