//! Durability for the gateway: the commit journal and crash recovery.
//!
//! A durable gateway ([`Gateway::recover`](crate::Gateway::recover)) owns
//! a `Journal`: a write-ahead log of every publish and every *accepted*
//! commit (rejected batches change nothing, so they are never logged),
//! plus periodic per-document snapshots. The mechanisms — frame format,
//! checksums, group commit, torn-tail truncation, atomic snapshot
//! install — live in [`xuc_persist`]; this module owns the *policy*:
//!
//! * **Write-ahead ordering.** A publish is appended (and synced) before
//!   `publish` returns; a commit is appended while the document's mutex
//!   is still held, so the log's per-document commit order is exactly the
//!   store's. With `group_commit > 1` frames buffer in memory and a crash
//!   can lose a suffix of *acknowledged* commits — the classic durability
//!   window, bounded by the batch size and closed by `group_commit = 1`.
//! * **Snapshots and truncation.** Every `snapshot_every` commits a
//!   document's full admission state is written (atomic rename); once
//!   every document logged in the WAL is covered by a snapshot at least
//!   as new, the whole log is truncated. Recovery cost is therefore
//!   bounded by the snapshot cadence, not by history length (measured by
//!   the E-REC experiment).
//! * **Recovery = snapshots + replay.** `recover` loads snapshots,
//!   re-runs the WAL tail through the *live* admission path
//!   ([`Session`]), and cross-checks every replayed certificate against
//!   the logged one — recovery that diverges from the original run is an
//!   error, never a silent wrong state. The kill/restart differential
//!   harness (`tests/differential.rs`) asserts byte-identical recovery
//!   under injected write faults at several worker counts.
//! * **Survive-the-fault journal.** A journal IO error is classified
//!   ([`xuc_persist::classify`]): *transient* failures retry with
//!   bounded exponential backoff through an injectable clock
//!   ([`DurableOptions::retry`]) and, absorbed, leave no trace beyond a
//!   counter; a *fatal* failure (or an exhausted retry budget) **seals**
//!   the WAL writer and surfaces a fatal `JournalError`, which the
//!   gateway answers by degrading to read-only — not by dying. The
//!   failed commit itself was already accepted in memory; it is covered
//!   by the same contract as a group-commit buffer loss (recovery
//!   re-drives the window) and [`Gateway::try_resume`](crate::Gateway::try_resume)
//!   closes the gap with fresh snapshots before journaling restarts.
//!   See DESIGN.md §9 for the full failure matrix.

use crate::cache::SuiteCache;
use crate::session::{AdmissionMode, Session};
use crate::store::{Document, DocumentStore};
use crate::DocId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::MutexGuard;
use xuc_core::Constraint;
use xuc_persist::{
    read_snapshots, retry_io, write_snapshot, Clock, DocSnapshot, IoFailure, PersistError,
    RetryPolicy, WalRecord, WalWriter,
};
use xuc_sigstore::{Certificate, Signer};
use xuc_xtree::{DataTree, NodeId, Update};

/// File name of the write-ahead log inside a gateway's durability
/// directory (snapshots sit alongside it as `*.snap`).
pub const WAL_FILE: &str = "wal.log";

/// The WAL path inside `dir` — exposed so offline auditors (see
/// `examples/audit_past.rs`) can read a gateway's journal without a
/// gateway.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Tuning knobs of a durable gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Commits per fsync batch: `1` syncs every commit (no durability
    /// window), `n` buffers up to `n` frames in memory and a crash can
    /// lose that suffix of acknowledged commits.
    pub group_commit: usize,
    /// Snapshot a document every this-many commits (`None`: never —
    /// recovery replays the document's whole history from the log).
    pub snapshot_every: Option<u64>,
    /// Transient-fault retry bounds for every journal write (appends,
    /// syncs, snapshots, truncation). [`RetryPolicy::none`] escalates on
    /// the first error of any class.
    pub retry: RetryPolicy,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions { group_commit: 1, snapshot_every: Some(256), retry: RetryPolicy::default() }
    }
}

/// Why a journal write was refused. By the time a caller sees
/// [`JournalError::Fatal`] the writer is already sealed — the gateway's
/// job is to degrade, not to decide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum JournalError {
    /// The journal was sealed by an earlier fatal fault (or an explicit
    /// halt); nothing was written.
    Sealed,
    /// A fatal IO error — or a transient one that outlived the retry
    /// budget — while performing `what`. The writer sealed itself.
    Fatal { what: &'static str, error: String },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Sealed => write!(f, "journal sealed"),
            JournalError::Fatal { what, error } => write!(f, "journal {what} failed: {error}"),
        }
    }
}

/// Why [`Gateway::try_resume`](crate::Gateway::try_resume) could not
/// bring a degraded gateway back to serving.
#[derive(Debug)]
pub enum ResumeError {
    /// The gateway is `Serving` — there is nothing to resume.
    NotDegraded,
    /// The gateway is `Halted`; halts are terminal for this process
    /// (restart and recover instead).
    Halted,
    /// Re-opening the WAL or re-snapshotting a document failed; the
    /// gateway stays `ReadOnly` and resume can be retried.
    Persist(PersistError),
    /// A document's in-memory commit counter is *behind* the durable
    /// log — memory lost state while serving. The gateway halts: its
    /// memory can no longer be trusted as the reconciliation source.
    StateMismatch { doc: String },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::NotDegraded => write!(f, "resume refused: gateway is serving"),
            ResumeError::Halted => write!(f, "resume refused: gateway is halted"),
            ResumeError::Persist(e) => write!(f, "resume failed: {e}"),
            ResumeError::StateMismatch { doc } => {
                write!(f, "resume refused: document {doc} is behind its own durable log")
            }
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

/// The gateway's durability arm: WAL writer plus the bookkeeping that
/// decides when the log can be truncated. One mutex serializes appends —
/// held strictly *inside* a document mutex (commit logging) or alone
/// (publish logging), never around one, so the store's lock order
/// discipline is preserved.
pub(crate) struct Journal {
    dir: PathBuf,
    opts: DurableOptions,
    /// Time source for retry backoff. `SystemClock` in production;
    /// chaos tests inject a `VirtualClock` so retried schedules run at
    /// full speed and the slept-for backoff is assertable.
    clock: Box<dyn Clock + Send + Sync>,
    /// Transient failures absorbed by the retry loop (journal-lifetime
    /// total, surfaced as `Gateway::journal_transient_retries`).
    retries: AtomicU64,
    inner: Mutex<JournalInner>,
}

pub(crate) struct JournalInner {
    writer: WalWriter,
    /// Highest commit number in the WAL per document (`0`: publish
    /// record only).
    logged: HashMap<DocId, u64>,
    /// Commit counter covered by each document's installed snapshot.
    snapshotted: HashMap<DocId, u64>,
}

impl Journal {
    fn lock(&self) -> MutexGuard<'_, JournalInner> {
        self.inner.lock()
    }

    /// Whether a fatal fault (or [`seal`](Self::seal)) has shut the
    /// writer down.
    pub(crate) fn is_sealed(&self) -> bool {
        self.lock().writer.is_sealed()
    }

    /// Seals the writer without a fault (explicit halt): buffered frames
    /// are dropped, the on-disk log keeps its last-synced prefix.
    pub(crate) fn seal(&self) {
        self.lock().writer.seal();
    }

    /// Transient retries absorbed so far.
    pub(crate) fn transient_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Syncs the writer's buffer under the retry policy. `first_error`
    /// (from an append whose auto-sync tripped) counts as the first
    /// attempt — the frame is already buffered, so retrying means
    /// re-syncing, never re-appending. On escalation the writer seals.
    fn flush_with_retry(
        &self,
        inner: &mut JournalInner,
        first_error: Option<io::Error>,
        what: &'static str,
    ) -> Result<(), JournalError> {
        let mut first = first_error;
        let outcome = retry_io(self.opts.retry, &*self.clock, || match first.take() {
            Some(e) => Err(e),
            None => inner.writer.sync(),
        });
        self.settle(inner, outcome.map(|o| o.retries), what)
    }

    /// Books retries and converts an escalated failure into a sealed
    /// writer + [`JournalError::Fatal`].
    fn settle(
        &self,
        inner: &mut JournalInner,
        outcome: Result<u32, IoFailure>,
        what: &'static str,
    ) -> Result<(), JournalError> {
        match outcome {
            Ok(retries) => {
                self.retries.fetch_add(retries as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(fail) => {
                self.retries.fetch_add(fail.retries as u64, Ordering::Relaxed);
                inner.writer.seal();
                // `IoFailure`'s rendering keeps the classification (and
                // any exhausted-retry count) in the recorded fault line.
                Err(JournalError::Fatal { what, error: fail.to_string() })
            }
        }
    }

    /// Appends (and syncs — publishes are rare and must never sit in the
    /// group-commit buffer while their commits land) a publish record.
    /// Caller holds no document mutex.
    pub(crate) fn log_publish(
        &self,
        id: DocId,
        tree: DataTree,
        suite: Vec<Constraint>,
    ) -> Result<(), JournalError> {
        let mut inner = self.lock();
        if inner.writer.is_sealed() {
            return Err(JournalError::Sealed);
        }
        let rec = WalRecord::Publish { doc: id.as_str().to_owned(), tree, suite };
        let first = inner.writer.append(&rec).err();
        self.flush_with_retry(&mut inner, first, "publish append")?;
        inner.logged.entry(id).or_insert(0);
        Ok(())
    }

    /// Appends an accepted commit. Caller holds the document's mutex, so
    /// per-document log order equals store commit order. An `Err` means
    /// the commit is in memory but **not** durable — the gateway must
    /// degrade (the journaled-or-degraded invariant).
    pub(crate) fn log_commit(
        &self,
        id: DocId,
        commit: u64,
        updates: &[Update],
        cert: &Certificate,
    ) -> Result<(), JournalError> {
        let mut inner = self.lock();
        if inner.writer.is_sealed() {
            return Err(JournalError::Sealed);
        }
        let rec = WalRecord::Commit {
            doc: id.as_str().to_owned(),
            commit,
            updates: updates.to_vec(),
            cert: cert.clone(),
        };
        if let Err(e) = inner.writer.append(&rec) {
            // The frame made it into the buffer; only the auto-sync at
            // the group-commit threshold failed.
            self.flush_with_retry(&mut inner, Some(e), "commit append")?;
        }
        inner.logged.insert(id, commit);
        Ok(())
    }

    /// Snapshots `doc` if its commit counter hits the cadence. Caller
    /// holds the document's mutex (so the state written is exactly the
    /// state just committed).
    pub(crate) fn maybe_snapshot(&self, doc: &Document) -> Result<(), JournalError> {
        let Some(every) = self.opts.snapshot_every else { return Ok(()) };
        if every == 0 || doc.commits() == 0 || !doc.commits().is_multiple_of(every) {
            return Ok(());
        }
        self.snapshot(doc)
    }

    /// Unconditionally snapshots `doc` (atomic install, retried under
    /// the policy), then truncates the WAL if snapshots now cover
    /// everything logged. A fatal snapshot failure seals the journal:
    /// nothing acknowledged is lost (the WAL still covers it), but a
    /// disk that cannot take snapshots can never truncate its log — the
    /// gateway must degrade before the log grows without bound.
    pub(crate) fn snapshot(&self, doc: &Document) -> Result<(), JournalError> {
        let snap = DocSnapshot {
            doc: doc.id().as_str().to_owned(),
            commits: doc.commits(),
            tree: doc.tree().clone(),
            suite: doc.suite().to_vec(),
            base_sets: doc.baseline().to_vec(),
            cert: doc.certificate().clone(),
        };
        let outcome = retry_io(self.opts.retry, &*self.clock, || write_snapshot(&self.dir, &snap));
        let mut inner = self.lock();
        self.settle(&mut inner, outcome.map(|o| o.retries), "snapshot write")?;
        inner.snapshotted.insert(doc.id(), doc.commits());
        self.try_truncate(&mut inner)
    }

    /// Truncates the whole log iff every logged document has a snapshot
    /// at least as new as its last logged commit (publish-only documents
    /// — logged `0`, no snapshot — keep the log alive). `truncate_all`
    /// is idempotent, so the whole operation retries as one unit.
    fn try_truncate(&self, inner: &mut JournalInner) -> Result<(), JournalError> {
        if inner.logged.is_empty() {
            return Ok(());
        }
        let covered =
            inner.logged.iter().all(|(d, c)| inner.snapshotted.get(d).is_some_and(|s| s >= c));
        if !covered {
            return Ok(());
        }
        let outcome = retry_io(self.opts.retry, &*self.clock, || inner.writer.truncate_all());
        self.settle(inner, outcome.map(|o| o.retries), "truncate")?;
        inner.logged.clear();
        Ok(())
    }

    /// Arms a write-time fault on the WAL writer (chaos tests).
    #[cfg(feature = "test-hooks")]
    pub(crate) fn inject_fault(&self, fault: xuc_persist::WriteFault) {
        self.lock().writer.inject_fault(fault);
    }

    /// Re-opens the WAL after a degraded seal and reconciles disk with
    /// memory, in three phases chosen so the journal lock is never held
    /// around a document mutex (the store's lock order):
    ///
    /// 1. **Re-scan** (no locks): open a fresh writer on the log —
    ///    truncating any torn tail — and rebuild the `logged` map from
    ///    what is *actually on disk*. The in-memory map cannot be
    ///    trusted after a seal: a failed sync may have lost buffered
    ///    frames the map already counted.
    /// 2. **Reconcile** (document mutexes only): any document whose
    ///    in-memory commit counter ran ahead of its durable coverage —
    ///    including the very commit whose journaling failed — gets a
    ///    fresh snapshot, so nothing acknowledged depends on the lost
    ///    suffix. A document *behind* its durable log is a
    ///    [`ResumeError::StateMismatch`]: memory is corrupt, the caller
    ///    halts.
    /// 3. **Swap** (journal lock): install the fresh writer and rebuilt
    ///    bookkeeping, then truncate if snapshots now cover the log.
    pub(crate) fn resume(&self, store: &DocumentStore) -> Result<(), ResumeError> {
        let (writer, scan) = WalWriter::open(&wal_path(&self.dir), self.opts.group_commit)
            .map_err(|e| ResumeError::Persist(PersistError::Io(e)))?;
        let mut logged: HashMap<DocId, u64> = HashMap::new();
        for rec in &scan.records {
            match rec {
                WalRecord::Publish { doc, .. } => {
                    logged.entry(DocId::new(doc)).or_insert(0);
                }
                WalRecord::Commit { doc, commit, .. } => {
                    logged.insert(DocId::new(doc), *commit);
                }
            }
        }
        // Snapshots are atomic installs recorded only after success, so
        // the in-memory map *is* trustworthy — unlike `logged`.
        let snapshotted: HashMap<DocId, u64> = self.lock().snapshotted.clone();

        let mut resnapshotted: Vec<(DocId, u64)> = Vec::new();
        for id in store.doc_ids() {
            // Documents are never removed, so the listing stays valid.
            let Some(arc) = store.document(id) else { continue };
            let doc = arc.lock();
            let covered = logged.contains_key(&id) || snapshotted.contains_key(&id);
            let durable = logged
                .get(&id)
                .copied()
                .unwrap_or(0)
                .max(snapshotted.get(&id).copied().unwrap_or(0));
            if doc.commits() < durable {
                return Err(ResumeError::StateMismatch { doc: id.as_str().to_owned() });
            }
            if covered && doc.commits() == durable {
                continue;
            }
            let snap = DocSnapshot {
                doc: id.as_str().to_owned(),
                commits: doc.commits(),
                tree: doc.tree().clone(),
                suite: doc.suite().to_vec(),
                base_sets: doc.baseline().to_vec(),
                cert: doc.certificate().clone(),
            };
            retry_io(self.opts.retry, &*self.clock, || write_snapshot(&self.dir, &snap))
                .map_err(|f| ResumeError::Persist(PersistError::Io(f.error)))?;
            resnapshotted.push((id, doc.commits()));
        }

        let mut inner = self.lock();
        inner.writer = writer;
        inner.logged = logged;
        for (id, commits) in resnapshotted {
            inner.snapshotted.insert(id, commits);
        }
        if let Err(JournalError::Fatal { error, .. }) = self.try_truncate(&mut inner) {
            return Err(ResumeError::Persist(PersistError::Io(io::Error::other(error))));
        }
        Ok(())
    }

    /// Consumes the journal for crash injection
    /// ([`Gateway::simulate_crash`](crate::Gateway::simulate_crash)).
    pub(crate) fn into_writer(self) -> WalWriter {
        self.inner.into_inner().writer
    }
}

/// Why [`Gateway::recover`](crate::Gateway::recover) refused to come up.
/// Recovery is all-or-nothing: a journal that cannot be replayed exactly
/// is surfaced, never partially applied.
#[derive(Debug)]
pub enum RecoverError {
    /// The journal or a snapshot could not be read (IO or corruption
    /// past the torn tail the WAL scan already tolerates).
    Persist(PersistError),
    /// A logged commit references a document that is neither snapshotted
    /// nor published earlier in the log.
    UnknownDocument { doc: String },
    /// Replaying a logged commit failed or was rejected — the log and
    /// the live admission path disagree on an *accepted* batch.
    ReplayFailed { doc: String, commit: u64, error: String },
    /// Replay ran but did not reproduce the logged commit number or the
    /// logged certificate (hash chain included).
    Diverged { doc: String, commit: u64 },
    /// The durability directory contradicts itself: two snapshots, or a
    /// snapshot-plus-publish race, claim the same document id. Snapshot
    /// file names derive from document names, so this only happens to a
    /// tampered or corrupted directory — recovery refuses to pick a
    /// winner.
    Conflict { doc: String },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Persist(e) => write!(f, "recovery failed: {e}"),
            RecoverError::UnknownDocument { doc } => {
                write!(f, "recovery failed: WAL commit for unknown document {doc}")
            }
            RecoverError::ReplayFailed { doc, commit, error } => {
                write!(f, "recovery failed: replaying {doc} commit {commit}: {error}")
            }
            RecoverError::Diverged { doc, commit } => write!(
                f,
                "recovery failed: replay of {doc} commit {commit} diverged from the journal"
            ),
            RecoverError::Conflict { doc } => {
                write!(f, "recovery failed: conflicting persisted copies of document {doc}")
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for RecoverError {
    fn from(e: PersistError) -> Self {
        RecoverError::Persist(e)
    }
}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Persist(PersistError::Io(e))
    }
}

/// Store, cache and journal rebuilt from a durability directory — what
/// [`Gateway::recover_with`](crate::Gateway::recover_with) wraps into a
/// serving gateway.
pub(crate) struct RecoveredState {
    pub(crate) store: DocumentStore,
    pub(crate) cache: SuiteCache,
    pub(crate) journal: Journal,
}

fn tree_max_id(tree: &DataTree) -> u64 {
    tree.preorder_snapshot().iter().map(|(id, _, _)| id.raw()).max().unwrap_or(0)
}

fn update_max_id(u: &Update) -> u64 {
    match u {
        Update::InsertLeaf { parent, id, .. } => parent.raw().max(id.raw()),
        Update::DeleteSubtree { node }
        | Update::DeleteNode { node }
        | Update::Relabel { node, .. } => node.raw(),
        Update::Move { node, new_parent } => node.raw().max(new_parent.raw()),
        Update::ReplaceId { node, new_id } => node.raw().max(new_id.raw()),
    }
}

/// Rebuilds gateway state from `dir` (created if absent — an empty
/// directory recovers to an empty, durable gateway):
///
/// 1. install every snapshot (trusted committed state, fresh evaluator,
///    cache-shared automata);
/// 2. replay the WAL's durable prefix through the live admission path,
///    skipping records a snapshot already covers (replay is idempotent),
///    and cross-checking each replayed certificate — field for field,
///    hash chain included — against the logged one;
/// 3. advance the node-id allocator past every persisted id, so
///    post-recovery `NodeId::fresh()` never collides with history.
pub(crate) fn recover(
    signer: &Signer,
    admission: AdmissionMode,
    dir: &Path,
    opts: DurableOptions,
    clock: Box<dyn Clock + Send + Sync>,
) -> Result<RecoveredState, RecoverError> {
    std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
    let store = DocumentStore::new();
    let cache = SuiteCache::new();
    let mut max_id: u64 = 0;
    let mut logged: HashMap<DocId, u64> = HashMap::new();
    let mut snapshotted: HashMap<DocId, u64> = HashMap::new();

    for snap in read_snapshots(dir)? {
        let id = DocId::new(&snap.doc);
        max_id = max_id.max(tree_max_id(&snap.tree));
        let compiled = cache.get_or_compile(&snap.suite);
        let doc = Document::restore(
            id,
            snap.tree,
            snap.suite,
            compiled,
            snap.base_sets,
            snap.cert,
            snap.commits,
        );
        if store.install(doc).is_err() {
            // Snapshot file names derive from document names, so a
            // duplicate means the directory contradicts itself.
            return Err(RecoverError::Conflict { doc: snap.doc });
        }
        snapshotted.insert(id, snap.commits);
    }

    let (writer, scan) = WalWriter::open(&wal_path(dir), opts.group_commit)?;
    for rec in scan.records {
        match rec {
            WalRecord::Publish { doc, tree, suite } => {
                let id = DocId::new(&doc);
                max_id = max_id.max(tree_max_id(&tree));
                logged.entry(id).or_insert(0);
                if store.document(id).is_some() {
                    // A snapshot already installed this document.
                    continue;
                }
                if store.publish(id, tree, suite, &cache, signer).is_err() {
                    // The journal can only hold one publish per id (the
                    // live gateway rejects duplicates), so a second one
                    // means the log was tampered with.
                    return Err(RecoverError::Conflict { doc });
                }
            }
            WalRecord::Commit { doc, commit, updates, cert } => {
                let id = DocId::new(&doc);
                for u in &updates {
                    max_id = max_id.max(update_max_id(u));
                }
                logged.insert(id, commit);
                let Some(arc) = store.document(id) else {
                    return Err(RecoverError::UnknownDocument { doc });
                };
                let mut d = arc.lock();
                if commit <= d.commits() {
                    // Covered by the snapshot; the WAL just has not been
                    // truncated yet.
                    continue;
                }
                if commit != d.commits() + 1 {
                    return Err(RecoverError::Diverged { doc, commit });
                }
                let mut session = Session::begin(&mut d);
                for u in &updates {
                    if let Err(e) = session.apply(u) {
                        return Err(RecoverError::ReplayFailed {
                            doc,
                            commit,
                            error: e.to_string(),
                        });
                    }
                }
                match session.commit_with(signer, admission) {
                    Ok(receipt) => debug_assert_eq!(receipt.commit, commit),
                    Err(r) => {
                        return Err(RecoverError::ReplayFailed {
                            doc,
                            commit,
                            error: r.to_string(),
                        });
                    }
                }
                if d.certificate() != &cert {
                    return Err(RecoverError::Diverged { doc, commit });
                }
            }
        }
    }

    NodeId::ensure_fresh_above(max_id);
    let journal = Journal {
        dir: dir.to_owned(),
        opts,
        clock,
        retries: AtomicU64::new(0),
        inner: Mutex::new(JournalInner { writer, logged, snapshotted }),
    };
    Ok(RecoveredState { store, cache, journal })
}
