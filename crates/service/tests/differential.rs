//! The differential fuzz harness pinning delta admission to full-pass
//! admission.
//!
//! Two gateways are published from identical deployments — one on
//! [`AdmissionMode::Delta`] (edit-proportional splice commit validation),
//! one on [`AdmissionMode::FullPass`] (the pre-delta full `eval_set`
//! admission) — and driven with byte-identical seeded session streams
//! mixing relabels, id swaps (including duplicate-id and id-recycling
//! traffic), structural edits, commits, explicit rollbacks and malformed
//! updates. After every step the two arms must agree **observably and
//! internally**: verdict for verdict, committed trees render-identical,
//! baseline range-result sets equal, certificates equal entry-for-entry
//! and verifying identically — and the delta gateway's accept/reject log
//! must stay byte-identical at 1, 2 and 8 workers (and to the full-pass
//! log).

use std::collections::{BTreeSet, HashMap};
use xuc_core::{parse_constraint, Constraint, ConstraintKind};
use xuc_service::workload::SplitMix;
use xuc_service::{
    render_log, AdmissionMode, DocId, DurableOptions, Gateway, Request, Session, Verdict,
    WriteFault,
};
use xuc_sigstore::Signer;
use xuc_xtree::{DataTree, Label, NodeId, NodeRef, Update};

const LABELS: &[&str] = &["a", "b", "c", "visit", "w"];

/// One random update against a document's initial id population, plus a
/// small **reserved id pool** shared by inserts and id swaps — so streams
/// recycle ids across requests (delete then re-insert, swap away then swap
/// back), and regularly produce duplicate-id and dead-node rejections.
fn random_update(rng: &mut SplitMix, ids: &[NodeId], reserved: &[NodeId]) -> Update {
    let pick = |rng: &mut SplitMix, pool: &[NodeId]| pool[rng.below(pool.len())];
    match rng.below(8) {
        0 | 1 => Update::Relabel {
            node: pick(rng, ids),
            label: Label::new(LABELS[rng.below(LABELS.len())]),
        },
        2 => Update::ReplaceId { node: pick(rng, ids), new_id: pick(rng, reserved) },
        // Swaps among the reserved pool chain/cancel and collide.
        3 => Update::ReplaceId { node: pick(rng, reserved), new_id: pick(rng, reserved) },
        4 => Update::InsertLeaf {
            parent: pick(rng, ids),
            id: if rng.below(2) == 0 { NodeId::fresh() } else { pick(rng, reserved) },
            label: Label::new(LABELS[rng.below(LABELS.len())]),
        },
        5 => Update::DeleteSubtree { node: pick(rng, ids) },
        6 => Update::DeleteNode { node: pick(rng, ids) },
        _ => Update::Move { node: pick(rng, ids), new_parent: pick(rng, ids) },
    }
}

/// The fixed two-document deployment: a wide **all-linear** suite (the
/// genuine splice path) and a mixed suite with predicate fallbacks (the
/// degradation path).
fn deployment() -> Vec<(DocId, DataTree, Vec<Constraint>)> {
    let c = |s: &str| parse_constraint(s).unwrap();
    let mut wide_tree = DataTree::new("root");
    let root = wide_tree.root_id();
    for i in 0..8 {
        let mid = wide_tree.add(root, LABELS[i % 3]).unwrap();
        for j in 0..5 {
            let leaf = wide_tree.add(mid, LABELS[(i + j) % LABELS.len()]).unwrap();
            if (i + j) % 3 == 0 {
                wide_tree.add(leaf, LABELS[j % 3]).unwrap();
            }
        }
    }
    let wide_suite: Vec<Constraint> =
        xuc_workloads::queries::overlapping_prefix_suite(&["a", "b", "c"], 20, 4)
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                let kind =
                    if i % 2 == 0 { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
                Constraint::new(q, kind)
            })
            .collect();
    assert!(wide_suite.iter().all(|x| x.range.is_linear()), "splice arm must be all-linear");

    let mixed_tree = xuc_xtree::parse_term(
        "hospital#1(patient#2(visit#3,visit#4),patient#5(clinicalTrial#6),patient#7(visit#8(report#9)))",
    )
    .unwrap();
    let mixed_suite = vec![
        c("(/patient/visit, ↑)"),
        c("(/patient[/clinicalTrial], ↓)"),
        c("(//report, ↑)"),
        c("(/patient, ↓)"),
    ];
    vec![
        (DocId::new("wide"), wide_tree, wide_suite),
        (DocId::new("mixed"), mixed_tree, mixed_suite),
    ]
}

/// A seeded stream of requests over the deployment. Fresh insert ids are
/// minted at generation time, so replaying the same stream into both arms
/// (and at every worker count) presents byte-identical inputs.
fn seeded_stream(
    docs: &[(DocId, DataTree, Vec<Constraint>)],
    seed: u64,
    count: usize,
) -> Vec<Request> {
    let reserved: Vec<NodeId> = (0..6).map(|i| NodeId::from_raw(9_000 + seed % 7 + i)).collect();
    let pools: Vec<(DocId, Vec<NodeId>)> =
        docs.iter().map(|(id, tree, _)| (*id, tree.node_ids())).collect();
    let mut rng = SplitMix::new(seed);
    (0..count)
        .map(|_| {
            let (doc, ids) = &pools[rng.below(pools.len())];
            let updates =
                (0..1 + rng.below(4)).map(|_| random_update(&mut rng, ids, &reserved)).collect();
            Request { doc: *doc, updates }
        })
        .collect()
}

fn publish_into(gw: &Gateway, docs: &[(DocId, DataTree, Vec<Constraint>)]) {
    for (id, tree, suite) in docs {
        gw.publish(*id, tree.clone(), suite.clone()).unwrap();
    }
}

/// Certificates must be equal entry-for-entry: same constraints, same
/// signed snapshots, same MACs (the keyed MAC is a function of the set,
/// so equal tags ⟺ equal signed sets under one key).
fn assert_certs_identical(gw_a: &Gateway, gw_b: &Gateway, id: DocId, ctx: &str) {
    let a = gw_a.certificate(id).unwrap();
    let b = gw_b.certificate(id).unwrap();
    assert_eq!(a.entries.len(), b.entries.len(), "{ctx}: {id} entry count");
    for (i, (ea, eb)) in a.entries.iter().zip(&b.entries).enumerate() {
        assert_eq!(ea.constraint.to_string(), eb.constraint.to_string(), "{ctx}: {id} entry {i}");
        assert_eq!(ea.snapshot, eb.snapshot, "{ctx}: {id} entry {i} signed set");
        assert_eq!(ea.tag, eb.tag, "{ctx}: {id} entry {i} MAC");
    }
}

/// Both arms' internal state must coincide: committed tree (exact child
/// order), baseline range results, certificate — and the certificates of
/// each arm must verify against the *other* arm's snapshot.
fn assert_arms_converged(
    delta: &Gateway,
    full: &Gateway,
    docs: &[(DocId, DataTree, Vec<Constraint>)],
    key: u64,
    ctx: &str,
) {
    for (id, ..) in docs {
        let snap_d = delta.snapshot(*id).unwrap();
        let snap_f = full.snapshot(*id).unwrap();
        assert_eq!(snap_d.render(), snap_f.render(), "{ctx}: {id} trees diverged");
        let doc_d = delta.store().document(*id).unwrap();
        let doc_f = full.store().document(*id).unwrap();
        let base_d: Vec<BTreeSet<NodeRef>> = doc_d.lock().baseline().to_vec();
        let base_f: Vec<BTreeSet<NodeRef>> = doc_f.lock().baseline().to_vec();
        assert_eq!(base_d, base_f, "{ctx}: {id} baselines diverged");
        assert_certs_identical(delta, full, *id, ctx);
        assert!(delta.certificate(*id).unwrap().verify(key, &snap_f).is_ok(), "{ctx}: {id}");
        assert!(full.certificate(*id).unwrap().verify(key, &snap_d).is_ok(), "{ctx}: {id}");
    }
}

/// The core differential loop: submit the stream request by request into
/// both arms, interleaving explicit rollback sessions, comparing verdicts
/// and state at every step.
#[test]
fn delta_admission_is_equivalent_to_full_admission() {
    let key = 0xD1FF;
    for seed in [0x5eed_0001u64, 0x5eed_0002, 0xfeed_f00d] {
        let docs = deployment();
        let delta = Gateway::with_admission(Signer::new(key), AdmissionMode::Delta);
        let full = Gateway::with_admission(Signer::new(key), AdmissionMode::FullPass);
        assert_eq!(delta.admission_mode(), AdmissionMode::Delta);
        assert_eq!(full.admission_mode(), AdmissionMode::FullPass);
        publish_into(&delta, &docs);
        publish_into(&full, &docs);

        let requests = seeded_stream(&docs, seed, 120);
        let mut accepts = 0usize;
        let mut rejects = 0usize;
        for (i, req) in requests.iter().enumerate() {
            if i % 7 == 3 {
                // An abandoned batch: apply the request's updates in a
                // manual session and roll back — on BOTH arms — before
                // resubmitting. Rollback must leave no trace in either.
                for gw in [&delta, &full] {
                    let doc = gw.store().document(req.doc).unwrap();
                    let mut doc = doc.lock();
                    let mut session = Session::begin(&mut doc);
                    for u in &req.updates {
                        let _ = session.apply(u);
                    }
                    session.rollback();
                }
                assert_arms_converged(
                    &delta,
                    &full,
                    &docs,
                    key,
                    &format!("seed {seed:#x} rollback before #{i}"),
                );
            }
            let vd = delta.submit(req);
            let vf = full.submit(req);
            assert_eq!(vd, vf, "seed {seed:#x} request #{i}: verdicts diverged");
            match vd {
                Verdict::Accepted { .. } => accepts += 1,
                Verdict::Rejected(_) => rejects += 1,
                Verdict::Served => unreachable!("submit never returns a read verdict"),
            }
            assert_arms_converged(&delta, &full, &docs, key, &format!("seed {seed:#x} after #{i}"));
        }
        // The stream must genuinely exercise both outcomes.
        assert!(accepts > 5, "seed {seed:#x}: only {accepts} accepts");
        assert!(rejects > 5, "seed {seed:#x}: only {rejects} rejects");
    }
}

/// Worker-count determinism re-pinned on the delta path: the log of one
/// seeded stream is byte-identical at 1, 2 and 8 workers — and identical
/// to the full-pass arm's log.
#[test]
fn delta_logs_byte_identical_at_1_2_8_workers_and_to_full_pass() {
    let docs = deployment();
    let requests = seeded_stream(&docs, 0x00D1_5EA5, 200);
    let run = |mode: AdmissionMode, workers: usize| {
        let gw = Gateway::with_admission(Signer::new(0xF1E1D), mode);
        publish_into(&gw, &docs);
        let verdicts = gw.process(&requests, workers);
        render_log(&requests, &verdicts)
    };
    let reference = run(AdmissionMode::Delta, 1);
    assert!(reference.contains("ACCEPT") && reference.contains("REJECT"));
    for workers in [2usize, 8] {
        assert_eq!(
            run(AdmissionMode::Delta, workers),
            reference,
            "delta log diverged at {workers} workers"
        );
    }
    assert_eq!(run(AdmissionMode::FullPass, 4), reference, "full-pass log diverged from delta");
}

/// The kill/restart arm: a durable gateway is cut down at a request
/// index — including mid-group-commit, via a write fault that drops or
/// tears the last WAL frame — recovered from disk, driven through the
/// lost and remaining requests, and must end **byte-identical** to an
/// uninterrupted in-memory reference: verdict for verdict on everything
/// it replays, tree renders, baselines, commit counters, and
/// certificates field-for-field *including* the hash-chain linkage
/// (`Certificate` equality covers `prev_digest` and `chain_tag`).
#[test]
fn kill_restart_recovers_byte_identical() {
    let key = 0xC4A5;
    let docs = deployment();
    let requests = seeded_stream(&docs, 0xDEAD_5EED, 160);

    // The uninterrupted reference, plus each document's accepted-count
    // prefix (how many commits doc d has after request i) — that is what
    // decides which pre-cut requests a recovered gateway must see again.
    let reference = Gateway::new(Signer::new(key));
    publish_into(&reference, &docs);
    let mut acc: HashMap<DocId, u64> = HashMap::new();
    let mut ref_verdicts = Vec::new();
    let mut acc_after: Vec<u64> = Vec::new();
    for req in &requests {
        let v = reference.submit(req);
        if v.is_accepted() {
            *acc.entry(req.doc).or_insert(0) += 1;
        }
        acc_after.push(acc.get(&req.doc).copied().unwrap_or(0));
        ref_verdicts.push(v);
    }
    assert!(ref_verdicts.iter().any(|v| v.is_accepted()));
    assert!(ref_verdicts.iter().any(|v| !v.is_accepted()));

    // (cut index, fault, workers, group_commit, snapshot cadence) —
    // covering every fault kind, 1/2/8 workers, sync-per-commit and
    // buffered group commit, and no/short/long snapshot cadences.
    let cases: &[(usize, WriteFault, usize, usize, Option<u64>)] = &[
        (40, WriteFault::LoseBuffered, 1, 4, None),
        (40, WriteFault::DropLastFrame, 2, 1, Some(10)),
        (80, WriteFault::TearLastFrame, 8, 4, None),
        (80, WriteFault::TearLastFrame, 2, 1, Some(5)),
        (120, WriteFault::LoseBuffered, 8, 8, Some(25)),
        (120, WriteFault::DropLastFrame, 1, 1, None),
        (160, WriteFault::LoseBuffered, 8, 16, Some(10)),
        (16, WriteFault::DropLastFrame, 2, 4, None),
    ];

    let mut frames_lost_somewhere = false;
    for (case, &(cut, fault, workers, group_commit, snapshot_every)) in cases.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("xuc-diff-crash-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = format!("case {case} (cut {cut}, {fault:?}, {workers}w, gc {group_commit})");
        let opts = DurableOptions { group_commit, snapshot_every, ..DurableOptions::default() };

        let gw = Gateway::recover_with(Signer::new(key), AdmissionMode::Delta, &dir, opts).unwrap();
        publish_into(&gw, &docs);
        let pre = gw.process(&requests[..cut], workers);
        assert_eq!(pre, ref_verdicts[..cut], "{ctx}: pre-crash verdicts diverged");
        gw.simulate_crash(fault).unwrap();

        let rec =
            Gateway::recover_with(Signer::new(key), AdmissionMode::Delta, &dir, opts).unwrap();
        // A fault can eat a publish record (only when that document had
        // no durable commits after it); the operator re-publishes, as
        // the source would on discovering the loss.
        for (id, tree, suite) in &docs {
            if rec.store().document(*id).is_none() {
                rec.publish(*id, tree.clone(), suite.clone()).unwrap();
            }
        }
        let recovered: HashMap<DocId, u64> = docs
            .iter()
            .map(|(id, ..)| (*id, rec.store().document(*id).unwrap().lock().commits()))
            .collect();

        // Replay: a pre-cut request must be seen again iff it was an
        // accepted commit the durable state no longer holds; everything
        // from the cut onward runs as normal traffic. Verdicts must
        // reproduce the reference exactly — same commit numbers too.
        let mut lost = 0usize;
        for (i, req) in requests.iter().enumerate() {
            let replay = if i < cut {
                ref_verdicts[i].is_accepted() && acc_after[i] > recovered[&req.doc]
            } else {
                true
            };
            if !replay {
                continue;
            }
            if i < cut {
                lost += 1;
            }
            assert_eq!(rec.submit(req), ref_verdicts[i], "{ctx}: request #{i} diverged");
        }
        frames_lost_somewhere |= lost > 0;

        // Final state: byte-identical to the uninterrupted arm.
        for (id, ..) in &docs {
            let snap_rec = rec.snapshot(*id).unwrap();
            let snap_ref = reference.snapshot(*id).unwrap();
            assert_eq!(snap_rec.render(), snap_ref.render(), "{ctx}: {id} trees diverged");
            let doc_rec = rec.store().document(*id).unwrap();
            let doc_ref = reference.store().document(*id).unwrap();
            assert_eq!(
                doc_rec.lock().baseline().to_vec(),
                doc_ref.lock().baseline().to_vec(),
                "{ctx}: {id} baselines diverged"
            );
            assert_eq!(
                doc_rec.lock().commits(),
                doc_ref.lock().commits(),
                "{ctx}: {id} commit counters diverged"
            );
            // Full equality: entries, MACs, prev_digest, chain_tag.
            assert_eq!(
                rec.certificate(*id).unwrap(),
                reference.certificate(*id).unwrap(),
                "{ctx}: {id} certificates diverged"
            );
            assert!(rec.certificate(*id).unwrap().verify(key, &snap_ref).is_ok(), "{ctx}: {id}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        frames_lost_somewhere,
        "the fault matrix never actually lost a durable frame — the injection is dead code"
    );
}

/// Relabel-only batches are the paper's motivating case: admission must
/// complete with **zero** pre-order walks — the evaluator patches in
/// O(1) per relabel and the splice re-drives only the relabeled
/// subtrees, never snapshotting the document.
#[test]
fn relabel_only_batches_admit_with_zero_walks() {
    let docs = deployment();
    let gw = Gateway::new(Signer::new(0xAB1E));
    publish_into(&gw, &docs);
    let id = DocId::new("wide");
    let targets: Vec<NodeId> = docs[0].1.node_ids().into_iter().skip(1).take(3).collect();
    let walks = xuc_xtree::preorder_walk_count();
    let req = Request {
        doc: id,
        updates: targets
            .iter()
            .map(|&node| Update::Relabel { node, label: Label::new("b") })
            .collect(),
    };
    let verdict = gw.submit(&req);
    assert_eq!(
        xuc_xtree::preorder_walk_count(),
        walks,
        "relabel-only admission must not walk the document (verdict {verdict:?})"
    );
    // And the admission was real: a second, constraint-violating relabel
    // batch is still caught (also walk-free).
    let walks = xuc_xtree::preorder_walk_count();
    let sabotage = Request {
        doc: DocId::new("mixed"),
        updates: vec![Update::Relabel { node: NodeId::from_raw(3), label: Label::new("w") }],
    };
    assert!(matches!(gw.submit(&sabotage), Verdict::Rejected(_)), "stripping a visit must reject");
    assert_eq!(xuc_xtree::preorder_walk_count(), walks, "rejection path must also be walk-free");
}
