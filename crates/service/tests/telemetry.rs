//! The observability suite: telemetry must be *observationally inert*
//! and its deterministic exposition must be a pure function of the
//! request stream.
//!
//! The invariants pinned here:
//!
//! * **Inertness** — attaching a [`Telemetry`] bundle changes nothing
//!   observable: verdict logs, trees, baselines and certificate chains
//!   are byte-identical to an uninstrumented gateway's.
//! * **Deterministic exposition byte-identity** — over seeded Zipfian
//!   streams (a proptest arm draws seed and skew), the
//!   [`exposition_deterministic`](xuc_service::MetricsSnapshot::exposition_deterministic)
//!   text is byte-identical at 1, 2 and 8 workers, while
//!   scheduling-dependent series (shard steals, queue-depth high-water
//!   marks, coalesce counters) are present in the full exposition but
//!   explicitly classified out of the deterministic one.
//! * **Ring boundedness** — a trace ring too small for the stream fills,
//!   counts every further span in its drop counter, and never blocks or
//!   perturbs the run.
//! * **Stage attribution** — each request's spans share one trace tag,
//!   so a drained ring groups back into per-request traces; rejected
//!   commits show the admission stages but never a certify span, and a
//!   durable gateway attributes every accepted commit's journaling to
//!   exactly one of `journal_append` / `fsync`.

use proptest::prelude::*;
use std::sync::Arc;
use xuc_core::clock::SystemClock;
use xuc_core::{parse_constraint, Constraint};
use xuc_service::workload::seeded_zipf_requests;
use xuc_service::{
    render_log, DocId, Gateway, Request, Stage, Telemetry, ThroughputOptions, Verdict,
};
use xuc_sigstore::Signer;
use xuc_xtree::{DataTree, NodeId, Update};

const KEY: u64 = 0x0B5E;

/// Four hospital documents, each with an ↑-guarded visit so seeded
/// streams produce both accepts (inserts) and rejects (guarded
/// deletes) — the verdict counters must see every class.
fn deployment() -> Vec<(DocId, DataTree, Vec<Constraint>)> {
    (0..4)
        .map(|k| {
            let tree = xuc_xtree::parse_term(&format!(
                "hospital#{}(patient#{}(visit#{}))",
                3 * k + 1,
                3 * k + 2,
                3 * k + 3
            ))
            .unwrap();
            let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
            (DocId::new(&format!("obs-ward-{k}")), tree, suite)
        })
        .collect()
}

fn publish_into(gw: &Gateway, docs: &[(DocId, DataTree, Vec<Constraint>)]) {
    for (id, tree, suite) in docs {
        gw.publish(*id, tree.clone(), suite.clone()).unwrap();
    }
}

fn zipf_stream(
    docs: &[(DocId, DataTree, Vec<Constraint>)],
    seed: u64,
    count: usize,
    skew_centi: u32,
) -> Vec<Request> {
    let doc_refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(d, t, _)| (*d, t)).collect();
    seeded_zipf_requests(&doc_refs, &["visit"], seed, count, skew_centi)
}

/// **Inertness.** The verdict log, trees and certificates of an
/// instrumented gateway are byte-identical to an uninstrumented one's —
/// and the instruments did fire (stage spans recorded, verdict counters
/// restate the log).
#[test]
fn attached_telemetry_is_observationally_inert() {
    let docs = deployment();
    let requests = zipf_stream(&docs, 0x0B5E_0001, 160, 99);

    let plain = Gateway::new(Signer::new(KEY));
    publish_into(&plain, &docs);
    let plain_log = render_log(&requests, &plain.process(&requests, 1));
    assert!(plain_log.contains("ACCEPT") && plain_log.contains("REJECT"));

    let gw = Gateway::new(Signer::new(KEY));
    let tel = Arc::new(Telemetry::new());
    assert!(gw.attach_telemetry(Arc::clone(&tel)), "first attach wins");
    assert!(!gw.attach_telemetry(Arc::new(Telemetry::new())), "second attach refused");
    publish_into(&gw, &docs);
    let verdicts = gw.process(&requests, 1);
    assert_eq!(render_log(&requests, &verdicts), plain_log, "telemetry perturbed the log");
    for (id, ..) in &docs {
        assert_eq!(
            gw.snapshot(*id).unwrap().render(),
            plain.snapshot(*id).unwrap().render(),
            "{id}: trees diverged under telemetry"
        );
        assert_eq!(gw.certificate(*id), plain.certificate(*id), "{id}: certificates diverged");
    }

    // The instruments actually fired: admission stages accumulated
    // spans, and the verdict counters restate the log exactly.
    let rows = tel.stages().rows();
    for stage in [Stage::Apply, Stage::Splice, Stage::Verdict, Stage::Certify] {
        assert!(rows[stage as usize].count > 0, "no {} spans recorded", stage.name());
    }
    gw.record_metrics();
    let snap = tel.registry().snapshot();
    let accepted = verdicts.iter().filter(|v| v.is_accepted()).count() as u64;
    assert_eq!(snap.counter("xuc_gateway_commits_accepted_total"), Some(accepted));
    let rejected = (verdicts.len() as u64) - accepted;
    let rejected_counted = snap.counter("xuc_gateway_rejected_violation_total").unwrap()
        + snap.counter("xuc_gateway_rejected_failed_update_total").unwrap()
        + snap.counter("xuc_gateway_rejected_unknown_document_total").unwrap();
    assert_eq!(rejected_counted, rejected, "rejection counters must restate the log");
}

/// **Ring boundedness.** An 8-slot ring under a 160-request stream
/// fills, counts the overflow in its drop counter, and the run stays
/// byte-identical — a full ring never blocks or sheds work.
#[test]
fn trace_ring_overflow_counts_drops_and_never_blocks() {
    let docs = deployment();
    let requests = zipf_stream(&docs, 0x0B5E_0002, 160, 50);

    let plain = Gateway::new(Signer::new(KEY));
    publish_into(&plain, &docs);
    let plain_log = render_log(&requests, &plain.process(&requests, 1));

    let gw = Gateway::new(Signer::new(KEY));
    let tel = Arc::new(Telemetry::with_clock(Box::new(SystemClock), 8));
    gw.attach_telemetry(Arc::clone(&tel));
    publish_into(&gw, &docs);
    let verdicts = gw.process_throughput(&requests, 8, &ThroughputOptions::default());
    assert_eq!(render_log(&requests, &verdicts), plain_log, "full ring perturbed the run");

    assert_eq!(tel.ring().len(), 8, "ring holds exactly its capacity");
    assert!(tel.ring().dropped() > 0, "a 160-request stream must overflow 8 slots");
    assert!(tel.ring().events().len() <= 8);
    // The stage table keeps the full totals — only the ring is bounded.
    let span_total: u64 = tel.stages().rows().iter().map(|r| r.count).sum();
    assert_eq!(span_total, tel.ring().len() as u64 + tel.ring().dropped());
}

/// **Per-request traces.** All spans of one request share its trace
/// tag: an accepted commit's trace ends in a certify span, a rejected
/// commit's trace shows the admission stages but no certify — the
/// drained ring reconstructs what happened to each request.
#[test]
fn trace_tags_group_spans_per_request_and_rejects_skip_certify() {
    let doc = DocId::new("obs-traced");
    let tree = xuc_xtree::parse_term("hospital#1(patient#2(visit#3))").unwrap();
    let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
    let gw = Gateway::new(Signer::new(KEY));
    let tel = Arc::new(Telemetry::new());
    gw.attach_telemetry(Arc::clone(&tel));
    gw.publish(doc, tree, suite).unwrap();

    let ok = Request {
        doc,
        updates: vec![Update::InsertLeaf {
            parent: NodeId::from_raw(2),
            id: NodeId::fresh(),
            label: "visit".into(),
        }],
    };
    assert_eq!(gw.submit(&ok), Verdict::Accepted { commit: 1 });
    let bad = Request { doc, updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(3) }] };
    assert!(matches!(gw.submit(&bad), Verdict::Rejected(_)));

    let events = tel.ring().drain();
    assert!(!events.is_empty());
    let stages_of = |tag: u16| -> Vec<Stage> {
        events.iter().filter(|e| e.tag == tag).map(|e| e.stage).collect()
    };
    let accepted = stages_of(0);
    assert!(accepted.contains(&Stage::Apply), "accepted trace missing apply: {accepted:?}");
    assert!(accepted.contains(&Stage::Certify), "accepted trace missing certify: {accepted:?}");
    let rejected = stages_of(1);
    assert!(rejected.contains(&Stage::Apply), "rejected trace missing apply: {rejected:?}");
    assert!(
        !rejected.contains(&Stage::Certify),
        "a rejected commit must never certify: {rejected:?}"
    );
    assert_eq!(events.len(), accepted.len() + rejected.len(), "no spans outside the two tags");
}

/// **Durability attribution.** On a durable gateway every accepted
/// commit's journaling lands in exactly one of `journal_append` /
/// `fsync`, so the two stages' span counts sum to the accept count.
#[test]
fn durable_commits_attribute_journal_append_or_fsync() {
    let dir = std::env::temp_dir().join(format!("xuc-obs-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gw = Gateway::recover(Signer::new(KEY), &dir).unwrap();
    let tel = Arc::new(Telemetry::new());
    gw.attach_telemetry(Arc::clone(&tel));
    let docs = deployment();
    publish_into(&gw, &docs);

    let requests = zipf_stream(&docs, 0x0B5E_0003, 48, 0);
    let verdicts = gw.process(&requests, 2);
    let accepted = verdicts.iter().filter(|v| v.is_accepted()).count() as u64;
    assert!(accepted > 0);

    let rows = tel.stages().rows();
    let journaled = rows[Stage::JournalAppend as usize].count + rows[Stage::Fsync as usize].count;
    assert_eq!(journaled, accepted, "every accepted commit journals exactly once: {rows:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// **Deterministic exposition byte-identity.** For any seed and
    /// skew, the deterministic exposition after draining the stream is
    /// byte-identical at 1, 2 and 8 workers — while the full exposition
    /// carries the scheduling-dependent series (steals, queue depths,
    /// coalesce counters) that the deterministic one must exclude.
    #[test]
    fn deterministic_exposition_is_byte_identical_across_worker_counts(
        seed in 1usize..usize::MAX,
        skew_centi in 0usize..=99,
    ) {
        let docs = deployment();
        let requests = zipf_stream(&docs, seed as u64, 120, skew_centi as u32);
        let mut expositions: Vec<String> = Vec::new();
        for workers in [1usize, 2, 8] {
            let gw = Gateway::new(Signer::new(KEY));
            let tel = Arc::new(Telemetry::new());
            gw.attach_telemetry(Arc::clone(&tel));
            publish_into(&gw, &docs);
            gw.process_throughput(&requests, workers, &ThroughputOptions::default());
            gw.record_metrics();
            let snap = tel.registry().snapshot();
            let full = snap.exposition();
            let det = snap.exposition_deterministic();
            // Scheduling-dependent series are classified, not hidden:
            // present in the full exposition, absent from the
            // deterministic one.
            for series in [
                "xuc_gateway_shard_steals_total",
                "xuc_gateway_ready_queue_depth_peak",
                "xuc_coalesce_attempts_total",
                "xuc_engine_eval_set_sweeps_total",
                "xuc_persist_wal_frames_total",
            ] {
                prop_assert!(full.contains(series), "full exposition missing {series}");
                prop_assert!(!det.contains(series), "{series} leaked into the deterministic exposition");
            }
            prop_assert!(det.contains("xuc_gateway_commits_accepted_total"));
            expositions.push(det);
        }
        prop_assert_eq!(
            &expositions[0], &expositions[1],
            "deterministic exposition diverged between 1 and 2 workers (seed {:#x})", seed
        );
        prop_assert_eq!(
            &expositions[0], &expositions[2],
            "deterministic exposition diverged between 1 and 8 workers (seed {:#x})", seed
        );
    }
}
