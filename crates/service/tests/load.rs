//! The load-differential suite: throughput mode pinned to the
//! deterministic reference arm under sustained, skewed load.
//!
//! [`Gateway::process_throughput`] relaxes only *temporal* ordering —
//! which worker serves which document's run, and how runs interleave in
//! wall-clock time. Everything observable must stay byte-identical to
//! the reference arm ([`Gateway::process`] at one worker): verdict for
//! verdict by request id, committed trees render-identical, baseline
//! range results equal, certificates equal entry-for-entry and
//! cross-verifying. This suite drives seeded Zipfian streams (skew 0 and
//! 0.99) through 1, 2 and 8 workers and several coalescing windows, and
//! asserts the coalescer was genuinely exercised — a differential suite
//! whose fast path silently never fires proves nothing.

use std::collections::BTreeSet;
use std::sync::Arc;
use xuc_core::{parse_constraint, Constraint, ConstraintKind};
use xuc_service::workload::seeded_zipf_requests;
use xuc_service::{render_log, DocId, Gateway, Request, Telemetry, ThroughputOptions, Verdict};
use xuc_sigstore::Signer;
use xuc_xtree::{DataTree, Label, NodeId, NodeRef, Update};

const KEY: u64 = 0x10AD;

/// Six documents: five wide all-linear ones (the shapes whose disjoint
/// per-subtree edits the coalescer can merge) and one mixed predicate
/// document (whose suite forces the splice fallback — the degradation
/// path must stay differential too). Zipf order makes `wide0` hottest.
fn deployment() -> Vec<(DocId, DataTree, Vec<Constraint>)> {
    let wide_suite: Vec<Constraint> =
        xuc_workloads::queries::overlapping_prefix_suite(&["a", "b", "c"], 12, 3)
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                let kind =
                    if i % 2 == 0 { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
                Constraint::new(q, kind)
            })
            .collect();
    assert!(wide_suite.iter().all(|c| c.range.is_linear()), "splice arms must be all-linear");
    let labels = ["a", "b", "c"];
    let mut docs: Vec<(DocId, DataTree, Vec<Constraint>)> = (0..5)
        .map(|d| {
            let mut tree = DataTree::new("root");
            let root = tree.root_id();
            for i in 0..(6 + d) {
                let mid = tree.add(root, labels[(i + d) % 3]).unwrap();
                for j in 0..4 {
                    tree.add(mid, labels[(i + j) % 3]).unwrap();
                }
            }
            (DocId::new(&format!("wide{d}")), tree, wide_suite.clone())
        })
        .collect();
    let mixed_tree = xuc_xtree::parse_term(
        "hospital#1(patient#2(visit#3,visit#4),patient#5(clinicalTrial#6),patient#7(visit#8))",
    )
    .unwrap();
    let mixed_suite = vec![
        parse_constraint("(/patient/visit, ↑)").unwrap(),
        parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap(),
        parse_constraint("(/patient, ↓)").unwrap(),
    ];
    docs.push((DocId::new("mixed"), mixed_tree, mixed_suite));
    docs
}

fn publish_into(gw: &Gateway, docs: &[(DocId, DataTree, Vec<Constraint>)]) {
    for (id, tree, suite) in docs {
        gw.publish(*id, tree.clone(), suite.clone()).unwrap();
    }
}

/// Both arms' final state must coincide: committed trees (exact child
/// order), baseline range results, certificates entry-for-entry — and
/// each arm's certificate must verify against the *other* arm's
/// snapshot.
fn assert_arms_converged(
    throughput: &Gateway,
    reference: &Gateway,
    docs: &[(DocId, DataTree, Vec<Constraint>)],
    ctx: &str,
) {
    for (id, ..) in docs {
        let snap_t = throughput.snapshot(*id).unwrap();
        let snap_r = reference.snapshot(*id).unwrap();
        assert_eq!(snap_t.render(), snap_r.render(), "{ctx}: {id} trees diverged");
        let doc_t = throughput.store().document(*id).unwrap();
        let doc_r = reference.store().document(*id).unwrap();
        let base_t: Vec<BTreeSet<NodeRef>> = doc_t.lock().baseline().to_vec();
        let base_r: Vec<BTreeSet<NodeRef>> = doc_r.lock().baseline().to_vec();
        assert_eq!(base_t, base_r, "{ctx}: {id} baselines diverged");
        let cert_t = throughput.certificate(*id).unwrap();
        let cert_r = reference.certificate(*id).unwrap();
        assert_eq!(cert_t.entries.len(), cert_r.entries.len(), "{ctx}: {id} entry count");
        for (i, (et, er)) in cert_t.entries.iter().zip(&cert_r.entries).enumerate() {
            assert_eq!(et.constraint.to_string(), er.constraint.to_string(), "{ctx}: {id} #{i}");
            assert_eq!(et.snapshot, er.snapshot, "{ctx}: {id} entry {i} signed set");
            assert_eq!(et.tag, er.tag, "{ctx}: {id} entry {i} MAC");
        }
        assert!(cert_t.verify(KEY, &snap_r).is_ok(), "{ctx}: {id} cross-verify t→r");
        assert!(cert_r.verify(KEY, &snap_t).is_ok(), "{ctx}: {id} cross-verify r→t");
    }
}

/// The core load differential: seeded Zipfian streams at skew 0 and
/// 0.99, drained at 1, 2 and 8 workers, must reproduce the reference
/// arm's accept/reject log byte-for-byte (position in the log *is* the
/// request id, so full equality subsumes order-insensitive matching)
/// and converge to identical internal state.
#[test]
fn throughput_mode_is_differential_to_the_reference_arm() {
    for (seed, skew_centi) in
        [(0x10AD_0001u64, 0u32), (0x10AD_0002, 99), (0x10AD_0003, 99), (0x10AD_0004, 0)]
    {
        let docs = deployment();
        let doc_refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(d, t, _)| (*d, t)).collect();
        let requests = seeded_zipf_requests(&doc_refs, &["w"], seed, 220, skew_centi);

        let reference = Gateway::new(Signer::new(KEY));
        publish_into(&reference, &docs);
        let ref_verdicts = reference.process(&requests, 1);
        let ref_log = render_log(&requests, &ref_verdicts);
        assert!(ref_log.contains("ACCEPT") && ref_log.contains("REJECT"));

        // Every throughput arm runs *instrumented*: telemetry must be
        // observationally inert under sustained load, and the
        // deterministic exposition must be byte-identical across worker
        // counts just like the verdict log it restates.
        let mut attempts = 0u64;
        let mut det_exposition: Option<String> = None;
        for workers in [1usize, 2, 8] {
            let ctx = format!("seed {seed:#x} skew {skew_centi} workers {workers}");
            let gw = Gateway::new(Signer::new(KEY));
            let tel = Arc::new(Telemetry::new());
            gw.attach_telemetry(Arc::clone(&tel));
            publish_into(&gw, &docs);
            let verdicts = gw.process_throughput(&requests, workers, &ThroughputOptions::default());
            assert_eq!(render_log(&requests, &verdicts), ref_log, "{ctx}: log diverged");
            assert_arms_converged(&gw, &reference, &docs, &ctx);
            attempts += gw.coalesce_stats().attempts;
            gw.record_metrics();
            let det = tel.registry().snapshot().exposition_deterministic();
            match &det_exposition {
                None => det_exposition = Some(det),
                Some(first) => assert_eq!(&det, first, "{ctx}: deterministic exposition diverged"),
            }
        }
        assert!(attempts > 0, "seed {seed:#x}: the coalescer was never even offered a run");
    }
}

/// The coalescing window must not be observable either: shrinking the
/// run length to 1 (pure per-shard dispatch, no coalescer) or growing it
/// to 32 changes nothing but wall-clock scheduling.
#[test]
fn coalescing_window_is_not_observable() {
    let docs = deployment();
    let doc_refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(d, t, _)| (*d, t)).collect();
    let requests = seeded_zipf_requests(&doc_refs, &["w"], 0x57ee1, 180, 99);
    let reference = Gateway::new(Signer::new(KEY));
    publish_into(&reference, &docs);
    let ref_log = render_log(&requests, &reference.process(&requests, 1));
    for max_coalesce in [1usize, 2, 8, 32] {
        for workers in [1usize, 8] {
            let gw = Gateway::new(Signer::new(KEY));
            publish_into(&gw, &docs);
            let verdicts =
                gw.process_throughput(&requests, workers, &ThroughputOptions { max_coalesce });
            assert_eq!(
                render_log(&requests, &verdicts),
                ref_log,
                "window {max_coalesce} diverged at {workers} workers"
            );
            assert_arms_converged(&gw, &reference, &docs, &format!("window {max_coalesce}"));
        }
    }
}

/// An engineered hot-document stream whose runs the merged fast path can
/// actually admit: every request touches its own child subtree of one
/// wide document (insert a fresh `v`, or relabel that child's private
/// `w` leaf), so consecutive runs of 8 are pairwise disjoint. The fast
/// path must fire — and still be invisible next to the reference arm.
#[test]
fn hot_document_runs_take_the_merged_fast_path() {
    const CHILDREN: u64 = 16;
    let id = DocId::new("hot");
    let mut term = String::from("h(");
    for i in 0..CHILDREN {
        let p = 1 + 3 * i;
        term.push_str(&format!("p#{}(v#{},w#{}),", p, p + 1, p + 2));
    }
    term.pop();
    term.push(')');
    let tree = xuc_xtree::parse_term(&term).unwrap();
    let suite = vec![parse_constraint("(/p/v, ↑)").unwrap()];
    let mk = || {
        let gw = Gateway::new(Signer::new(KEY));
        gw.publish(id, tree.clone(), suite.clone()).unwrap();
        gw
    };

    let relabels = ["w", "x", "y"];
    let requests: Vec<Request> = (0..240u64)
        .map(|i| {
            let child = i % CHILDREN;
            let update = if i % 2 == 0 {
                Update::InsertLeaf {
                    parent: NodeId::from_raw(1 + 3 * child),
                    id: NodeId::fresh(),
                    label: Label::new("v"),
                }
            } else {
                Update::Relabel {
                    node: NodeId::from_raw(3 + 3 * child),
                    label: Label::new(relabels[(i as usize / 2) % relabels.len()]),
                }
            };
            Request { doc: id, updates: vec![update] }
        })
        .collect();

    let reference = mk();
    let ref_verdicts = reference.process(&requests, 1);
    assert!(ref_verdicts.iter().all(Verdict::is_accepted), "the engineered stream is compliant");

    for workers in [1usize, 8] {
        let gw = mk();
        let verdicts = gw.process_throughput(&requests, workers, &ThroughputOptions::default());
        assert_eq!(
            render_log(&requests, &verdicts),
            render_log(&requests, &ref_verdicts),
            "hot-document log diverged at {workers} workers"
        );
        let stats = gw.coalesce_stats();
        assert!(stats.commits > 0, "disjoint sibling runs must coalesce: {stats:?}");
        assert_eq!(stats.attempts, stats.commits, "every offered run is mergeable: {stats:?}");
        assert!(stats.batches >= 2 * stats.commits, "merged runs hold ≥ 2 batches: {stats:?}");
        let snap = gw.snapshot(id).unwrap();
        assert_eq!(snap.render(), reference.snapshot(id).unwrap().render());
        assert_eq!(gw.certificate(id).unwrap(), reference.certificate(id).unwrap());
        gw.certificate(id).unwrap().verify(KEY, &snap).unwrap();
    }
}
