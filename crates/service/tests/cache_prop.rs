//! Property tests for the [`SuiteCache`]'s keying discipline.
//!
//! Delta admission leans on per-suite baselines harder than ever: every
//! document's committed range results are indexed positionally against
//! its compiled automaton, so two documents may share a
//! `CompiledPatternSet` **only** when their suites are positionally
//! identical — same ranges, same order, same update types. These
//! properties pin both directions over randomly drawn suites from a pool
//! of near-identical patterns (shared prefixes, predicate variants) with
//! random kinds: distinct suites never share a cache entry, identical
//! suites always hit the same `Arc`, and the entry-string collision guard
//! keeps a 64-bit fingerprint clash from ever aliasing two suites.

use proptest::prelude::*;
use std::sync::Arc;
use xuc_core::{Constraint, ConstraintKind};
use xuc_service::SuiteCache;

/// Near-identical patterns: long shared prefixes, wildcard and predicate
/// variants — the worst case for any keying that digests too little.
const POOL: &[&str] =
    &["/a", "/a/b", "/a/b/c", "//a", "//a/b", "/a[/b]", "/b", "/a/*", "/*/b", "/a/b[/c]"];

fn suite_strategy() -> impl Strategy<Value = Vec<Constraint>> {
    proptest::collection::vec((0..POOL.len(), any::<bool>()), 1..6).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(i, up)| {
                let kind = if up { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
                Constraint::new(xuc_xpath::parse(POOL[i]).unwrap(), kind)
            })
            .collect()
    })
}

/// The positional canonical key two suites must share to alias.
fn key(suite: &[Constraint]) -> Vec<String> {
    suite.iter().map(Constraint::to_string).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Identical suites always hit the same `Arc`; positionally distinct
    /// suites (different ranges, order, or kinds) never share an entry.
    #[test]
    fn distinct_suites_never_alias_identical_suites_always_hit(
        a in suite_strategy(),
        b in suite_strategy(),
    ) {
        let cache = SuiteCache::new();
        let ca = cache.get_or_compile(&a);
        let ca_again = cache.get_or_compile(&a);
        prop_assert!(Arc::ptr_eq(&ca, &ca_again), "identical suite must hit");
        let cb = cache.get_or_compile(&b);
        if key(&a) == key(&b) {
            prop_assert!(Arc::ptr_eq(&ca, &cb), "equal suites must share one automaton");
            prop_assert_eq!(cache.len(), 1);
            prop_assert_eq!((cache.misses(), cache.hits()), (1, 2));
        } else {
            prop_assert!(!Arc::ptr_eq(&ca, &cb), "distinct suites must never alias");
            prop_assert_eq!(cache.len(), 2);
            prop_assert_eq!((cache.misses(), cache.hits()), (2, 1));
        }
    }

    /// Flipping one constraint's update type — everything else identical —
    /// always produces a fresh entry (acceptance bit `i` means "range of
    /// constraint `i` *under its kind*" to the admission check).
    #[test]
    fn permuted_kinds_get_distinct_entries(
        a in suite_strategy(),
        flip in 0..8usize,
    ) {
        let mut b = a.clone();
        let i = flip % b.len();
        b[i].kind = match b[i].kind {
            ConstraintKind::NoRemove => ConstraintKind::NoInsert,
            ConstraintKind::NoInsert => ConstraintKind::NoRemove,
        };
        let cache = SuiteCache::new();
        let ca = cache.get_or_compile(&a);
        let cb = cache.get_or_compile(&b);
        prop_assert!(!Arc::ptr_eq(&ca, &cb));
        prop_assert_eq!((cache.misses(), cache.hits(), cache.len()), (2, 0, 2));
    }

    /// Reordering a suite with at least two distinct entries produces a
    /// fresh entry: the key is positional, because baselines and
    /// acceptance rows are.
    #[test]
    fn reordered_suites_get_distinct_entries(a in suite_strategy(), rot in 1..5usize) {
        let mut b = a.clone();
        let len = b.len().max(1);
        b.rotate_left(rot % len);
        let cache = SuiteCache::new();
        let ca = cache.get_or_compile(&a);
        let cb = cache.get_or_compile(&b);
        if key(&a) == key(&b) {
            prop_assert!(Arc::ptr_eq(&ca, &cb));
        } else {
            prop_assert!(!Arc::ptr_eq(&ca, &cb));
            prop_assert_eq!(cache.len(), 2);
        }
    }
}
