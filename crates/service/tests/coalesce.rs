//! Coalescing correctness: a merged admission pass over `k` consecutive
//! batches must be indistinguishable from admitting them one at a time.
//!
//! The property tests drive random k-batch runs — including duplicate-id
//! traffic, id recycling, dead-node references and cycle-creating moves —
//! through [`Gateway::submit_coalesced`] against a sequential `submit`
//! loop on a second gateway: verdict for verdict (which covers per-batch
//! offender counts), committed trees, baseline range results and the
//! certificate chain must all coincide, whether the merged fast path
//! fired or the coalescer fell back. The engineered tests pin the
//! reject-mid-run contract: a violation discovered in the merged journal
//! reverts the baselines **exactly** to their pre-coalesce values before
//! the sequential fallback re-admits the run.

use proptest::prelude::*;
use std::collections::BTreeSet;
use xuc_core::{parse_constraint, Constraint, ConstraintKind};
use xuc_service::workload::SplitMix;
use xuc_service::{render_log, DocId, Gateway, RejectReason, Request, Verdict};
use xuc_sigstore::Signer;
use xuc_xtree::{DataTree, Label, NodeId, NodeRef, Update};

const KEY: u64 = 0xC0A7;
const LABELS: &[&str] = &["a", "b", "c", "w"];

/// One wide all-linear document — the shape whose disjoint subtree edits
/// the merged fast path can actually admit (predicate suites always fall
/// back, which the load suite covers separately).
fn fixture() -> (DocId, DataTree, Vec<Constraint>) {
    let mut tree = DataTree::new("root");
    let root = tree.root_id();
    for i in 0..8 {
        let mid = tree.add(root, LABELS[i % 3]).unwrap();
        for j in 0..4 {
            tree.add(mid, LABELS[(i + j) % 3]).unwrap();
        }
    }
    let suite: Vec<Constraint> =
        xuc_workloads::queries::overlapping_prefix_suite(&["a", "b", "c"], 8, 3)
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                let kind =
                    if i % 2 == 0 { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
                Constraint::new(q, kind)
            })
            .collect();
    assert!(suite.iter().all(|c| c.range.is_linear()));
    (DocId::new("coalesce-prop"), tree, suite)
}

/// One random update over the document's initial id population plus a
/// reserved id pool, so runs recycle ids (delete-then-reinsert, swap
/// away and back) and regularly reference dead nodes — the traffic whose
/// interference gates must force the sequential fallback.
fn random_update(rng: &mut SplitMix, ids: &[NodeId], reserved: &[NodeId]) -> Update {
    let pick = |rng: &mut SplitMix, pool: &[NodeId]| pool[rng.below(pool.len())];
    match rng.below(8) {
        0 | 1 => Update::Relabel {
            node: pick(rng, ids),
            label: Label::new(LABELS[rng.below(LABELS.len())]),
        },
        2 => Update::ReplaceId { node: pick(rng, ids), new_id: pick(rng, reserved) },
        3 => Update::ReplaceId { node: pick(rng, reserved), new_id: pick(rng, reserved) },
        4 => Update::InsertLeaf {
            parent: pick(rng, ids),
            id: if rng.below(2) == 0 { NodeId::fresh() } else { pick(rng, reserved) },
            label: Label::new(LABELS[rng.below(LABELS.len())]),
        },
        5 => Update::DeleteSubtree { node: pick(rng, ids) },
        6 => Update::DeleteNode { node: pick(rng, ids) },
        _ => Update::Move { node: pick(rng, ids), new_parent: pick(rng, ids) },
    }
}

fn seeded_run(doc: DocId, ids: &[NodeId], rng: &mut SplitMix, k: usize) -> Vec<Request> {
    let reserved: Vec<NodeId> = (0..5).map(|i| NodeId::from_raw(9_100 + i)).collect();
    (0..k)
        .map(|_| Request {
            doc,
            updates: (0..1 + rng.below(2)).map(|_| random_update(rng, ids, &reserved)).collect(),
        })
        .collect()
}

/// Everything observable about both arms must coincide after a run.
fn assert_arms_equal(co: &Gateway, seq: &Gateway, id: DocId, ctx: &str) {
    let snap_c = co.snapshot(id).unwrap();
    let snap_s = seq.snapshot(id).unwrap();
    assert_eq!(snap_c.render(), snap_s.render(), "{ctx}: trees diverged");
    let doc_c = co.store().document(id).unwrap();
    let doc_s = seq.store().document(id).unwrap();
    let base_c: Vec<BTreeSet<NodeRef>> = doc_c.lock().baseline().to_vec();
    let base_s: Vec<BTreeSet<NodeRef>> = doc_s.lock().baseline().to_vec();
    assert_eq!(base_c, base_s, "{ctx}: baselines diverged");
    assert_eq!(doc_c.lock().commits(), doc_s.lock().commits(), "{ctx}: commit counters diverged");
    // Full certificate equality covers entries, MACs and the hash-chain
    // linkage (`prev_digest`, `chain_tag`): a coalesced history must be
    // indistinguishable from the sequential one, link for link.
    assert_eq!(co.certificate(id).unwrap(), seq.certificate(id).unwrap(), "{ctx}: certificates");
    assert!(co.certificate(id).unwrap().verify(KEY, &snap_s).is_ok(), "{ctx}: cross-verify");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(72))]

    /// Random k-batch runs, two rounds per case (the second run chains
    /// off whatever state — coalesced or fallback — the first left).
    #[test]
    fn merged_admission_is_equivalent_to_sequential(
        seed in 0..1_000_000usize,
        k in 2..=6usize,
    ) {
        let (id, tree, suite) = fixture();
        let ids = tree.node_ids();
        let co = Gateway::new(Signer::new(KEY));
        let seq = Gateway::new(Signer::new(KEY));
        co.publish(id, tree.clone(), suite.clone()).unwrap();
        seq.publish(id, tree, suite).unwrap();
        let mut rng = SplitMix::new(seed as u64 ^ 0xC0A1E5CE);
        for round in 0..2 {
            let run = seeded_run(id, &ids, &mut rng, k);
            let verdicts = co.submit_coalesced(&run);
            let reference: Vec<Verdict> = run.iter().map(|r| seq.submit(r)).collect();
            // Verdict-for-verdict equality — the rendered log includes
            // per-batch commit numbers and offender counts.
            prop_assert_eq!(
                render_log(&run, &verdicts),
                render_log(&run, &reference),
                "seed {} round {}", seed, round
            );
            assert_arms_equal(&co, &seq, id, &format!("seed {seed} round {round}"));
        }
    }
}

/// The reject-mid-run contract, isolated: a run the probes admit whose
/// every batch violates the suite reaches the merged splice, fails, and
/// the journal revert + LIFO unwind must restore the document —
/// baselines, tree, certificate, commit counter — **exactly** to its
/// pre-coalesce state before the sequential fallback re-judges it.
#[test]
fn reject_mid_run_revert_restores_the_pre_coalesce_baseline_exactly() {
    let id = DocId::new("revert");
    let tree = xuc_xtree::parse_term("h(p#1(v#2),p#3(v#4),p#5(v#6))").unwrap();
    let suite = vec![parse_constraint("(/p/v, ↑)").unwrap()];
    let gw = Gateway::new(Signer::new(KEY));
    gw.publish(id, tree, suite).unwrap();

    let doc = gw.store().document(id).unwrap();
    let base0: Vec<BTreeSet<NodeRef>> = doc.lock().baseline().to_vec();
    let render0 = gw.snapshot(id).unwrap().render();
    let cert0 = gw.certificate(id).unwrap();
    assert!(!base0.iter().all(BTreeSet::is_empty), "the range must start populated");

    // Three disjoint sibling deletions: every interference gate passes,
    // the merged splice runs — and every batch strips a `v` from the
    // NoRemove range, so the whole run is rejected after the fact.
    let run: Vec<Request> = [2u64, 4, 6]
        .iter()
        .map(|&n| Request {
            doc: id,
            updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(n) }],
        })
        .collect();
    let verdicts = gw.submit_coalesced(&run);
    assert!(
        verdicts.iter().all(|v| matches!(v, Verdict::Rejected(RejectReason::Violation { .. }))),
        "every batch must be rejected: {verdicts:?}"
    );
    let stats = gw.coalesce_stats();
    assert_eq!((stats.attempts, stats.commits), (1, 0), "the run must reach and fail the splice");

    // Byte-exact restoration, not merely eventual equivalence: the
    // fallback admitted nothing, so nothing may have moved.
    assert_eq!(doc.lock().baseline().to_vec(), base0, "baselines must revert exactly");
    assert_eq!(gw.snapshot(id).unwrap().render(), render0, "tree must unwind exactly");
    assert_eq!(gw.certificate(id).unwrap(), cert0, "certificate must be untouched");
    assert_eq!(doc.lock().commits(), 0, "no commit may be minted");
}

/// A partially-accepting run through the same fallback: the revert must
/// hand the sequential path a clean slate, from which it accepts the
/// compliant batches with the same commit numbers a plain submit loop
/// mints.
#[test]
fn reject_mid_run_falls_back_to_per_batch_verdicts() {
    let id = DocId::new("mixed-run");
    let tree = xuc_xtree::parse_term("h(p#1(v#2),p#3(v#4),p#5(v#6))").unwrap();
    let suite = vec![parse_constraint("(/p/v, ↑)").unwrap()];
    let co = Gateway::new(Signer::new(KEY));
    let seq = Gateway::new(Signer::new(KEY));
    co.publish(id, tree.clone(), suite.clone()).unwrap();
    seq.publish(id, tree, suite).unwrap();

    let insert = |parent: u64| Request {
        doc: id,
        updates: vec![Update::InsertLeaf {
            parent: NodeId::from_raw(parent),
            id: NodeId::fresh(),
            label: Label::new("v"),
        }],
    };
    let run = vec![
        insert(1),
        Request { doc: id, updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(4) }] },
        insert(5),
    ];
    let verdicts = co.submit_coalesced(&run);
    let reference: Vec<Verdict> = run.iter().map(|r| seq.submit(r)).collect();
    assert_eq!(verdicts, reference);
    assert_eq!(verdicts[0], Verdict::Accepted { commit: 1 });
    assert!(matches!(&verdicts[1], Verdict::Rejected(RejectReason::Violation { .. })));
    assert_eq!(verdicts[2], Verdict::Accepted { commit: 2 });
    let stats = co.coalesce_stats();
    assert_eq!((stats.attempts, stats.commits), (1, 0));
    assert_arms_equal(&co, &seq, id, "mixed run");
}

/// The merged fast path itself, pinned end to end: disjoint sibling
/// edits coalesce into one splice whose per-batch certificates chain
/// exactly as sequential admission chains them.
#[test]
fn merged_fast_path_chains_certificates_per_batch() {
    let id = DocId::new("chain");
    let tree = xuc_xtree::parse_term("h(p#1(v#2),p#3(v#4),p#5(v#6),p#7(v#8))").unwrap();
    let suite = vec![parse_constraint("(/p/v, ↑)").unwrap()];
    let co = Gateway::new(Signer::new(KEY));
    let seq = Gateway::new(Signer::new(KEY));
    co.publish(id, tree.clone(), suite.clone()).unwrap();
    seq.publish(id, tree, suite).unwrap();

    let insert = |parent: u64| Request {
        doc: id,
        updates: vec![Update::InsertLeaf {
            parent: NodeId::from_raw(parent),
            id: NodeId::fresh(),
            label: Label::new("v"),
        }],
    };
    let run = vec![insert(1), insert(3), insert(5), insert(7)];
    let verdicts = co.submit_coalesced(&run);
    let reference: Vec<Verdict> = run.iter().map(|r| seq.submit(r)).collect();
    assert_eq!(verdicts, reference);
    assert!(verdicts.iter().all(Verdict::is_accepted));
    let stats = co.coalesce_stats();
    assert_eq!((stats.attempts, stats.commits, stats.batches), (1, 1, 4));
    assert_arms_equal(&co, &seq, id, "chained run");
    // And the chain survives further sequential traffic on both arms.
    let tail = insert(1);
    assert_eq!(co.submit(&tail), seq.submit(&tail));
    assert_arms_equal(&co, &seq, id, "after tail commit");
}
