//! The chaos harness: differential fault-injection runs against the
//! survive-the-fault gateway (`test-hooks` feature, enabled for this
//! test target through the crate's self-dev-dependency).
//!
//! The invariants pinned here:
//!
//! * **Transient transparency** — any schedule of absorbable
//!   `TransientOnce` journal faults leaves a run *byte-identical* to the
//!   fault-free reference (verdict log, trees, baselines, certificates),
//!   at 1, 2 and 8 workers, with the gateway still `Serving` and the
//!   retry counter showing the absorbed faults (a proptest arm drives
//!   random schedules through the same assertion);
//! * **Fatal containment** — a fatal journal fault (`DiskFull`) seals
//!   the WAL and drops the gateway to `ReadOnly`: no panic and no
//!   process exit at any worker count, reads keep serving, commits
//!   reject with `Degraded`, and every accepted commit is journaled
//!   *or* the gateway is degraded (the journaled-or-degraded
//!   invariant);
//! * **Resume** — `try_resume` after a fatal fault re-opens the journal,
//!   makes the un-journaled suffix durable, and restores commit service;
//!   a crash after resume recovers byte-identical to the live state;
//! * **Quarantine** — repeated contained panics quarantine one
//!   document; its siblings and its own reads keep serving.

use proptest::prelude::*;
use std::sync::Arc;
use xuc_core::{parse_constraint, Constraint};
use xuc_persist::VirtualClock;
use xuc_service::workload::SplitMix;
use xuc_service::{
    render_log, AdmissionMode, DegradedReason, DocId, DurableOptions, Gateway, GatewayState,
    RejectReason, Request, Verdict, WriteFault,
};
use xuc_sigstore::Signer;
use xuc_xtree::{DataTree, NodeId, Update};

const KEY: u64 = 0xC4A05;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xuc-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Four documents across shards; each keeps an ↑-guarded visit so the
/// stream produces both accepts (inserts) and rejects (guarded deletes).
fn deployment() -> Vec<(DocId, DataTree, Vec<Constraint>)> {
    (0..4)
        .map(|k| {
            let tree = xuc_xtree::parse_term(&format!(
                "hospital#{}(patient#{}(visit#{}))",
                3 * k + 1,
                3 * k + 2,
                3 * k + 3
            ))
            .unwrap();
            let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
            (DocId::new(&format!("ward-{k}")), tree, suite)
        })
        .collect()
}

fn publish_into(gw: &Gateway, docs: &[(DocId, DataTree, Vec<Constraint>)]) {
    for (id, tree, suite) in docs {
        gw.publish(*id, tree.clone(), suite.clone()).unwrap();
    }
}

/// A seeded request stream: ~2/3 compliant inserts, ~1/3 guarded deletes
/// (rejected). Fresh ids are minted at generation time so every replay
/// presents byte-identical inputs.
fn seeded_stream(
    docs: &[(DocId, DataTree, Vec<Constraint>)],
    seed: u64,
    count: usize,
) -> Vec<Request> {
    let mut rng = SplitMix::new(seed);
    (0..count)
        .map(|_| {
            let k = rng.below(docs.len());
            let doc = docs[k].0;
            let patient = NodeId::from_raw(3 * k as u64 + 2);
            let visit = NodeId::from_raw(3 * k as u64 + 3);
            let updates = if rng.below(3) == 0 {
                vec![Update::DeleteSubtree { node: visit }]
            } else {
                vec![Update::InsertLeaf {
                    parent: patient,
                    id: NodeId::fresh(),
                    label: "visit".into(),
                }]
            };
            Request { doc, updates }
        })
        .collect()
}

fn durable(name: &str, clock: Arc<VirtualClock>) -> Gateway {
    Gateway::recover_with_clock(
        Signer::new(KEY),
        AdmissionMode::Delta,
        tmp_dir(name),
        DurableOptions::default(),
        Box::new(clock),
    )
    .unwrap()
}

/// Asserts two gateways hold byte-identical state for every deployment
/// document: tree render, commit counter, full certificate (entries,
/// MACs, hash-chain linkage — `Certificate` derives `Eq`).
fn assert_state_identical(
    a: &Gateway,
    b: &Gateway,
    docs: &[(DocId, DataTree, Vec<Constraint>)],
    ctx: &str,
) {
    for (id, ..) in docs {
        assert_eq!(
            a.snapshot(*id).unwrap().render(),
            b.snapshot(*id).unwrap().render(),
            "{ctx}: {id} trees diverged"
        );
        let da = a.store().document(*id).unwrap();
        let db = b.store().document(*id).unwrap();
        assert_eq!(da.lock().commits(), db.lock().commits(), "{ctx}: {id} commit counters");
        assert_eq!(a.certificate(*id), b.certificate(*id), "{ctx}: {id} certificates diverged");
    }
}

/// Drives `requests` through `gw` in chunks of `chunk`, arming the fault
/// from `schedule` (keyed by chunk index) before each chunk. Returns the
/// concatenated verdicts.
fn run_with_schedule(
    gw: &Gateway,
    requests: &[Request],
    workers: usize,
    chunk: usize,
    schedule: &[(usize, WriteFault)],
) -> Vec<Verdict> {
    let mut verdicts = Vec::with_capacity(requests.len());
    for (ci, slice) in requests.chunks(chunk).enumerate() {
        for &(at, fault) in schedule {
            if at == ci {
                gw.inject_journal_fault(fault);
            }
        }
        verdicts.extend(gw.process(slice, workers));
    }
    verdicts
}

/// **Transient transparency at 1/2/8 workers.** A schedule of absorbable
/// transient faults (n < the policy's 4 attempts) is invisible: verdict
/// log, trees and certificates byte-identical to the fault-free durable
/// reference; gateway still `Serving`; the retry counter and the virtual
/// clock prove the production backoff loop actually ran.
#[test]
fn transient_fault_schedules_are_byte_identical_to_fault_free() {
    let docs = deployment();
    let requests = seeded_stream(&docs, 0x7AB5_1E17, 96);
    let schedule: &[(usize, WriteFault)] = &[
        (0, WriteFault::TransientOnce { n: 1 }),
        (2, WriteFault::TransientOnce { n: 3 }),
        (5, WriteFault::TransientOnce { n: 2 }),
        (9, WriteFault::TransientOnce { n: 3 }),
    ];

    let reference = durable("trans-ref", Arc::new(VirtualClock::new()));
    publish_into(&reference, &docs);
    let ref_verdicts = reference.process(&requests, 4);
    let ref_log = render_log(&requests, &ref_verdicts);
    assert!(ref_verdicts.iter().any(|v| v.is_accepted()));
    assert!(ref_verdicts.iter().any(|v| !v.is_accepted()));
    assert_eq!(reference.journal_transient_retries(), 0);

    for workers in [1usize, 2, 8] {
        let clock = Arc::new(VirtualClock::new());
        let gw = durable(&format!("trans-{workers}w"), Arc::clone(&clock));
        // The faulted arms run instrumented: telemetry must stay inert
        // through the retry loop, and the accept counter must restate
        // the (fault-free-identical) log.
        let tel = Arc::new(xuc_service::Telemetry::new());
        gw.attach_telemetry(Arc::clone(&tel));
        publish_into(&gw, &docs);
        let verdicts = run_with_schedule(&gw, &requests, workers, 8, schedule);
        assert_eq!(
            render_log(&requests, &verdicts),
            ref_log,
            "workers={workers}: log diverged under transient faults"
        );
        let accepted = verdicts.iter().filter(|v| v.is_accepted()).count() as u64;
        let snap = tel.registry().snapshot();
        assert_eq!(
            snap.counter("xuc_gateway_commits_accepted_total"),
            Some(accepted),
            "workers={workers}: accept counter diverged from the log"
        );
        assert_eq!(gw.state(), GatewayState::Serving, "workers={workers}");
        assert!(!gw.journal_sealed(), "workers={workers}");
        let retries = gw.journal_transient_retries();
        assert!(retries >= 4, "workers={workers}: only {retries} retries booked");
        assert!(clock.slept_micros() > 0, "workers={workers}: backoff never slept");
        assert_state_identical(&gw, &reference, &docs, &format!("workers={workers}"));
    }
}

/// **Fatal containment + journaled-or-degraded.** A `DiskFull` fault
/// makes the *next* journaled commit degrade the gateway: the commit
/// itself stays accepted (it is real in memory), the WAL seals, further
/// commits reject `Degraded(ReadOnly)`, reads and publishes keep
/// serving. A crash in that state may lose exactly the un-journaled
/// accepted suffix — permitted *because* the gateway was degraded — and
/// recovery still yields a consistent prefix.
#[test]
fn fatal_fault_degrades_to_read_only_and_keeps_serving_reads() {
    let docs = deployment();
    let requests = seeded_stream(&docs, 0x00FA_7A11, 48);
    for workers in [1usize, 2, 8] {
        let name = format!("fatal-{workers}w");
        let dir = std::env::temp_dir().join(format!("xuc-chaos-{}-{name}", std::process::id()));
        let gw = durable(&name, Arc::new(VirtualClock::new()));
        publish_into(&gw, &docs);
        let pre = gw.process(&requests[..24], workers);
        let pre_accepts = pre.iter().filter(|v| v.is_accepted()).count();
        assert!(pre_accepts > 0);
        let durable_commits: Vec<u64> = docs
            .iter()
            .map(|(id, ..)| gw.store().document(*id).unwrap().lock().commits())
            .collect();

        gw.inject_journal_fault(WriteFault::DiskFull);
        // The whole remaining stream drains without a panic or an exit —
        // at every worker count — while the gateway degrades mid-flight.
        let post = gw.process(&requests[24..], workers);
        assert_eq!(gw.state(), GatewayState::ReadOnly, "{name}");
        assert!(gw.journal_sealed(), "{name}");
        let fault = gw.last_fault().expect("degradation records its fault");
        assert!(fault.contains("disk-full"), "{name}: {fault}");
        // At least one commit was accepted-then-degraded (the one that hit
        // the fault) and later commits rejected as degraded.
        assert!(post.iter().any(|v| v.is_accepted()), "{name}");
        assert!(
            post.iter().any(|v| matches!(
                v,
                Verdict::Rejected(RejectReason::Degraded { reason: DegradedReason::ReadOnly })
            )),
            "{name}"
        );
        // Reads and memory publishes survive ReadOnly.
        assert_eq!(gw.read(docs[0].0), Verdict::Served, "{name}");
        let extra = DocId::new(&format!("annex-{workers}"));
        gw.publish(extra, docs[0].1.clone(), docs[0].2.clone()).unwrap();
        assert_eq!(gw.read(extra), Verdict::Served, "{name}");

        // Journaled-or-degraded: the gateway IS degraded, so a crash may
        // lose the accepted-but-unjournaled suffix — but never anything
        // below the durable prefix from before the fault.
        let live_commits: Vec<u64> = docs
            .iter()
            .map(|(id, ..)| gw.store().document(*id).unwrap().lock().commits())
            .collect();
        gw.simulate_crash(WriteFault::LoseBuffered).unwrap();
        let rec = Gateway::recover(Signer::new(KEY), &dir).unwrap();
        for (k, (id, ..)) in docs.iter().enumerate() {
            let recovered = rec.store().document(*id).unwrap().lock().commits();
            assert!(
                recovered >= durable_commits[k] && recovered <= live_commits[k],
                "{name}: {id} recovered {recovered} outside [{}, {}]",
                durable_commits[k],
                live_commits[k]
            );
        }
    }
}

/// **Resume.** After a fatal fault, `try_resume` re-opens the journal,
/// snapshots everything memory holds beyond the durable prefix
/// (including the accepted commit whose journaling failed and documents
/// published while read-only), and restores commit service. A crash
/// right after resume must recover byte-identical to the live state.
#[test]
fn try_resume_restores_service_and_durability() {
    let docs = deployment();
    let requests = seeded_stream(&docs, 0x05E5_04E5, 60);
    let name = "resume";
    let dir = std::env::temp_dir().join(format!("xuc-chaos-{}-{name}", std::process::id()));
    let gw = durable(name, Arc::new(VirtualClock::new()));
    publish_into(&gw, &docs);
    gw.process(&requests[..20], 2);

    gw.inject_journal_fault(WriteFault::DiskFull);
    gw.process(&requests[20..40], 2);
    assert_eq!(gw.state(), GatewayState::ReadOnly);
    // A document published while degraded: memory-only until resume.
    let annex = DocId::new("resume-annex");
    gw.publish(annex, docs[0].1.clone(), docs[0].2.clone()).unwrap();

    gw.try_resume().expect("journal re-opens fine");
    assert_eq!(gw.state(), GatewayState::Serving);
    assert!(!gw.journal_sealed());
    // Commit service is back: the rest of the stream accepts/rejects on
    // its merits, including against the resumed-annex document.
    let tail = gw.process(&requests[40..], 2);
    assert!(tail.iter().any(|v| v.is_accepted()));
    assert!(tail.iter().all(|v| !matches!(v, Verdict::Rejected(RejectReason::Degraded { .. }))));
    let annex_req = Request {
        doc: annex,
        updates: vec![Update::InsertLeaf {
            parent: NodeId::from_raw(2),
            id: NodeId::fresh(),
            label: "visit".into(),
        }],
    };
    assert_eq!(gw.submit(&annex_req), Verdict::Accepted { commit: 1 });

    // Everything the live gateway holds — fault-window commits included —
    // is durable again: a crash recovers byte-identical.
    let mut all = docs.clone();
    all.push((annex, docs[0].1.clone(), docs[0].2.clone()));
    let live_state: Vec<(DocId, String, u64)> = all
        .iter()
        .map(|(id, ..)| {
            let d = gw.store().document(*id).unwrap();
            let d = d.lock();
            (*id, d.tree().render(), d.commits())
        })
        .collect();
    let live_certs: Vec<_> = all.iter().map(|(id, ..)| gw.certificate(*id).unwrap()).collect();
    gw.simulate_crash(WriteFault::LoseBuffered).unwrap();
    let rec = Gateway::recover(Signer::new(KEY), &dir).unwrap();
    for ((id, render, commits), cert) in live_state.iter().zip(&live_certs) {
        let arc = rec.store().document(*id).unwrap();
        {
            let d = arc.lock();
            assert_eq!(&d.tree().render(), render, "{id}: tree after resume+crash");
            assert_eq!(&d.commits(), commits, "{id}: commit counter after resume+crash");
        }
        assert_eq!(
            rec.certificate(*id).as_ref(),
            Some(cert),
            "{id}: certificate after resume+crash"
        );
    }

    // Resume on a healthy gateway is an explicit error, not a no-op.
    assert!(matches!(rec.try_resume(), Err(xuc_service::ResumeError::NotDegraded)));
}

/// **Quarantine isolation.** Repeated contained panics against one
/// document quarantine *that document's commits only*: siblings commit,
/// the quarantined document still reads, and lifting the quarantine
/// restores it. Trigger counts are per-document sequence numbers, so the
/// behavior is worker-count deterministic by construction.
#[test]
fn quarantine_isolates_the_panicking_document() {
    let docs = deployment();
    let gw = durable("quarantine", Arc::new(VirtualClock::new()));
    publish_into(&gw, &docs);
    gw.set_quarantine_threshold(2);
    let (sick, healthy) = (docs[0].0, docs[1].0);
    let insert = |doc: DocId, k: usize| Request {
        doc,
        updates: vec![Update::InsertLeaf {
            parent: NodeId::from_raw(3 * k as u64 + 2),
            id: NodeId::fresh(),
            label: "visit".into(),
        }],
    };

    gw.inject_session_panic(sick, 2);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let v1 = gw.submit(&insert(sick, 0));
    let v2 = gw.submit(&insert(sick, 0));
    std::panic::set_hook(prev);
    assert!(matches!(v1, Verdict::Rejected(RejectReason::Internal { .. })), "{v1:?}");
    assert!(matches!(v2, Verdict::Rejected(RejectReason::Internal { .. })), "{v2:?}");
    assert_eq!(gw.contained_panics(sick), 2);
    assert!(gw.is_quarantined(sick));

    // The quarantined document refuses commits before evaluation…
    assert_eq!(
        gw.submit(&insert(sick, 0)),
        Verdict::Rejected(RejectReason::Degraded { reason: DegradedReason::Quarantined })
    );
    // …but still reads, and its sibling is untouched.
    assert_eq!(gw.read(sick), Verdict::Served);
    assert_eq!(gw.submit(&insert(healthy, 1)), Verdict::Accepted { commit: 1 });
    assert_eq!(gw.state(), GatewayState::Serving, "quarantine is per-document, not gateway-wide");

    gw.lift_quarantine(sick);
    assert!(!gw.is_quarantined(sick));
    assert_eq!(gw.submit(&insert(sick, 0)), Verdict::Accepted { commit: 1 });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite 4: *any* schedule of absorbable transient faults yields
    /// verdicts, trees and certificates byte-identical to the fault-free
    /// run (the fault-free reference is in-memory — durability must not
    /// even change observable behavior, let alone faults).
    #[test]
    fn random_transient_schedules_are_invisible(
        seed in 1usize..usize::MAX,
        faults in proptest::collection::vec((0usize..12, 1usize..=3), 1..6),
        workers in 1usize..=4,
    ) {
        let docs = deployment();
        let requests = seeded_stream(&docs, seed as u64, 48);
        let reference = Gateway::new(Signer::new(KEY));
        publish_into(&reference, &docs);
        let ref_log = render_log(&requests, &reference.process(&requests, workers));

        let schedule: Vec<(usize, WriteFault)> =
            faults.iter().map(|&(at, n)| (at, WriteFault::TransientOnce { n: n as u32 })).collect();
        let clock = Arc::new(VirtualClock::new());
        let gw = durable(&format!("prop-{seed:x}"), Arc::clone(&clock));
        publish_into(&gw, &docs);
        let verdicts = run_with_schedule(&gw, &requests, workers, 4, &schedule);
        prop_assert_eq!(render_log(&requests, &verdicts), ref_log);
        prop_assert_eq!(gw.state(), GatewayState::Serving);
        for (id, ..) in &docs {
            prop_assert_eq!(
                gw.snapshot(*id).unwrap().render(),
                reference.snapshot(*id).unwrap().render()
            );
            prop_assert_eq!(gw.certificate(*id), reference.certificate(*id));
        }
    }
}
