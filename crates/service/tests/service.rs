//! Acceptance properties of the gateway's transactional semantics.
//!
//! * **commit ≡ apply_all** — an accepted batch leaves the document in
//!   exactly the state [`xuc_xtree::apply_all`] produces, and a batch is
//!   accepted iff that state is pair-valid for the suite
//!   (Definition 2.3, judged by the independent
//!   [`xuc_core::constraint::all_satisfied`] oracle);
//! * **rollback restores the pristine tree** — rejected or abandoned
//!   batches leave the document canonical-form-identical (indeed
//!   render-identical: exact child order) to the committed state;
//! * **the evaluator is never stale** — after any mix of commits,
//!   rejections and rollbacks, the document's warm evaluator answers
//!   exactly like a freshly built one (and its staleness guard never
//!   fires);
//! * **worker-count determinism** — the accept/reject log of a seeded
//!   request stream is byte-identical at 1, 2 and 8 workers.

use proptest::prelude::*;
use xuc_core::constraint::all_satisfied;
use xuc_core::{parse_constraint, Constraint, ConstraintKind};
use xuc_service::workload::seeded_requests;
use xuc_service::{render_log, DocId, Gateway, RejectReason, Request, Session, Verdict};
use xuc_sigstore::Signer;
use xuc_xpath::Evaluator;
use xuc_xtree::{apply_all, DataTree, Label, NodeId, Update};

const LABELS: &[&str] = &["a", "b", "c", "w"];

/// A random tree over a small alphabet (same shape as xpath's prop.rs):
/// node `i ≥ 1` hangs under a random earlier node.
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = DataTree> {
    (2..max_nodes).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let labels = proptest::collection::vec(0..LABELS.len(), n);
        (parents, labels).prop_map(|(parents, labels)| {
            let mut tree = DataTree::new("root");
            let mut ids = vec![tree.root_id()];
            for (i, p) in parents.iter().enumerate() {
                let id = tree.add(ids[*p], LABELS[labels[i + 1]]).unwrap();
                ids.push(id);
            }
            tree
        })
    })
}

/// Encoded update ops, decoded against the tree's *initial* id population
/// (like real request traffic, they may fail to apply after earlier
/// edits — the gateway must handle that deterministically too).
type EncodedOp = (usize, usize, usize, usize);

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<EncodedOp>> {
    proptest::collection::vec((0..5usize, 0..64usize, 0..64usize, 0..LABELS.len()), max_ops)
}

fn decode(ops: &[EncodedOp], ids: &[NodeId]) -> Vec<Update> {
    let n = ids.len();
    ops.iter()
        .map(|&(kind, a, b, l)| match kind {
            0 => Update::InsertLeaf {
                parent: ids[a % n],
                id: NodeId::fresh(),
                label: Label::new(LABELS[l]),
            },
            1 => Update::DeleteSubtree { node: ids[a % n] },
            2 => Update::DeleteNode { node: ids[a % n] },
            3 => Update::Move { node: ids[a % n], new_parent: ids[b % n] },
            _ => Update::Relabel { node: ids[a % n], label: Label::new(LABELS[l]) },
        })
        .collect()
}

/// The suite pool the properties draw from: unconstrained, small mixed,
/// predicate-heavy, and a wide linear batch whose compiled automaton is
/// what production admission rides.
fn suites() -> Vec<Vec<Constraint>> {
    let c = |s: &str| parse_constraint(s).unwrap();
    let wide: Vec<Constraint> = xuc_workloads::queries::overlapping_prefix_suite(LABELS, 18, 4)
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let kind = if i % 2 == 0 { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
            Constraint::new(q, kind)
        })
        .collect();
    vec![
        Vec::new(),
        vec![c("(/a, ↑)"), c("(//b, ↓)")],
        vec![c("(/a[/b], ↓)"), c("(//c, ↑)"), c("(/a/b, ↑)"), c("(/*[/c], ↓)")],
        wide,
    ]
}

/// The document's warm evaluator must agree with a freshly built one on
/// every suite range (plus a wildcard sweep) — i.e. the session protocol
/// left it fully synced, never stale.
fn assert_evaluator_synced(gw: &Gateway, id: DocId, suite: &[Constraint]) {
    let doc = gw.store().document(id).expect("published");
    let mut doc = doc.lock();
    let tree = doc.tree().clone();
    let mut fresh = Evaluator::new(&tree);
    let sweep = xuc_xpath::parse("//*").unwrap();
    for q in suite.iter().map(|c| &c.range).chain([&sweep]) {
        assert_eq!(doc.eval(q), fresh.eval(q), "warm evaluator out of sync on {q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// commit ≡ apply_all, judged per batch by the independent pair
    /// oracle, across a chain of batches against one document.
    #[test]
    fn commit_equals_apply_all(
        tree in tree_strategy(10),
        batches in proptest::collection::vec(ops_strategy(4), 3),
        suite_idx in 0..4usize,
    ) {
        let suite = suites()[suite_idx].clone();
        let gw = Gateway::new(Signer::new(0x5e55));
        let id = DocId::new("doc");
        gw.publish(id, tree.clone(), suite.clone()).unwrap();

        let ids = tree.node_ids();
        let mut committed = tree;
        let mut commits = 0u64;
        for ops in &batches {
            let updates = decode(ops, &ids);
            let verdict = gw.submit(&Request { doc: id, updates: updates.clone() });
            match apply_all(&committed, &updates) {
                Err(_) => {
                    // Some update failed to apply: the gateway must have
                    // rejected at the same point and unwound the prefix.
                    prop_assert!(
                        matches!(&verdict, Verdict::Rejected(RejectReason::FailedUpdate { .. })),
                        "expected FailedUpdate, got {verdict:?}"
                    );
                }
                Ok(after) => {
                    let valid = all_satisfied(&suite, &committed, &after);
                    prop_assert_eq!(
                        verdict.is_accepted(),
                        valid,
                        "verdict {:?} disagrees with the pair oracle", &verdict
                    );
                    if valid {
                        commits += 1;
                        prop_assert_eq!(verdict, Verdict::Accepted { commit: commits });
                        committed = after;
                    } else {
                        prop_assert!(matches!(
                            &verdict,
                            Verdict::Rejected(RejectReason::Violation { .. })
                        ));
                    }
                }
            }
            // Accepted or not, the served state equals the model state.
            prop_assert_eq!(
                gw.snapshot(id).unwrap().canonical_form(),
                committed.canonical_form()
            );
        }
        assert_evaluator_synced(&gw, id, &suite);
    }

    /// rollback (explicit and via drop) restores the pristine tree —
    /// exact child order — and leaves the evaluator synced.
    #[test]
    fn rollback_restores_pristine_state(
        tree in tree_strategy(10),
        ops in ops_strategy(6),
        explicit in any::<bool>(),
        suite_idx in 0..4usize,
    ) {
        let suite = suites()[suite_idx].clone();
        let gw = Gateway::new(Signer::new(0x0123));
        let id = DocId::new("doc");
        gw.publish(id, tree.clone(), suite.clone()).unwrap();
        let updates = decode(&ops, &tree.node_ids());

        let doc = gw.store().document(id).unwrap();
        {
            let mut doc = doc.lock();
            let mut session = Session::begin(&mut doc);
            let mut applied = 0;
            for u in &updates {
                if session.apply(u).is_ok() {
                    applied += 1;
                }
            }
            prop_assert_eq!(session.applied(), applied);
            if explicit {
                session.rollback();
            } // else: drop rolls back
        }
        let doc_after = doc.lock();
        prop_assert_eq!(doc_after.tree().render(), tree.render(), "exact child order restored");
        prop_assert_eq!(doc_after.commits(), 0);
        drop(doc_after);
        assert_evaluator_synced(&gw, id, &suite);
        // The untouched certificate still covers the restored state.
        prop_assert!(gw.certificate(id).unwrap().verify(0x0123, &tree).is_ok());
    }
}

/// Builds the fixed three-document deployment the determinism tests
/// replay: a wide all-linear suite (compiled-path admission), a mixed
/// suite with predicate fallbacks, and a small suite.
fn determinism_fixture() -> (xuc_service::workload::Deployment, Vec<Request>) {
    let c = |s: &str| parse_constraint(s).unwrap();
    let mut docs = Vec::new();

    let mut wide_tree = DataTree::new("root");
    let root = wide_tree.root_id();
    for i in 0..6 {
        let mid = wide_tree.add(root, LABELS[i % 3]).unwrap();
        for j in 0..4 {
            wide_tree.add(mid, LABELS[(i + j) % LABELS.len()]).unwrap();
        }
    }
    let wide_suite: Vec<Constraint> =
        xuc_workloads::queries::overlapping_prefix_suite(LABELS, 20, 5)
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                let kind =
                    if i % 3 == 0 { ConstraintKind::NoInsert } else { ConstraintKind::NoRemove };
                Constraint::new(q, kind)
            })
            .collect();
    docs.push((DocId::new("wide"), wide_tree, wide_suite));

    let mixed_tree = xuc_xtree::parse_term(
        "hospital#1(patient#2(visit#3,visit#4),patient#5(clinicalTrial#6),patient#7(visit#8(report#9)))",
    )
    .unwrap();
    let mixed_suite = vec![
        c("(/patient/visit, ↑)"),
        c("(/patient[/clinicalTrial], ↓)"),
        c("(//report, ↑)"),
        c("(/patient, ↓)"),
    ];
    docs.push((DocId::new("mixed"), mixed_tree, mixed_suite));

    let small_tree = xuc_xtree::parse_term("r(a#20(b#21),c#22)").unwrap();
    docs.push((DocId::new("small"), small_tree, vec![c("(/a[/b], ↑)"), c("(//c, ↓)")]));

    let refs: Vec<(DocId, &DataTree)> = docs.iter().map(|(id, t, _)| (*id, t)).collect();
    let requests = seeded_requests(&refs, &["w", "visit"], 0x00D1_5EA5, 240);
    (docs, requests)
}

fn run_at(
    docs: &xuc_service::workload::Deployment,
    requests: &[Request],
    workers: usize,
) -> String {
    let gw = Gateway::new(Signer::new(0xF16));
    for (id, tree, suite) in docs {
        gw.publish(*id, tree.clone(), suite.clone()).unwrap();
    }
    let verdicts = gw.process(requests, workers);
    // Re-certification happened on every accepted commit: each
    // document's final certificate must cover its final state.
    for (id, ..) in docs {
        let cert = gw.certificate(*id).unwrap();
        assert!(cert.verify(0xF16, &gw.snapshot(*id).unwrap()).is_ok(), "{id} cert stale");
    }
    render_log(requests, &verdicts)
}

/// The acceptance criterion: the accept/reject log of the seeded stream
/// is byte-identical at 1, 2 and 8 workers.
#[test]
fn logs_are_byte_identical_at_1_2_8_workers() {
    let (docs, requests) = determinism_fixture();
    let reference = run_at(&docs, &requests, 1);
    // The stream must actually exercise both outcomes and all documents.
    assert!(reference.contains("ACCEPT"), "stream produced no accepts:\n{reference}");
    assert!(reference.contains("REJECT"), "stream produced no rejects:\n{reference}");
    for (id, ..) in &docs {
        assert!(reference.contains(id.as_str()), "no traffic for {id}");
    }
    for workers in [2usize, 8] {
        let log = run_at(&docs, &requests, workers);
        assert_eq!(log, reference, "log diverged at {workers} workers");
    }
}

/// Replaying the same stream into an identical deployment yields the
/// same log even across gateway instances (nothing about a verdict
/// depends on ambient state).
#[test]
fn replay_across_instances_is_stable() {
    let (docs, requests) = determinism_fixture();
    assert_eq!(run_at(&docs, &requests, 4), run_at(&docs, &requests, 4));
}

/// End-to-end Figure 1 loop: an accepted stream leaves every document
/// verifiable by the User against the gateway's certificate, and a
/// tampered copy is caught.
#[test]
fn users_can_verify_served_documents() {
    let (docs, requests) = determinism_fixture();
    let gw = Gateway::new(Signer::new(0xBEEF));
    for (id, tree, suite) in &docs {
        gw.publish(*id, tree.clone(), suite.clone()).unwrap();
    }
    gw.process(&requests, 2);
    let id = DocId::new("mixed");
    let snap = gw.snapshot(id).unwrap();
    let cert = gw.certificate(id).unwrap();
    assert!(cert.verify(0xBEEF, &snap).is_ok());
    // A man-in-the-middle strips a protected visit: verification fails.
    let mut tampered = snap.clone();
    if let Some(visit) = xuc_xpath::eval(&xuc_xpath::parse("/patient/visit").unwrap(), &tampered)
        .iter()
        .next()
        .copied()
    {
        tampered.delete_subtree(visit.id).unwrap();
        assert!(cert.verify(0xBEEF, &tampered).is_err(), "tampering must be caught");
    }
}
