//! Workload generators for the benchmark harness and tests.
//!
//! * [`trees`] — random data trees and the paper's running documents
//!   (Fig. 2 hospital instances, scaled hospital generators),
//! * [`queries`] — random queries and constraint sets per XPath fragment,
//!   including families with *known* implication status,
//! * [`cnf`] — 3CNF formulas, random generation and a brute-force SAT
//!   oracle,
//! * [`gadgets`] — the coNP-hardness reductions of Theorem 4.6 (general
//!   implication, `XP{/,[],//}`) and Theorem 5.2 / Fig. 6 (instance-based,
//!   `XP{/,[]}`), each with an *assignment-guided instance builder* so the
//!   reduction can be validated end-to-end against the SAT oracle.

pub mod cnf;
pub mod gadgets;
pub mod queries;
pub mod trees;

pub use cnf::{Clause, Formula, Literal};
